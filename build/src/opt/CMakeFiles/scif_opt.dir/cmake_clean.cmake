file(REMOVE_RECURSE
  "CMakeFiles/scif_opt.dir/passes.cc.o"
  "CMakeFiles/scif_opt.dir/passes.cc.o.d"
  "libscif_opt.a"
  "libscif_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libscif_opt.a"
)

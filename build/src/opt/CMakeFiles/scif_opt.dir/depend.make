# Empty dependencies file for scif_opt.
# This may be replaced when dependencies are built.

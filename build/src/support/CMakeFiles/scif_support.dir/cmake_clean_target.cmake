file(REMOVE_RECURSE
  "libscif_support.a"
)

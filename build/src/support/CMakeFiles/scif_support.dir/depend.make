# Empty dependencies file for scif_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scif_support.dir/logging.cc.o"
  "CMakeFiles/scif_support.dir/logging.cc.o.d"
  "CMakeFiles/scif_support.dir/random.cc.o"
  "CMakeFiles/scif_support.dir/random.cc.o.d"
  "CMakeFiles/scif_support.dir/strings.cc.o"
  "CMakeFiles/scif_support.dir/strings.cc.o.d"
  "CMakeFiles/scif_support.dir/table.cc.o"
  "CMakeFiles/scif_support.dir/table.cc.o.d"
  "libscif_support.a"
  "libscif_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

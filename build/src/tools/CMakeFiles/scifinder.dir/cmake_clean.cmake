file(REMOVE_RECURSE
  "CMakeFiles/scifinder.dir/scifinder_main.cc.o"
  "CMakeFiles/scifinder.dir/scifinder_main.cc.o.d"
  "scifinder"
  "scifinder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scifinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

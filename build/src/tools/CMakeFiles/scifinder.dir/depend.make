# Empty dependencies file for scifinder.
# This may be replaced when dependencies are built.

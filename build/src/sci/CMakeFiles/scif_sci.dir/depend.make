# Empty dependencies file for scif_sci.
# This may be replaced when dependencies are built.

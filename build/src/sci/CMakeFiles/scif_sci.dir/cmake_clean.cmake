file(REMOVE_RECURSE
  "CMakeFiles/scif_sci.dir/identify.cc.o"
  "CMakeFiles/scif_sci.dir/identify.cc.o.d"
  "CMakeFiles/scif_sci.dir/infer.cc.o"
  "CMakeFiles/scif_sci.dir/infer.cc.o.d"
  "CMakeFiles/scif_sci.dir/properties.cc.o"
  "CMakeFiles/scif_sci.dir/properties.cc.o.d"
  "libscif_sci.a"
  "libscif_sci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_sci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

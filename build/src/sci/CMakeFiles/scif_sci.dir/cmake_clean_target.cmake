file(REMOVE_RECURSE
  "libscif_sci.a"
)

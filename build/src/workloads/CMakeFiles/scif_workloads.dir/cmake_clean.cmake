file(REMOVE_RECURSE
  "CMakeFiles/scif_workloads.dir/workloads.cc.o"
  "CMakeFiles/scif_workloads.dir/workloads.cc.o.d"
  "libscif_workloads.a"
  "libscif_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libscif_workloads.a"
)

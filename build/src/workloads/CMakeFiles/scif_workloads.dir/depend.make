# Empty dependencies file for scif_workloads.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for scif_asm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libscif_asm.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/scif_asm.dir/assembler.cc.o"
  "CMakeFiles/scif_asm.dir/assembler.cc.o.d"
  "libscif_asm.a"
  "libscif_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scif_bugs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libscif_bugs.a"
)

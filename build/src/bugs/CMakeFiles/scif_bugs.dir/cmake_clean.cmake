file(REMOVE_RECURSE
  "CMakeFiles/scif_bugs.dir/classification.cc.o"
  "CMakeFiles/scif_bugs.dir/classification.cc.o.d"
  "CMakeFiles/scif_bugs.dir/registry.cc.o"
  "CMakeFiles/scif_bugs.dir/registry.cc.o.d"
  "libscif_bugs.a"
  "libscif_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

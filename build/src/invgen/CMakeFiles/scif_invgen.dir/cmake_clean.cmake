file(REMOVE_RECURSE
  "CMakeFiles/scif_invgen.dir/invgen.cc.o"
  "CMakeFiles/scif_invgen.dir/invgen.cc.o.d"
  "libscif_invgen.a"
  "libscif_invgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_invgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scif_invgen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libscif_invgen.a"
)

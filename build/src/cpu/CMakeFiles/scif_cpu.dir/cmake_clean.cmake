file(REMOVE_RECURSE
  "CMakeFiles/scif_cpu.dir/cpu.cc.o"
  "CMakeFiles/scif_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/scif_cpu.dir/memory.cc.o"
  "CMakeFiles/scif_cpu.dir/memory.cc.o.d"
  "libscif_cpu.a"
  "libscif_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for scif_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libscif_cpu.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/cpu.cc" "src/cpu/CMakeFiles/scif_cpu.dir/cpu.cc.o" "gcc" "src/cpu/CMakeFiles/scif_cpu.dir/cpu.cc.o.d"
  "/root/repo/src/cpu/memory.cc" "src/cpu/CMakeFiles/scif_cpu.dir/memory.cc.o" "gcc" "src/cpu/CMakeFiles/scif_cpu.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/scif_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/scif_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/scif_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scif_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

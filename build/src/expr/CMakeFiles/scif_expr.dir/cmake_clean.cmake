file(REMOVE_RECURSE
  "CMakeFiles/scif_expr.dir/expr.cc.o"
  "CMakeFiles/scif_expr.dir/expr.cc.o.d"
  "libscif_expr.a"
  "libscif_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

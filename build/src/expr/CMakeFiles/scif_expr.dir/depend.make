# Empty dependencies file for scif_expr.
# This may be replaced when dependencies are built.

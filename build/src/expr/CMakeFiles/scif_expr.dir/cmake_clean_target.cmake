file(REMOVE_RECURSE
  "libscif_expr.a"
)

file(REMOVE_RECURSE
  "libscif_monitor.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/scif_monitor.dir/assertion.cc.o"
  "CMakeFiles/scif_monitor.dir/assertion.cc.o.d"
  "CMakeFiles/scif_monitor.dir/overhead.cc.o"
  "CMakeFiles/scif_monitor.dir/overhead.cc.o.d"
  "libscif_monitor.a"
  "libscif_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for scif_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libscif_ml.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/elastic_net.cc" "src/ml/CMakeFiles/scif_ml.dir/elastic_net.cc.o" "gcc" "src/ml/CMakeFiles/scif_ml.dir/elastic_net.cc.o.d"
  "/root/repo/src/ml/features.cc" "src/ml/CMakeFiles/scif_ml.dir/features.cc.o" "gcc" "src/ml/CMakeFiles/scif_ml.dir/features.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/scif_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/scif_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/pca.cc" "src/ml/CMakeFiles/scif_ml.dir/pca.cc.o" "gcc" "src/ml/CMakeFiles/scif_ml.dir/pca.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/scif_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scif_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/scif_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/scif_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for scif_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/scif_ml.dir/elastic_net.cc.o"
  "CMakeFiles/scif_ml.dir/elastic_net.cc.o.d"
  "CMakeFiles/scif_ml.dir/features.cc.o"
  "CMakeFiles/scif_ml.dir/features.cc.o.d"
  "CMakeFiles/scif_ml.dir/matrix.cc.o"
  "CMakeFiles/scif_ml.dir/matrix.cc.o.d"
  "CMakeFiles/scif_ml.dir/pca.cc.o"
  "CMakeFiles/scif_ml.dir/pca.cc.o.d"
  "libscif_ml.a"
  "libscif_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/derived.cc" "src/trace/CMakeFiles/scif_trace.dir/derived.cc.o" "gcc" "src/trace/CMakeFiles/scif_trace.dir/derived.cc.o.d"
  "/root/repo/src/trace/io.cc" "src/trace/CMakeFiles/scif_trace.dir/io.cc.o" "gcc" "src/trace/CMakeFiles/scif_trace.dir/io.cc.o.d"
  "/root/repo/src/trace/record.cc" "src/trace/CMakeFiles/scif_trace.dir/record.cc.o" "gcc" "src/trace/CMakeFiles/scif_trace.dir/record.cc.o.d"
  "/root/repo/src/trace/schema.cc" "src/trace/CMakeFiles/scif_trace.dir/schema.cc.o" "gcc" "src/trace/CMakeFiles/scif_trace.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/scif_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scif_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

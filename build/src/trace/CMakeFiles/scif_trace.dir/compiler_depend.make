# Empty compiler generated dependencies file for scif_trace.
# This may be replaced when dependencies are built.

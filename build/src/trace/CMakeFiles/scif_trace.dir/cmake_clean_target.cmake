file(REMOVE_RECURSE
  "libscif_trace.a"
)

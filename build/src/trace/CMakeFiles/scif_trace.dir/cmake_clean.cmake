file(REMOVE_RECURSE
  "CMakeFiles/scif_trace.dir/derived.cc.o"
  "CMakeFiles/scif_trace.dir/derived.cc.o.d"
  "CMakeFiles/scif_trace.dir/io.cc.o"
  "CMakeFiles/scif_trace.dir/io.cc.o.d"
  "CMakeFiles/scif_trace.dir/record.cc.o"
  "CMakeFiles/scif_trace.dir/record.cc.o.d"
  "CMakeFiles/scif_trace.dir/schema.cc.o"
  "CMakeFiles/scif_trace.dir/schema.cc.o.d"
  "libscif_trace.a"
  "libscif_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

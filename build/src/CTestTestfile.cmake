# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("isa")
subdirs("asm")
subdirs("trace")
subdirs("cpu")
subdirs("expr")
subdirs("invgen")
subdirs("opt")
subdirs("bugs")
subdirs("workloads")
subdirs("sci")
subdirs("ml")
subdirs("monitor")
subdirs("core")
subdirs("tools")

file(REMOVE_RECURSE
  "libscif_isa.a"
)

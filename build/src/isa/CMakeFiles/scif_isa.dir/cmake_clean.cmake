file(REMOVE_RECURSE
  "CMakeFiles/scif_isa.dir/arch.cc.o"
  "CMakeFiles/scif_isa.dir/arch.cc.o.d"
  "CMakeFiles/scif_isa.dir/insn.cc.o"
  "CMakeFiles/scif_isa.dir/insn.cc.o.d"
  "libscif_isa.a"
  "libscif_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

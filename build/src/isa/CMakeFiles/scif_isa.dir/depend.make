# Empty dependencies file for scif_isa.
# This may be replaced when dependencies are built.

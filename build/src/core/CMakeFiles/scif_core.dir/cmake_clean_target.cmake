file(REMOVE_RECURSE
  "libscif_core.a"
)

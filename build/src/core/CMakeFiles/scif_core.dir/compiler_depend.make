# Empty compiler generated dependencies file for scif_core.
# This may be replaced when dependencies are built.

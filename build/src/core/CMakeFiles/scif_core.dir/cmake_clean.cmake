file(REMOVE_RECURSE
  "CMakeFiles/scif_core.dir/scifinder.cc.o"
  "CMakeFiles/scif_core.dir/scifinder.cc.o.d"
  "libscif_core.a"
  "libscif_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sec56_unknown_bugs.dir/sec56_unknown_bugs.cc.o"
  "CMakeFiles/sec56_unknown_bugs.dir/sec56_unknown_bugs.cc.o.d"
  "sec56_unknown_bugs"
  "sec56_unknown_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec56_unknown_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

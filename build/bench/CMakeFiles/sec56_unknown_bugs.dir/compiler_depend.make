# Empty compiler generated dependencies file for sec56_unknown_bugs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_invariant_convergence.dir/fig3_invariant_convergence.cc.o"
  "CMakeFiles/fig3_invariant_convergence.dir/fig3_invariant_convergence.cc.o.d"
  "fig3_invariant_convergence"
  "fig3_invariant_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_invariant_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_invariant_convergence.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for scif_bench_common.
# This may be replaced when dependencies are built.

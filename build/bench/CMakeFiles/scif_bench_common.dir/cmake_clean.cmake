file(REMOVE_RECURSE
  "CMakeFiles/scif_bench_common.dir/common.cc.o"
  "CMakeFiles/scif_bench_common.dir/common.cc.o.d"
  "libscif_bench_common.a"
  "libscif_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scif_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

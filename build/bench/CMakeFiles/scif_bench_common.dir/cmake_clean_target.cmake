file(REMOVE_RECURSE
  "libscif_bench_common.a"
)

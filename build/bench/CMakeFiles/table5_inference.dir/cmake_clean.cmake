file(REMOVE_RECURSE
  "CMakeFiles/table5_inference.dir/table5_inference.cc.o"
  "CMakeFiles/table5_inference.dir/table5_inference.cc.o.d"
  "table5_inference"
  "table5_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table5_inference.
# This may be replaced when dependencies are built.

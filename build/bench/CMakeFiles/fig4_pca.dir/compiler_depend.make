# Empty compiler generated dependencies file for fig4_pca.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_pca.dir/fig4_pca.cc.o"
  "CMakeFiles/fig4_pca.dir/fig4_pca.cc.o.d"
  "fig4_pca"
  "fig4_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table9_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table9_overhead.dir/table9_overhead.cc.o"
  "CMakeFiles/table9_overhead.dir/table9_overhead.cc.o.d"
  "table9_overhead"
  "table9_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_effective_address.dir/ablation_effective_address.cc.o"
  "CMakeFiles/ablation_effective_address.dir/ablation_effective_address.cc.o.d"
  "ablation_effective_address"
  "ablation_effective_address.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_effective_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

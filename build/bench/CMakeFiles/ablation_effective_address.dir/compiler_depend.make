# Empty compiler generated dependencies file for ablation_effective_address.
# This may be replaced when dependencies are built.

# Empty dependencies file for table4_feature_weights.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_feature_weights.dir/table4_feature_weights.cc.o"
  "CMakeFiles/table4_feature_weights.dir/table4_feature_weights.cc.o.d"
  "table4_feature_weights"
  "table4_feature_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_feature_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table6_prior_properties.dir/table6_prior_properties.cc.o"
  "CMakeFiles/table6_prior_properties.dir/table6_prior_properties.cc.o.d"
  "table6_prior_properties"
  "table6_prior_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_prior_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

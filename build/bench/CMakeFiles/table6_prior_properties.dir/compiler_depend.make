# Empty compiler generated dependencies file for table6_prior_properties.
# This may be replaced when dependencies are built.

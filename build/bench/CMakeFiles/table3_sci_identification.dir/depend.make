# Empty dependencies file for table3_sci_identification.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table3_sci_identification.dir/table3_sci_identification.cc.o"
  "CMakeFiles/table3_sci_identification.dir/table3_sci_identification.cc.o.d"
  "table3_sci_identification"
  "table3_sci_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sci_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_optimization.
# This may be replaced when dependencies are built.

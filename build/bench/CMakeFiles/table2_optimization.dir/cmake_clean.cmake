file(REMOVE_RECURSE
  "CMakeFiles/table2_optimization.dir/table2_optimization.cc.o"
  "CMakeFiles/table2_optimization.dir/table2_optimization.cc.o.d"
  "table2_optimization"
  "table2_optimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_optimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

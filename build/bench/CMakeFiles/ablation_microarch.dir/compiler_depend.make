# Empty compiler generated dependencies file for ablation_microarch.
# This may be replaced when dependencies are built.

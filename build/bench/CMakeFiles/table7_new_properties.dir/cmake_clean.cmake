file(REMOVE_RECURSE
  "CMakeFiles/table7_new_properties.dir/table7_new_properties.cc.o"
  "CMakeFiles/table7_new_properties.dir/table7_new_properties.cc.o.d"
  "table7_new_properties"
  "table7_new_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_new_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table7_new_properties.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table8_performance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table8_performance.dir/table8_performance.cc.o"
  "CMakeFiles/table8_performance.dir/table8_performance.cc.o.d"
  "table8_performance"
  "table8_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

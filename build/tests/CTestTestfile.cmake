# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/invgen_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/sci_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/bugs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/arch_properties_test[1]_include.cmake")
include("/root/repo/build/tests/classification_test[1]_include.cmake")
include("/root/repo/build/tests/isa_semantics_test[1]_include.cmake")

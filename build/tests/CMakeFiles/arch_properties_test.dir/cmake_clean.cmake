file(REMOVE_RECURSE
  "CMakeFiles/arch_properties_test.dir/arch_properties_test.cc.o"
  "CMakeFiles/arch_properties_test.dir/arch_properties_test.cc.o.d"
  "arch_properties_test"
  "arch_properties_test.pdb"
  "arch_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

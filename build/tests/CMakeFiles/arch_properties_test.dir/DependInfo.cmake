
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch_properties_test.cc" "tests/CMakeFiles/arch_properties_test.dir/arch_properties_test.cc.o" "gcc" "tests/CMakeFiles/arch_properties_test.dir/arch_properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/scif_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/scif_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/scif_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/scif_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/scif_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scif_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

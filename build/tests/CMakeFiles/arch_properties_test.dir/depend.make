# Empty dependencies file for arch_properties_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for sci_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sci_test.dir/sci_test.cc.o"
  "CMakeFiles/sci_test.dir/sci_test.cc.o.d"
  "sci_test"
  "sci_test.pdb"
  "sci_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

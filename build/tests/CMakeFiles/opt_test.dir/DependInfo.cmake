
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/opt_test.cc" "tests/CMakeFiles/opt_test.dir/opt_test.cc.o" "gcc" "tests/CMakeFiles/opt_test.dir/opt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/scif_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sci/CMakeFiles/scif_sci.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/scif_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/invgen/CMakeFiles/scif_invgen.dir/DependInfo.cmake"
  "/root/repo/build/src/bugs/CMakeFiles/scif_bugs.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scif_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/scif_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/scif_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/scif_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/scif_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/scif_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scif_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

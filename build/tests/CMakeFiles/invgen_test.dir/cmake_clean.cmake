file(REMOVE_RECURSE
  "CMakeFiles/invgen_test.dir/invgen_test.cc.o"
  "CMakeFiles/invgen_test.dir/invgen_test.cc.o.d"
  "invgen_test"
  "invgen_test.pdb"
  "invgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

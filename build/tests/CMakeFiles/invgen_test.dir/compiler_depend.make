# Empty compiler generated dependencies file for invgen_test.
# This may be replaced when dependencies are built.

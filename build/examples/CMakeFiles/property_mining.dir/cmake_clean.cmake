file(REMOVE_RECURSE
  "CMakeFiles/property_mining.dir/property_mining.cpp.o"
  "CMakeFiles/property_mining.dir/property_mining.cpp.o.d"
  "property_mining"
  "property_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for property_mining.
# This may be replaced when dependencies are built.

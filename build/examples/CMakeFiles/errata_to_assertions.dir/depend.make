# Empty dependencies file for errata_to_assertions.
# This may be replaced when dependencies are built.

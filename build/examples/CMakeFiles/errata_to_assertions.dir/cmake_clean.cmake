file(REMOVE_RECURSE
  "CMakeFiles/errata_to_assertions.dir/errata_to_assertions.cpp.o"
  "CMakeFiles/errata_to_assertions.dir/errata_to_assertions.cpp.o.d"
  "errata_to_assertions"
  "errata_to_assertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errata_to_assertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Behavioural mutations: the hook points through which the bug
 * registry (src/bugs) injects the reproduced processor errata into
 * the simulator. Each mutation corresponds to one erratum's
 * architectural symptom; the mapping from published bug to mutation
 * lives in bugs/registry.cc.
 */

#ifndef SCIFINDER_CPU_MUTATION_HH
#define SCIFINDER_CPU_MUTATION_HH

#include <bitset>
#include <cstdint>
#include <initializer_list>

namespace scif::cpu {

/** One injectable defect. Names follow the bug ids of Table 1 (b*)
 *  and the held-out set of §5.6 (h*). */
enum class Mutation : uint8_t {
    // --- Table 1 security errata ---
    B1_SysDelaySlotEpcr,    ///< l.sys in delay slot: EPCR points at the
                            ///< branch, so l.rfe re-runs it forever
    B2_MacrcAfterMacStall,  ///< l.macrc straight after l.mac wedges the
                            ///< pipeline (no ISA-visible state change)
    B3_ExtwWrong,           ///< l.extws/l.extwz produce a wrong value
    B4_DsxNotImplemented,   ///< SR[DSX] never set on delay-slot traps
    B5_RangeEpcrWrong,      ///< EPCR on range exception off by 4
    B6_UnsignedCmpMsb,      ///< unsigned compares wrong when operand
                            ///< MSBs differ (fall back to signed)
    B7_SfltuWrong,          ///< l.sfltu/l.sfltui compute signed less-than
    B8_RoriVector,          ///< l.rori logic error corrupts the next
                            ///< exception vector computation
    B9_IllegalEpcrWrong,    ///< EPCR on illegal-instruction exception
                            ///< points at the next instruction
    B10_Gpr0Writable,       ///< GPR0 can be assigned
    B11_FetchAfterLsuStall, ///< wrong instruction word fetched right
                            ///< after a load/store (LSU stall)
    B12_MtsprDropped,       ///< l.mtspr to some SPRs acts as l.nop
    B13_JalLargeDispLr,     ///< call return address wrong for large
                            ///< displacements (LR corrupted)
    B14_ByteStoreCorrupt,   ///< byte/half store writes corrupted data
    B15_TrapEpcrWrong,      ///< wrong PC stored on trap exception
                            ///< (paper: FPU trap; we have no FPU)
    B16_LoadExtendWrong,    ///< sign/zero extension swapped in the LSU
    B17_StoreForwardClobber,///< load data overwritten by data of a
                            ///< subsequent store (forwarding bug)

    // --- held-out bugs for §5.6 (AMD-errata-style classes) ---
    H1_IntrEpcrOff,         ///< EPCR on external interrupt off by 4
    H2_MovhiClearsFlag,     ///< l.movhi spuriously clears SR[F]
    H3_StoreAddrBit,        ///< word store drops address bit 2 for
                            ///< negative offsets
    H4_JalrLrWrong,         ///< l.jalr writes LR = PC instead of PC+8
    H5_MfsprEsrAlias,       ///< l.mfspr from ESR0 returns SR instead
    H6_RfeDropsFo,          ///< l.rfe restores SR with the fixed-one
                            ///< bit cleared
    H7_RfeKeepsSm,          ///< l.rfe leaves SR[SM] set (privilege
                            ///< fails to de-escalate)
    H8_LoadRotated,         ///< loaded word byte-rotated for addresses
                            ///< with bit 6 set
    H9_SfgesEqWrong,        ///< l.sfges result inverted when the
                            ///< operands are equal
    H10_SysEpcrSelf,        ///< l.sys stores EPCR = PC of the l.sys
                            ///< instead of the next instruction
    H11_CompareClobbersReg, ///< stuck write-enable: set-flag compares
                            ///< also write GPR[cond-code field]
    H12_AlignSuppressed,    ///< misaligned halfword loads silently
                            ///< truncate the address instead of
                            ///< raising an alignment exception
    H13_PrefetchStall,      ///< prefetch-buffer wedge; microarchitectural
                            ///< only, no ISA-visible change
    H14_StoreMerge,         ///< adjacent stores merge in the store
                            ///< buffer; final memory state identical,
                            ///< invisible at the ISA level

    NumMutations
};

/** Number of defined mutations. */
constexpr size_t numMutations = size_t(Mutation::NumMutations);

/** A set of active mutations (a "buggy processor" configuration). */
class MutationSet
{
  public:
    MutationSet() = default;

    MutationSet(std::initializer_list<Mutation> ms)
    {
        for (Mutation m : ms)
            add(m);
    }

    void add(Mutation m) { bits_.set(size_t(m)); }
    void remove(Mutation m) { bits_.reset(size_t(m)); }
    bool has(Mutation m) const { return bits_.test(size_t(m)); }
    bool empty() const { return bits_.none(); }

    /**
     * The set as an integer, used to key the predecoded block cache
     * (numMutations < 64, so the packing is exact and collision-free).
     */
    uint64_t key() const { return bits_.to_ullong(); }

  private:
    std::bitset<numMutations> bits_;
};

} // namespace scif::cpu

#endif // SCIFINDER_CPU_MUTATION_HH

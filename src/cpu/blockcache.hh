/**
 * @file
 * Predecoded basic-block cache: the fast simulation front end.
 *
 * Every interpreted step pays an `isa::decode` (an opcode-bucket
 * lookup plus a linear mask-match scan) per instruction word — twice
 * per control-flow boundary, because the delay-slot word decodes
 * inside the same trace boundary. The block cache removes that cost
 * the way QEMU-style DBT front ends do: straight-line runs of
 * instructions are decoded once into a PC-indexed cache of basic
 * blocks (a run ends at a branch/jump, a system instruction, or an
 * undecodable word; a branch and its delay slot fuse into one cached
 * entry), and execution becomes a tight dispatch loop over the
 * pre-resolved `DecodedInsn`s with all operand fields pre-extracted.
 *
 * Soundness rules:
 *
 *  - Entries are pure functions of the instruction words they were
 *    decoded from. Stores into cached code ranges (self-modifying
 *    code — the fuzzer generates it) invalidate every overlapping
 *    block through a page-granular occupancy index, so the store
 *    fast path is one counter test.
 *  - Blocks are keyed by the active mutation set: `identify`'s
 *    buggy/clean fan-out over the same program never mixes entries
 *    decoded under different processor configurations. (The key is
 *    load-bearing: b11 corrupts *fetched words*, so nothing decoded
 *    under one configuration may ever execute under another.)
 *  - Fetch protection is dynamic (supervisor bit), so entries whose
 *    words lie below the user base carry a needsSuper flag and the
 *    dispatcher falls back to the interpreted path when the flag
 *    disagrees with the current privilege.
 *  - Invalidated blocks park in a graveyard until the owning Cpu has
 *    dropped its dispatch cursor, so a store into the *currently
 *    executing* block finishes its boundary on a live object.
 *
 * Superblock chaining (threaded dispatch): once control flow between
 * two cached blocks resolves, the predecessor stores a direct pointer
 * to its successor (a fallthrough slot and a monomorphic taken slot),
 * and the dispatcher follows the pointer instead of dropping its
 * cursor and taking the hash-lookup round trip through the cache.
 * Links only ever connect blocks decoded under the same mutation key
 * (both ends of a link come from the same keyed lookup stream), and a
 * followed link is guarded by the successor's entry pc, so a stale
 * monomorphic target simply misses back to the slow path. Every link
 * is mirrored in the successor's back-link list so invalidation can
 * sever it from either end — a severed predecessor can never chase a
 * pointer into the graveyard.
 */

#ifndef SCIFINDER_CPU_BLOCKCACHE_HH
#define SCIFINDER_CPU_BLOCKCACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cpu/memory.hh"
#include "isa/insn.hh"

namespace scif::cpu {

/**
 * Memoized pure decode: a direct-mapped word -> DecodedInsn table.
 * `isa::decode` is a pure function of the instruction word, so the
 * memo never needs invalidation. Used by the block builder and by
 * the interpreted path's delay-slot decode (which previously decoded
 * every pair's second word from scratch).
 */
class DecodeMemo
{
  public:
    /** @return the decoded instruction, or nullptr if illegal. */
    const isa::DecodedInsn *
    lookup(uint32_t word)
    {
        Entry &e = entries_[index(word)];
        if (!e.valid || e.word != word) {
            auto decoded = isa::decode(word);
            e.word = word;
            e.valid = true;
            e.ok = decoded.has_value();
            if (decoded)
                e.insn = *decoded;
        }
        return e.ok ? &e.insn : nullptr;
    }

  private:
    struct Entry
    {
        uint32_t word = 0;
        bool valid = false;
        bool ok = false;
        isa::DecodedInsn insn;
    };

    static constexpr size_t slots = 512;

    static size_t
    index(uint32_t word)
    {
        // Opcode bits select the bucket family; low bits split the
        // subcode-heavy 0xe0000000 family across slots.
        return ((word >> 26) ^ (word << 4) ^ (word >> 13)) & (slots - 1);
    }

    std::array<Entry, slots> entries_;
};

/** One predecoded trace boundary: an instruction, or a control-flow
 *  instruction fused with its delay-slot instruction. */
struct CachedOp
{
    uint32_t pc = 0;          ///< address of the (first) word
    uint32_t word = 0;        ///< instruction word (the branch word
                              ///< when fused)
    uint32_t dsWord = 0;      ///< delay-slot word (fused only)
    isa::DecodedInsn insn;    ///< pre-extracted operands
    isa::DecodedInsn ds;      ///< delay-slot instruction (fused only)
    bool fused = false;       ///< delay-slot pair in one entry
    bool needsSuper = false;  ///< fetch faults in user mode
    /** Pre-resolved isa::info() of insn / ds: the dispatcher skips
     *  the per-step table lookups. */
    const isa::InsnInfo *info = nullptr;
    const isa::InsnInfo *dsInfo = nullptr;
};

/** A decoded basic block (or a negative entry: ops empty). */
struct Block
{
    uint32_t pc = 0;     ///< first instruction address
    uint32_t bytes = 0;  ///< code bytes covered: [pc, pc + bytes)
    uint64_t key = 0;    ///< mutation key it was decoded under
    bool alive = true;   ///< false once invalidated (graveyard)

    /** Chained successor when this block falls through (or branches)
     *  to pc + bytes. Null until the transition resolves once. */
    Block *succFall = nullptr;
    /** Chained successor for any other resolved transition — a
     *  monomorphic inline cache: the dispatcher re-checks the target
     *  pc on every follow, so indirect branches that change targets
     *  miss and re-link. */
    Block *succTaken = nullptr;
    /** One entry per incoming link (a predecessor pointing at this
     *  block twice appears twice); invalidation walks this list to
     *  null the matching successor slots. */
    std::vector<Block *> preds;

    std::vector<CachedOp> ops;
};

/** The PC-indexed, mutation-keyed cache of decoded blocks. */
class BlockCache
{
  public:
    struct Stats
    {
        uint64_t hits = 0;          ///< dispatched cached boundaries
        uint64_t builds = 0;        ///< blocks decoded
        uint64_t invalidations = 0; ///< blocks killed by code stores
        uint64_t flushes = 0;       ///< whole-cache flushes
        uint64_t chainLinks = 0;    ///< successor links installed
        uint64_t chainHits = 0;     ///< transitions through a link
        uint64_t chainSevers = 0;   ///< links cut by invalidation
        uint64_t fallbacks = 0;     ///< boundaries run interpreted
                                    ///< (negative entry / privilege)
    };

    explicit BlockCache(uint32_t memBytes);
    ~BlockCache();

    /**
     * The block starting at @p pc under mutation key @p key, decoding
     * it from @p mem on a miss. A pc where nothing can be cached
     * (misaligned, unmapped, or an undecodable first word) yields a
     * negative entry (empty ops) so repeat visits stay O(1).
     */
    Block *lookupOrBuild(uint32_t pc, uint64_t key, const Memory &mem,
                         uint32_t userBase);

    /** Kill every block overlapping [addr, addr + size). */
    void
    invalidateRange(uint32_t addr, uint32_t size)
    {
        uint32_t first = addr >> pageShift;
        uint32_t last = (addr + size - 1) >> pageShift;
        for (uint32_t p = first; p <= last && p < pageCount(); ++p) {
            if (pageBlocks_[p] != 0) {
                invalidateSlow(addr, size);
                return;
            }
        }
    }

    /** Drop everything, including the graveyard. The caller must not
     *  hold any Block pointer across this call. */
    void flush();

    /** Free invalidated blocks. The caller must not hold a pointer
     *  into the graveyard (the Cpu calls this after dropping its
     *  dispatch cursor). */
    void purgeDead();

    const Stats &stats() const { return stats_; }

    /** @return number of live cached blocks (negative entries too). */
    size_t liveBlocks() const { return blocks_.size(); }

    /** @return true when nothing is cached (live or graveyard) — the
     *  program loader skips its diff scan entirely then. */
    bool empty() const { return blocks_.empty() && graveyard_.empty(); }

    /** Count one dispatched cached boundary (kept by the owner so the
     *  hot path stays a single increment). */
    void countHit() { ++stats_.hits; }

    /** Count one chained block transition (no lookup round trip). */
    void countChainHit() { ++stats_.chainHits; }

    /** Count one boundary the dispatcher handed back to the
     *  interpreted path. */
    void countFallback() { ++stats_.fallbacks; }

    /**
     * Install (or retarget) the chain link @p from -> @p to for the
     * transition kind @p fallthrough. Both blocks must be alive, hold
     * ops, and share one mutation key — the dispatcher's keyed lookup
     * guarantees all three.
     */
    void link(Block *from, Block *to, bool fallthrough);

    /** Longest straight-line run decoded into one block. */
    static constexpr size_t maxOps = 64;

  private:
    /** Code pages are 256 bytes: the store fast path tests one or two
     *  page counters. */
    static constexpr uint32_t pageShift = 8;

    uint32_t pageCount() const { return uint32_t(pageBlocks_.size()); }

    static uint64_t
    mapKey(uint32_t pc, uint64_t key)
    {
        // The mutation key is a 31-bit set; pc is a 32-bit address.
        return key << 32 | pc;
    }

    Block *build(uint32_t pc, uint64_t key, const Memory &mem,
                 uint32_t userBase);
    void indexPages(Block *b);
    void invalidateSlow(uint32_t addr, uint32_t size);
    void severLinks(Block *b);

    std::unordered_map<uint64_t, std::unique_ptr<Block>> blocks_;
    std::vector<uint32_t> pageBlocks_; ///< blocks touching each page
    std::unordered_multimap<uint32_t, Block *> pageIndex_;
    std::vector<std::unique_ptr<Block>> graveyard_;
    DecodeMemo memo_;
    Stats stats_;
};

} // namespace scif::cpu

#endif // SCIFINDER_CPU_BLOCKCACHE_HH

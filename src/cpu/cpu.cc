#include "cpu.hh"

#include <algorithm>
#include <cstring>

#include "support/bits.hh"
#include "support/logging.hh"
#include "trace/capture.hh"
#include "trace/derived.hh"

namespace scif::cpu {

using isa::DecodedInsn;
using isa::Exception;
using isa::Format;
using isa::InsnKind;
using isa::Mnemonic;
using trace::Record;
using trace::VarId;

namespace {
bool chainDefault_ = true;
} // namespace

bool
chainDefaultEnabled()
{
    return chainDefault_;
}

void
setChainDefault(bool enabled)
{
    chainDefault_ = enabled;
}

Cpu::Cpu(CpuConfig config)
    : config_(std::move(config)),
      mem_(config_.memBytes, config_.userBase)
{
    if (config_.predecode)
        cache_ = std::make_unique<BlockCache>(config_.memBytes);
    reset();
    refreshCacheMode();
}

void
Cpu::loadProgram(const assembler::Program &program)
{
    if (cache_ == nullptr || cache_->empty()) {
        // Nothing decoded yet (fresh Cpu, or the fuzzer's
        // one-program-per-Cpu pattern): plain clear-and-write.
        mem_.clear();
        for (const auto &[addr, word] : program.words)
            mem_.debugWriteWord(addr, word);
        if (cache_)
            invalidateCodeCache();
    } else {
        // Diff-aware image load: a cached block is a pure function
        // of the words it decoded, so only addresses whose contents
        // actually change invalidate. Reloading an identical image
        // (trigger replays, repeated runs of one program) keeps the
        // whole cache warm. Drop the cursor first — invalidation may
        // park the block it points into.
        curBlock_ = nullptr;
        curOp_ = 0;

        std::vector<uint32_t> addrs;
        addrs.reserve(program.words.size());
        for (const auto &[addr, word] : program.words) {
            if (mem_.debugReadWord(addr) != word) {
                cache_->invalidateRange(addr, 4);
                mem_.debugWriteWord(addr, word);
            }
            addrs.push_back(addr);
        }
        std::sort(addrs.begin(), addrs.end());
        addrs.erase(std::unique(addrs.begin(), addrs.end()),
                    addrs.end());

        // Zero every word outside the new image: eight bytes per
        // probe, a merge walk down the sorted image addresses instead
        // of per-word searches. The scan only needs to cover the
        // memory dirty watermark — every byte outside it is still
        // zero. A word is zero iff its bytes are, so the raw
        // big-endian view needs no conversion here.
        const uint8_t *raw = mem_.raw();
        uint32_t size = mem_.size();
        uint32_t lo = mem_.dirtyLo() & ~7u;
        uint32_t hi = std::min<uint64_t>(size, (uint64_t(mem_.dirtyHi()) + 7) & ~7ull);
        size_t next = 0;
        for (uint32_t a = lo; a + 8 <= hi; a += 8) {
            uint64_t chunk;
            std::memcpy(&chunk, raw + a, 8);
            if (chunk == 0)
                continue;
            for (uint32_t wa = a; wa < a + 8; wa += 4) {
                uint32_t wordBytes;
                std::memcpy(&wordBytes, raw + wa, 4);
                if (wordBytes == 0)
                    continue;
                while (next < addrs.size() && addrs[next] < wa)
                    ++next;
                if (next < addrs.size() && addrs[next] == wa)
                    continue;
                cache_->invalidateRange(wa, 4);
                mem_.debugWriteWord(wa, 0);
            }
        }
        for (uint32_t wa = hi & ~7u; wa + 4 <= hi; wa += 4) {
            uint32_t wordBytes;
            std::memcpy(&wordBytes, raw + wa, 4);
            if (wordBytes == 0)
                continue;
            while (next < addrs.size() && addrs[next] < wa)
                ++next;
            if (next < addrs.size() && addrs[next] == wa)
                continue;
            cache_->invalidateRange(wa, 4);
            mem_.debugWriteWord(wa, 0);
        }
        cache_->purgeDead();
    }
    reset();
    pc_ = program.entry;
    memDirty_ = false;
}

void
Cpu::setMutations(const MutationSet &mutations)
{
    config_.mutations = mutations;
    refreshCacheMode();
}

void
Cpu::invalidateCodeCache()
{
    curBlock_ = nullptr;
    curOp_ = 0;
    if (cache_)
        cache_->flush();
}

void
Cpu::refreshCacheMode()
{
    mutKey_ = config_.mutations.key();
    // b11 dynamically corrupts the *fetched word*, so predecoded
    // execution is unsound under it: fall back to the interpreted
    // front end whenever it is active.
    cacheOn_ = cache_ != nullptr &&
               !has(Mutation::B11_FetchAfterLsuStall);
    // A mutation-key change must never extend an existing chain:
    // links only connect same-key blocks, and dropping the cursor
    // here leaves no predecessor to link the next lookup from.
    chainOn_ = cacheOn_ && config_.chain;
    curBlock_ = nullptr;
    curOp_ = 0;
    chainBreak_ = false;
}

void
Cpu::reset()
{
    gpr_.fill(0);
    pc_ = isa::exceptionVector(Exception::Reset);
    ppc_ = 0;
    sr_ = isa::sr::resetValue;
    epcr_ = 0;
    eear_ = 0;
    esr_ = 0;
    mac_ = 0;
    picmr_ = 0;
    picsr_ = 0;
    ttmr_ = 0;
    ttcr_ = 0;

    roriTaint_ = false;
    lsuBusy_ = false;
    fetchCorrupted_ = false;
    lastWasMac_ = false;
    lastFetched_ = 0;
    lastLoadAddr_ = 0;
    sameAddrLoads_ = 0;
    lastStoreData_ = 0;
    lastStoreAddr_ = 0;
    storeBufferLive_ = false;
    wedged_ = false;
    retired_ = 0;
    irqCursor_ = 0;
    irqQuiet_ = false;

    // Cached blocks decode from memory, which reset() leaves alone —
    // only the dispatch cursor drops.
    curBlock_ = nullptr;
    curOp_ = 0;
    chainBreak_ = false;
}

void
Cpu::setGpr(unsigned n, uint32_t v)
{
    SCIF_ASSERT(n < isa::numGprs);
    if (n != 0)
        gpr_[n] = v;
}

uint32_t
Cpu::readSpr(uint16_t addr) const
{
    switch (addr) {
      case isa::spr::VR: return 0x12000001;  // OR1200-style version
      case isa::spr::UPR: return 0x00000001; // UP present
      case isa::spr::NPC: return pc_;
      case isa::spr::SR: return sr_;
      case isa::spr::PPC: return ppc_;
      case isa::spr::EPCR0: return epcr_;
      case isa::spr::EEAR0: return eear_;
      case isa::spr::ESR0: return esr_;
      case isa::spr::MACLO: return uint32_t(mac_);
      case isa::spr::MACHI: return uint32_t(mac_ >> 32);
      case isa::spr::PICMR: return picmr_;
      case isa::spr::PICSR: return picsr_;
      case isa::spr::TTMR: return ttmr_;
      case isa::spr::TTCR: return ttcr_;
      default: return 0;
    }
}

void
Cpu::writeSpr(uint16_t addr, uint32_t value)
{
    // An SPR write can arm the timer, raise or unmask a PIC line, or
    // set SR.IEE/TEE — any of which ends the interrupt-quiescent
    // regime the run loop relies on to skip per-insn checks.
    irqQuiet_ = false;
    switch (addr) {
      case isa::spr::SR:
        // FO always reads one.
        sr_ = value | (1u << isa::sr::FO);
        break;
      case isa::spr::EPCR0:
        epcr_ = value;
        break;
      case isa::spr::EEAR0:
        eear_ = value;
        break;
      case isa::spr::ESR0:
        esr_ = value;
        break;
      case isa::spr::MACLO:
        mac_ = (mac_ & 0xffffffff00000000ull) | value;
        break;
      case isa::spr::MACHI:
        mac_ = (mac_ & 0xffffffffull) | (uint64_t(value) << 32);
        break;
      case isa::spr::PICMR:
        picmr_ = value;
        break;
      case isa::spr::PICSR:
        picsr_ = value;
        break;
      case isa::spr::TTMR:
        ttmr_ = value;
        break;
      case isa::spr::TTCR:
        ttcr_ = value;
        break;
      default:
        // VR/UPR/NPC/PPC and unknown SPRs ignore writes.
        break;
    }
}

void
Cpu::writeGpr(unsigned n, uint32_t value, Record &rec)
{
    SCIF_ASSERT(n < isa::numGprs);
    rec.post[VarId::OPDEST] = value;
    rec.post[VarId::REGD] = n;
    rec.pre[VarId::REGD] = n;
    if (n == 0 && !has(Mutation::B10_Gpr0Writable))
        return; // GPR0 is hardwired to zero
    gpr_[n] = value;
}

void
Cpu::snapshotState(std::array<uint32_t, trace::numVars> &side)
{
    for (unsigned i = 0; i < isa::numGprs; ++i)
        side[trace::gprVar(i)] = gpr_[i];
    side[VarId::PC] = pc_;
    side[VarId::NPC] = pc_;
    side[VarId::NNPC] = pc_ + 4;
    side[VarId::PPC] = ppc_;
    side[VarId::WBPC] = ppc_;
    side[VarId::IDPC] = pc_ + 4;
    side[VarId::SR] = sr_;
    side[VarId::ESR0] = esr_;
    side[VarId::EPCR0] = epcr_;
    side[VarId::EEAR0] = eear_;
    side[VarId::MACLO] = uint32_t(mac_);
    side[VarId::MACHI] = uint32_t(mac_ >> 32);
}

uint32_t
Cpu::epcrFor(Exception e, uint32_t fault_pc, uint32_t next_pc,
             bool in_delay_slot, uint32_t branch_pc,
             uint32_t branch_target)
{
    switch (e) {
      case Exception::Syscall:
        // Resume after the syscall: past the delay slot this is the
        // branch target; otherwise the next instruction.
        return in_delay_slot ? branch_target : next_pc;
      case Exception::Tick:
      case Exception::External:
        // The interrupted instruction has not executed yet.
        return fault_pc;
      default:
        // Faults re-execute: the faulting instruction, or the branch
        // owning the delay slot.
        return in_delay_slot ? branch_pc : fault_pc;
    }
}

void
Cpu::enterException(Exception e, uint32_t fault_pc, uint32_t next_pc,
                    uint32_t eear, bool in_delay_slot,
                    uint32_t branch_pc, uint32_t branch_target)
{
    esr_ = sr_;

    uint32_t epcr = epcrFor(e, fault_pc, next_pc, in_delay_slot,
                            branch_pc, branch_target);
    // --- erratum hook points ---
    if (has(Mutation::B1_SysDelaySlotEpcr) && e == Exception::Syscall &&
        in_delay_slot) {
        epcr = branch_pc; // l.rfe will re-run the branch forever
    }
    if (has(Mutation::B5_RangeEpcrWrong) && e == Exception::Range)
        epcr = fault_pc + 4;
    if (has(Mutation::B9_IllegalEpcrWrong) && e == Exception::Illegal)
        epcr = fault_pc + 4;
    if (has(Mutation::B15_TrapEpcrWrong) && e == Exception::Trap)
        epcr = fault_pc + 4;
    if (has(Mutation::H10_SysEpcrSelf) && e == Exception::Syscall &&
        !in_delay_slot) {
        epcr = fault_pc;
    }
    if (has(Mutation::H1_IntrEpcrOff) && e == Exception::External)
        epcr += 4;
    epcr_ = epcr;

    switch (e) {
      case Exception::BusError:
      case Exception::DataPageFault:
      case Exception::InsnPageFault:
      case Exception::Alignment:
        eear_ = eear;
        break;
      default:
        break;
    }

    uint32_t sr = sr_;
    sr = setBit(sr, isa::sr::SM, true);
    sr = setBit(sr, isa::sr::TEE, false);
    sr = setBit(sr, isa::sr::IEE, false);
    bool dsx = in_delay_slot && !has(Mutation::B4_DsxNotImplemented);
    sr = setBit(sr, isa::sr::DSX, dsx);
    sr_ = sr;

    uint32_t vector = isa::exceptionVector(e);
    if (roriTaint_ && has(Mutation::B8_RoriVector))
        vector ^= 0x400; // rotate residue corrupts the vector mux
    pc_ = vector;

    // Exception entry severs the dispatch chain: the next boundary
    // must neither follow a link into the handler nor install a
    // faulting-edge link a clean re-run would never take.
    chainBreak_ = true;
}

MemResult
Cpu::fetch(uint32_t addr, Record &rec)
{
    MemResult res = mem_.load(addr, 4, supervisor(), true);
    if (!res.ok())
        return res;

    rec.pre[VarId::IMEM] = res.value;
    rec.post[VarId::IMEM] = res.value;

    if (lsuBusy_ && has(Mutation::B11_FetchAfterLsuStall)) {
        // The prefetch buffer replays the stale word instead of the
        // freshly fetched one.
        res.value = lastFetched_;
        lsuBusy_ = false;
        fetchCorrupted_ = true;
    }
    lastFetched_ = res.value;
    return res;
}

void
Cpu::tickTimer(uint64_t retired)
{
    uint32_t mode = bits(ttmr_, 31, 30);
    if (mode == 0)
        return;
    ttcr_ += uint32_t(retired);
    uint32_t period = bits(ttmr_, 27, 0);
    if ((ttcr_ & 0x0fffffffu) >= period && period != 0) {
        ttmr_ = setBit(ttmr_, 28, true); // IP
        if (mode == 1)
            ttcr_ = 0; // restart
        else if (mode == 2)
            ttmr_ = insertBits(ttmr_, 31, 30, 0); // stop
    }
}

bool
Cpu::maybeInterrupt(trace::TraceSink *sink, uint64_t &emitted)
{
    // Deliver scheduled external interrupt lines.
    while (irqCursor_ < config_.irqSchedule.size() &&
           config_.irqSchedule[irqCursor_].first <= retired_) {
        picsr_ |= 1u << config_.irqSchedule[irqCursor_].second;
        ++irqCursor_;
    }

    Exception e = Exception::None;
    if (bit(ttmr_, 28) && bit(ttmr_, 29) && bit(sr_, isa::sr::TEE))
        e = Exception::Tick;
    else if ((picsr_ & picmr_) != 0 && bit(sr_, isa::sr::IEE))
        e = Exception::External;
    if (e == Exception::None)
        return false;

    Record rec;
    rec.index = retired_;
    rec.point = trace::Point::interrupt(e);
    snapshotState(rec.pre);

    uint32_t interrupted_pc = pc_;
    enterException(e, interrupted_pc, interrupted_pc, 0, false, 0, 0);

    snapshotState(rec.post);
    rec.pre[VarId::PC] = interrupted_pc;
    rec.post[VarId::PC] = interrupted_pc;
    rec.post[VarId::NPC] = pc_;
    rec.post[VarId::NNPC] = pc_ + 4;
    trace::computeDerived(rec);
    if (sink) {
        sink->record(rec);
        ++emitted;
    }
    return true;
}

Cpu::ExecResult
Cpu::execute(const DecodedInsn &insn, const isa::InsnInfo &ii,
             Record &rec)
{
    ExecResult res;
    Mnemonic m = insn.mnemonic;

    uint32_t a = gpr_[insn.ra];
    uint32_t b = gpr_[insn.rb];
    uint32_t imm = uint32_t(insn.imm);

    // Privileged instructions fault in user mode.
    bool privileged = m == Mnemonic::L_MTSPR || m == Mnemonic::L_MFSPR ||
                      m == Mnemonic::L_RFE;
    if (privileged && !supervisor()) {
        res.exception = Exception::Illegal;
        return res;
    }

    auto setFlag = [&](bool f) {
        sr_ = setBit(sr_, isa::sr::F, f);
    };
    auto setCarry = [&](bool c) {
        sr_ = setBit(sr_, isa::sr::CY, c);
    };
    // Arithmetic overflow; raises a range exception when enabled.
    auto setOverflow = [&](bool v) {
        sr_ = setBit(sr_, isa::sr::OV, v);
        if (v && bit(sr_, isa::sr::OVE))
            res.exception = Exception::Range;
    };

    auto doLoad = [&](unsigned size, bool sign_extend) {
        uint32_t addr = a + imm;
        rec.post[VarId::MEMADDR] = addr;
        rec.pre[VarId::MEMADDR] = addr;

        if (has(Mutation::H12_AlignSuppressed) && size == 2 &&
            addr % 2 != 0) {
            addr &= ~1u; // silently truncate instead of faulting
            rec.post[VarId::MEMADDR] = addr;
            rec.pre[VarId::MEMADDR] = addr;
        }

        MemResult mr = mem_.load(addr, size, supervisor());
        if (!mr.ok()) {
            res.exception = mr.fault;
            res.eear = addr;
            return;
        }
        uint32_t bus = mr.value;

        if (has(Mutation::H8_LoadRotated) && size == 4 && (addr & 0x40))
            bus = rotateRight32(bus, 8);
        if (has(Mutation::B17_StoreForwardClobber) && storeBufferLive_ &&
            addr != lastStoreAddr_ &&
            (addr & 0xfffu) == (lastStoreAddr_ & 0xfffu)) {
            // Bogus store-buffer forwarding hit on an index alias.
            bus = zeroExtend(lastStoreData_, 8 * size);
            storeBufferLive_ = false;
        }

        uint32_t value = bus;
        bool extend = sign_extend;
        if (has(Mutation::B16_LoadExtendWrong) && size < 4)
            extend = false; // sign extension dropped in the LSU
        if (extend && size < 4)
            value = signExtend(bus, 8 * size);

        rec.post[VarId::MEMBUS] = bus;
        rec.post[VarId::DMEM] = mem_.load(addr, size, true).value;
        writeGpr(insn.rd, value, rec);

        // Microarchitectural bookkeeping for b11 / h13.
        if (addr == lastLoadAddr_)
            ++sameAddrLoads_;
        else
            sameAddrLoads_ = 1;
        lastLoadAddr_ = addr;
        if (has(Mutation::H13_PrefetchStall) && sameAddrLoads_ >= 3)
            wedged_ = true;
        // A replayed (corrupted) memory op does not re-arm the stall
        // window, so b11 corrupts a single fetch per real stall.
        if (!fetchCorrupted_)
            lsuBusy_ = (addr & 0x80) != 0;
    };

    auto doStore = [&](unsigned size) {
        uint32_t addr = a + imm;
        if (has(Mutation::H3_StoreAddrBit) && size == 4 && insn.imm < 0)
            addr &= ~4u; // address bit 2 dropped
        rec.post[VarId::MEMADDR] = addr;
        rec.pre[VarId::MEMADDR] = addr;

        uint32_t data = zeroExtend(b, 8 * size);
        if (has(Mutation::B14_ByteStoreCorrupt)) {
            if (size == 1)
                data ^= 0x80;
            else if (size == 2)
                data ^= 0x8000;
        }

        MemResult mr = mem_.store(addr, size, data, supervisor());
        if (!mr.ok()) {
            res.exception = mr.fault;
            res.eear = addr;
            return;
        }
        memDirty_ = true;
        if (cache_)
            cache_->invalidateRange(addr, size); // self-modifying code
        rec.post[VarId::MEMBUS] = data;
        rec.post[VarId::DMEM] = mem_.load(addr, size, true).value;

        lastStoreData_ = data;
        lastStoreAddr_ = addr;
        storeBufferLive_ = true;
        if (!fetchCorrupted_)
            lsuBusy_ = (addr & 0x80) != 0;
    };

    auto doCompare = [&]() {
        uint32_t rhs = ii.readsRb ? b : imm;
        uint32_t flag = trace::compareOracle(m, a, rhs);

        bool msb_differ = ((a ^ rhs) >> 31) != 0;
        bool is_unsigned =
            m == Mnemonic::L_SFGTU || m == Mnemonic::L_SFGTUI ||
            m == Mnemonic::L_SFGEU || m == Mnemonic::L_SFGEUI ||
            m == Mnemonic::L_SFLTU || m == Mnemonic::L_SFLTUI ||
            m == Mnemonic::L_SFLEU || m == Mnemonic::L_SFLEUI;
        if (has(Mutation::B6_UnsignedCmpMsb) && is_unsigned &&
            msb_differ) {
            // Comparator falls back to the signed path.
            int32_t sa = int32_t(a), sb = int32_t(rhs);
            switch (m) {
              case Mnemonic::L_SFGTU: case Mnemonic::L_SFGTUI:
                flag = sa > sb; break;
              case Mnemonic::L_SFGEU: case Mnemonic::L_SFGEUI:
                flag = sa >= sb; break;
              case Mnemonic::L_SFLTU: case Mnemonic::L_SFLTUI:
                flag = sa < sb; break;
              case Mnemonic::L_SFLEU: case Mnemonic::L_SFLEUI:
                flag = sa <= sb; break;
              default: break;
            }
        }
        if (has(Mutation::B7_SfltuWrong) &&
            (m == Mnemonic::L_SFLTU || m == Mnemonic::L_SFLTUI)) {
            flag = int32_t(a) < int32_t(rhs);
        }
        if (has(Mutation::H9_SfgesEqWrong) &&
            (m == Mnemonic::L_SFGES || m == Mnemonic::L_SFGESI) &&
            a == rhs) {
            flag = 0;
        }
        setFlag(flag != 0);

        if (has(Mutation::H11_CompareClobbersReg)) {
            // Stuck write enable: the condition-code field selects a
            // GPR that receives the flag, bypassing the r0 guard.
            unsigned cond = bits(insn.raw, 25, 21) & 0xf;
            gpr_[cond] = flag;
            rec.post[VarId::OPDEST] = flag;
        }
    };

    switch (m) {
      case Mnemonic::L_NOP:
        if (imm == haltNopCode)
            res.halted = true;
        break;

      case Mnemonic::L_MOVHI:
        writeGpr(insn.rd, imm << 16, rec);
        if (has(Mutation::H2_MovhiClearsFlag))
            setFlag(false);
        break;

      case Mnemonic::L_MACRC:
        writeGpr(insn.rd, uint32_t(mac_), rec);
        mac_ = 0;
        break;

      case Mnemonic::L_SYS:
        res.exception = Exception::Syscall;
        break;

      case Mnemonic::L_TRAP:
        res.exception = Exception::Trap;
        break;

      case Mnemonic::L_RFE: {
        uint32_t restored = esr_;
        restored |= 1u << isa::sr::FO;
        if (has(Mutation::H6_RfeDropsFo))
            restored &= ~(1u << isa::sr::FO);
        if (has(Mutation::H7_RfeKeepsSm))
            restored |= 1u << isa::sr::SM;
        sr_ = restored;
        irqQuiet_ = false; // ESR may restore IEE/TEE
        res.isRfe = true;
        res.rfeTarget = epcr_;
        break;
      }

      case Mnemonic::L_J:
      case Mnemonic::L_JAL: {
        res.branchTaken = true;
        res.branchTarget =
            rec.post[VarId::PC] + (uint32_t(insn.imm) << 2);
        if (m == Mnemonic::L_JAL) {
            uint32_t lr = rec.post[VarId::PC] + 8;
            if (has(Mutation::B13_JalLargeDispLr) &&
                (insn.imm >= 0x8000 || insn.imm < -0x8000)) {
                lr -= 0x10000; // truncated link adder
            }
            writeGpr(isa::linkReg, lr, rec);
        }
        break;
      }

      case Mnemonic::L_JR:
      case Mnemonic::L_JALR: {
        res.branchTaken = true;
        res.branchTarget = b;
        if (m == Mnemonic::L_JALR) {
            uint32_t lr = rec.post[VarId::PC] + 8;
            if (has(Mutation::H4_JalrLrWrong))
                lr = rec.post[VarId::PC];
            writeGpr(isa::linkReg, lr, rec);
        }
        break;
      }

      case Mnemonic::L_BF:
      case Mnemonic::L_BNF: {
        bool flag = bit(sr_, isa::sr::F);
        bool taken = (m == Mnemonic::L_BF) ? flag : !flag;
        res.branchTaken = taken;
        if (taken) {
            res.branchTarget =
                rec.post[VarId::PC] + (uint32_t(insn.imm) << 2);
        }
        break;
      }

      case Mnemonic::L_MACI: {
        mac_ += uint64_t(int64_t(int32_t(a)) * int64_t(insn.imm));
        break;
      }

      case Mnemonic::L_MAC:
        mac_ += uint64_t(int64_t(int32_t(a)) * int64_t(int32_t(b)));
        break;

      case Mnemonic::L_MSB:
        mac_ -= uint64_t(int64_t(int32_t(a)) * int64_t(int32_t(b)));
        break;

      case Mnemonic::L_LWZ: doLoad(4, false); break;
      case Mnemonic::L_LWS: doLoad(4, true); break;
      case Mnemonic::L_LBZ: doLoad(1, false); break;
      case Mnemonic::L_LBS: doLoad(1, true); break;
      case Mnemonic::L_LHZ: doLoad(2, false); break;
      case Mnemonic::L_LHS: doLoad(2, true); break;
      case Mnemonic::L_SW: doStore(4); break;
      case Mnemonic::L_SB: doStore(1); break;
      case Mnemonic::L_SH: doStore(2); break;

      case Mnemonic::L_ADDI:
      case Mnemonic::L_ADD: {
        uint32_t rhs = (m == Mnemonic::L_ADD) ? b : imm;
        uint32_t sum = a + rhs;
        setCarry(addCarries(a, rhs));
        setOverflow(addOverflows(a, rhs));
        writeGpr(insn.rd, sum, rec);
        break;
      }

      case Mnemonic::L_ADDIC:
      case Mnemonic::L_ADDC: {
        uint32_t rhs = (m == Mnemonic::L_ADDC) ? b : imm;
        bool cin = bit(sr_, isa::sr::CY);
        uint32_t sum = a + rhs + (cin ? 1 : 0);
        setCarry(addCarries(a, rhs, cin));
        setOverflow(addOverflows(a, rhs, cin));
        writeGpr(insn.rd, sum, rec);
        break;
      }

      case Mnemonic::L_SUB: {
        uint32_t diff = a - b;
        setCarry(a < b);
        setOverflow(subOverflows(a, b));
        writeGpr(insn.rd, diff, rec);
        break;
      }

      case Mnemonic::L_AND:
        writeGpr(insn.rd, a & b, rec);
        break;
      case Mnemonic::L_ANDI:
        writeGpr(insn.rd, a & imm, rec);
        break;
      case Mnemonic::L_OR:
        writeGpr(insn.rd, a | b, rec);
        break;
      case Mnemonic::L_ORI:
        writeGpr(insn.rd, a | imm, rec);
        break;
      case Mnemonic::L_XOR:
        writeGpr(insn.rd, a ^ b, rec);
        break;
      case Mnemonic::L_XORI:
        writeGpr(insn.rd, a ^ imm, rec);
        break;

      case Mnemonic::L_MUL:
      case Mnemonic::L_MULI: {
        uint32_t rhs = (m == Mnemonic::L_MUL) ? b : imm;
        int64_t prod = int64_t(int32_t(a)) * int64_t(int32_t(rhs));
        setOverflow(prod != int64_t(int32_t(uint32_t(prod))));
        writeGpr(insn.rd, uint32_t(prod), rec);
        break;
      }

      case Mnemonic::L_MULU: {
        uint64_t prod = uint64_t(a) * uint64_t(b);
        setCarry(prod > 0xffffffffull);
        writeGpr(insn.rd, uint32_t(prod), rec);
        break;
      }

      case Mnemonic::L_DIV:
      case Mnemonic::L_DIVU: {
        if (b == 0) {
            setOverflow(true);
            break;
        }
        uint32_t q;
        if (m == Mnemonic::L_DIV) {
            // INT_MIN / -1 overflows; OR1200 returns the dividend.
            if (a == 0x80000000u && b == 0xffffffffu) {
                setOverflow(true);
                q = a;
            } else {
                q = uint32_t(int32_t(a) / int32_t(b));
            }
        } else {
            q = a / b;
        }
        rec.post[VarId::DIV] = q;
        writeGpr(insn.rd, q, rec);
        break;
      }

      case Mnemonic::L_SLL:
      case Mnemonic::L_SLLI: {
        uint32_t amt = (m == Mnemonic::L_SLL ? b : imm) & 31;
        writeGpr(insn.rd, a << amt, rec);
        break;
      }
      case Mnemonic::L_SRL:
      case Mnemonic::L_SRLI: {
        uint32_t amt = (m == Mnemonic::L_SRL ? b : imm) & 31;
        writeGpr(insn.rd, a >> amt, rec);
        break;
      }
      case Mnemonic::L_SRA:
      case Mnemonic::L_SRAI: {
        uint32_t amt = (m == Mnemonic::L_SRA ? b : imm) & 31;
        writeGpr(insn.rd, uint32_t(int32_t(a) >> amt), rec);
        break;
      }
      case Mnemonic::L_ROR:
      case Mnemonic::L_RORI: {
        uint32_t amt = (m == Mnemonic::L_ROR ? b : imm) & 31;
        uint32_t result = rotateRight32(a, amt);
        if (has(Mutation::B8_RoriVector) && m == Mnemonic::L_RORI) {
            // The logic error rotates the wrong direction...
            result = rotateRight32(a, (32 - amt) & 31);
        }
        rec.post[VarId::ROR] = result;
        writeGpr(insn.rd, result, rec);
        break;
      }

      case Mnemonic::L_EXTHS:
        writeGpr(insn.rd, signExtend(a, 16), rec);
        break;
      case Mnemonic::L_EXTBS:
        writeGpr(insn.rd, signExtend(a, 8), rec);
        break;
      case Mnemonic::L_EXTHZ:
        writeGpr(insn.rd, zeroExtend(a, 16), rec);
        break;
      case Mnemonic::L_EXTBZ:
        writeGpr(insn.rd, zeroExtend(a, 8), rec);
        break;
      case Mnemonic::L_EXTWS:
      case Mnemonic::L_EXTWZ: {
        uint32_t value = a; // word extension is the identity on or32
        if (has(Mutation::B3_ExtwWrong))
            value = a & 0xffffu; // upper half dropped
        writeGpr(insn.rd, value, rec);
        break;
      }

      case Mnemonic::L_CMOV:
        writeGpr(insn.rd, bit(sr_, isa::sr::F) ? a : b, rec);
        break;

      case Mnemonic::L_FF1: {
        uint32_t pos = 0;
        for (unsigned i = 0; i < 32; ++i) {
            if (bit(a, i)) {
                pos = i + 1;
                break;
            }
        }
        writeGpr(insn.rd, pos, rec);
        break;
      }

      case Mnemonic::L_MFSPR: {
        uint16_t addr = uint16_t(a | imm);
        uint32_t value = readSpr(addr);
        if (has(Mutation::H5_MfsprEsrAlias) && addr == isa::spr::ESR0)
            value = sr_;
        rec.post[VarId::SPRA] = addr;
        rec.pre[VarId::SPRA] = addr;
        rec.post[VarId::SPRV] = readSpr(addr);
        writeGpr(insn.rd, value, rec);
        break;
      }

      case Mnemonic::L_MTSPR: {
        uint16_t addr = uint16_t(a | imm);
        bool dropped =
            has(Mutation::B12_MtsprDropped) &&
            (addr == isa::spr::EPCR0 || addr == isa::spr::EEAR0);
        if (!dropped)
            writeSpr(addr, b);
        rec.post[VarId::SPRA] = addr;
        rec.pre[VarId::SPRA] = addr;
        rec.post[VarId::SPRV] = readSpr(addr);
        break;
      }

      default:
        // Compare family.
        if (ii.kind == InsnKind::Compare) {
            doCompare();
        } else {
            panic("unhandled mnemonic %s", ii.name);
        }
        break;
    }

    return res;
}

const CachedOp *
Cpu::nextCachedOp()
{
    // Fast path: the cursor is mid-block and control flow stayed
    // sequential (no exception, interrupt, or invalidation).
    if (curBlock_ == nullptr || !curBlock_->alive ||
        curOp_ >= curBlock_->ops.size() ||
        curBlock_->ops[curOp_].pc != pc_) {
        // A live block the cursor ran off the end of is a resolved
        // block transition: the superblock dispatch either follows
        // an installed successor link (no cursor drop, no lookup
        // round trip) or remembers the block so the slow path below
        // can install one. An exception entry since the last
        // boundary (chainBreak_) disqualifies the transition — the
        // handler edge must stay unchained.
        Block *prev = nullptr;
        bool followed = false;
        if (chainOn_ && !chainBreak_ && curBlock_ != nullptr &&
            curBlock_->alive && curOp_ >= curBlock_->ops.size()) {
            Block *next = curBlock_->succFall;
            if (next == nullptr || next->pc != pc_)
                next = curBlock_->succTaken;
            if (next != nullptr && next->pc == pc_ && next->alive) {
                // Threaded dispatch: linked blocks always hold ops
                // (negative entries are never linked) and share the
                // active mutation key.
                cache_->countChainHit();
                curBlock_ = next;
                curOp_ = 0;
                followed = true;
            } else {
                prev = curBlock_;
            }
        }
        chainBreak_ = false;
        if (!followed) {
            // The cursor was the only outstanding reference, so
            // parked invalidated blocks can be freed now. (A live
            // chain predecessor is never parked — only invalidated
            // blocks enter the graveyard.)
            curBlock_ = nullptr;
            cache_->purgeDead();
            curBlock_ = cache_->lookupOrBuild(pc_, mutKey_, mem_,
                                              config_.userBase);
            curOp_ = 0;
            if (curBlock_->ops.empty() ||
                curBlock_->ops[0].pc != pc_) {
                cache_->countFallback();
                return nullptr; // negative entry: run interpreted
            }
            if (prev != nullptr && prev->alive) {
                cache_->link(prev, curBlock_,
                             pc_ == prev->pc + prev->bytes);
            }
        }
    }
    const CachedOp &op = curBlock_->ops[curOp_++];
    if (op.needsSuper && !supervisor()) {
        // The fetch faults at this privilege; the interpreted path
        // owns fault entry. The cursor self-heals on the pc change.
        cache_->countFallback();
        return nullptr;
    }
    cache_->countHit();
    return &op;
}

template <typename Sink>
bool
Cpu::dispatchBoundary(Sink *sink, uint64_t &retired, uint64_t &emitted)
{
    const CachedOp *op = cacheOn_ ? nextCachedOp() : nullptr;
    if (sink) {
        Record rec;
        return stepBody<true, Sink>(rec, sink, retired, emitted, op);
    }
    return stepBody<false, Sink>(scratch_, nullptr, retired, emitted,
                                 op);
}

template <bool Traced, typename Sink>
bool
Cpu::stepBody(Record &rec, Sink *sink, uint64_t &retired,
              uint64_t &emitted, const CachedOp *op)
{
    uint32_t insn_pc = pc_;
    fetchCorrupted_ = false;
    if constexpr (Traced) {
        rec.index = retired_;
        snapshotState(rec.pre);
        // PC names the executed instruction on both record sides; the
        // post side of NPC/NNPC is overwritten after execution.
        rec.pre[VarId::PC] = insn_pc;
        rec.pre[VarId::NPC] = insn_pc;
        rec.pre[VarId::NNPC] = insn_pc + 4;
    }

    auto finishRecord = [&](bool exception_entered, uint32_t next_pc) {
        if (!exception_entered)
            pc_ = next_pc;
        ppc_ = insn_pc;
        if constexpr (Traced) {
            snapshotState(rec.post);
            rec.post[VarId::PC] = insn_pc;
            rec.post[VarId::NPC] = pc_;
            rec.post[VarId::NNPC] = pc_ + 4;
            rec.post[VarId::PPC] = insn_pc;
            rec.post[VarId::WBPC] = insn_pc;
            rec.post[VarId::IDPC] = pc_ + 8;
            trace::computeDerived(rec);
            if (sink) {
                sink->record(rec);
                ++emitted;
            }
        }
    };

    // Fetch — skipped for a predecoded boundary: the dispatcher
    // guarantees the cached words match memory (invalidation), the
    // fetch cannot fault (needsSuper), and no fetch-corrupting
    // mutation is active (cacheOn_).
    uint32_t word;
    if (op != nullptr) {
        word = op->word;
        if constexpr (Traced) {
            rec.pre[VarId::IMEM] = word;
            rec.post[VarId::IMEM] = word;
        }
        lastFetched_ = word;
    } else {
        MemResult f = fetch(insn_pc, rec);
        if (!f.ok()) {
            rec.point = trace::Point::interrupt(f.fault);
            enterException(f.fault, insn_pc, insn_pc + 4, insn_pc,
                           false, 0, 0);
            finishRecord(true, 0);
            ++retired;
            ++retired_;
            return true;
        }
        word = f.value;
    }
    if constexpr (Traced) {
        rec.pre[VarId::INSN] = word;
        rec.post[VarId::INSN] = word;
    }

    DecodedInsn decodedWord;
    if (op == nullptr) {
        auto decoded = isa::decode(word);
        if (!decoded) {
            rec.point = trace::Point::interrupt(Exception::Illegal);
            enterException(Exception::Illegal, insn_pc, insn_pc + 4, 0,
                           false, 0, 0);
            finishRecord(true, 0);
            ++retired;
            ++retired_;
            return true;
        }
        decodedWord = *decoded;
    }
    const DecodedInsn &insn = op != nullptr ? op->insn : decodedWord;
    const isa::InsnInfo &ii =
        op != nullptr ? *op->info : insn.info();
    Mnemonic m = insn.mnemonic;

    // b2 / h13 wedge checks happen at issue time.
    if (m == Mnemonic::L_MACRC && lastWasMac_ &&
        has(Mutation::B2_MacrcAfterMacStall)) {
        wedged_ = true;
        if (config_.uarchTrace && sink) {
            // The microarchitectural view sees the stalled (never
            // retiring) instruction with its stall counter raised.
            rec.point = trace::Point::insn(m);
            snapshotState(rec.post);
            rec.post[VarId::PC] = insn_pc;
            rec.post[VarId::USTALL] = rec.pre[VarId::USTALL] + 1;
            trace::computeDerived(rec);
            rec.post[VarId::USTALL] = rec.pre[VarId::USTALL] + 1;
            sink->record(rec);
            ++emitted;
        }
        return false;
    }

    if constexpr (Traced) {
        rec.point = trace::Point::insn(m);
        rec.pre[VarId::IMM] = uint32_t(insn.imm);
        rec.post[VarId::IMM] = uint32_t(insn.imm);
        rec.pre[VarId::REGA] = insn.ra;
        rec.post[VarId::REGA] = insn.ra;
        rec.pre[VarId::REGB] = insn.rb;
        rec.post[VarId::REGB] = insn.rb;
        rec.pre[VarId::REGD] = ii.writesRd ? insn.rd : 0;
        rec.post[VarId::REGD] = rec.pre[VarId::REGD];
        rec.pre[VarId::OPA] = gpr_[insn.ra];
        rec.post[VarId::OPA] = gpr_[insn.ra];
        rec.pre[VarId::OPB] = gpr_[insn.rb];
        rec.post[VarId::OPB] = gpr_[insn.rb];
    }
    // execute() reads the post-side PC (branch targets, link
    // register), so this write stays on the untraced path too.
    rec.post[VarId::PC] = insn_pc;

    bool halted = false;

    if (ii.hasDelaySlot) {
        if constexpr (Traced)
            rec.fused = true;
        ExecResult br = execute(insn, ii, rec);
        SCIF_ASSERT(br.exception == Exception::None);

        // Delay slot instruction. A cached boundary carries its
        // pre-decoded delay slot; pairs whose second word faults or
        // fails to decode are never cached, so only the interpreted
        // path needs the fault handling.
        uint32_t ds_pc = insn_pc + 4;
        DecodedInsn dsLocal;
        const DecodedInsn *dsp;
        const isa::InsnInfo *dsii;
        if (op != nullptr) {
            dsp = &op->ds;
            dsii = op->dsInfo;
            lastFetched_ = op->dsWord;
            // The branch word stays in INSN/IMEM: the record
            // describes the fused pair under the branch's point.
            if constexpr (Traced) {
                rec.pre[VarId::IMEM] = rec.post[VarId::IMEM] = word;
                rec.pre[VarId::INSN] = rec.post[VarId::INSN] = word;
            }
        } else {
            MemResult df = fetch(ds_pc, rec);
            // Keep the *branch* word in INSN/IMEM: the record
            // describes the fused pair under the branch's point.
            rec.pre[VarId::IMEM] = rec.post[VarId::IMEM] =
                mem_.debugReadWord(insn_pc);
            rec.pre[VarId::INSN] = rec.post[VarId::INSN] = word;

            if (!df.ok()) {
                rec.point = trace::Point::insn(m, df.fault);
                enterException(df.fault, ds_pc, ds_pc + 4, ds_pc, true,
                               insn_pc, br.branchTarget);
                finishRecord(true, 0);
                retired += 1;
                ++retired_;
                lastWasMac_ = false;
                roriTaint_ = false;
                return true;
            }

            // Decode is pure, so the delay-slot word goes through the
            // memo instead of a second full isa::decode per pair.
            const DecodedInsn *ds_decoded = dsMemo_.lookup(df.value);
            if (ds_decoded == nullptr ||
                ds_decoded->info().hasDelaySlot) {
                // Undecodable word or control flow in the delay slot.
                rec.point = trace::Point::insn(m, Exception::Illegal);
                enterException(Exception::Illegal, ds_pc, ds_pc + 4, 0,
                               true, insn_pc, br.branchTarget);
                finishRecord(true, 0);
                retired += 1;
                ++retired_;
                lastWasMac_ = false;
                roriTaint_ = false;
                return true;
            }
            dsLocal = *ds_decoded;
            dsp = &dsLocal;
            dsii = &dsLocal.info();
        }
        const DecodedInsn &dsInsn = *dsp;

        ExecResult ds = execute(dsInsn, *dsii, rec);
        if (wedged_)
            return false;

        // The rotate residue / mac history become visible only after
        // this pair completes (enterException below must still see
        // the previous instruction's residue).
        bool new_taint = dsInsn.mnemonic == Mnemonic::L_RORI;
        bool new_mac = dsInsn.mnemonic == Mnemonic::L_MAC;

        if (ds.exception != Exception::None) {
            rec.point = trace::Point::insn(m, ds.exception);
            enterException(ds.exception, ds_pc, ds_pc + 4, ds.eear,
                           true, insn_pc, br.branchTarget);
            finishRecord(true, 0);
        } else {
            halted = ds.halted;
            uint32_t next =
                br.branchTaken ? br.branchTarget : insn_pc + 8;
            finishRecord(false, next);
        }
        roriTaint_ = new_taint;
        lastWasMac_ = new_mac;
        retired += 2;
        retired_ += 2;
    } else {
        ExecResult r = execute(insn, ii, rec);
        if (wedged_)
            return false;

        if (r.exception != Exception::None) {
            rec.point = trace::Point::insn(m, r.exception);
            enterException(r.exception, insn_pc, insn_pc + 4, r.eear,
                           false, 0, 0);
            finishRecord(true, 0);
        } else {
            halted = r.halted;
            uint32_t next = r.isRfe ? r.rfeTarget : insn_pc + 4;
            finishRecord(false, next);
        }
        roriTaint_ = m == Mnemonic::L_RORI;
        lastWasMac_ = m == Mnemonic::L_MAC;
        retired += 1;
        ++retired_;
    }

    tickTimer(1);
    return !halted;
}

RunResult
Cpu::run(trace::TraceSink *sink)
{
    // The capture-time columnar sink is the pipeline's default trace
    // destination; selecting its concrete type here once lets every
    // per-record emission inside the dispatch loop bind directly
    // (ColumnarCapture is final) instead of through the vtable.
    if (auto *columns = dynamic_cast<trace::ColumnarCapture *>(sink))
        return runLoop(columns);
    return runLoop(sink);
}

template <typename Sink>
RunResult
Cpu::runLoop(Sink *sink)
{
    RunResult result;
    uint64_t emitted = 0;

    // Wedging inside the loop is caught right after the dispatch that
    // caused it, so the per-iteration check reduces to this entry one.
    if (wedged_) {
        result.reason = HaltReason::Wedged;
        result.instructions = retired_;
        return result;
    }

    while (retired_ < config_.maxInsns) {
        if (!irqQuiet_) {
            if (maybeInterrupt(sink, emitted))
                continue;
            // Nothing is deliverable, the IRQ schedule is drained,
            // and the tick timer is stopped. Exception entry only
            // ever clears IEE/TEE, so from here only an SPR write
            // (l.mtspr, l.rfe) can make an interrupt deliverable —
            // those writers drop the flag, and until one runs the
            // per-insn interrupt check is skipped.
            irqQuiet_ = irqCursor_ >= config_.irqSchedule.size() &&
                        bits(ttmr_, 31, 30) == 0;
        }
        uint64_t before = retired_;
        bool keep_going =
            dispatchBoundary(sink, result.instructions, emitted);
        if (wedged_) {
            result.reason = HaltReason::Wedged;
            break;
        }
        // Guard against a step that makes no progress.
        SCIF_ASSERT(retired_ > before);
        if (!keep_going) {
            result.reason = HaltReason::Halted;
            break;
        }
    }
    result.records = emitted;
    if (result.reason == HaltReason::MaxInsns)
        result.instructions = retired_;
    result.instructions = retired_;
    return result;
}

StepStatus
Cpu::step(trace::TraceSink *sink)
{
    if (wedged_)
        return StepStatus::Wedged;
    if (retired_ >= config_.maxInsns)
        return StepStatus::Budget;

    uint64_t emitted = 0;
    if (maybeInterrupt(sink, emitted))
        return StepStatus::Running;

    uint64_t insns = 0;
    bool keep_going = dispatchBoundary(sink, insns, emitted);
    if (wedged_)
        return StepStatus::Wedged;
    return keep_going ? StepStatus::Running : StepStatus::Halted;
}

} // namespace scif::cpu

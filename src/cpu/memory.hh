/**
 * @file
 * The memory subsystem of the simulated system-on-chip: a flat
 * big-endian RAM with a supervisor-only low region, faulting accesses
 * reported as OpenRISC exceptions (bus error for unmapped addresses,
 * page faults for protection violations, alignment for misaligned
 * accesses).
 */

#ifndef SCIFINDER_CPU_MEMORY_HH
#define SCIFINDER_CPU_MEMORY_HH

#include <cstdint>
#include <vector>

#include "isa/arch.hh"

namespace scif::cpu {

/** Result of a memory access attempt. */
struct MemResult
{
    isa::Exception fault = isa::Exception::None;
    uint32_t value = 0; ///< loaded data (loads only)

    bool ok() const { return fault == isa::Exception::None; }
};

/**
 * Flat physical memory with a simple protection model: addresses
 * below the user base are accessible in supervisor mode only.
 */
class Memory
{
  public:
    /**
     * @param bytes RAM size (word aligned).
     * @param user_base first address accessible from user mode.
     */
    explicit Memory(uint32_t bytes = 1 << 20, uint32_t user_base = 0x2000);

    /** Zero all of RAM. */
    void clear();

    /**
     * Load @p size bytes (1, 2 or 4) from @p addr.
     *
     * @param addr byte address.
     * @param size access width.
     * @param supervisor current privilege.
     * @param fetch true for instruction fetches (affects the fault
     *              type reported for protection violations).
     */
    MemResult load(uint32_t addr, unsigned size, bool supervisor,
                   bool fetch = false) const;

    /** Store @p size bytes to @p addr. */
    MemResult store(uint32_t addr, unsigned size, uint32_t value,
                    bool supervisor);

    /**
     * Debug access: read a word bypassing protection and faults
     * (returns 0 when unmapped). Used by program loading and tests.
     */
    uint32_t debugReadWord(uint32_t addr) const;

    /** Debug access: write a word bypassing protection. */
    void debugWriteWord(uint32_t addr, uint32_t value);

    uint32_t size() const { return uint32_t(ram_.size()); }
    uint32_t userBase() const { return userBase_; }

    /** Raw read-only view of RAM, for fast diff scans (program
     *  reloads) and diagnostics. */
    const uint8_t *raw() const { return ram_.data(); }

    /**
     * Dirty watermark: every byte written since the last clear() lies
     * in [dirtyLo(), dirtyHi()). Both write paths (store and
     * debugWriteWord) maintain it, so a diff scan that only covers
     * the watermark sees every byte that can differ from zero.
     */
    uint32_t dirtyLo() const { return dirtyLo_; }
    uint32_t dirtyHi() const { return dirtyHi_; }

  private:
    void
    touch(uint32_t addr, unsigned size)
    {
        if (addr < dirtyLo_)
            dirtyLo_ = addr;
        if (addr + size > dirtyHi_)
            dirtyHi_ = addr + size;
    }

    /** Check mapping, alignment, and protection. */
    isa::Exception check(uint32_t addr, unsigned size, bool supervisor,
                         bool fetch) const;

    std::vector<uint8_t> ram_;
    uint32_t userBase_;
    uint32_t dirtyLo_ = UINT32_MAX;
    uint32_t dirtyHi_ = 0;
};

} // namespace scif::cpu

#endif // SCIFINDER_CPU_MEMORY_HH

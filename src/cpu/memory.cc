#include "memory.hh"

#include "support/logging.hh"

namespace scif::cpu {

using isa::Exception;

Memory::Memory(uint32_t bytes, uint32_t user_base)
    : ram_(bytes, 0), userBase_(user_base)
{
    SCIF_ASSERT(bytes % 4 == 0);
}

void
Memory::clear()
{
    std::fill(ram_.begin(), ram_.end(), 0);
    dirtyLo_ = UINT32_MAX;
    dirtyHi_ = 0;
}

Exception
Memory::check(uint32_t addr, unsigned size, bool supervisor,
              bool fetch) const
{
    if (addr % size != 0)
        return Exception::Alignment;
    if (addr + size > ram_.size() || addr + size < addr)
        return Exception::BusError;
    if (!supervisor && addr < userBase_) {
        return fetch ? Exception::InsnPageFault
                     : Exception::DataPageFault;
    }
    return Exception::None;
}

MemResult
Memory::load(uint32_t addr, unsigned size, bool supervisor,
             bool fetch) const
{
    MemResult res;
    res.fault = check(addr, size, supervisor, fetch);
    if (!res.ok())
        return res;
    uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v = (v << 8) | ram_[addr + i]; // big endian
    res.value = v;
    return res;
}

MemResult
Memory::store(uint32_t addr, unsigned size, uint32_t value,
              bool supervisor)
{
    MemResult res;
    res.fault = check(addr, size, supervisor, false);
    if (!res.ok())
        return res;
    touch(addr, size);
    for (unsigned i = 0; i < size; ++i) {
        ram_[addr + i] =
            uint8_t(value >> (8 * (size - 1 - i))); // big endian
    }
    return res;
}

uint32_t
Memory::debugReadWord(uint32_t addr) const
{
    if (addr + 4 > ram_.size() || addr % 4 != 0)
        return 0;
    MemResult r = load(addr, 4, true);
    return r.value;
}

void
Memory::debugWriteWord(uint32_t addr, uint32_t value)
{
    if (addr + 4 > ram_.size() || addr % 4 != 0) {
        warn("debugWriteWord: 0x%08x out of range, ignored", addr);
        return;
    }
    store(addr, 4, value, true);
}

} // namespace scif::cpu

/**
 * @file
 * ISA-level functional simulator of the OR1200 (OpenRISC 1000 basic
 * integer instruction set).
 *
 * The simulator executes one instruction per step, maintains the full
 * software-visible architectural state (GPRs, SR, exception SPRs, MAC
 * accumulator, PIC, tick timer), models the single branch delay slot,
 * and emits one trace record per retired instruction into a TraceSink
 * — with a control-flow instruction and its delay-slot instruction
 * fused into one record (paper §3.1.5).
 *
 * A small microarchitectural shadow (pipeline-stage PCs, stall
 * detection for the wedge-style bugs) exists solely so that the
 * reproduced errata can perturb exactly the state the real bugs
 * perturbed — including the ones that are invisible at the ISA level.
 *
 * Reproduced errata are injected through the Mutation hook points;
 * see cpu/mutation.hh and bugs/registry.cc.
 */

#ifndef SCIFINDER_CPU_CPU_HH
#define SCIFINDER_CPU_CPU_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "asm/assembler.hh"
#include "cpu/blockcache.hh"
#include "cpu/memory.hh"
#include "cpu/mutation.hh"
#include "isa/arch.hh"
#include "isa/insn.hh"
#include "trace/record.hh"

namespace scif::cpu {

/** Why a simulation run ended. */
enum class HaltReason {
    Halted,    ///< the program executed the halt idiom (l.nop 0xf)
    MaxInsns,  ///< retirement budget exhausted
    Wedged,    ///< the pipeline wedged (stall-style bugs b2/h13)
};

/** Outcome of Cpu::run(). */
struct RunResult
{
    uint64_t instructions = 0; ///< retired instructions
    uint64_t records = 0;      ///< trace records emitted
    HaltReason reason = HaltReason::MaxInsns;
};

/**
 * Process-wide default for CpuConfig::chain. `scifinder --no-chain`
 * flips it once at startup (before any simulation threads exist) so
 * every subsequently constructed configuration runs unchained; tests
 * and benches that need explicit control set CpuConfig::chain
 * directly instead.
 */
bool chainDefaultEnabled();
void setChainDefault(bool enabled);

/** Static configuration of a simulated system. */
struct CpuConfig
{
    uint32_t memBytes = 1 << 20;   ///< RAM size
    uint32_t userBase = 0x2000;    ///< supervisor-only boundary
    uint64_t maxInsns = 1000000;   ///< retirement budget per run()
    MutationSet mutations;         ///< injected errata

    /**
     * Use the predecoded basic-block cache (cpu/blockcache.hh). Off,
     * every boundary fetches and decodes from memory — the
     * interpreted oracle the differential tests compare against.
     * Both front ends produce byte-identical traces.
     */
    bool predecode = true;

    /**
     * Chain predecoded blocks across resolved control flow
     * (superblock / threaded dispatch): block transitions follow a
     * stored successor pointer instead of re-entering the cache
     * lookup. Traces and architectural state are byte-identical with
     * chaining on or off; off reproduces the plain block-cache
     * dispatch (the perf baseline).
     */
    bool chain = chainDefaultEnabled();

    /**
     * Microarchitectural trace extension (the paper's §5.2 future-
     * work direction): when set, the USTALL trace variable carries
     * the pipeline stall counter and a wedged instruction still
     * emits its (non-retiring) record, making stall-class bugs like
     * b2 visible to the invariant engine. Off by default: the
     * ISA-level view the paper evaluates.
     */
    bool uarchTrace = false;

    /**
     * External interrupt schedule: (retired-instruction count, PIC
     * line). Line @p n sets PICSR bit n at the given boundary.
     */
    std::vector<std::pair<uint64_t, unsigned>> irqSchedule;
};

/** The K operand of l.nop that halts simulation. */
constexpr uint32_t haltNopCode = 0xf;

/** Outcome of a single Cpu::step() call. */
enum class StepStatus {
    Running,  ///< one boundary executed; simulation can continue
    Halted,   ///< the halt idiom retired on this boundary
    Wedged,   ///< the pipeline wedged (stall-style bugs)
    Budget,   ///< retirement budget already exhausted
};

/** The OR1200-model processor. */
class Cpu
{
  public:
    explicit Cpu(CpuConfig config = CpuConfig());

    /** Load an assembled program image and reset the processor. */
    void loadProgram(const assembler::Program &program);

    /** Reset architectural state (PC to the reset vector). */
    void reset();

    /**
     * Run until halt, wedge, or the retirement budget.
     *
     * @param sink optional trace sink; pass nullptr to run untraced.
     */
    RunResult run(trace::TraceSink *sink);

    /**
     * Advance the processor by one trace boundary: deliver one
     * pending asynchronous interrupt, or execute one instruction (a
     * control-flow instruction together with its delay slot counts
     * as one boundary, mirroring the fused trace record). Lockstep
     * co-simulation (src/fuzz) drives the processor with this
     * instead of run().
     *
     * @param sink optional trace sink; pass nullptr to step untraced.
     */
    StepStatus step(trace::TraceSink *sink = nullptr);

    /** @return instructions retired since reset. */
    uint64_t retired() const { return retired_; }

    // --- state accessors (tests and the assertion monitor) ---
    uint32_t gpr(unsigned n) const { return gpr_[n]; }
    void setGpr(unsigned n, uint32_t v);
    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; }

    /** Read an SPR by architectural address (supervisor view). */
    uint32_t readSpr(uint16_t addr) const;
    /** Write an SPR by architectural address (supervisor view). */
    void writeSpr(uint16_t addr, uint32_t value);

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }
    const CpuConfig &config() const { return config_; }

    /**
     * Switch the active mutation set on a live processor. Cached
     * blocks are keyed by mutation set, so entries decoded under the
     * previous configuration stay isolated rather than flushed; the
     * per-bug identification fan-out relies on this to run the buggy
     * and the clean configuration on one processor.
     */
    void setMutations(const MutationSet &mutations);

    /**
     * Drop every predecoded block. Required after poking code memory
     * from outside (Memory::debugWriteWord); loadProgram() and the
     * store path invalidate automatically.
     */
    void invalidateCodeCache();

    /** @return true if any store retired since the last loadProgram()
     *  (i.e. memory may differ from the loaded image). */
    bool memoryDirty() const { return memDirty_; }

    /** @return block-cache statistics, or nullptr when predecode is
     *  disabled. */
    const BlockCache::Stats *cacheStats() const
    {
        return cache_ ? &cache_->stats() : nullptr;
    }

    /** @return live cached blocks (0 when predecode is disabled). */
    size_t cachedBlocks() const
    {
        return cache_ ? cache_->liveBlocks() : 0;
    }

  private:
    /** Result of executing one instruction. */
    struct ExecResult
    {
        isa::Exception exception = isa::Exception::None;
        uint32_t eear = 0;      ///< effective address for the fault
        bool halted = false;
        bool branchTaken = false;
        uint32_t branchTarget = 0;
        bool isRfe = false;
        uint32_t rfeTarget = 0;
    };

    /** Execute one decoded instruction, updating state and @p rec.
     *  @p ii must be insn's isa::info() (pre-resolved by the caller
     *  so the cached dispatch path skips the table lookup). */
    ExecResult execute(const isa::DecodedInsn &insn,
                       const isa::InsnInfo &ii, trace::Record &rec);

    /** Write a GPR respecting the r0-hardwired-zero rule (and b10). */
    void writeGpr(unsigned n, uint32_t value, trace::Record &rec);

    /** Fill the state-variable slots of one record side. */
    void snapshotState(std::array<uint32_t, trace::numVars> &side);

    /**
     * Take exception @p e. @p fault_pc is the address of the faulting
     * or interrupted instruction; @p next_pc the address execution
     * would otherwise continue at.
     */
    void enterException(isa::Exception e, uint32_t fault_pc,
                        uint32_t next_pc, uint32_t eear,
                        bool in_delay_slot, uint32_t branch_pc,
                        uint32_t branch_target);

    /** The architecturally correct EPCR for an exception. */
    static uint32_t epcrFor(isa::Exception e, uint32_t fault_pc,
                            uint32_t next_pc, bool in_delay_slot,
                            uint32_t branch_pc, uint32_t branch_target);

    /** Fetch the instruction word at @p addr (applies b11/h13). */
    MemResult fetch(uint32_t addr, trace::Record &rec);

    /** Advance the tick timer by one retired instruction. */
    void tickTimer(uint64_t retired);

    /** Deliver a pending asynchronous interrupt, if any. */
    bool maybeInterrupt(trace::TraceSink *sink, uint64_t &emitted);

    /**
     * Run one trace boundary through the front end the configuration
     * selects: a predecoded CachedOp when the dispatch cursor has
     * one, the interpreted fetch+decode path otherwise. Templated on
     * the concrete sink type so the per-record emission into the
     * capture-time columnar sink devirtualizes inside the dispatch
     * loop (run() selects the instantiation once per run).
     */
    template <typename Sink>
    bool dispatchBoundary(Sink *sink, uint64_t &retired,
                          uint64_t &emitted);

    /** The run() loop body, instantiated per concrete sink type. */
    template <typename Sink>
    RunResult runLoop(Sink *sink);

    /**
     * Run one instruction (or fused pair). @p op carries the
     * predecoded boundary (skipping fetch and decode) or nullptr for
     * the interpreted path. With Traced false, @p rec is a reusable
     * scratch record and no snapshots, derived variables, or sink
     * emission happen — architectural state advances identically.
     */
    template <bool Traced, typename Sink>
    bool stepBody(trace::Record &rec, Sink *sink, uint64_t &retired,
                  uint64_t &emitted, const CachedOp *op);

    /**
     * The predecoded boundary at pc_, advancing the dispatch cursor;
     * nullptr when the boundary must run interpreted (cache miss on
     * an uncacheable word, or privilege mismatch).
     */
    const CachedOp *nextCachedOp();

    /** Recompute cacheOn_/mutKey_ and drop the dispatch cursor. */
    void refreshCacheMode();

    bool has(Mutation m) const { return config_.mutations.has(m); }
    bool supervisor() const { return (sr_ >> isa::sr::SM) & 1; }

    CpuConfig config_;
    Memory mem_;

    // Architectural state.
    std::array<uint32_t, isa::numGprs> gpr_{};
    uint32_t pc_ = 0x100;
    uint32_t ppc_ = 0;
    uint32_t sr_ = isa::sr::resetValue;
    uint32_t epcr_ = 0;
    uint32_t eear_ = 0;
    uint32_t esr_ = 0;
    uint64_t mac_ = 0;
    uint32_t picmr_ = 0;
    uint32_t picsr_ = 0;
    uint32_t ttmr_ = 0;
    uint32_t ttcr_ = 0;

    // Microarchitectural shadow state (bug surface only).
    bool roriTaint_ = false;       ///< b8: rotate residue live
    bool lsuBusy_ = false;         ///< b11: LSU stall window active
    bool fetchCorrupted_ = false;  ///< b11: this step replayed a fetch
    bool lastWasMac_ = false;      ///< b2: l.mac retired last cycle
    uint32_t lastFetched_ = 0;     ///< b11: stale fetch buffer word
    uint32_t lastLoadAddr_ = 0;    ///< h13 pattern detection
    unsigned sameAddrLoads_ = 0;   ///< h13 pattern detection
    uint32_t lastStoreData_ = 0;   ///< b17 store-buffer data
    uint32_t lastStoreAddr_ = 0;   ///< b17 store-buffer address
    bool storeBufferLive_ = false; ///< b17 forwarding window
    bool wedged_ = false;          ///< pipeline wedged (b2/h13)

    uint64_t retired_ = 0;
    size_t irqCursor_ = 0;
    bool irqQuiet_ = false; ///< no interrupt can become deliverable
                            ///< without an SPR write (mtspr / rfe);
                            ///< lets the run loop skip the per-insn
                            ///< interrupt check

    // Predecode front end (tentpole of the fast-simulation work).
    std::unique_ptr<BlockCache> cache_; ///< null when predecode off
    Block *curBlock_ = nullptr;         ///< dispatch cursor block
    size_t curOp_ = 0;                  ///< next op within curBlock_
    uint64_t mutKey_ = 0;               ///< active mutation cache key
    bool cacheOn_ = false;              ///< predecode usable right now
    bool chainOn_ = false;              ///< superblock chaining active
    bool chainBreak_ = false;           ///< exception entered: do not
                                        ///< follow or install a link
                                        ///< at the next boundary
    bool memDirty_ = false;             ///< stores since loadProgram()
    DecodeMemo dsMemo_;                 ///< interpreted-path ds decode
    trace::Record scratch_;             ///< reused by untraced steps
};

} // namespace scif::cpu

#endif // SCIFINDER_CPU_CPU_HH

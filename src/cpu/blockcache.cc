#include "blockcache.hh"

#include <algorithm>

#include "support/simstats.hh"

namespace scif::cpu {

BlockCache::BlockCache(uint32_t memBytes)
    : pageBlocks_((memBytes + (1u << pageShift) - 1) >> pageShift, 0)
{
}

BlockCache::~BlockCache()
{
    support::FrontEndCounters::add(stats_.chainHits,
                                   stats_.chainSevers,
                                   stats_.fallbacks);
}

Block *
BlockCache::lookupOrBuild(uint32_t pc, uint64_t key, const Memory &mem,
                          uint32_t userBase)
{
    auto it = blocks_.find(mapKey(pc, key));
    if (it != blocks_.end())
        return it->second.get();
    return build(pc, key, mem, userBase);
}

Block *
BlockCache::build(uint32_t pc, uint64_t key, const Memory &mem,
                  uint32_t userBase)
{
    auto block = std::make_unique<Block>();
    Block *b = block.get();
    b->pc = pc;
    b->key = key;
    ++stats_.builds;

    uint32_t addr = pc;
    bool mapped = pc % 4 == 0 && pc + 4 <= mem.size();
    while (mapped && b->ops.size() < maxOps && addr + 4 <= mem.size()) {
        uint32_t word = mem.debugReadWord(addr);
        const isa::DecodedInsn *dec = memo_.lookup(word);
        if (!dec)
            break; // undecodable word: that boundary runs interpreted

        CachedOp op;
        op.pc = addr;
        op.word = word;
        op.insn = *dec;
        op.needsSuper = addr < userBase;

        const isa::InsnInfo &ii = dec->info();
        op.info = &ii;
        if (ii.hasDelaySlot) {
            // Fuse the delay-slot pair into one entry. Pairs whose
            // second word faults, fails to decode, or is itself a
            // control-flow instruction stay uncached: the interpreted
            // path owns the exception bookkeeping for those.
            uint32_t dsAddr = addr + 4;
            if (dsAddr + 4 > mem.size())
                break;
            uint32_t dsWord = mem.debugReadWord(dsAddr);
            const isa::DecodedInsn *dsDec = memo_.lookup(dsWord);
            if (!dsDec || dsDec->info().hasDelaySlot)
                break;
            op.fused = true;
            op.dsWord = dsWord;
            op.ds = *dsDec;
            op.dsInfo = &dsDec->info();
            op.needsSuper = op.needsSuper || dsAddr < userBase;
            b->ops.push_back(op);
            addr += 8;
            break; // control flow ends the block
        }

        b->ops.push_back(op);
        addr += 4;
        if (dec->mnemonic == isa::Mnemonic::L_SYS ||
            dec->mnemonic == isa::Mnemonic::L_TRAP ||
            dec->mnemonic == isa::Mnemonic::L_RFE) {
            break; // syscall/trap/rfe diverts control
        }
    }

    // A pc where nothing decoded becomes a negative entry so repeat
    // visits don't re-scan; it still covers its word(s) in the page
    // index so self-modifying code revalidates it.
    b->bytes = b->ops.empty() ? (mapped ? 4 : 0) : addr - pc;
    indexPages(b);
    blocks_.emplace(mapKey(pc, key), std::move(block));
    return b;
}

void
BlockCache::indexPages(Block *b)
{
    if (b->bytes == 0)
        return;
    uint32_t first = b->pc >> pageShift;
    uint32_t last = (b->pc + b->bytes - 1) >> pageShift;
    for (uint32_t p = first; p <= last && p < pageCount(); ++p) {
        pageIndex_.emplace(p, b);
        ++pageBlocks_[p];
    }
}

void
BlockCache::link(Block *from, Block *to, bool fallthrough)
{
    Block *&slot = fallthrough ? from->succFall : from->succTaken;
    if (slot == to)
        return;
    if (slot != nullptr) {
        // Retarget (indirect branch changed destination): drop the
        // old back-link first so the mirror stays exact.
        auto &preds = slot->preds;
        auto it = std::find(preds.begin(), preds.end(), from);
        if (it != preds.end())
            preds.erase(it);
    }
    slot = to;
    to->preds.push_back(from);
    ++stats_.chainLinks;
}

void
BlockCache::severLinks(Block *b)
{
    // Incoming: one back-link entry per installed link, so clearing
    // one matching slot per entry cuts exactly the recorded links
    // (a predecessor with both slots on b appears twice).
    for (Block *p : b->preds) {
        if (p->succFall == b)
            p->succFall = nullptr;
        else if (p->succTaken == b)
            p->succTaken = nullptr;
        ++stats_.chainSevers;
    }
    b->preds.clear();

    // Outgoing: the dying block must disappear from its successors'
    // back-link lists, or a later sever there would chase it into
    // freed memory.
    for (Block **slot : {&b->succFall, &b->succTaken}) {
        if (*slot == nullptr)
            continue;
        auto &preds = (*slot)->preds;
        auto it = std::find(preds.begin(), preds.end(), b);
        if (it != preds.end())
            preds.erase(it);
        *slot = nullptr;
    }
}

void
BlockCache::invalidateSlow(uint32_t addr, uint32_t size)
{
    uint32_t first = addr >> pageShift;
    uint32_t last = (addr + size - 1) >> pageShift;

    std::vector<Block *> victims;
    for (uint32_t p = first; p <= last && p < pageCount(); ++p) {
        auto range = pageIndex_.equal_range(p);
        for (auto it = range.first; it != range.second; ++it) {
            Block *b = it->second;
            if (b->alive && addr < b->pc + b->bytes &&
                b->pc < addr + size) {
                b->alive = false;
                victims.push_back(b);
            }
        }
    }

    for (Block *b : victims) {
        severLinks(b);
        uint32_t bfirst = b->pc >> pageShift;
        uint32_t blast = (b->pc + b->bytes - 1) >> pageShift;
        for (uint32_t p = bfirst; p <= blast && p < pageCount(); ++p) {
            auto range = pageIndex_.equal_range(p);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == b) {
                    pageIndex_.erase(it);
                    --pageBlocks_[p];
                    break;
                }
            }
        }
        auto it = blocks_.find(mapKey(b->pc, b->key));
        if (it != blocks_.end()) {
            graveyard_.push_back(std::move(it->second));
            blocks_.erase(it);
        }
        ++stats_.invalidations;
    }
}

void
BlockCache::flush()
{
    blocks_.clear();
    pageIndex_.clear();
    std::fill(pageBlocks_.begin(), pageBlocks_.end(), 0);
    graveyard_.clear();
    ++stats_.flushes;
}

void
BlockCache::purgeDead()
{
    graveyard_.clear();
}

} // namespace scif::cpu

#include "assembler.hh"

#include <cctype>
#include <optional>

#include "isa/arch.hh"
#include "isa/insn.hh"
#include "support/bits.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::assembler {

using isa::DecodedInsn;
using isa::Format;
using isa::InsnInfo;

namespace {

/** A parsed source statement awaiting pass-2 resolution. */
struct Statement
{
    enum class Kind { Insn, Word, Space } kind = Kind::Insn;
    int line = 0;
    uint32_t address = 0;
    const InsnInfo *insn = nullptr;   ///< for Kind::Insn
    std::vector<std::string> operands;
    std::string wordExpr;             ///< for Kind::Word
    uint32_t spaceBytes = 0;          ///< for Kind::Space
};

/** Assembly context shared between the two passes. */
class Context
{
  public:
    explicit Context(std::string_view source) : source_(source) {}

    Result run();

  private:
    void passOne();
    void passTwo();
    void parseLine(std::string_view line, int line_no);
    void error(int line_no, const std::string &msg);

    /** Strip a trailing comment (';' or '#'). */
    static std::string stripComment(std::string_view line);

    std::optional<uint8_t> parseReg(const std::string &tok, int line_no);

    /**
     * Evaluate an operand expression: integer literal, symbol, SPR
     * name, hi(expr)/lo(expr), with +/- chains.
     */
    std::optional<int64_t> evalExpr(const std::string &expr, int line_no);
    std::optional<int64_t> evalTerm(const std::string &term, int line_no);

    void encodeStatement(const Statement &st);

    std::string_view source_;
    Result result_;
    std::vector<Statement> statements_;
    uint32_t loc_ = 0x100;
    bool entrySet_ = false;
};

std::string
Context::stripComment(std::string_view line)
{
    size_t pos = line.size();
    for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == ';' || line[i] == '#') {
            pos = i;
            break;
        }
    }
    return trim(line.substr(0, pos));
}

void
Context::error(int line_no, const std::string &msg)
{
    result_.errors.push_back(format("line %d: %s", line_no, msg.c_str()));
}

std::optional<uint8_t>
Context::parseReg(const std::string &tok, int line_no)
{
    std::string t = toLower(trim(tok));
    if (t.size() < 2 || t[0] != 'r') {
        error(line_no, "expected register, got '" + tok + "'");
        return std::nullopt;
    }
    auto num = parseInt(t.substr(1));
    if (!num || *num < 0 || *num >= int64_t(isa::numGprs)) {
        error(line_no, "bad register '" + tok + "'");
        return std::nullopt;
    }
    return uint8_t(*num);
}

std::optional<int64_t>
Context::evalTerm(const std::string &term, int line_no)
{
    std::string t = trim(term);
    if (t.empty()) {
        error(line_no, "empty expression term");
        return std::nullopt;
    }

    // hi(expr) / lo(expr)
    std::string lower = toLower(t);
    for (const char *fn : {"hi", "lo"}) {
        std::string prefix = std::string(fn) + "(";
        if (startsWith(lower, prefix) && t.back() == ')') {
            auto inner =
                evalExpr(t.substr(prefix.size(),
                                  t.size() - prefix.size() - 1),
                         line_no);
            if (!inner)
                return std::nullopt;
            uint32_t v = uint32_t(*inner);
            return fn[0] == 'h' ? int64_t(v >> 16) : int64_t(v & 0xffff);
        }
    }

    if (auto num = parseInt(t))
        return *num;

    // Label or .equ symbol.
    auto it = result_.program.symbols.find(t);
    if (it != result_.program.symbols.end())
        return int64_t(it->second);

    // Architectural SPR names (upper case convention).
    static const std::map<std::string, uint16_t> sprNames = {
        {"VR", isa::spr::VR},       {"UPR", isa::spr::UPR},
        {"NPC", isa::spr::NPC},     {"SR", isa::spr::SR},
        {"PPC", isa::spr::PPC},     {"EPCR0", isa::spr::EPCR0},
        {"EEAR0", isa::spr::EEAR0}, {"ESR0", isa::spr::ESR0},
        {"MACLO", isa::spr::MACLO}, {"MACHI", isa::spr::MACHI},
        {"PICMR", isa::spr::PICMR}, {"PICSR", isa::spr::PICSR},
        {"TTMR", isa::spr::TTMR},   {"TTCR", isa::spr::TTCR},
    };
    auto sit = sprNames.find(t);
    if (sit != sprNames.end())
        return int64_t(sit->second);

    error(line_no, "undefined symbol '" + t + "'");
    return std::nullopt;
}

std::optional<int64_t>
Context::evalExpr(const std::string &expr, int line_no)
{
    // Split on top-level '+' / '-' (respecting parentheses).
    std::string e = trim(expr);
    int depth = 0;
    std::vector<std::pair<char, std::string>> terms;
    char pending = '+';
    std::string cur;
    for (size_t i = 0; i < e.size(); ++i) {
        char c = e[i];
        if (c == '(')
            ++depth;
        else if (c == ')')
            --depth;
        if (depth == 0 && (c == '+' || c == '-') && !cur.empty()) {
            terms.emplace_back(pending, cur);
            pending = c;
            cur.clear();
            continue;
        }
        cur += c;
    }
    if (cur.empty()) {
        error(line_no, "malformed expression '" + e + "'");
        return std::nullopt;
    }
    terms.emplace_back(pending, cur);

    int64_t value = 0;
    for (const auto &[sign, term] : terms) {
        auto v = evalTerm(term, line_no);
        if (!v)
            return std::nullopt;
        value += sign == '+' ? *v : -*v;
    }
    return value;
}

void
Context::parseLine(std::string_view raw_line, int line_no)
{
    std::string line = stripComment(raw_line);
    if (line.empty())
        return;

    // Labels (possibly several on one line).
    for (;;) {
        size_t colon = line.find(':');
        if (colon == std::string::npos)
            break;
        std::string label = trim(line.substr(0, colon));
        // Only treat as a label if the prefix is a lone identifier.
        bool ident = !label.empty();
        for (char c : label)
            ident = ident && (std::isalnum(uint8_t(c)) || c == '_' ||
                              c == '.');
        if (!ident || label.find(' ') != std::string::npos)
            break;
        if (result_.program.symbols.count(label)) {
            error(line_no, "duplicate label '" + label + "'");
        } else {
            result_.program.symbols[label] = loc_;
        }
        line = trim(line.substr(colon + 1));
        if (line.empty())
            return;
    }

    // Directives.
    if (line[0] == '.') {
        auto parts = splitWhitespace(line);
        std::string dir = toLower(parts[0]);
        std::string rest =
            trim(line.substr(parts[0].size()));
        if (dir == ".org") {
            auto v = evalExpr(rest, line_no);
            if (v)
                loc_ = uint32_t(*v);
        } else if (dir == ".entry") {
            auto v = evalExpr(rest, line_no);
            if (v) {
                result_.program.entry = uint32_t(*v);
                entrySet_ = true;
            }
        } else if (dir == ".equ") {
            auto fields = split(rest, ',');
            if (fields.size() != 2) {
                error(line_no, ".equ needs 'name, value'");
                return;
            }
            auto v = evalExpr(fields[1], line_no);
            if (v)
                result_.program.symbols[trim(fields[0])] = uint32_t(*v);
        } else if (dir == ".word") {
            Statement st;
            st.kind = Statement::Kind::Word;
            st.line = line_no;
            st.address = loc_;
            st.wordExpr = rest;
            statements_.push_back(st);
            loc_ += 4;
        } else if (dir == ".space") {
            auto v = evalExpr(rest, line_no);
            if (!v || *v < 0) {
                error(line_no, "bad .space size");
                return;
            }
            loc_ += uint32_t(*v);
            loc_ = (loc_ + 3) & ~3u;
        } else {
            error(line_no, "unknown directive '" + dir + "'");
        }
        return;
    }

    // Instruction.
    auto parts = splitWhitespace(line);
    std::string mnem = toLower(parts[0]);
    const InsnInfo *ii = isa::infoByName(mnem);
    if (!ii) {
        error(line_no, "unknown mnemonic '" + mnem + "'");
        return;
    }
    Statement st;
    st.kind = Statement::Kind::Insn;
    st.line = line_no;
    st.address = loc_;
    st.insn = ii;
    std::string rest = trim(line.substr(parts[0].size()));
    if (!rest.empty()) {
        // Split on commas outside parentheses.
        int depth = 0;
        std::string cur;
        for (char c : rest) {
            if (c == '(')
                ++depth;
            else if (c == ')')
                --depth;
            if (c == ',' && depth == 0) {
                st.operands.push_back(trim(cur));
                cur.clear();
            } else {
                cur += c;
            }
        }
        st.operands.push_back(trim(cur));
    }
    statements_.push_back(st);
    loc_ += 4;
}

void
Context::passOne()
{
    int line_no = 0;
    for (const auto &line : split(source_, '\n')) {
        ++line_no;
        parseLine(line, line_no);
    }
}

void
Context::encodeStatement(const Statement &st)
{
    if (st.kind == Statement::Kind::Word) {
        auto v = evalExpr(st.wordExpr, st.line);
        if (v)
            result_.program.words[st.address] = uint32_t(*v);
        return;
    }
    if (st.kind == Statement::Kind::Space)
        return;

    const InsnInfo &ii = *st.insn;
    DecodedInsn insn;
    insn.mnemonic = ii.mnemonic;

    auto need = [&](size_t n) {
        if (st.operands.size() != n) {
            error(st.line, format("%s expects %zu operands, got %zu",
                                  ii.name, n, st.operands.size()));
            return false;
        }
        return true;
    };
    // Evaluate an immediate and check it fits the instruction's
    // encodable range (16-bit signed or unsigned, 6-bit shift count,
    // signed 26-bit word offset for jumps).
    auto immOf = [&](const std::string &tok) -> std::optional<int32_t> {
        auto v = evalExpr(tok, st.line);
        if (!v)
            return std::nullopt;
        int64_t lo, hi;
        if (ii.format == Format::RRL) {
            lo = 0;
            hi = 63;
        } else if (ii.format == Format::J) {
            lo = -(1ll << 25);
            hi = (1ll << 25) - 1;
        } else if (ii.signedImm) {
            lo = -0x8000;
            hi = 0x7fff;
        } else {
            lo = 0;
            hi = 0xffff;
        }
        if (*v < lo || *v > hi) {
            error(st.line,
                  format("immediate %lld out of range [%lld, %lld] "
                         "for %s",
                         (long long)*v, (long long)lo, (long long)hi,
                         ii.name));
            return std::nullopt;
        }
        return int32_t(*v);
    };
    auto regOf = [&](const std::string &tok) {
        return parseReg(tok, st.line);
    };
    // "imm(rA)" address operand used by loads and stores.
    auto memOperand = [&](const std::string &tok)
        -> std::optional<std::pair<int32_t, uint8_t>> {
        size_t open = tok.rfind('(');
        if (open == std::string::npos || tok.back() != ')') {
            error(st.line, "expected imm(rA), got '" + tok + "'");
            return std::nullopt;
        }
        auto off = immOf(trim(tok.substr(0, open)));
        auto base =
            regOf(tok.substr(open + 1, tok.size() - open - 2));
        if (!off || !base)
            return std::nullopt;
        return std::make_pair(*off, *base);
    };

    switch (ii.format) {
      case Format::J: {
        if (!need(1))
            return;
        // Numeric operand = word offset; symbol = label target.
        auto v = evalExpr(st.operands[0], st.line);
        if (!v)
            return;
        bool is_label =
            result_.program.symbols.count(trim(st.operands[0])) > 0;
        int64_t offset =
            is_label ? (*v - int64_t(st.address)) / 4 : *v;
        insn.imm = int32_t(offset);
        break;
      }
      case Format::JR: {
        if (!need(1))
            return;
        auto rb = regOf(st.operands[0]);
        if (!rb)
            return;
        insn.rb = *rb;
        break;
      }
      case Format::RRR: {
        if (!need(3))
            return;
        auto rd = regOf(st.operands[0]);
        auto ra = regOf(st.operands[1]);
        auto rb = regOf(st.operands[2]);
        if (!rd || !ra || !rb)
            return;
        insn.rd = *rd;
        insn.ra = *ra;
        insn.rb = *rb;
        break;
      }
      case Format::RRDA: {
        if (!need(2))
            return;
        auto rd = regOf(st.operands[0]);
        auto ra = regOf(st.operands[1]);
        if (!rd || !ra)
            return;
        insn.rd = *rd;
        insn.ra = *ra;
        break;
      }
      case Format::RRAB: {
        if (!need(2))
            return;
        auto ra = regOf(st.operands[0]);
        auto rb = regOf(st.operands[1]);
        if (!ra || !rb)
            return;
        insn.ra = *ra;
        insn.rb = *rb;
        break;
      }
      case Format::RRI:
      case Format::RRL: {
        if (!need(3))
            return;
        auto rd = regOf(st.operands[0]);
        auto ra = regOf(st.operands[1]);
        auto imm = immOf(st.operands[2]);
        if (!rd || !ra || !imm)
            return;
        insn.rd = *rd;
        insn.ra = *ra;
        insn.imm = *imm;
        break;
      }
      case Format::RIA: {
        if (!need(2))
            return;
        auto ra = regOf(st.operands[0]);
        auto imm = immOf(st.operands[1]);
        if (!ra || !imm)
            return;
        insn.ra = *ra;
        insn.imm = *imm;
        break;
      }
      case Format::RI: {
        if (!need(2))
            return;
        auto rd = regOf(st.operands[0]);
        auto imm = immOf(st.operands[1]);
        if (!rd || !imm)
            return;
        insn.rd = *rd;
        insn.imm = *imm;
        break;
      }
      case Format::RD: {
        if (!need(1))
            return;
        auto rd = regOf(st.operands[0]);
        if (!rd)
            return;
        insn.rd = *rd;
        break;
      }
      case Format::LOAD: {
        if (!need(2))
            return;
        auto rd = regOf(st.operands[0]);
        auto mem = memOperand(st.operands[1]);
        if (!rd || !mem)
            return;
        insn.rd = *rd;
        insn.imm = mem->first;
        insn.ra = mem->second;
        break;
      }
      case Format::STORE: {
        if (!need(2))
            return;
        auto mem = memOperand(st.operands[0]);
        auto rb = regOf(st.operands[1]);
        if (!mem || !rb)
            return;
        insn.imm = mem->first;
        insn.ra = mem->second;
        insn.rb = *rb;
        break;
      }
      case Format::MTSPR: {
        if (!need(3))
            return;
        auto ra = regOf(st.operands[0]);
        auto rb = regOf(st.operands[1]);
        auto imm = immOf(st.operands[2]);
        if (!ra || !rb || !imm)
            return;
        insn.ra = *ra;
        insn.rb = *rb;
        insn.imm = *imm;
        break;
      }
      case Format::K16: {
        if (st.operands.empty()) {
            insn.imm = 0;
        } else {
            if (!need(1))
                return;
            auto imm = immOf(st.operands[0]);
            if (!imm)
                return;
            insn.imm = *imm;
        }
        break;
      }
      case Format::NONE: {
        if (!need(0))
            return;
        break;
      }
    }

    result_.program.words[st.address] = isa::encode(insn);
}

void
Context::passTwo()
{
    for (const auto &st : statements_)
        encodeStatement(st);
}

Result
Context::run()
{
    result_.program.entry = 0x100;
    passOne();
    if (result_.errors.empty())
        passTwo();
    result_.ok = result_.errors.empty();
    return std::move(result_);
}

} // namespace

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        panic("undefined symbol '%s'", name.c_str());
    return it->second;
}

Result
assemble(std::string_view source)
{
    Context ctx(source);
    return ctx.run();
}

Program
assembleOrDie(std::string_view source)
{
    Result r = assemble(source);
    if (!r.ok) {
        for (const auto &e : r.errors)
            warn("asm: %s", e.c_str());
        panic("assembly failed with %zu errors", r.errors.size());
    }
    return std::move(r.program);
}

} // namespace scif::assembler

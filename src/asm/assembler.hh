/**
 * @file
 * Two-pass assembler for the OpenRISC 1000 basic instruction set.
 *
 * Supports the full implemented mnemonic set, labels, the directives
 * .org / .word / .space / .equ, hi()/lo() operators for address
 * materialization, and symbolic SPR names in immediate positions.
 * Workload programs and bug trigger programs are written against this
 * assembler.
 *
 * Syntax example:
 * @code
 *     .equ  STACK, 0x8000
 *     .org  0x100            ; reset vector
 *         l.movhi r1, hi(STACK)
 *         l.ori   r1, r1, lo(STACK)
 *     loop:
 *         l.addi  r2, r2, 1
 *         l.sfeqi r2, 10
 *         l.bnf   loop        ; label branch target
 *         l.nop   0           ; delay slot
 * @endcode
 */

#ifndef SCIFINDER_ASM_ASSEMBLER_HH
#define SCIFINDER_ASM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace scif::assembler {

/**
 * An assembled program: a sparse word-addressed memory image plus the
 * symbol table. Addresses are byte addresses, word aligned.
 */
struct Program
{
    /** Memory image: word address (byte-aligned to 4) -> word value. */
    std::map<uint32_t, uint32_t> words;

    /** Label and .equ symbol values. */
    std::map<std::string, uint32_t> symbols;

    /** Entry point (the reset vector unless overridden). */
    uint32_t entry = 0x100;

    /** @return value of a symbol; aborts if undefined. */
    uint32_t symbol(const std::string &name) const;
};

/** Result of an assembly run. */
struct Result
{
    bool ok = false;
    Program program;
    /** One "line N: message" entry per diagnosed error. */
    std::vector<std::string> errors;
};

/**
 * Assemble OR1K assembly source text.
 *
 * @param source full program text.
 * @return assembled program or the collected error diagnostics.
 */
Result assemble(std::string_view source);

/**
 * Assemble and abort on any error (for programmatically generated
 * sources that must be well formed).
 */
Program assembleOrDie(std::string_view source);

} // namespace scif::assembler

#endif // SCIFINDER_ASM_ASSEMBLER_HH

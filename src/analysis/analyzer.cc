#include "analyzer.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "support/strings.hh"

namespace scif::analysis {

std::string_view
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Tautology: return "tautology";
      case Verdict::Contradiction: return "contradiction";
      case Verdict::IsaImplied: return "isa-implied";
      case Verdict::Contingent: return "contingent";
    }
    return "?";
}

AbstractValue
evalOperand(const expr::Operand &op, const Env &env)
{
    if (op.isConst)
        return AbstractValue::constant(op.constVal);

    AbstractValue value = env.lookup(op.a);
    switch (op.op2) {
      case expr::Op2::None:
        break;
      case expr::Op2::And:
        value = avAnd(value, env.lookup(op.b));
        break;
      case expr::Op2::Or:
        value = avOr(value, env.lookup(op.b));
        break;
      case expr::Op2::Add:
        value = avAdd(value, env.lookup(op.b));
        break;
      case expr::Op2::Sub:
        value = avSub(value, env.lookup(op.b));
        break;
    }
    if (op.negate)
        value = avNot(value);
    value = avMulConst(value, op.mulImm);
    if (op.modImm != 0)
        value = avModConst(value, op.modImm);
    value = avAddConst(value, op.addImm);
    return value;
}

Truth
evalInvariant(const expr::Invariant &inv, const Env &env)
{
    return compare(inv.op, evalOperand(inv.lhs, env),
                   evalOperand(inv.rhs, env), inv.set);
}

namespace {

/**
 * Identical operands compare trivially: x == x holds and x != x,
 * x > x fail for any valuation, which the per-operand abstract
 * evaluation cannot see (it forgets the two sides are correlated).
 */
Truth
identicalOperandTruth(const expr::Invariant &inv)
{
    if (inv.op == expr::CmpOp::In || !(inv.lhs == inv.rhs))
        return Truth::Unknown;
    switch (inv.op) {
      case expr::CmpOp::Eq:
      case expr::CmpOp::Le:
      case expr::CmpOp::Ge:
        return Truth::True;
      case expr::CmpOp::Ne:
      case expr::CmpOp::Lt:
      case expr::CmpOp::Gt:
        return Truth::False;
      default:
        return Truth::Unknown;
    }
}

} // namespace

Classification
classify(const expr::Invariant &inv)
{
    Truth same = identicalOperandTruth(inv);
    if (same == Truth::True)
        return {Verdict::Tautology, true};
    if (same == Truth::False)
        return {Verdict::Contradiction, true};

    static const Env empty;
    switch (evalInvariant(inv, empty)) {
      case Truth::True:
        return {Verdict::Tautology, true};
      case Truth::False:
        return {Verdict::Contradiction, true};
      case Truth::Unknown:
        break;
    }

    Env structural = structuralEnv(inv.point);
    switch (evalInvariant(inv, structural)) {
      case Truth::True:
        return {Verdict::IsaImplied, true};
      case Truth::False:
        return {Verdict::Contradiction, true};
      case Truth::Unknown:
        break;
    }

    Env architectural = architecturalEnv(inv.point);
    switch (evalInvariant(inv, architectural)) {
      case Truth::True:
        return {Verdict::IsaImplied, false};
      case Truth::False:
        return {Verdict::Contradiction, false};
      case Truth::Unknown:
        break;
    }

    return {Verdict::Contingent, false};
}

size_t
removeVacuous(std::vector<expr::Invariant> &invs,
              support::ThreadPool *pool)
{
    std::vector<char> drop = support::parallelMap(
        pool, invs, [](const expr::Invariant &inv) {
            return char(classify(inv).removable());
        });
    size_t kept = 0;
    for (size_t i = 0; i < invs.size(); ++i) {
        if (drop[i])
            continue;
        if (kept != i)   // self-move would empty the In-set vector
            invs[kept] = std::move(invs[i]);
        ++kept;
    }
    size_t removed = invs.size() - kept;
    invs.resize(kept);
    return removed;
}

namespace {

/**
 * Extract the fact a single invariant states about a bare variable:
 * x == c, x in S, or a >,>= bound against a constant (either side,
 * since canonicalization moves < and <= to swapped >, >=).
 */
std::optional<std::pair<expr::VarRef, AbstractValue>>
factOf(const expr::Invariant &inv)
{
    const expr::Operand &l = inv.lhs;
    const expr::Operand &r = inv.rhs;

    if (inv.op == expr::CmpOp::In) {
        if (!l.isBareVar() || inv.set.empty())
            return std::nullopt;
        return std::pair{l.a, AbstractValue::fromRange(
                                  inv.set.front(), inv.set.back())};
    }

    // var OP const
    if (l.isBareVar() && r.isConst) {
        uint32_t c = r.constVal;
        switch (inv.op) {
          case expr::CmpOp::Eq:
            return std::pair{l.a, AbstractValue::constant(c)};
          case expr::CmpOp::Gt:
            if (c == 0xffffffffu)
                return std::nullopt;
            return std::pair{l.a,
                             AbstractValue::fromRange(c + 1,
                                                      0xffffffffu)};
          case expr::CmpOp::Ge:
            return std::pair{l.a,
                             AbstractValue::fromRange(c, 0xffffffffu)};
          default:
            return std::nullopt;
        }
    }

    // const OP var
    if (r.isBareVar() && l.isConst) {
        uint32_t c = l.constVal;
        switch (inv.op) {
          case expr::CmpOp::Eq:
            return std::pair{r.a, AbstractValue::constant(c)};
          case expr::CmpOp::Gt:
            if (c == 0)
                return std::nullopt;
            return std::pair{r.a, AbstractValue::fromRange(0, c - 1)};
          case expr::CmpOp::Ge:
            return std::pair{r.a, AbstractValue::fromRange(0, c)};
          default:
            return std::nullopt;
        }
    }

    return std::nullopt;
}

} // namespace

std::string
AnalysisReport::render() const
{
    std::string out;
    out += "scifinder analysis report\n";
    out += format("invariants: %zu\n", entries.size());
    out += format("tautology: %zu\n",
                  counts[size_t(Verdict::Tautology)]);
    out += format("contradiction: %zu\n",
                  counts[size_t(Verdict::Contradiction)]);
    out += format("isa-implied: %zu (structural %zu)\n",
                  counts[size_t(Verdict::IsaImplied)],
                  structuralImplied);
    out += format("contingent: %zu\n",
                  counts[size_t(Verdict::Contingent)]);
    out += format("implications: %zu\n", implications.size());
    out += "\n[verdicts]\n";
    for (const Entry &e : entries) {
        out += verdictName(e.cls.verdict);
        if (e.cls.verdict == Verdict::IsaImplied ||
            e.cls.verdict == Verdict::Contradiction) {
            out += e.cls.structural ? "/structural" : "/architectural";
        }
        out += "\t";
        out += e.invariant;
        out += "\n";
    }
    out += "\n[implications]\n";
    for (const Implication &imp : implications) {
        out += imp.antecedent;
        out += "  =>  ";
        out += imp.consequent;
        out += "\n";
    }
    return out;
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
        }
    }
    out += "\"";
    return out;
}

} // namespace

std::string
AnalysisReport::renderJson() const
{
    std::string out;
    out += "{\n";
    out += format("  \"invariants\": %zu,\n", entries.size());
    out += "  \"counts\": {\n";
    out += format("    \"tautology\": %zu,\n",
                  counts[size_t(Verdict::Tautology)]);
    out += format("    \"contradiction\": %zu,\n",
                  counts[size_t(Verdict::Contradiction)]);
    out += format("    \"isa_implied\": %zu,\n",
                  counts[size_t(Verdict::IsaImplied)]);
    out += format("    \"structural_implied\": %zu,\n",
                  structuralImplied);
    out += format("    \"contingent\": %zu\n",
                  counts[size_t(Verdict::Contingent)]);
    out += "  },\n";
    out += "  \"entries\": [\n";
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        out += "    {\"verdict\": ";
        out += jsonString(std::string(verdictName(e.cls.verdict)));
        if (e.cls.verdict == Verdict::IsaImplied ||
            e.cls.verdict == Verdict::Contradiction) {
            out += ", \"tier\": ";
            out += e.cls.structural ? "\"structural\""
                                    : "\"architectural\"";
        }
        out += ", \"invariant\": ";
        out += jsonString(e.invariant);
        out += i + 1 < entries.size() ? "},\n" : "}\n";
    }
    out += "  ],\n";
    out += "  \"implications\": [\n";
    for (size_t i = 0; i < implications.size(); ++i) {
        const Implication &imp = implications[i];
        out += "    {\"antecedent\": ";
        out += jsonString(imp.antecedent);
        out += ", \"consequent\": ";
        out += jsonString(imp.consequent);
        out += i + 1 < implications.size() ? "},\n" : "}\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

AnalysisReport
analyze(const std::vector<expr::Invariant> &invs,
        support::ThreadPool *pool)
{
    AnalysisReport report;

    std::vector<Classification> cls = support::parallelMap(
        pool, invs,
        [](const expr::Invariant &inv) { return classify(inv); });

    report.entries.reserve(invs.size());
    for (size_t i = 0; i < invs.size(); ++i) {
        report.entries.push_back({invs[i].str(), cls[i]});
        report.counts[size_t(cls[i].verdict)]++;
        if (cls[i].verdict == Verdict::IsaImplied &&
            cls[i].structural)
            report.structuralImplied++;
    }

    // Group invariants per program point, keeping input order inside
    // each group and ordering the groups by first appearance so the
    // report does not depend on Point's packing.
    std::map<uint16_t, std::vector<size_t>> byPoint;
    std::vector<uint16_t> pointOrder;
    for (size_t i = 0; i < invs.size(); ++i) {
        uint16_t raw = invs[i].point.id();
        auto [it, fresh] = byPoint.try_emplace(raw);
        if (fresh)
            pointOrder.push_back(raw);
        it->second.push_back(i);
    }

    // Prove implications per point: derive the antecedent's fact,
    // meet it into the structural environment, and check whether the
    // consequent becomes decidably true. Pairs where either side is
    // already vacuous are skipped — their implications are trivial.
    std::vector<std::vector<Implication>> perPoint =
        support::parallelMap(
            pool, pointOrder, [&](uint16_t raw) {
                const std::vector<size_t> &members = byPoint.at(raw);
                std::vector<Implication> found;
                Env base = structuralEnv(invs[members[0]].point);
                for (size_t ai : members) {
                    if (cls[ai].removable())
                        continue;
                    auto fact = factOf(invs[ai]);
                    if (!fact)
                        continue;
                    Env env = base;
                    env.constrain(fact->first, fact->second);
                    for (size_t ci : members) {
                        if (ci == ai || cls[ci].removable())
                            continue;
                        if (invs[ci].key() == invs[ai].key())
                            continue;
                        if (evalInvariant(invs[ci], base) !=
                                Truth::Unknown)
                            continue;   // decided without the fact
                        if (evalInvariant(invs[ci], env) ==
                            Truth::True) {
                            found.push_back({invs[ai].str(),
                                             invs[ci].str()});
                        }
                    }
                }
                return found;
            });

    for (std::vector<Implication> &found : perPoint) {
        report.implications.insert(report.implications.end(),
                                   found.begin(), found.end());
    }
    return report;
}

} // namespace scif::analysis

/**
 * @file
 * Abstract environments seeded from the ISA specification: what is
 * known about every schema variable at a program point before any
 * training trace is observed.
 *
 * The facts come in two tiers, which the analyzer keeps apart
 * because they have different trust levels:
 *
 *  - Structural facts are enforced by the trace layer and the decoder
 *    themselves, independent of the processor's behaviour. The
 *    derived flag variables are bit() extractions (always 0 or 1),
 *    the REGA/REGB/REGD fields are 5-bit decoder outputs, and at an
 *    instruction's program point INSN carries the mnemonic's fixed
 *    encoding bits and IMM the format's immediate range. No erratum
 *    (mutation) can produce a record violating them, so an invariant
 *    they imply can never fire and is safe to delete from the model.
 *  - Architectural facts are ISA promises the processor implements —
 *    PC/NPC word alignment, the SR fixed-one bit — which a buggy
 *    processor may break. Invariants they imply are classified
 *    ISA-implied (and flagged as vacuous at assertion-synthesis
 *    time) but are kept in the model: they are exactly the checks
 *    dynamic verification exists to enforce.
 */

#ifndef SCIFINDER_ANALYSIS_ISAFACTS_HH
#define SCIFINDER_ANALYSIS_ISAFACTS_HH

#include <array>

#include "analysis/domain.hh"
#include "trace/record.hh"
#include "trace/schema.hh"

namespace scif::analysis {

/**
 * An abstract store: one AbstractValue per schema variable and side
 * (post state, then orig() state). Default-constructed slots are top.
 */
class Env
{
  public:
    /** @return the fact for a variable reference. */
    const AbstractValue &
    lookup(const expr::VarRef &ref) const
    {
        return slots_[index(ref)];
    }

    /** Meet a new fact into a slot. */
    void
    constrain(const expr::VarRef &ref, const AbstractValue &fact)
    {
        AbstractValue &slot = slots_[index(ref)];
        slot = slot.meet(fact);
    }

    /** Constrain both the post and the orig() side of a variable. */
    void
    constrainBoth(uint16_t var, const AbstractValue &fact)
    {
        constrain({var, false}, fact);
        constrain({var, true}, fact);
    }

  private:
    static size_t
    index(const expr::VarRef &ref)
    {
        return (ref.orig ? trace::numVars : 0) + ref.var;
    }

    std::array<AbstractValue, 2 * trace::numVars> slots_;
};

/**
 * The structural environment for @p point: facts the tracer and the
 * decoder enforce on every record filed there, buggy processor or
 * not.
 */
Env structuralEnv(trace::Point point);

/**
 * The architectural environment: the structural facts plus the ISA
 * promises (alignment, SR fixed bits) a correct processor keeps.
 */
Env architecturalEnv(trace::Point point);

} // namespace scif::analysis

#endif // SCIFINDER_ANALYSIS_ISAFACTS_HH

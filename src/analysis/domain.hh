/**
 * @file
 * Abstract domains for the invariant analyzer: known-bits and
 * unsigned intervals over 32-bit machine words, combined into a
 * reduced product.
 *
 * Both domains are standard abstract-interpretation lattices:
 *
 *  - KnownBits tracks, per bit position, whether the bit is known to
 *    be 0, known to be 1, or unknown. Top knows nothing; a value with
 *    a position claimed both 0 and 1 is bottom (no concrete value).
 *  - Interval is the unsigned range [lo, hi]; top is [0, 2^32-1] and
 *    bottom is represented by lo > hi.
 *
 * AbstractValue pairs the two and keeps them mutually reduced: the
 * interval is clamped to the bounds the bits imply and the bits learn
 * the common leading prefix of the interval's endpoints. All transfer
 * functions are sound over-approximations of the expr::Operand
 * evaluator's modulo-2^32 arithmetic.
 */

#ifndef SCIFINDER_ANALYSIS_DOMAIN_HH
#define SCIFINDER_ANALYSIS_DOMAIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.hh"

namespace scif::analysis {

/** Per-bit knowledge about a 32-bit word. */
struct KnownBits
{
    uint32_t zeros = 0;   ///< bits known to be 0
    uint32_t ones = 0;    ///< bits known to be 1

    /** The lattice top: nothing known. */
    static KnownBits top() { return {}; }

    /** All 32 bits known. */
    static KnownBits constant(uint32_t v) { return {~v, v}; }

    /** @return true if some bit is claimed both 0 and 1. */
    bool isBottom() const { return (zeros & ones) != 0; }

    /** @return true if every bit is known (and not bottom). */
    bool isConstant() const
    {
        return !isBottom() && (zeros | ones) == 0xffffffffu;
    }

    /** The single concrete value (only valid when isConstant()). */
    uint32_t constantValue() const { return ones; }

    /** Smallest value consistent with the known bits. */
    uint32_t minValue() const { return ones; }

    /** Largest value consistent with the known bits. */
    uint32_t maxValue() const { return ~zeros; }

    /** @return true if @p v is consistent with the known bits. */
    bool contains(uint32_t v) const
    {
        return (v & zeros) == 0 && (v & ones) == ones;
    }

    /** Least upper bound: keep only knowledge shared by both. */
    KnownBits join(const KnownBits &o) const
    {
        return {zeros & o.zeros, ones & o.ones};
    }

    /** Greatest lower bound: combine knowledge (may go bottom). */
    KnownBits meet(const KnownBits &o) const
    {
        return {zeros | o.zeros, ones | o.ones};
    }

    bool operator==(const KnownBits &) const = default;
};

/** Unsigned interval [lo, hi]; lo > hi encodes bottom. */
struct Interval
{
    uint32_t lo = 0;
    uint32_t hi = 0xffffffffu;

    static Interval top() { return {}; }
    static Interval constant(uint32_t v) { return {v, v}; }
    static Interval bottom() { return {1, 0}; }

    bool isBottom() const { return lo > hi; }
    bool isConstant() const { return lo == hi; }
    bool contains(uint32_t v) const { return lo <= v && v <= hi; }

    Interval join(const Interval &o) const
    {
        if (isBottom())
            return o;
        if (o.isBottom())
            return *this;
        return {lo < o.lo ? lo : o.lo, hi > o.hi ? hi : o.hi};
    }

    Interval meet(const Interval &o) const
    {
        return {lo > o.lo ? lo : o.lo, hi < o.hi ? hi : o.hi};
    }

    bool operator==(const Interval &) const = default;
};

/** Reduced product of KnownBits and Interval. */
struct AbstractValue
{
    KnownBits bits;
    Interval range;

    static AbstractValue top() { return {}; }

    static AbstractValue
    constant(uint32_t v)
    {
        return {KnownBits::constant(v), Interval::constant(v)};
    }

    /** An interval fact, bits reduced from the endpoints. */
    static AbstractValue fromRange(uint32_t lo, uint32_t hi);

    /** A known-bits fact, range reduced from the bit bounds. */
    static AbstractValue fromBits(uint32_t zeros, uint32_t ones);

    bool isBottom() const
    {
        return bits.isBottom() || range.isBottom();
    }

    bool isConstant() const
    {
        return !isBottom() &&
               (bits.isConstant() || range.isConstant());
    }

    uint32_t constantValue() const
    {
        return bits.isConstant() ? bits.constantValue() : range.lo;
    }

    /** @return true if @p v is in the concretization. */
    bool contains(uint32_t v) const
    {
        return !isBottom() && bits.contains(v) && range.contains(v);
    }

    AbstractValue join(const AbstractValue &o) const;
    AbstractValue meet(const AbstractValue &o) const;

    /**
     * Propagate knowledge between the component domains until
     * stable: bit bounds clamp the interval; the common leading
     * prefix of lo and hi becomes known bits.
     */
    void reduce();

    /** Printable form for reports and test diagnostics. */
    std::string str() const;

    bool operator==(const AbstractValue &) const = default;
};

// ---- transfer functions (all modulo 2^32, like Operand::eval) ----

AbstractValue avAnd(const AbstractValue &a, const AbstractValue &b);
AbstractValue avOr(const AbstractValue &a, const AbstractValue &b);
AbstractValue avAdd(const AbstractValue &a, const AbstractValue &b);
AbstractValue avSub(const AbstractValue &a, const AbstractValue &b);
AbstractValue avNot(const AbstractValue &a);
AbstractValue avMulConst(const AbstractValue &a, uint32_t m);
AbstractValue avModConst(const AbstractValue &a, uint32_t m);
AbstractValue avAddConst(const AbstractValue &a, uint32_t c);

/** Three-valued truth for abstract comparisons. */
enum class Truth : uint8_t { True, False, Unknown };

/** @return the printable name ("true", "false", "unknown"). */
std::string_view truthName(Truth t);

/**
 * Decide an unsigned comparison between abstract values. True/False
 * only when every pair of concrete values agrees; membership (In)
 * tests @p l against @p inSet (sorted, as in expr::Invariant).
 */
Truth compare(expr::CmpOp op, const AbstractValue &l,
              const AbstractValue &r,
              const std::vector<uint32_t> &inSet = {});

} // namespace scif::analysis

#endif // SCIFINDER_ANALYSIS_DOMAIN_HH

/**
 * @file
 * Static security-dataflow analysis over the ISA model (the paper's
 * §2 bug classes, made static).
 *
 * The dynamic pipeline decides security-criticality by injecting a
 * Table 1 bug and watching which invariants fire; the inference phase
 * decides it lexically. Nothing in between knows *why* an invariant
 * is security relevant — that `SR[SM]`, `EPCR0`, or the SPR file are
 * the state that makes it so. This module computes that statically:
 *
 *  - a **security lattice**: every trace-schema variable is tagged
 *    with the subset of the paper's four bug classes it embodies
 *    (privilege escalation, memory protection, exception handling,
 *    control-flow integrity);
 *  - a **def-use state graph**: per-instruction value flow between
 *    schema variables, derived from the same decoder facts
 *    (`isa::InsnInfo`) the tracer and `analysis/isafacts` are built
 *    on, plus the structural fetch/decode/aliasing flows the trace
 *    layer enforces;
 *  - a **security signature** per invariant: for each class, the
 *    minimum number of def-use steps from any operand variable to
 *    state tagged with that class (0 = the invariant constrains the
 *    security state directly);
 *  - a **mutation footprint** per injected defect: the schema
 *    variables the erratum can corrupt directly, and the forward
 *    reachability (taint) closure of that footprint;
 *  - a **triage order**: invariants sorted by taint distance from a
 *    bug's footprint, so identification runs the expensive
 *    differential checks for the statically-implicated invariants
 *    first, plus a rank-quality metric locating the dynamically
 *    identified SCI inside that order.
 *
 * Soundness contract (gtest-enforced): every dynamically identified
 * SCI must be statically reachable from its bug's footprint — the
 * propagation is deliberately may-analysis-generous, so an
 * unreachable violation indicates a missing def-use edge.
 */

#ifndef SCIFINDER_ANALYSIS_SECFLOW_HH
#define SCIFINDER_ANALYSIS_SECFLOW_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cpu/mutation.hh"
#include "expr/expr.hh"
#include "trace/record.hh"
#include "trace/schema.hh"

namespace scif::analysis {

/** The paper's security bug classes (§2, Table 1 "class" column). */
enum class SecClass : uint8_t {
    Privilege,         ///< privilege escalation (SR[SM], SPR access)
    MemoryProtection,  ///< memory protection (LSU address/data path)
    ExceptionHandling, ///< exception handling (EPCR/ESR/EEAR, DSX)
    ControlFlow,       ///< control-flow integrity (PC chain, flag, LR)
};

/** Number of security classes. */
constexpr size_t numSecClasses = 4;

/** Long printable class name ("privilege-escalation", ...). */
std::string_view secClassName(SecClass c);

/** A subset of the four security classes (the lattice elements). */
class SecClassSet
{
  public:
    constexpr SecClassSet() = default;

    constexpr SecClassSet(std::initializer_list<SecClass> cs)
    {
        for (SecClass c : cs)
            add(c);
    }

    constexpr void add(SecClass c) { bits_ |= mask(c); }
    constexpr bool has(SecClass c) const { return bits_ & mask(c); }
    constexpr bool empty() const { return bits_ == 0; }

    constexpr SecClassSet &
    operator|=(SecClassSet o)
    {
        bits_ |= o.bits_;
        return *this;
    }

    constexpr bool
    intersects(SecClassSet o) const
    {
        return (bits_ & o.bits_) != 0;
    }

    constexpr bool operator==(const SecClassSet &) const = default;

    /** Compact rendering: "priv|exc", or "-" for the empty set. */
    std::string str() const;

  private:
    static constexpr uint8_t mask(SecClass c)
    {
        return uint8_t(1u << unsigned(c));
    }

    uint8_t bits_ = 0;
};

/**
 * The lattice seeds: the classes variable @p var embodies directly
 * (SR and the SPR access pair are privilege state, the LSU
 * address/data path is memory-protection state, ...). Most variables
 * map to the empty set; they acquire relevance only through flow.
 */
SecClassSet varSecurityClasses(uint16_t var);

/** Def-use facts of one program point, at schema-variable level. */
struct DefUse
{
    std::vector<uint16_t> uses; ///< variables the point reads
    std::vector<uint16_t> defs; ///< variables the point writes
};

/**
 * The def-use facts for @p point, derived from the decoder metadata
 * (`isa::InsnInfo`: format, kind, register/flag read-write bits) plus
 * the exception-entry defs for exception-qualified and interrupt
 * points. Both vectors are sorted and duplicate free.
 */
DefUse pointDefUse(trace::Point point);

/**
 * The value-flow graph over the trace schema: edge u -> v means the
 * value of u can flow into (or select) the value of v in one retired
 * instruction. The union of every instruction's def-use edges plus
 * the structural fetch/decode/writeback and aliasing flows
 * (GPR <-> operand latches, SR <-> unpacked flag bits, PC chain).
 * Immutable once built; share via instance().
 */
class StateGraph
{
  public:
    StateGraph();

    /** Out-neighbours of @p var, ascending. */
    const std::vector<uint16_t> &
    successors(uint16_t var) const
    {
        return succ_[var];
    }

    /** In-neighbours of @p var, ascending. */
    const std::vector<uint16_t> &
    predecessors(uint16_t var) const
    {
        return pred_[var];
    }

    /** @return true if the edge from -> to exists. */
    bool hasEdge(uint16_t from, uint16_t to) const;

    /** The process-wide immutable instance. */
    static const StateGraph &instance();

  private:
    std::array<std::vector<uint16_t>, trace::numVars> succ_;
    std::array<std::vector<uint16_t>, trace::numVars> pred_;
};

/** Distance value for unreachable variables. */
constexpr uint32_t unreachableDist = 0xffffffffu;

/** Per-variable BFS distance map. */
using DistMap = std::array<uint32_t, trace::numVars>;

/**
 * Forward taint propagation to fixed point: BFS over the graph's
 * successor edges from @p seeds. dist[v] is the minimum number of
 * def-use steps from a seed to v (0 for the seeds themselves),
 * unreachableDist if no path exists.
 */
DistMap reachableFrom(const StateGraph &graph,
                      const std::vector<uint16_t> &seeds);

/**
 * The security signature of an invariant: for every class, the
 * minimum number of def-use steps from one of its operand variables
 * to state tagged with that class. 0 means the invariant constrains
 * security state of that class directly — either an operand variable
 * is tagged, or the program point itself is security relevant (an
 * exception-qualified point, an SPR move, a jump/branch, a memory
 * access).
 */
struct SecSignature
{
    std::array<uint32_t, numSecClasses> dist{unreachableDist,
                                             unreachableDist,
                                             unreachableDist,
                                             unreachableDist};

    /** Classes at distance 0 (directly constrained). */
    SecClassSet direct() const { return within(0); }

    /** Classes reachable within @p k steps. */
    SecClassSet within(uint32_t k) const;

    /** Rendering: "priv@0 cfi@2", or "-" when nothing is reachable. */
    std::string str() const;
};

/** Compute the signature of @p inv over @p graph. */
SecSignature invariantSignature(const StateGraph &graph,
                                const expr::Invariant &inv);

/**
 * The mutation footprint: the schema variables defect @p m corrupts
 * directly (the wrong defs it introduces). A static property of the
 * mutation, independent of any trigger program. Microarchitecture-
 * only defects (b2, h13, h14) map to the USTALL counter, which has no
 * outgoing def-use edges — nothing ISA-visible is reachable, matching
 * their empty dynamic SCI sets.
 */
std::vector<uint16_t> mutationFootprint(cpu::Mutation m);

/** A bug's footprint plus its forward taint closure. */
struct BugReach
{
    std::vector<uint16_t> footprint;
    DistMap dist; ///< taint distance from the footprint
};

/** Compute footprint + closure for mutation @p m. */
BugReach bugReach(const StateGraph &graph, cpu::Mutation m);

/**
 * Taint distance from @p reach's footprint to invariant @p inv: the
 * minimum distance over its operand variables (over the def-use facts
 * of its program point when the expression mentions no variable).
 * unreachableDist means the defect cannot influence the invariant —
 * it is statically cleared for this bug.
 */
uint32_t invariantDistance(const BugReach &reach,
                           const expr::Invariant &inv);

/** A static scan priority for one bug over an invariant list. */
struct TriageOrder
{
    /** Invariant indices, closest-to-the-footprint first; ties and
     *  the unreachable tail keep ascending index order. */
    std::vector<size_t> order;
    /** Per-invariant taint distance, indexed like the input list. */
    std::vector<uint32_t> distance;
};

/** Compute the triage order of @p invs for mutation @p m. */
TriageOrder triageOrder(const StateGraph &graph,
                        const std::vector<expr::Invariant> &invs,
                        cpu::Mutation m);

/**
 * Rank quality of @p order w.r.t. the dynamically identified SCI
 * @p sci (indices into the invariant list): 1 - the mean normalized
 * rank of the SCI. 1.0 = every SCI leads the order, 0.5 = no better
 * than a random permutation, 0.0 = every SCI trails. Returns 1.0 for
 * an empty @p sci (nothing to find, any order is perfect).
 */
double rankQuality(const std::vector<size_t> &order,
                   const std::vector<size_t> &sci);

} // namespace scif::analysis

#endif // SCIFINDER_ANALYSIS_SECFLOW_HH

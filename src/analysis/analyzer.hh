/**
 * @file
 * Abstract-interpretation invariant analyzer (the tentpole of the
 * static-analysis subsystem).
 *
 * The analyzer evaluates every invariant over the abstract
 * environment of its program point (isafacts.hh) and assigns one of
 * four verdicts:
 *
 *  - Tautology: the expression is true for every pair of 32-bit
 *    values — no facts about the processor are needed.
 *  - Contradiction: the expression is false for every consistent
 *    valuation; the derived assertion would fire on every occurrence
 *    of the point.
 *  - IsaImplied: true under the ISA-seeded environment. The
 *    `structural` flag distinguishes proofs that use only structural
 *    facts (enforced by the tracer/decoder — the invariant can never
 *    be violated by any emittable record and is safe to delete) from
 *    proofs that need architectural promises (alignment, SR fixed
 *    bits — exactly what dynamic verification checks, so kept).
 *  - Contingent: everything else; the invariant carries information
 *    about the processor's behaviour.
 *
 * The analyzer also proves pairwise implications the DR pass cannot
 * see: DR reduces >,>= chains over identical operand keys, while this
 * prover derives a fact from one invariant (x == c, x in S, bound
 * against a constant) and abstractly evaluates its siblings under it.
 * Implications are reported, never acted on — removing one side of a
 * mutually-implying pair would change the Table 3 accounting.
 */

#ifndef SCIFINDER_ANALYSIS_ANALYZER_HH
#define SCIFINDER_ANALYSIS_ANALYZER_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/domain.hh"
#include "analysis/isafacts.hh"
#include "expr/expr.hh"
#include "support/threadpool.hh"

namespace scif::analysis {

/** The analyzer's verdict lattice (see file comment). */
enum class Verdict : uint8_t
{
    Tautology,
    Contradiction,
    IsaImplied,
    Contingent,
};

/** @return the printable name ("tautology", ...). */
std::string_view verdictName(Verdict v);

/** A verdict plus the tier of facts the proof needed. */
struct Classification
{
    Verdict verdict = Verdict::Contingent;

    /** True when the proof used structural facts only (always true
     *  for Tautology; meaningful for IsaImplied / Contradiction). */
    bool structural = false;

    /** @return true if no emittable record can violate the
     *  invariant, i.e. it is dead weight in the model. */
    bool
    removable() const
    {
        return verdict == Verdict::Tautology ||
               (verdict == Verdict::IsaImplied && structural);
    }
};

/** Abstractly evaluate an operand under an environment. */
AbstractValue evalOperand(const expr::Operand &op, const Env &env);

/** Decide an invariant's expression under an environment. */
Truth evalInvariant(const expr::Invariant &inv, const Env &env);

/** Classify one invariant at its program point. */
Classification classify(const expr::Invariant &inv);

/**
 * Remove the invariants no emittable record can violate (removable()
 * classifications). Keeps the relative order of survivors.
 *
 * @return the number of invariants removed.
 */
size_t removeVacuous(std::vector<expr::Invariant> &invs,
                     support::ThreadPool *pool = nullptr);

/** One proven implication between sibling invariants at a point. */
struct Implication
{
    std::string antecedent;   ///< str() of the implying invariant
    std::string consequent;   ///< str() of the implied invariant
};

/** The full machine-readable analysis (see render()). */
struct AnalysisReport
{
    struct Entry
    {
        std::string invariant;   ///< Invariant::str()
        Classification cls;
    };

    std::vector<Entry> entries;           ///< input order
    std::vector<Implication> implications;

    /** Verdict tallies, indexed by Verdict. */
    std::array<size_t, 4> counts{};

    /** Of the IsaImplied count, how many are structural proofs. */
    size_t structuralImplied = 0;

    /**
     * Render the deterministic machine-readable report: a header of
     * tallies, one "verdict[/tier] <TAB> invariant" line per entry,
     * then the proven implications. Byte-identical for a given
     * invariant set regardless of thread count.
     */
    std::string render() const;

    /**
     * Render the report as a JSON document: the verdict tallies, one
     * entry object per invariant (input order), and the proven
     * implications. Deterministic the same way render() is —
     * byte-identical across thread counts.
     */
    std::string renderJson() const;
};

/**
 * Classify every invariant and prove sibling implications.
 * Parallelises over @p pool (null = serial) with index-ordered
 * collection, so the report is byte-identical across job counts.
 */
AnalysisReport analyze(const std::vector<expr::Invariant> &invs,
                       support::ThreadPool *pool = nullptr);

} // namespace scif::analysis

#endif // SCIFINDER_ANALYSIS_ANALYZER_HH

#include "secflow.hh"

#include <algorithm>
#include <deque>
#include <set>

#include "isa/arch.hh"
#include "isa/insn.hh"
#include "support/logging.hh"

namespace scif::analysis {

using trace::VarId;

std::string_view
secClassName(SecClass c)
{
    switch (c) {
    case SecClass::Privilege:
        return "privilege-escalation";
    case SecClass::MemoryProtection:
        return "memory-protection";
    case SecClass::ExceptionHandling:
        return "exception-handling";
    case SecClass::ControlFlow:
        return "control-flow-integrity";
    }
    panic("bad SecClass %d", int(c));
}

namespace {

/** Short class tags used by the compact renderings. */
constexpr const char *shortNames[numSecClasses] = {"priv", "mem",
                                                   "exc", "cfi"};

constexpr SecClass allClasses[numSecClasses] = {
    SecClass::Privilege,
    SecClass::MemoryProtection,
    SecClass::ExceptionHandling,
    SecClass::ControlFlow,
};

} // namespace

std::string
SecClassSet::str() const
{
    std::string out;
    for (size_t i = 0; i < numSecClasses; ++i) {
        if (!has(allClasses[i]))
            continue;
        if (!out.empty())
            out += '|';
        out += shortNames[i];
    }
    return out.empty() ? "-" : out;
}

SecClassSet
varSecurityClasses(uint16_t var)
{
    switch (var) {
    // Privilege: the supervision register with its mode bit, and the
    // SPR access pair (reaching an SPR at all requires SR[SM]).
    case VarId::SR:
    case VarId::SM:
    case VarId::SPRA:
    case VarId::SPRV:
        return {SecClass::Privilege};

    // Memory protection: the LSU address/data path and its oracles.
    case VarId::MEMADDR:
    case VarId::MEMBUS:
    case VarId::DMEM:
    case VarId::EA:
    case VarId::MEMOK:
        return {SecClass::MemoryProtection};

    // Exception handling: the exception save registers and the
    // delay-slot exception bit.
    case VarId::EPCR0:
    case VarId::ESR0:
    case VarId::EEAR0:
    case VarId::DSX:
        return {SecClass::ExceptionHandling};

    // Control-flow integrity: the PC chain and its pipeline shadows,
    // the branch flag and its correctness oracle, the jump target,
    // the fetched instruction stream, and the link register.
    case VarId::PC:
    case VarId::NPC:
    case VarId::NNPC:
    case VarId::PPC:
    case VarId::WBPC:
    case VarId::IDPC:
    case VarId::JEA:
    case VarId::SF:
    case VarId::FLAGOK:
    case VarId::INSN:
    case VarId::IMEM:
        return {SecClass::ControlFlow};

    default:
        if (var == trace::gprVar(isa::linkReg))
            return {SecClass::ControlFlow};
        return {};
    }
}

namespace {

/** One def-use flow: the value of from can flow into to. */
struct Edge
{
    uint16_t from;
    uint16_t to;
};

/** The source operand latches one instruction can read. */
std::vector<uint16_t>
insnSources(const isa::InsnInfo &ii)
{
    std::vector<uint16_t> srcs;
    if (ii.readsRa)
        srcs.push_back(VarId::OPA);
    if (ii.readsRb)
        srcs.push_back(VarId::OPB);
    if (ii.readsFlag)
        srcs.push_back(VarId::SF);
    switch (ii.format) {
    case isa::Format::J:
    case isa::Format::RRI:
    case isa::Format::RIA:
    case isa::Format::RI:
    case isa::Format::RRL:
    case isa::Format::LOAD:
    case isa::Format::STORE:
    case isa::Format::MTSPR:
        srcs.push_back(VarId::IMM);
        break;
    default:
        break;
    }
    return srcs;
}

/** SPR-backed schema variables an l.mfspr/l.mtspr can touch. */
constexpr uint16_t sprVars[] = {
    VarId::SR,    VarId::ESR0,  VarId::EPCR0, VarId::EEAR0,
    VarId::MACLO, VarId::MACHI, VarId::NPC,   VarId::PPC,
};

/**
 * The def-use edges of one instruction: the semantic value flows its
 * execution creates between schema variables, derived from the
 * decoder metadata. Shared by the state-graph construction and by
 * pointDefUse() so the two can never disagree.
 */
void
insnEdges(const isa::InsnInfo &ii, std::vector<Edge> &out)
{
    const std::vector<uint16_t> srcs = insnSources(ii);
    auto flow = [&out](const std::vector<uint16_t> &from,
                       std::initializer_list<uint16_t> to) {
        for (uint16_t f : from)
            for (uint16_t t : to)
                out.push_back({f, t});
    };

    switch (ii.kind) {
    case isa::InsnKind::Arith:
        flow(srcs, {VarId::OPDEST, VarId::CY, VarId::OV});
        if (ii.mnemonic == isa::Mnemonic::L_ADDC ||
            ii.mnemonic == isa::Mnemonic::L_ADDIC)
            flow({VarId::CY}, {VarId::OPDEST});
        break;

    case isa::InsnKind::Logic:
    case isa::InsnKind::Extend:
        flow(srcs, {VarId::OPDEST});
        break;

    case isa::InsnKind::Shift:
        flow(srcs, {VarId::OPDEST});
        if (ii.mnemonic == isa::Mnemonic::L_ROR ||
            ii.mnemonic == isa::Mnemonic::L_RORI) {
            flow(srcs, {VarId::ROR});
            flow({VarId::ROR}, {VarId::OPDEST});
        }
        break;

    case isa::InsnKind::Compare:
        flow(srcs, {VarId::SF, VarId::FLAGOK});
        flow({VarId::SF}, {VarId::FLAGOK});
        break;

    case isa::InsnKind::MulDiv:
        flow(srcs, {VarId::OPDEST, VarId::OV});
        if (ii.mnemonic == isa::Mnemonic::L_DIV ||
            ii.mnemonic == isa::Mnemonic::L_DIVU) {
            flow(srcs, {VarId::DIV});
            flow({VarId::DIV}, {VarId::OPDEST});
        }
        break;

    case isa::InsnKind::Mac:
        if (ii.mnemonic == isa::Mnemonic::L_MACRC) {
            flow({VarId::MACLO, VarId::MACHI}, {VarId::OPDEST});
        } else {
            flow(srcs, {VarId::MACLO, VarId::MACHI});
            flow({VarId::MACLO, VarId::MACHI},
                 {VarId::MACLO, VarId::MACHI});
        }
        break;

    case isa::InsnKind::Load:
        flow(srcs, {VarId::MEMADDR, VarId::EA});
        flow({VarId::MEMADDR, VarId::DMEM}, {VarId::MEMBUS});
        flow({VarId::MEMBUS}, {VarId::OPDEST, VarId::MEMOK});
        flow({VarId::OPDEST}, {VarId::MEMOK});
        break;

    case isa::InsnKind::Store:
        flow(srcs, {VarId::MEMADDR, VarId::EA});
        flow({VarId::OPB}, {VarId::MEMBUS});
        flow({VarId::MEMADDR, VarId::MEMBUS}, {VarId::DMEM});
        flow({VarId::MEMBUS}, {VarId::MEMOK});
        break;

    case isa::InsnKind::Jump:
        // Target: the 26-bit displacement or rB, relative to PC.
        flow(srcs, {VarId::NPC, VarId::NNPC, VarId::JEA});
        flow({VarId::PC}, {VarId::NPC, VarId::NNPC, VarId::JEA});
        if (ii.mnemonic == isa::Mnemonic::L_JAL ||
            ii.mnemonic == isa::Mnemonic::L_JALR)
            flow({VarId::PC},
                 {trace::gprVar(isa::linkReg), VarId::OPDEST});
        break;

    case isa::InsnKind::Branch:
        flow(srcs, {VarId::NPC, VarId::NNPC, VarId::JEA});
        flow({VarId::PC, VarId::SF},
             {VarId::NPC, VarId::NNPC, VarId::JEA});
        break;

    case isa::InsnKind::System:
        if (ii.mnemonic == isa::Mnemonic::L_RFE) {
            flow({VarId::ESR0}, {VarId::SR});
            flow({VarId::EPCR0}, {VarId::NPC, VarId::PC});
        }
        // l.sys / l.trap raise exceptions; their state flows are the
        // exception-entry edges added for qualified points.
        break;

    case isa::InsnKind::SprMove:
        if (ii.mnemonic == isa::Mnemonic::L_MOVHI) {
            flow({VarId::IMM}, {VarId::OPDEST});
        } else if (ii.mnemonic == isa::Mnemonic::L_MFSPR) {
            flow(srcs, {VarId::SPRA});
            for (uint16_t spr : sprVars)
                out.push_back({spr, VarId::SPRV});
            flow({VarId::SPRV}, {VarId::OPDEST});
        } else { // l.mtspr
            flow({VarId::OPA, VarId::IMM}, {VarId::SPRA});
            flow({VarId::OPB}, {VarId::SPRV});
            for (uint16_t spr : sprVars)
                out.push_back({VarId::SPRV, spr});
        }
        break;
    }
}

/**
 * Exception-entry flows: saving the return context into the
 * exception registers and redirecting fetch. Apply to every
 * exception-qualified point and to the interrupt pseudo points.
 */
void
exceptionEdges(std::vector<Edge> &out)
{
    out.push_back({VarId::PC, VarId::EPCR0});
    out.push_back({VarId::NPC, VarId::EPCR0});
    out.push_back({VarId::SR, VarId::ESR0});
    out.push_back({VarId::MEMADDR, VarId::EEAR0});
    out.push_back({VarId::EA, VarId::EEAR0});
    // Entry forces supervisor mode, clears DSX into play, and
    // redirects NPC to the vector; SR is both read (saved) and
    // rewritten.
    out.push_back({VarId::SR, VarId::SM});
    out.push_back({VarId::SR, VarId::DSX});
}

/** Extra defs of exception entry that have no single value source. */
constexpr uint16_t exceptionDefs[] = {
    VarId::EPCR0, VarId::ESR0, VarId::EEAR0, VarId::SR,
    VarId::SM,    VarId::DSX,  VarId::NPC,
};

void
sortUnique(std::vector<uint16_t> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

} // namespace

DefUse
pointDefUse(trace::Point point)
{
    std::vector<Edge> edges;
    if (!point.isInterrupt())
        insnEdges(isa::info(point.mnemonic()), edges);
    bool exceptional =
        point.isInterrupt() || point.exception() != isa::Exception::None;
    if (exceptional)
        exceptionEdges(edges);

    DefUse du;
    for (const Edge &e : edges) {
        du.uses.push_back(e.from);
        du.defs.push_back(e.to);
    }
    if (exceptional)
        du.defs.insert(du.defs.end(), std::begin(exceptionDefs),
                       std::end(exceptionDefs));
    sortUnique(du.uses);
    sortUnique(du.defs);
    return du;
}

StateGraph::StateGraph()
{
    std::vector<Edge> edges;

    // Structural flows the trace layer and decoder enforce on every
    // record: instruction sequencing and the pipeline PC shadows,
    // fetch and operand decode, the GPR <-> operand latches, and the
    // SR <-> unpacked flag-bit aliasing.
    auto edge = [&edges](uint16_t f, uint16_t t) {
        edges.push_back({f, t});
    };
    for (uint16_t t : {uint16_t(VarId::NPC), uint16_t(VarId::PPC),
                       uint16_t(VarId::WBPC), uint16_t(VarId::IDPC),
                       uint16_t(VarId::IMEM)})
        edge(VarId::PC, t);
    edge(VarId::NPC, VarId::PC);
    edge(VarId::NPC, VarId::NNPC);
    edge(VarId::NNPC, VarId::NPC);
    edge(VarId::IMEM, VarId::INSN);
    for (uint16_t t : {uint16_t(VarId::IMM), uint16_t(VarId::REGA),
                       uint16_t(VarId::REGB), uint16_t(VarId::REGD)})
        edge(VarId::INSN, t);
    edge(VarId::REGA, VarId::OPA);
    edge(VarId::REGB, VarId::OPB);
    edge(VarId::REGD, VarId::OPDEST);
    for (unsigned n = 0; n < isa::numGprs; ++n) {
        edge(trace::gprVar(n), VarId::OPA);
        edge(trace::gprVar(n), VarId::OPB);
        edge(VarId::OPDEST, trace::gprVar(n));
    }
    for (uint16_t bit : {uint16_t(VarId::SF), uint16_t(VarId::SM),
                         uint16_t(VarId::CY), uint16_t(VarId::OV),
                         uint16_t(VarId::DSX), uint16_t(VarId::FO)}) {
        edge(VarId::SR, bit);
        edge(bit, VarId::SR);
    }

    // Union of every instruction's semantic flows, plus the
    // exception-entry flows any instruction can take.
    for (const isa::InsnInfo &ii : isa::allInsns())
        insnEdges(ii, edges);
    exceptionEdges(edges);

    for (const Edge &e : edges) {
        succ_[e.from].push_back(e.to);
        pred_[e.to].push_back(e.from);
    }
    for (uint16_t v = 0; v < trace::numVars; ++v) {
        sortUnique(succ_[v]);
        sortUnique(pred_[v]);
    }
}

bool
StateGraph::hasEdge(uint16_t from, uint16_t to) const
{
    const auto &s = succ_[from];
    return std::binary_search(s.begin(), s.end(), to);
}

const StateGraph &
StateGraph::instance()
{
    static const StateGraph graph;
    return graph;
}

DistMap
reachableFrom(const StateGraph &graph,
              const std::vector<uint16_t> &seeds)
{
    DistMap dist;
    dist.fill(unreachableDist);
    std::deque<uint16_t> queue;
    for (uint16_t s : seeds) {
        if (dist[s] != 0) {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while (!queue.empty()) {
        uint16_t v = queue.front();
        queue.pop_front();
        for (uint16_t w : graph.successors(v)) {
            if (dist[w] == unreachableDist) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

namespace {

/** The distinct schema variables an invariant's operands mention. */
std::vector<uint16_t>
invariantVars(const expr::Invariant &inv)
{
    std::vector<uint16_t> vars;
    for (const expr::VarRef &r : inv.lhs.vars())
        vars.push_back(r.var);
    if (inv.op != expr::CmpOp::In)
        for (const expr::VarRef &r : inv.rhs.vars())
            vars.push_back(r.var);
    sortUnique(vars);
    return vars;
}

/** Classes the program point itself embodies. */
SecClassSet
pointClasses(trace::Point point)
{
    SecClassSet cs;
    if (point.isInterrupt() ||
        point.exception() != isa::Exception::None) {
        cs.add(SecClass::ExceptionHandling);
        if (!point.isInterrupt())
            return cs; // the exception dominates the base insn
    }
    if (point.isInterrupt())
        return cs;
    const isa::InsnInfo &ii = isa::info(point.mnemonic());
    switch (ii.kind) {
    case isa::InsnKind::Load:
    case isa::InsnKind::Store:
        cs.add(SecClass::MemoryProtection);
        break;
    case isa::InsnKind::Jump:
    case isa::InsnKind::Branch:
        cs.add(SecClass::ControlFlow);
        break;
    case isa::InsnKind::System:
        if (ii.mnemonic != isa::Mnemonic::L_NOP) {
            cs.add(SecClass::ExceptionHandling);
            if (ii.mnemonic == isa::Mnemonic::L_RFE)
                cs.add(SecClass::Privilege);
        }
        break;
    case isa::InsnKind::SprMove:
        if (ii.mnemonic != isa::Mnemonic::L_MOVHI)
            cs.add(SecClass::Privilege);
        break;
    default:
        break;
    }
    return cs;
}

} // namespace

SecClassSet
SecSignature::within(uint32_t k) const
{
    SecClassSet cs;
    for (size_t i = 0; i < numSecClasses; ++i) {
        if (dist[i] != unreachableDist && dist[i] <= k)
            cs.add(allClasses[i]);
    }
    return cs;
}

std::string
SecSignature::str() const
{
    std::string out;
    for (size_t i = 0; i < numSecClasses; ++i) {
        if (dist[i] == unreachableDist)
            continue;
        if (!out.empty())
            out += ' ';
        out += shortNames[i];
        out += '@';
        out += std::to_string(dist[i]);
    }
    return out.empty() ? "-" : out;
}

SecSignature
invariantSignature(const StateGraph &graph, const expr::Invariant &inv)
{
    SecSignature sig;
    DistMap dist = reachableFrom(graph, invariantVars(inv));
    for (uint16_t v = 0; v < trace::numVars; ++v) {
        if (dist[v] == unreachableDist)
            continue;
        SecClassSet cs = varSecurityClasses(v);
        for (size_t i = 0; i < numSecClasses; ++i) {
            if (cs.has(allClasses[i]))
                sig.dist[i] = std::min(sig.dist[i], dist[v]);
        }
    }
    SecClassSet pc = pointClasses(inv.point);
    for (size_t i = 0; i < numSecClasses; ++i) {
        if (pc.has(allClasses[i]))
            sig.dist[i] = 0;
    }
    return sig;
}

std::vector<uint16_t>
mutationFootprint(cpu::Mutation m)
{
    using cpu::Mutation;
    auto gprs = [] {
        std::vector<uint16_t> v;
        for (unsigned n = 0; n < isa::numGprs; ++n)
            v.push_back(trace::gprVar(n));
        v.push_back(VarId::OPDEST);
        return v;
    };
    switch (m) {
    case Mutation::B1_SysDelaySlotEpcr:
    case Mutation::B5_RangeEpcrWrong:
    case Mutation::B9_IllegalEpcrWrong:
    case Mutation::B15_TrapEpcrWrong:
    case Mutation::H1_IntrEpcrOff:
    case Mutation::H10_SysEpcrSelf:
        return {VarId::EPCR0};
    case Mutation::B2_MacrcAfterMacStall:
    case Mutation::H13_PrefetchStall:
    case Mutation::H14_StoreMerge:
        return {VarId::USTALL};
    case Mutation::B3_ExtwWrong:
        return {VarId::OPDEST};
    case Mutation::B4_DsxNotImplemented:
        return {VarId::SR, VarId::DSX, VarId::ESR0};
    case Mutation::B6_UnsignedCmpMsb:
    case Mutation::B7_SfltuWrong:
    case Mutation::H9_SfgesEqWrong:
        return {VarId::SF};
    case Mutation::B8_RoriVector:
        return {VarId::ROR, VarId::OPDEST, VarId::NPC};
    case Mutation::B10_Gpr0Writable:
        return {trace::gprVar(0)};
    case Mutation::B11_FetchAfterLsuStall:
        return {VarId::IMEM, VarId::INSN};
    case Mutation::B12_MtsprDropped:
        return {VarId::SPRV,  VarId::SR,    VarId::ESR0, VarId::EPCR0,
                VarId::EEAR0, VarId::MACLO, VarId::MACHI};
    case Mutation::B13_JalLargeDispLr:
    case Mutation::H4_JalrLrWrong:
        return {trace::gprVar(isa::linkReg), VarId::OPDEST};
    case Mutation::B14_ByteStoreCorrupt:
        return {VarId::MEMBUS, VarId::DMEM};
    case Mutation::B16_LoadExtendWrong:
        return {VarId::OPDEST, VarId::MEMOK};
    case Mutation::B17_StoreForwardClobber:
        return {VarId::OPDEST, VarId::MEMBUS};
    case Mutation::H2_MovhiClearsFlag:
        return {VarId::SF, VarId::SR};
    case Mutation::H3_StoreAddrBit:
        return {VarId::MEMADDR, VarId::DMEM};
    case Mutation::H5_MfsprEsrAlias:
        return {VarId::SPRV, VarId::OPDEST};
    case Mutation::H6_RfeDropsFo:
        return {VarId::SR, VarId::FO};
    case Mutation::H7_RfeKeepsSm:
        return {VarId::SR, VarId::SM};
    case Mutation::H8_LoadRotated:
        return {VarId::MEMBUS, VarId::OPDEST};
    case Mutation::H11_CompareClobbersReg:
        return gprs();
    case Mutation::H12_AlignSuppressed:
        return {VarId::MEMADDR, VarId::EA, VarId::EPCR0, VarId::ESR0,
                VarId::EEAR0, VarId::NPC};
    case Mutation::NumMutations:
        break;
    }
    panic("bad Mutation %d", int(m));
}

BugReach
bugReach(const StateGraph &graph, cpu::Mutation m)
{
    BugReach reach;
    reach.footprint = mutationFootprint(m);
    reach.dist = reachableFrom(graph, reach.footprint);
    return reach;
}

uint32_t
invariantDistance(const BugReach &reach, const expr::Invariant &inv)
{
    std::vector<uint16_t> vars = invariantVars(inv);
    if (vars.empty()) {
        // Degenerate constant comparison: fall back to the program
        // point's defs, the state whose behaviour the point records.
        vars = pointDefUse(inv.point).defs;
    }
    uint32_t best = unreachableDist;
    for (uint16_t v : vars)
        best = std::min(best, reach.dist[v]);
    return best;
}

TriageOrder
triageOrder(const StateGraph &graph,
            const std::vector<expr::Invariant> &invs, cpu::Mutation m)
{
    BugReach reach = bugReach(graph, m);
    TriageOrder t;
    t.distance.reserve(invs.size());
    for (const expr::Invariant &inv : invs)
        t.distance.push_back(invariantDistance(reach, inv));
    t.order.resize(invs.size());
    for (size_t i = 0; i < invs.size(); ++i)
        t.order[i] = i;
    std::stable_sort(t.order.begin(), t.order.end(),
                     [&t](size_t a, size_t b) {
                         return t.distance[a] < t.distance[b];
                     });
    return t;
}

double
rankQuality(const std::vector<size_t> &order,
            const std::vector<size_t> &sci)
{
    if (sci.empty())
        return 1.0;
    if (order.size() <= 1)
        return 1.0;
    std::vector<size_t> rank(order.size(), 0);
    for (size_t pos = 0; pos < order.size(); ++pos)
        rank[order[pos]] = pos;
    double sum = 0.0;
    for (size_t idx : sci)
        sum += double(rank[idx]) / double(order.size() - 1);
    return 1.0 - sum / double(sci.size());
}

} // namespace scif::analysis

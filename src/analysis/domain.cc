#include "domain.hh"

#include <algorithm>

#include "support/strings.hh"

namespace scif::analysis {

AbstractValue
AbstractValue::fromRange(uint32_t lo, uint32_t hi)
{
    AbstractValue v;
    v.range = {lo, hi};
    v.reduce();
    return v;
}

AbstractValue
AbstractValue::fromBits(uint32_t zeros, uint32_t ones)
{
    AbstractValue v;
    v.bits = {zeros, ones};
    v.reduce();
    return v;
}

AbstractValue
AbstractValue::join(const AbstractValue &o) const
{
    if (isBottom())
        return o;
    if (o.isBottom())
        return *this;
    AbstractValue v{bits.join(o.bits), range.join(o.range)};
    v.reduce();
    return v;
}

AbstractValue
AbstractValue::meet(const AbstractValue &o) const
{
    AbstractValue v{bits.meet(o.bits), range.meet(o.range)};
    v.reduce();
    return v;
}

void
AbstractValue::reduce()
{
    if (isBottom())
        return;

    // Bits -> range: the known bits bound the value from both sides.
    range = range.meet({bits.minValue(), bits.maxValue()});
    if (range.isBottom())
        return;

    // Range -> bits: lo and hi share a leading prefix of known bits.
    uint32_t differ = range.lo ^ range.hi;
    if (differ == 0) {
        bits = bits.meet(KnownBits::constant(range.lo));
        return;
    }
    // Mask of all positions at or below the highest differing bit.
    uint32_t suffix = differ;
    suffix |= suffix >> 1;
    suffix |= suffix >> 2;
    suffix |= suffix >> 4;
    suffix |= suffix >> 8;
    suffix |= suffix >> 16;
    uint32_t prefix = ~suffix;
    bits = bits.meet(
        {prefix & ~range.lo, prefix & range.lo});
}

std::string
AbstractValue::str() const
{
    if (isBottom())
        return "bottom";
    if (isConstant())
        return format("0x%x", constantValue());
    std::string out =
        format("[0x%x, 0x%x]", range.lo, range.hi);
    if (bits.zeros != 0 || bits.ones != 0)
        out += format(" bits(0:%08x 1:%08x)", bits.zeros, bits.ones);
    return out;
}

namespace {

/** Known-bits addition via carry propagation from the LSB up. */
KnownBits
kbAdd(const KnownBits &a, const KnownBits &b)
{
    if (a.isBottom() || b.isBottom())
        return a.meet(b);
    KnownBits out = KnownBits::top();
    // carry state: 0 known-zero, 1 known-one, 2 unknown
    int carry = 0;
    for (unsigned i = 0; i < 32; ++i) {
        uint32_t m = 1u << i;
        int abit = (a.ones & m) ? 1 : (a.zeros & m) ? 0 : 2;
        int bbit = (b.ones & m) ? 1 : (b.zeros & m) ? 0 : 2;
        if (abit != 2 && bbit != 2 && carry != 2) {
            int sum = abit + bbit + carry;
            if (sum & 1)
                out.ones |= m;
            else
                out.zeros |= m;
            carry = sum >> 1;
        } else if (abit == 0 && bbit == 0) {
            // 0 + 0 + carry(0/1/?) never carries out.
            carry = 0;
        } else if (abit == 1 && bbit == 1) {
            // 1 + 1 + anything always carries out.
            carry = 1;
        } else {
            carry = 2;
        }
    }
    return out;
}

/** The all-ones mask covering every bit up to the MSB of @p v. */
uint32_t
saturateToMask(uint32_t v)
{
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    return v;
}

} // namespace

AbstractValue
avAnd(const AbstractValue &a, const AbstractValue &b)
{
    AbstractValue v;
    v.bits = {a.bits.zeros | b.bits.zeros, a.bits.ones & b.bits.ones};
    v.range = {0, std::min(a.range.hi, b.range.hi)};
    v.reduce();
    return v;
}

AbstractValue
avOr(const AbstractValue &a, const AbstractValue &b)
{
    AbstractValue v;
    v.bits = {a.bits.zeros & b.bits.zeros, a.bits.ones | b.bits.ones};
    v.range = {std::max(a.range.lo, b.range.lo),
               saturateToMask(a.range.hi) | saturateToMask(b.range.hi)};
    v.reduce();
    return v;
}

AbstractValue
avAdd(const AbstractValue &a, const AbstractValue &b)
{
    AbstractValue v;
    v.bits = kbAdd(a.bits, b.bits);
    uint64_t lo = uint64_t(a.range.lo) + uint64_t(b.range.lo);
    uint64_t hi = uint64_t(a.range.hi) + uint64_t(b.range.hi);
    if (hi <= 0xffffffffull) {
        v.range = {uint32_t(lo), uint32_t(hi)};
    } else if (lo > 0xffffffffull) {
        // Every sum wraps exactly once: still a contiguous range.
        v.range = {uint32_t(lo), uint32_t(hi)};
    }
    // Mixed wrap: the range splits; keep interval top.
    v.reduce();
    return v;
}

AbstractValue
avNot(const AbstractValue &a)
{
    AbstractValue v;
    v.bits = {a.bits.ones, a.bits.zeros};
    v.range = {~a.range.hi, ~a.range.lo};
    v.reduce();
    return v;
}

AbstractValue
avSub(const AbstractValue &a, const AbstractValue &b)
{
    // a - b == a + ~b + 1 (bits path); the interval path uses the
    // signed difference of the bounds.
    AbstractValue v;
    v.bits = kbAdd(kbAdd(a.bits, {b.bits.ones, b.bits.zeros}),
                   KnownBits::constant(1));
    int64_t lo = int64_t(a.range.lo) - int64_t(b.range.hi);
    int64_t hi = int64_t(a.range.hi) - int64_t(b.range.lo);
    if (lo >= 0) {
        v.range = {uint32_t(lo), uint32_t(hi)};
    } else if (hi < 0) {
        // Every difference wraps exactly once.
        v.range = {uint32_t(lo + 0x100000000ll),
                   uint32_t(hi + 0x100000000ll)};
    }
    v.reduce();
    return v;
}

AbstractValue
avMulConst(const AbstractValue &a, uint32_t m)
{
    if (m == 1)
        return a;
    AbstractValue v;
    if (a.isConstant()) {
        return AbstractValue::constant(a.constantValue() * m);
    }
    if (m == 0)
        return AbstractValue::constant(0);

    // Interval: exact when no bound overflows.
    uint64_t lo = uint64_t(a.range.lo) * m;
    uint64_t hi = uint64_t(a.range.hi) * m;
    if (hi <= 0xffffffffull)
        v.range = {uint32_t(lo), uint32_t(hi)};

    // Bits: the product's low bits depend only on the operand's low
    // bits; each contiguous known low bit of a (plus the multiplier's
    // trailing zeros) pins one product bit.
    unsigned lowKnown = 0;
    while (lowKnown < 32 &&
           ((a.bits.zeros | a.bits.ones) & (1u << lowKnown)))
        ++lowKnown;
    unsigned tz = 0;
    while (tz < 32 && !(m & (1u << tz)))
        ++tz;
    unsigned known = std::min(32u, lowKnown + tz);
    if (known > 0) {
        uint32_t mask =
            known >= 32 ? 0xffffffffu : (1u << known) - 1;
        uint32_t low = (a.bits.ones & mask) * m;
        v.bits = {mask & ~low, mask & low};
    }
    v.reduce();
    return v;
}

AbstractValue
avModConst(const AbstractValue &a, uint32_t m)
{
    if (m == 0)
        return a;   // Operand::eval skips mod 0
    if (a.isConstant())
        return AbstractValue::constant(a.constantValue() % m);
    AbstractValue v;
    if ((m & (m - 1)) == 0) {
        // Power of two: a bit mask; low bits survive.
        uint32_t mask = m - 1;
        v.bits = {~mask | (a.bits.zeros & mask), a.bits.ones & mask};
    } else {
        v.range = {0, m - 1};
        if (a.range.hi < m)
            v.range = a.range;
    }
    v.reduce();
    return v;
}

AbstractValue
avAddConst(const AbstractValue &a, uint32_t c)
{
    if (c == 0)
        return a;
    return avAdd(a, AbstractValue::constant(c));
}

std::string_view
truthName(Truth t)
{
    switch (t) {
      case Truth::True: return "true";
      case Truth::False: return "false";
      case Truth::Unknown: return "unknown";
    }
    return "?";
}

namespace {

Truth
negate(Truth t)
{
    if (t == Truth::True)
        return Truth::False;
    if (t == Truth::False)
        return Truth::True;
    return Truth::Unknown;
}

Truth
decideEq(const AbstractValue &l, const AbstractValue &r)
{
    if (l.isConstant() && r.isConstant()) {
        return l.constantValue() == r.constantValue() ? Truth::True
                                                      : Truth::False;
    }
    // Disjoint ranges or conflicting known bits rule equality out.
    if (l.range.hi < r.range.lo || r.range.hi < l.range.lo)
        return Truth::False;
    if ((l.bits.ones & r.bits.zeros) || (r.bits.ones & l.bits.zeros))
        return Truth::False;
    return Truth::Unknown;
}

Truth
decideGt(const AbstractValue &l, const AbstractValue &r)
{
    if (l.range.lo > r.range.hi)
        return Truth::True;
    if (l.range.hi <= r.range.lo)
        return Truth::False;
    return Truth::Unknown;
}

Truth
decideGe(const AbstractValue &l, const AbstractValue &r)
{
    if (l.range.lo >= r.range.hi)
        return Truth::True;
    if (l.range.hi < r.range.lo)
        return Truth::False;
    return Truth::Unknown;
}

/** Enumeration budget for deciding membership by exhaustion. */
constexpr uint64_t maxEnumerate = 256;

Truth
decideIn(const AbstractValue &l, const std::vector<uint32_t> &set)
{
    if (l.isConstant()) {
        return std::binary_search(set.begin(), set.end(),
                                  l.constantValue())
                   ? Truth::True
                   : Truth::False;
    }
    // No consistent concretization intersects the set: never a member.
    bool anyMember = false;
    for (uint32_t v : set)
        anyMember |= l.contains(v);
    if (!anyMember)
        return Truth::False;
    // Small concretizations are checked exhaustively.
    uint64_t span =
        uint64_t(l.range.hi) - uint64_t(l.range.lo) + 1;
    if (span <= maxEnumerate) {
        for (uint64_t v = l.range.lo; v <= l.range.hi; ++v) {
            if (!l.contains(uint32_t(v)))
                continue;
            if (!std::binary_search(set.begin(), set.end(),
                                    uint32_t(v)))
                return Truth::Unknown;
        }
        return Truth::True;
    }
    return Truth::Unknown;
}

} // namespace

Truth
compare(expr::CmpOp op, const AbstractValue &l, const AbstractValue &r,
        const std::vector<uint32_t> &inSet)
{
    if (l.isBottom() || r.isBottom())
        return Truth::Unknown;
    switch (op) {
      case expr::CmpOp::Eq: return decideEq(l, r);
      case expr::CmpOp::Ne: return negate(decideEq(l, r));
      case expr::CmpOp::Gt: return decideGt(l, r);
      case expr::CmpOp::Ge: return decideGe(l, r);
      case expr::CmpOp::Lt: return decideGt(r, l);
      case expr::CmpOp::Le: return decideGe(r, l);
      case expr::CmpOp::In: return decideIn(l, inSet);
    }
    return Truth::Unknown;
}

} // namespace scif::analysis

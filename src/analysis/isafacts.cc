#include "isafacts.hh"

#include "isa/arch.hh"
#include "isa/insn.hh"

namespace scif::analysis {

namespace {

using trace::VarId;

/** The 0/1 range of the derived flag variables. */
const AbstractValue &
bitValue()
{
    static const AbstractValue v = AbstractValue::fromRange(0, 1);
    return v;
}

/** The 5-bit register-index range. */
const AbstractValue &
regIndex()
{
    static const AbstractValue v = AbstractValue::fromRange(0, 31);
    return v;
}

/** Facts every record has, whatever the point: the derived flag
 *  variables are single bits by construction (trace/derived.cc). */
void
seedGlobalStructural(Env &env)
{
    for (uint16_t var : {uint16_t(VarId::SF), uint16_t(VarId::SM),
                         uint16_t(VarId::CY), uint16_t(VarId::OV),
                         uint16_t(VarId::DSX), uint16_t(VarId::FO),
                         uint16_t(VarId::FLAGOK),
                         uint16_t(VarId::MEMOK)}) {
        env.constrainBoth(var, bitValue());
    }
}

/** @return true if the format decodes the given register field. */
bool
hasRa(isa::Format f)
{
    using isa::Format;
    switch (f) {
      case Format::RRR:
      case Format::RRDA:
      case Format::RRAB:
      case Format::RRI:
      case Format::LOAD:
      case Format::RIA:
      case Format::RRL:
      case Format::STORE:
      case Format::MTSPR:
        return true;
      default:
        return false;
    }
}

bool
hasRb(isa::Format f)
{
    using isa::Format;
    switch (f) {
      case Format::JR:
      case Format::RRR:
      case Format::RRAB:
      case Format::STORE:
      case Format::MTSPR:
        return true;
      default:
        return false;
    }
}

/** Per-point decoder facts: the instruction word's fixed encoding
 *  bits, the immediate's format range, and the register fields.
 *  Sound for any processor because the tracer files a record under
 *  the point its *decoded* instruction word names, and a fused
 *  branch/delay-slot record keeps the branch's word and fields. */
void
seedPointStructural(Env &env, trace::Point point)
{
    if (point.isInterrupt())
        return;
    const isa::InsnInfo &ii = isa::info(point.mnemonic());

    // INSN: every fixed bit of the encoding is known.
    uint32_t mask = isa::formatMask(ii.format);
    env.constrainBoth(uint16_t(VarId::INSN),
                      AbstractValue::fromBits(mask & ~ii.match,
                                              mask & ii.match));

    // IMM: the decoder's zero-extension bounds it; sign-extended
    // immediates cover two unsigned ranges and get no interval fact.
    using isa::Format;
    switch (ii.format) {
      case Format::RRL:
        env.constrainBoth(uint16_t(VarId::IMM),
                          AbstractValue::fromRange(0, 63));
        break;
      case Format::RI:
      case Format::K16:
        env.constrainBoth(uint16_t(VarId::IMM),
                          AbstractValue::fromRange(0, 0xffff));
        break;
      case Format::RRI:
      case Format::LOAD:
      case Format::RIA:
      case Format::STORE:
      case Format::MTSPR:
        if (!ii.signedImm) {
            env.constrainBoth(uint16_t(VarId::IMM),
                              AbstractValue::fromRange(0, 0xffff));
        }
        break;
      case Format::J:
        break;   // sign-extended 26-bit offset: no unsigned range
      case Format::JR:
      case Format::RRR:
      case Format::RRDA:
      case Format::RRAB:
      case Format::RD:
      case Format::NONE:
        env.constrainBoth(uint16_t(VarId::IMM),
                          AbstractValue::constant(0));
        break;
    }

    // Register index fields: 5-bit decoder outputs, or hardwired 0
    // when the format has no such field (cpu.cc leaves them 0; the
    // delay-slot half of a fused record never rewrites REGA/REGB).
    env.constrainBoth(uint16_t(VarId::REGA),
                      hasRa(ii.format) ? regIndex()
                                       : AbstractValue::constant(0));
    env.constrainBoth(uint16_t(VarId::REGB),
                      hasRb(ii.format) ? regIndex()
                                       : AbstractValue::constant(0));
    // REGD is rewritten by every writeGpr(): the link write of
    // l.jal/l.jalr and any rD write of a fused delay-slot
    // instruction land in the branch's record, so a point with a
    // delay slot (or an rD writer) only bounds REGD to 5 bits.
    env.constrainBoth(uint16_t(VarId::REGD),
                      ii.writesRd || ii.hasDelaySlot
                          ? regIndex()
                          : AbstractValue::constant(0));
}

/** ISA promises a correct processor keeps (and a buggy one may
 *  break): word-aligned control flow, the SR fixed-one bit, the
 *  hardwired zero register. */
void
seedArchitectural(Env &env)
{
    const AbstractValue aligned = AbstractValue::fromBits(0x3, 0);
    for (uint16_t var : {uint16_t(VarId::PC), uint16_t(VarId::NPC),
                         uint16_t(VarId::NNPC), uint16_t(VarId::PPC),
                         uint16_t(VarId::WBPC),
                         uint16_t(VarId::IDPC)}) {
        env.constrainBoth(var, aligned);
    }
    env.constrainBoth(uint16_t(VarId::SR),
                      AbstractValue::fromBits(0, 1u << isa::sr::FO));
    env.constrainBoth(uint16_t(trace::gprVar(0)),
                      AbstractValue::constant(0));
}

} // namespace

Env
structuralEnv(trace::Point point)
{
    Env env;
    seedGlobalStructural(env);
    seedPointStructural(env, point);
    return env;
}

Env
architecturalEnv(trace::Point point)
{
    Env env = structuralEnv(point);
    seedArchitectural(env);
    return env;
}

} // namespace scif::analysis

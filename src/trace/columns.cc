#include "columns.hh"

#include <algorithm>
#include <cstring>
#include <new>

#include "support/logging.hh"

namespace scif::trace {

void
PointColumns::AlignedDelete::operator()(uint32_t *p) const
{
    ::operator delete[](p, std::align_val_t(columnAlignment));
}

PointColumns::Buffer
PointColumns::allocate(size_t words)
{
    void *raw = ::operator new[](words * sizeof(uint32_t),
                                 std::align_val_t(columnAlignment));
    std::memset(raw, 0, words * sizeof(uint32_t));
    return Buffer(static_cast<uint32_t *>(raw));
}

const uint32_t *
PointColumns::modColumn(uint16_t slot, uint32_t mod)
{
    SCIF_ASSERT(mod != 0);
    const uint32_t *base = column(slot);
    SCIF_ASSERT(base != nullptr);

    uint64_t key = uint64_t(slot) << 32 | mod;
    auto it = modCache_.find(key);
    if (it != modCache_.end())
        return it->second.get();

    Buffer buf = allocate(padded_);
    uint32_t *out = buf.get();
    if ((mod & (mod - 1)) == 0) {
        uint32_t mask = mod - 1;
        for (size_t i = 0; i < rows_; ++i)
            out[i] = base[i] & mask;
    } else {
        for (size_t i = 0; i < rows_; ++i)
            out[i] = base[i] % mod;
    }
    const uint32_t *result = out;
    modCache_.emplace(key, std::move(buf));
    return result;
}

ColumnSet
ColumnSet::build(const std::vector<const TraceBuffer *> &traces,
                 const std::vector<uint16_t> &slots,
                 const std::set<uint16_t> *pointFilter)
{
    // Resolve the materialization list.
    std::vector<uint16_t> wanted = slots;
    if (wanted.empty()) {
        wanted.resize(numSlots);
        for (uint16_t s = 0; s < numSlots; ++s)
            wanted[s] = s;
    } else {
        std::sort(wanted.begin(), wanted.end());
        wanted.erase(std::unique(wanted.begin(), wanted.end()),
                     wanted.end());
        for (uint16_t s : wanted)
            SCIF_ASSERT(s < numSlots);
    }

    // Pass 1: count rows per point.
    std::map<uint16_t, size_t> counts;
    for (const auto *buf : traces) {
        for (const auto &rec : buf->records()) {
            uint16_t id = rec.point.id();
            if (pointFilter && !pointFilter->count(id))
                continue;
            ++counts[id];
        }
    }

    ColumnSet set;
    set.points_.reserve(counts.size());
    std::map<uint16_t, size_t> pointPos;
    for (const auto &[id, n] : counts) {
        PointColumns pc;
        pc.point_ = Point::fromId(id);
        pc.rows_ = n;
        pc.padded_ = (n + 15) & ~size_t(15);
        pc.data_ = PointColumns::allocate(pc.padded_ * wanted.size());
        pc.slotPos_.assign(numSlots, -1);
        for (size_t i = 0; i < wanted.size(); ++i)
            pc.slotPos_[wanted[i]] = int32_t(i);
        pointPos[id] = set.points_.size();
        set.points_.push_back(std::move(pc));
    }

    // Pass 2: scatter record values into the columns, preserving
    // trace order within each point.
    std::vector<size_t> cursor(set.points_.size(), 0);
    for (const auto *buf : traces) {
        for (const auto &rec : buf->records()) {
            auto it = pointPos.find(rec.point.id());
            if (it == pointPos.end())
                continue;
            PointColumns &pc = set.points_[it->second];
            size_t row = cursor[it->second]++;
            uint32_t *data = pc.data_.get();
            for (uint16_t s : wanted) {
                uint16_t var = slotVar(s);
                uint32_t v = slotOrig(s) ? rec.pre[var] : rec.post[var];
                data[size_t(pc.slotPos_[s]) * pc.padded_ + row] = v;
            }
        }
    }
    return set;
}

ColumnSet
ColumnSet::build(const TraceBuffer &trace,
                 const std::vector<uint16_t> &slots,
                 const std::set<uint16_t> *pointFilter)
{
    std::vector<const TraceBuffer *> traces = {&trace};
    return build(traces, slots, pointFilter);
}

PointColumns *
ColumnSet::point(uint16_t pointId)
{
    // points_ is ascending by id (built from an ordered map).
    auto it = std::lower_bound(points_.begin(), points_.end(), pointId,
                               [](const PointColumns &pc, uint16_t id) {
                                   return pc.point().id() < id;
                               });
    if (it == points_.end() || it->point().id() != pointId)
        return nullptr;
    return &*it;
}

const PointColumns *
ColumnSet::point(uint16_t pointId) const
{
    return const_cast<ColumnSet *>(this)->point(pointId);
}

uint64_t
ColumnSet::totalRows() const
{
    uint64_t total = 0;
    for (const auto &pc : points_)
        total += pc.rows();
    return total;
}

} // namespace scif::trace

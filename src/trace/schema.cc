#include "schema.hh"

#include <map>
#include <string>

#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::trace {

namespace {

const char *const fixedNames[] = {
    "PC",     "NPC",  "NNPC",   "PPC",    "WBPC",   "IDPC", "SR",
    "ESR0",   "EPCR0", "EEAR0", "MACLO",  "MACHI",  "SPRA", "SPRV",
    "INSN",   "IMEM", "IMM",    "OPA",    "OPB",    "OPDEST",
    "REGA",   "REGB", "REGD",   "MEMADDR", "MEMBUS", "ROR",  "DIV",
    "DMEM",
    "SF",     "SM",   "CY",     "OV",     "DSX",    "FO",
    "FLAGOK", "MEMOK", "JEA",   "EA",    "USTALL",
};

constexpr size_t numFixedNames = sizeof(fixedNames) / sizeof(fixedNames[0]);

static_assert(32 + numFixedNames == size_t(NumVars),
              "schema names out of sync with VarId");

const std::map<std::string, uint16_t> &
nameIndex()
{
    static const auto *index = [] {
        auto *m = new std::map<std::string, uint16_t>();
        for (uint16_t v = 0; v < numVars; ++v)
            (*m)[std::string(varName(v))] = v;
        return m;
    }();
    return *index;
}

} // namespace

std::string_view
varName(uint16_t var)
{
    SCIF_ASSERT(var < numVars);
    if (var < 32) {
        static const std::string *gprNames = [] {
            auto *names = new std::string[32];
            for (unsigned i = 0; i < 32; ++i)
                names[i] = format("GPR%u", i);
            return names;
        }();
        return gprNames[var];
    }
    return fixedNames[var - 32];
}

uint16_t
varByName(std::string_view name)
{
    auto it = nameIndex().find(std::string(name));
    return it == nameIndex().end() ? numVars : it->second;
}

} // namespace scif::trace

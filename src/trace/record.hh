/**
 * @file
 * Trace records and program points.
 *
 * One record is emitted per retired instruction, with two adaptations
 * from the paper: a control-flow instruction and its delay-slot
 * instruction are fused into a single record (§3.1.5), and a record
 * that takes a synchronous exception is filed under an
 * exception-qualified program point ("l.add@range") so that
 * exceptional and normal behaviour are modelled separately.
 * Asynchronous interrupts get their own pseudo points ("int@tick").
 */

#ifndef SCIFINDER_TRACE_RECORD_HH
#define SCIFINDER_TRACE_RECORD_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/arch.hh"
#include "isa/insn.hh"
#include "trace/schema.hh"

namespace scif::trace {

/**
 * A program point identifier: (mnemonic, exception) packed into a
 * 16-bit id. Interrupt pseudo points use the reserved mnemonic slot.
 */
class Point
{
  public:
    Point() = default;

    /** Point for an instruction, optionally exception qualified. */
    static Point
    insn(isa::Mnemonic m, isa::Exception e = isa::Exception::None)
    {
        return Point(uint16_t(m), uint8_t(e));
    }

    /** Pseudo point for an asynchronous interrupt. */
    static Point
    interrupt(isa::Exception e)
    {
        return Point(pseudoMnemonic, uint8_t(e));
    }

    /** @return packed id usable as a map key. */
    uint16_t id() const { return uint16_t(mnem_ << 5 | exc_); }

    /** Rebuild a Point from its packed id. */
    static Point
    fromId(uint16_t id)
    {
        return Point(id >> 5, uint8_t(id & 0x1f));
    }

    /** @return true for interrupt pseudo points. */
    bool isInterrupt() const { return mnem_ == pseudoMnemonic; }

    /** @return the instruction mnemonic (only for non-pseudo points). */
    isa::Mnemonic mnemonic() const { return isa::Mnemonic(mnem_); }

    /** @return the qualifying exception (None if unqualified). */
    isa::Exception exception() const { return isa::Exception(exc_); }

    /** @return printable name, e.g. "l.add", "l.sys@syscall". */
    std::string name() const;

    /** Parse a point name back; aborts on malformed input. */
    static Point parse(const std::string &name);

    bool operator==(const Point &o) const = default;
    bool operator<(const Point &o) const { return id() < o.id(); }

  private:
    Point(uint16_t mnem, uint8_t exc) : mnem_(mnem), exc_(exc) {}

    /** Mnemonic slot reserved for interrupt pseudo points. */
    static constexpr uint16_t pseudoMnemonic = 248;

    uint16_t mnem_ = 0;
    uint8_t exc_ = 0;
};

/**
 * One instruction-boundary observation: the program point plus the
 * value of every schema variable before (orig) and after execution.
 */
struct Record
{
    Point point;
    uint64_t index = 0;   ///< retired-instruction sequence number
    bool fused = false;   ///< control-flow pair fused into this record

    std::array<uint32_t, numVars> pre{};
    std::array<uint32_t, numVars> post{};

    uint32_t orig(uint16_t var) const { return pre[var]; }
    uint32_t now(uint16_t var) const { return post[var]; }
};

/** Sink interface the simulator emits records into. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume one record. */
    virtual void record(const Record &rec) = 0;
};

/** In-memory trace: the common sink for analysis runs. */
class TraceBuffer : public TraceSink
{
  public:
    void record(const Record &rec) override { records_.push_back(rec); }

    const std::vector<Record> &records() const { return records_; }
    size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Pre-size the backing store for @p n records. */
    void reserve(size_t n) { records_.reserve(n); }

    /** Append all records of another buffer. */
    void append(const TraceBuffer &other);

  private:
    std::vector<Record> records_;
};

} // namespace scif::trace

#endif // SCIFINDER_TRACE_RECORD_HH

/**
 * @file
 * Derived trace variables (§3.1.4).
 *
 * Derived variables are pure functions of the base record, configured
 * by the user of the invariant generator. They let the engine express
 * hardware idioms the plain grammar cannot: unpacked flag bits from
 * the SR "record", the control-flow-flag correctness witness used by
 * property p28, and the optional effective-address variables whose
 * absence explains the paper's missing property p10.
 */

#ifndef SCIFINDER_TRACE_DERIVED_HH
#define SCIFINDER_TRACE_DERIVED_HH

#include "trace/record.hh"

namespace scif::trace {

/**
 * Populate the derived slots (SF..EA) of @p rec, pre and post, from
 * its base variables. Idempotent.
 */
void computeDerived(Record &rec);

/**
 * The ISA compare oracle behind FLAGOK: the architecturally correct
 * SR[F] result of compare instruction @p m with operand values
 * @p a and @p b (b is the immediate for the *i forms).
 *
 * @return 0 or 1; aborts if @p m is not a compare.
 */
uint32_t compareOracle(isa::Mnemonic m, uint32_t a, uint32_t b);

} // namespace scif::trace

#endif // SCIFINDER_TRACE_DERIVED_HH

/**
 * @file
 * The trace variable schema: the fixed set of software-visible
 * (ISA-level) variables recorded at every instruction boundary,
 * mirroring SCIFinder §3.1.3 ("all registers and signals that are
 * visible to software: all GPRs, all SPRs, flags, data and address of
 * the memory subsystem, target registers, and immediate values").
 *
 * The last block of variables is *derived* (§3.1.4): values computed
 * from the base record rather than sampled from the processor, such as
 * the unpacked SR flag bits and the control-flow-flag correctness
 * variable used by property p28.
 */

#ifndef SCIFINDER_TRACE_SCHEMA_HH
#define SCIFINDER_TRACE_SCHEMA_HH

#include <cstdint>
#include <string_view>

namespace scif::trace {

/**
 * Identifiers of every tracked variable. GPRs occupy [0, 32); the
 * remaining architectural and derived variables follow.
 */
enum VarId : uint16_t {
    // General purpose registers: GPR0 + n.
    GPR0 = 0,

    PC = 32,    ///< address of the executed instruction
    NPC,        ///< address of the next instruction to execute
    NNPC,       ///< address after the next instruction
    PPC,        ///< previous program counter
    WBPC,       ///< pipeline shadow: PC of the writeback-stage insn
    IDPC,       ///< pipeline shadow: PC of the decode-stage insn
    SR,         ///< supervision register
    ESR0,       ///< exception status register
    EPCR0,      ///< exception PC register
    EEAR0,      ///< exception effective address register
    MACLO,      ///< MAC accumulator low
    MACHI,      ///< MAC accumulator high
    SPRA,       ///< SPR address touched by l.mtspr/l.mfspr (else 0)
    SPRV,       ///< value of that SPR after the instruction (else 0)
    INSN,       ///< instruction word that executed
    IMEM,       ///< instruction memory word at PC (fetch oracle)
    IMM,        ///< decoded immediate operand
    OPA,        ///< value of source operand rA
    OPB,        ///< value of source operand rB
    OPDEST,     ///< value written to the destination register
    REGA,       ///< rA register index
    REGB,       ///< rB register index
    REGD,       ///< rD register index
    MEMADDR,    ///< memory address driven by the LSU (else 0)
    MEMBUS,     ///< data transferred on the memory bus (else 0)
    ROR,        ///< rotate-unit output (else 0)
    DIV,        ///< divide-unit output (else 0)
    DMEM,       ///< memory content at MEMADDR after the access (oracle)

    // ---- derived variables (computed, §3.1.4) ----
    SF,         ///< SR[F]: conditional branch flag
    SM,         ///< SR[SM]: supervisor mode bit
    CY,         ///< SR[CY]: carry bit
    OV,         ///< SR[OV]: overflow bit
    DSX,        ///< SR[DSX]: delay-slot exception bit
    FO,         ///< SR[FO]: the fixed-one bit
    FLAGOK,     ///< compare insns: flag was set per the ISA (0/1)
    MEMOK,      ///< loads/stores: LSU extension/truncation correct (0/1)
    JEA,        ///< jump/branch effective target address (optional)
    EA,         ///< load/store effective address oracle (optional)
    USTALL,     ///< microarchitectural stall counter (optional; only
                ///< populated when the simulator's microarchitectural
                ///< trace extension is enabled — the paper's §5.2
                ///< future-work direction that makes b2 visible)

    NumVars
};

/** Total number of schema variables (pre and post both recorded). */
constexpr uint16_t numVars = uint16_t(VarId::NumVars);

/** Index of the first derived variable. */
constexpr uint16_t firstDerivedVar = uint16_t(VarId::SF);

/** @return the printable variable name ("GPR7", "EPCR0", "SF", ...). */
std::string_view varName(uint16_t var);

/** @return the VarId for a name, or NumVars if unknown. */
uint16_t varByName(std::string_view name);

/** @return the VarId of general purpose register @p n. */
constexpr uint16_t
gprVar(unsigned n)
{
    return uint16_t(GPR0 + n);
}

} // namespace scif::trace

#endif // SCIFINDER_TRACE_SCHEMA_HH

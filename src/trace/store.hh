/**
 * @file
 * Chunked, compressed trace-set store (format v2).
 *
 * The v1 trace-set artifact is a single sequential blob: loading any
 * of it means decoding all of it, and writing it means holding every
 * record in memory first. The v2 store splits each workload's stream
 * into fixed-record-count chunks, encodes each chunk column-major
 * (per-column delta + zigzag varints, a packed bit column for flags)
 * and then LZ-compresses it, and ends the file with a chunk directory
 * so any chunk can be located and decompressed independently — the
 * basis for parallel reads and for consumers that stream a corpus with
 * O(chunk x jobs) resident memory instead of O(corpus).
 *
 * Layout:
 *
 *   Header (16 B): magic "SCT2", version, numVars, nominal chunk size
 *   Chunk blobs, back to back (LZ-compressed encoded payloads)
 *   Footer: stream directory — per stream its name, record count, and
 *           per chunk {offset, stored bytes, encoded bytes, FNV-1a64
 *           checksum of the encoded payload, record count}
 *   Trailer (12 B): footer offset + footer magic "SCTF"
 *
 * Both the encoders and the compressor are deterministic, so the same
 * record streams always produce byte-identical files — including when
 * the chunks are produced in parallel and raw-merged.
 */

#ifndef SCIFINDER_TRACE_STORE_HH
#define SCIFINDER_TRACE_STORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/ioerror.hh"
#include "support/memstats.hh"
#include "trace/io.hh"
#include "trace/record.hh"

namespace scif::support {
class ThreadPool;
}

namespace scif::trace {

/** Nominal records per chunk when the caller does not choose. */
constexpr uint32_t defaultChunkRecords = 4096;

/** Directory entry locating one compressed chunk in the file. */
struct ChunkRef
{
    uint64_t offset = 0;       ///< file offset of the stored blob
    uint64_t storedBytes = 0;  ///< compressed size on disk
    uint64_t encodedBytes = 0; ///< size of the encoded payload
    uint64_t checksum = 0;     ///< FNV-1a64 of the encoded payload
    uint32_t records = 0;      ///< records decoded from this chunk
};

/** Directory entry for one named stream (workload trace). */
struct StreamInfo
{
    std::string name;
    uint64_t records = 0;
    std::vector<ChunkRef> chunks;
};

/**
 * Incremental v2 writer. Records are staged per stream and sealed
 * into compressed chunks every chunkRecords records, so writer memory
 * is bounded by one chunk regardless of stream length. All failures
 * throw support::IoError.
 */
class TraceSetWriter : public TraceSink
{
  public:
    explicit TraceSetWriter(const std::string &path,
                            uint32_t chunkRecords = defaultChunkRecords);
    ~TraceSetWriter() override;

    TraceSetWriter(const TraceSetWriter &) = delete;
    TraceSetWriter &operator=(const TraceSetWriter &) = delete;

    /** Start the next stream; streams are laid out in call order. */
    void beginStream(const std::string &name);

    /** Append one record to the open stream. */
    void record(const Record &rec) override;

    /** Seal the open stream (flushes a partial chunk). */
    void endStream();

    /**
     * Append an already-encoded chunk verbatim to the open stream
     * (parallel-merge fast path). Only valid on a chunk boundary.
     */
    void appendRawChunk(const std::vector<uint8_t> &stored,
                        const ChunkRef &ref);

    /** Write the directory and close; the artifact is invalid until
     *  this succeeds. */
    void close();

    /** @return directory of streams written so far. */
    const std::vector<StreamInfo> &streams() const { return streams_; }

    /** @return records written across all streams. */
    uint64_t totalRecords() const;

  private:
    void sealChunk();
    void writeBlob(const void *data, size_t size);

    std::FILE *file_ = nullptr;
    std::string path_;
    uint32_t chunkRecords_;
    uint64_t offset_ = 0;
    bool inStream_ = false;
    std::vector<StreamInfo> streams_;

    // Row-major staging for the open chunk, converted to columns at
    // seal time.
    std::vector<uint16_t> pointIds_;
    std::vector<uint8_t> fused_;
    std::vector<uint64_t> indexes_;
    std::vector<uint32_t> vals_; // stride 2*numVars: pre then post

    support::ResidentTracker resident_;
};

/**
 * Random-access v2 reader. The directory is parsed and validated up
 * front; chunks are then decompressed on demand via pread, so
 * concurrent readChunk() calls from a thread pool are safe. All
 * failures throw support::IoError.
 */
class TraceSetReader
{
  public:
    explicit TraceSetReader(const std::string &path);
    ~TraceSetReader();

    TraceSetReader(const TraceSetReader &) = delete;
    TraceSetReader &operator=(const TraceSetReader &) = delete;

    const std::string &path() const { return path_; }

    /** @return the nominal records-per-chunk the file was built with. */
    uint32_t chunkRecords() const { return chunkRecords_; }

    const std::vector<StreamInfo> &streams() const { return streams_; }

    uint64_t totalRecords() const;

    /**
     * Decompress, verify, and decode one chunk, appending its records
     * to @p out. Thread-safe.
     */
    void readChunk(size_t stream, size_t chunk, TraceBuffer &out) const;

    /** @return the stored (compressed) bytes of one chunk, verbatim. */
    std::vector<uint8_t> readRawChunk(size_t stream, size_t chunk) const;

    /**
     * Materialize the whole set, decompressing chunks in parallel on
     * @p pool (serial when null). Output is independent of the pool.
     */
    std::vector<NamedTrace> readAll(support::ThreadPool *pool) const;

  private:
    [[noreturn]] void
    corrupt(const std::string &why,
            uint64_t offset = support::IoError::noOffset) const;

    int fd_ = -1;
    std::string path_;
    uint32_t chunkRecords_ = 0;
    uint64_t fileSize_ = 0;
    std::vector<StreamInfo> streams_;
};

/** Sequential decoder over one stream of a TraceSetReader. */
class ChunkCursor
{
  public:
    ChunkCursor(const TraceSetReader &reader, size_t stream)
        : reader_(reader), stream_(stream)
    {}

    /** Replace @p out with the next chunk; false when exhausted. */
    bool nextChunk(TraceBuffer &out);

    /** Record-at-a-time iteration; false when exhausted. */
    bool next(Record &rec);

  private:
    const TraceSetReader &reader_;
    size_t stream_;
    size_t chunk_ = 0;
    TraceBuffer buffer_;
    size_t pos_ = 0;
    bool buffered_ = false;
};

/** @return true if @p path starts with the v2 trace-set magic. */
bool isTraceSetV2(const std::string &path);

/** Persist an in-memory corpus in the v2 format. */
void saveTraceSetV2(const std::string &path,
                    const std::vector<NamedTrace> &traces,
                    uint32_t chunkRecords = defaultChunkRecords);

/** Record-at-a-time iteration over one stream of a set artifact. */
class RecordCursor
{
  public:
    virtual ~RecordCursor() = default;

    /** @return false when the stream is exhausted. */
    virtual bool next(Record &rec) = 0;
};

/**
 * Version-agnostic read access to a trace-set artifact, for tools
 * that must work on both v1 and v2 files (dump, count, diff, ...).
 */
class TraceSetSource
{
  public:
    /** Sniff the magic and open the right implementation. */
    static std::unique_ptr<TraceSetSource> open(const std::string &path);

    virtual ~TraceSetSource() = default;

    virtual uint32_t version() const = 0;
    virtual size_t streamCount() const = 0;
    virtual const std::string &streamName(size_t i) const = 0;
    virtual uint64_t streamRecords(size_t i) const = 0;

    /** @return chunk count (a v1 stream counts as one chunk). */
    virtual size_t streamChunks(size_t i) const = 0;

    /** @return a fresh cursor over stream @p i. */
    virtual std::unique_ptr<RecordCursor> cursor(size_t i) const = 0;

    /** @return the index of the stream named @p name, or npos. */
    size_t findStream(const std::string &name) const;

    static constexpr size_t npos = size_t(-1);
};

/**
 * Merge several set artifacts (v1 or v2) into one v2 file. Chunks of
 * v2 inputs are copied raw; v1 inputs are re-encoded. Duplicate
 * stream names across inputs are an error.
 */
void mergeTraceSets(const std::string &outPath,
                    const std::vector<std::string> &inputs,
                    uint32_t chunkRecords = defaultChunkRecords);

/**
 * Re-encode a set artifact as @p version (1 or 2). Converting a file
 * back to its own version re-encodes it; v2 -> v1 -> v2 and
 * v1 -> v2 -> v1 round-trip byte-identically.
 */
void convertTraceSet(const std::string &inPath,
                     const std::string &outPath, uint32_t version,
                     uint32_t chunkRecords = defaultChunkRecords);

/**
 * Produce a v2 set with one stream per @p names entry, calling
 * produce(i, sink) to emit stream i's records. With a pool, streams
 * are produced concurrently into temporary files and raw-merged, so
 * at most (pool threads) chunk stagings are resident at once; the
 * output is byte-identical to the serial run either way.
 *
 * @return per-stream record counts.
 */
std::vector<uint64_t> buildTraceSetParallel(
    const std::string &path, uint32_t chunkRecords,
    const std::vector<std::string> &names,
    const std::function<void(size_t, TraceSink &)> &produce,
    support::ThreadPool *pool);

} // namespace scif::trace

#endif // SCIFINDER_TRACE_STORE_HH

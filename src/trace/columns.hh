/**
 * @file
 * Columnar (structure-of-arrays) trace matrices.
 *
 * Every consumer downstream of the simulator — invariant generation,
 * SCI identification, the assertion monitor's batch replays — reduces
 * to "evaluate many small expressions over many trace records". The
 * AoS Record layout is the wrong shape for that: each evaluation
 * touches two or three of the ~160 slots but strides over the whole
 * record. A ColumnSet transposes a trace set once into per-program-
 * point value matrices with one contiguous, 64-byte-aligned column
 * per (variable, pre/post) slot, so evaluation kernels stream down
 * exactly the columns they reference in cache order.
 *
 * Derived `mod m` residue columns (the modular-invariant probes the
 * generator previously recomputed per record) are built once per
 * point on first use and cached.
 */

#ifndef SCIFINDER_TRACE_COLUMNS_HH
#define SCIFINDER_TRACE_COLUMNS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "trace/record.hh"
#include "trace/schema.hh"

namespace scif::trace {

/** Number of value columns a full record expands to (pre + post). */
constexpr uint16_t numSlots = uint16_t(numVars) * 2;

/** Column id of (variable, pre/post). Pre ("orig") slots are even. */
constexpr uint16_t
slotId(uint16_t var, bool orig)
{
    return uint16_t(var * 2 + (orig ? 0 : 1));
}

/** @return the variable a slot belongs to. */
constexpr uint16_t
slotVar(uint16_t slot)
{
    return uint16_t(slot / 2);
}

/** @return true if the slot is the pre-state ("orig") column. */
constexpr bool
slotOrig(uint16_t slot)
{
    return (slot & 1) == 0;
}

/** Byte alignment of every column base pointer. */
constexpr size_t columnAlignment = 64;

/**
 * The value matrix of one program point: n rows (the records observed
 * at the point, in trace order) by one column per materialized slot.
 *
 * Rows are padded to a multiple of 16 so consecutive columns stay
 * 64-byte aligned inside the single backing allocation; padding rows
 * are zero. A PointColumns is written by ColumnSet::build and then
 * read-only, except for the lazily built residue-column cache: the
 * per-point fan-outs hand each point to exactly one worker, so
 * modColumn() needs no synchronization.
 */
class PointColumns
{
  public:
    Point point() const { return point_; }

    /** @return number of records observed at this point. */
    size_t rows() const { return rows_; }

    /** @return true if the slot's column was materialized. */
    bool has(uint16_t slot) const { return slotPos_[slot] >= 0; }

    /**
     * @return base of the slot's value column (64-byte aligned), or
     *         nullptr if the slot was not materialized.
     */
    const uint32_t *
    column(uint16_t slot) const
    {
        int32_t pos = slotPos_[slot];
        return pos < 0 ? nullptr : data_.get() + size_t(pos) * padded_;
    }

    /**
     * The derived residue column `column(slot)[i] % mod`, built on
     * first use and cached for the lifetime of the set. @p mod must
     * be non-zero and the slot materialized.
     */
    const uint32_t *modColumn(uint16_t slot, uint32_t mod);

  private:
    friend class ColumnSet;
    friend class ColumnarCapture;

    struct AlignedDelete
    {
        void operator()(uint32_t *p) const;
    };
    using Buffer = std::unique_ptr<uint32_t[], AlignedDelete>;

    static Buffer allocate(size_t words);

    Point point_;
    size_t rows_ = 0;
    size_t padded_ = 0;
    Buffer data_;
    std::vector<int32_t> slotPos_;
    std::map<uint64_t, Buffer> modCache_;
};

/**
 * A trace set transposed into per-point column matrices.
 *
 * Records keep their trace order within each point (buffers in the
 * order given, records in buffer order), so sweeping a column visits
 * the same observations in the same order as the AoS record loop it
 * replaces.
 */
class ColumnSet
{
  public:
    /**
     * Transpose @p traces.
     *
     * @param slots the slot ids to materialize; empty = all slots.
     * @param pointFilter when non-null, only these point ids are
     *        built (evaluation never touches other records).
     */
    static ColumnSet build(const std::vector<const TraceBuffer *> &traces,
                           const std::vector<uint16_t> &slots = {},
                           const std::set<uint16_t> *pointFilter = nullptr);

    /** Convenience overload for a single buffer. */
    static ColumnSet build(const TraceBuffer &trace,
                           const std::vector<uint16_t> &slots = {},
                           const std::set<uint16_t> *pointFilter = nullptr);

    /** @return the matrix for @p pointId, or nullptr if absent. */
    PointColumns *point(uint16_t pointId);
    const PointColumns *point(uint16_t pointId) const;

    /** All built points, ascending by point id. */
    std::vector<PointColumns> &points() { return points_; }
    const std::vector<PointColumns> &points() const { return points_; }

    /** @return total rows across all built points. */
    uint64_t totalRows() const;

  private:
    friend class ColumnarCapture;

    std::vector<PointColumns> points_;
};

} // namespace scif::trace

#endif // SCIFINDER_TRACE_COLUMNS_HH

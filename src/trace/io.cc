#include "io.hh"

#include <cstring>

#include "support/binio.hh"
#include "support/logging.hh"

namespace scif::trace {

namespace {

constexpr uint32_t magic = 0x53434946; // "SCIF"
constexpr uint32_t version = 1;

struct Header
{
    uint32_t magic;
    uint32_t version;
    uint32_t numVars;
    uint32_t reserved;
};

struct RecordHead
{
    uint16_t pointId;
    uint8_t fused;
    uint8_t pad;
    uint32_t pad2;
    uint64_t index;
};

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    Header h{magic, version, numVars, 0};
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1)
        fatal("cannot write trace header to '%s'", path.c_str());
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::record(const Record &rec)
{
    SCIF_ASSERT(file_);
    RecordHead head{rec.point.id(), uint8_t(rec.fused), 0, 0, rec.index};
    bool ok = std::fwrite(&head, sizeof(head), 1, file_) == 1;
    ok = ok && std::fwrite(rec.pre.data(), sizeof(uint32_t), numVars,
                           file_) == numVars;
    ok = ok && std::fwrite(rec.post.data(), sizeof(uint32_t), numVars,
                           file_) == numVars;
    if (!ok)
        fatal("trace write failed");
    ++count_;
}

void
TraceWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace file '%s'", path.c_str());
    Header h{};
    if (std::fread(&h, sizeof(h), 1, file_) != 1 || h.magic != magic)
        fatal("'%s' is not a SCIFinder trace", path.c_str());
    if (h.version != version)
        fatal("trace version %u unsupported (want %u)", h.version,
              version);
    if (h.numVars != numVars)
        fatal("trace schema has %u vars, this build has %u", h.numVars,
              unsigned(numVars));
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(Record &rec)
{
    RecordHead head{};
    if (std::fread(&head, sizeof(head), 1, file_) != 1)
        return false;
    rec.point = Point::fromId(head.pointId);
    rec.fused = head.fused != 0;
    rec.index = head.index;
    bool ok = std::fread(rec.pre.data(), sizeof(uint32_t), numVars,
                         file_) == numVars;
    ok = ok && std::fread(rec.post.data(), sizeof(uint32_t), numVars,
                          file_) == numVars;
    if (!ok)
        fatal("truncated trace record");
    return true;
}

void
TraceReader::readAll(TraceBuffer &buffer)
{
    // The on-disk record size is fixed, so the bytes remaining tell
    // us the record count; reserving up front avoids the doubling
    // reallocations on multi-million-record traces.
    long pos = std::ftell(file_);
    if (pos >= 0 && std::fseek(file_, 0, SEEK_END) == 0) {
        long end = std::ftell(file_);
        if (std::fseek(file_, pos, SEEK_SET) != 0)
            fatal("cannot seek in trace file");
        constexpr long diskRecord =
            long(sizeof(RecordHead) + 2 * sizeof(uint32_t) * numVars);
        if (end > pos)
            buffer.reserve(buffer.size() +
                           size_t((end - pos) / diskRecord));
    }
    Record rec;
    while (next(rec))
        buffer.record(rec);
}

namespace {

constexpr uint32_t setMagic = 0x53435453; // "SCTS"
constexpr uint32_t setVersion = 1;

} // namespace

void
saveTraceSet(const std::string &path,
             const std::vector<NamedTrace> &traces)
{
    support::BinWriter out(path, setMagic, setVersion);
    out.u32(numVars);
    out.u64(traces.size());
    for (const auto &nt : traces) {
        out.str(nt.name);
        out.u64(nt.trace.size());
        for (const auto &rec : nt.trace.records()) {
            out.u16(rec.point.id());
            out.u8(rec.fused);
            out.u64(rec.index);
            out.bytes(rec.pre.data(), sizeof(uint32_t) * numVars);
            out.bytes(rec.post.data(), sizeof(uint32_t) * numVars);
        }
    }
    out.close();
}

std::vector<NamedTrace>
loadTraceSet(const std::string &path)
{
    support::BinReader in(path, setMagic, setVersion, "trace set");
    uint32_t vars = in.u32();
    if (vars != numVars) {
        fatal("trace set '%s' has %u vars, this build has %u",
              path.c_str(), vars, unsigned(numVars));
    }
    uint64_t count = in.u64();
    std::vector<NamedTrace> out;
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        NamedTrace nt;
        nt.name = in.str(4096);
        uint64_t records = in.u64();
        nt.trace.reserve(records);
        for (uint64_t r = 0; r < records; ++r) {
            Record rec;
            rec.point = Point::fromId(in.u16());
            rec.fused = in.u8() != 0;
            rec.index = in.u64();
            in.bytes(rec.pre.data(), sizeof(uint32_t) * numVars);
            in.bytes(rec.post.data(), sizeof(uint32_t) * numVars);
            nt.trace.record(rec);
        }
        out.push_back(std::move(nt));
    }
    in.expectEof();
    return out;
}

} // namespace scif::trace

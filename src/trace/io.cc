#include "io.hh"

#include <cerrno>
#include <cstring>

#include "support/binio.hh"
#include "support/ioerror.hh"
#include "support/logging.hh"
#include "trace/store.hh"

namespace scif::trace {

namespace {

constexpr uint32_t magic = 0x53434946; // "SCIF"
constexpr uint32_t version = 1;

struct Header
{
    uint32_t magic;
    uint32_t version;
    uint32_t numVars;
    uint32_t reserved;
};

struct RecordHead
{
    uint16_t pointId;
    uint8_t fused;
    uint8_t pad;
    uint32_t pad2;
    uint64_t index;
};

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        throw support::IoError(
            path, "cannot open trace file '" + path + "' for writing",
            errno);
    }
    Header h{magic, version, numVars, 0};
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1) {
        int errnum = errno;
        std::fclose(file_);
        file_ = nullptr;
        throw support::IoError(
            path, "cannot write trace header to '" + path + "'",
            errnum);
    }
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::record(const Record &rec)
{
    SCIF_ASSERT(file_);
    RecordHead head{rec.point.id(), uint8_t(rec.fused), 0, 0, rec.index};
    bool ok = std::fwrite(&head, sizeof(head), 1, file_) == 1;
    ok = ok && std::fwrite(rec.pre.data(), sizeof(uint32_t), numVars,
                           file_) == numVars;
    ok = ok && std::fwrite(rec.post.data(), sizeof(uint32_t), numVars,
                           file_) == numVars;
    if (!ok) {
        int errnum = errno;
        std::fclose(file_);
        file_ = nullptr;
        throw support::IoError(
            path_, "write to trace file '" + path_ + "' failed",
            errnum);
    }
    ++count_;
}

void
TraceWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        throw support::IoError(
            path, "cannot open trace file '" + path + "'", errno);
    }
    try {
        Header h{};
        if (std::fread(&h, sizeof(h), 1, file_) != 1 ||
            h.magic != magic) {
            throw support::IoError(
                path, "'" + path + "' is not a SCIFinder trace");
        }
        if (h.version != version) {
            throw support::IoError(
                path, "trace '" + path + "' has version " +
                          std::to_string(h.version) +
                          ", this build reads " +
                          std::to_string(version));
        }
        if (h.numVars != numVars) {
            throw support::IoError(
                path, "trace '" + path + "' has " +
                          std::to_string(h.numVars) +
                          " vars, this build has " +
                          std::to_string(numVars));
        }
    } catch (...) {
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(Record &rec)
{
    RecordHead head{};
    if (std::fread(&head, sizeof(head), 1, file_) != 1)
        return false;
    rec.point = Point::fromId(head.pointId);
    rec.fused = head.fused != 0;
    rec.index = head.index;
    bool ok = std::fread(rec.pre.data(), sizeof(uint32_t), numVars,
                         file_) == numVars;
    ok = ok && std::fread(rec.post.data(), sizeof(uint32_t), numVars,
                          file_) == numVars;
    if (!ok) {
        throw support::IoError(path_, "trace '" + path_ +
                                          "' has a truncated trace "
                                          "record");
    }
    return true;
}

void
TraceReader::readAll(TraceBuffer &buffer)
{
    // The on-disk record size is fixed, so the bytes remaining tell
    // us the record count; reserving up front avoids the doubling
    // reallocations on multi-million-record traces.
    long pos = std::ftell(file_);
    if (pos >= 0 && std::fseek(file_, 0, SEEK_END) == 0) {
        long end = std::ftell(file_);
        if (std::fseek(file_, pos, SEEK_SET) != 0) {
            throw support::IoError(path_, "cannot seek in trace file '" +
                                              path_ + "'",
                                   errno);
        }
        constexpr long diskRecord =
            long(sizeof(RecordHead) + 2 * sizeof(uint32_t) * numVars);
        if (end > pos)
            buffer.reserve(buffer.size() +
                           size_t((end - pos) / diskRecord));
    }
    Record rec;
    while (next(rec))
        buffer.record(rec);
}

namespace {

constexpr uint32_t setMagic = 0x53435453; // "SCTS"
constexpr uint32_t setVersion = 1;

} // namespace

void
saveTraceSet(const std::string &path,
             const std::vector<NamedTrace> &traces)
{
    support::BinWriter out(path, setMagic, setVersion,
                           support::OnError::Throw);
    out.u32(numVars);
    out.u64(traces.size());
    for (const auto &nt : traces) {
        out.str(nt.name);
        out.u64(nt.trace.size());
        for (const auto &rec : nt.trace.records()) {
            out.u16(rec.point.id());
            out.u8(rec.fused);
            out.u64(rec.index);
            out.bytes(rec.pre.data(), sizeof(uint32_t) * numVars);
            out.bytes(rec.post.data(), sizeof(uint32_t) * numVars);
        }
    }
    out.close();
}

std::vector<NamedTrace>
loadTraceSet(const std::string &path, support::ThreadPool *pool)
{
    if (isTraceSetV2(path)) {
        TraceSetReader reader(path);
        return reader.readAll(pool);
    }
    support::BinReader in(path, setMagic, setVersion, "trace set",
                          support::OnError::Throw);
    uint32_t vars = in.u32();
    if (vars != numVars) {
        throw support::IoError(
            path, "trace set '" + path + "' has " +
                      std::to_string(vars) + " vars, this build has " +
                      std::to_string(numVars));
    }
    uint64_t count = in.u64();
    std::vector<NamedTrace> out;
    out.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        NamedTrace nt;
        nt.name = in.str(4096);
        uint64_t records = in.u64();
        nt.trace.reserve(records);
        for (uint64_t r = 0; r < records; ++r) {
            Record rec;
            rec.point = Point::fromId(in.u16());
            rec.fused = in.u8() != 0;
            rec.index = in.u64();
            in.bytes(rec.pre.data(), sizeof(uint32_t) * numVars);
            in.bytes(rec.post.data(), sizeof(uint32_t) * numVars);
            nt.trace.record(rec);
        }
        out.push_back(std::move(nt));
    }
    in.expectEof();
    return out;
}

} // namespace scif::trace

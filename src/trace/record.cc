#include "record.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::trace {

std::string
Point::name() const
{
    std::string base = isInterrupt()
                           ? "int"
                           : std::string(isa::info(mnemonic()).name);
    if (exception() == isa::Exception::None)
        return base;
    return base + "@" + std::string(isa::exceptionName(exception()));
}

Point
Point::parse(const std::string &name)
{
    std::string base = name;
    isa::Exception exc = isa::Exception::None;
    size_t at = name.find('@');
    if (at != std::string::npos) {
        base = name.substr(0, at);
        std::string excName = name.substr(at + 1);
        bool found = false;
        for (int e = 0; e <= int(isa::Exception::Trap); ++e) {
            if (isa::exceptionName(isa::Exception(e)) == excName) {
                exc = isa::Exception(e);
                found = true;
                break;
            }
        }
        if (!found)
            panic("bad exception name in point '%s'", name.c_str());
    }
    if (base == "int")
        return Point::interrupt(exc);
    const isa::InsnInfo *ii = isa::infoByName(base);
    if (!ii)
        panic("bad mnemonic in point '%s'", name.c_str());
    return Point::insn(ii->mnemonic, exc);
}

void
TraceBuffer::append(const TraceBuffer &other)
{
    records_.insert(records_.end(), other.records_.begin(),
                    other.records_.end());
}

} // namespace scif::trace

/**
 * @file
 * Column codecs for the chunked trace store.
 *
 * Trace columns are smooth: instruction indexes increase by small
 * steps, register values change rarely between adjacent records of the
 * same stream, and point ids cluster. Delta encoding against the
 * previous row turns those columns into near-zero streams, and LEB128
 * varints (with zigzag mapping for the signed deltas) shrink them to a
 * byte or two per value before the general-purpose LZ pass. All
 * arithmetic is explicitly wrapping, so encode/decode round-trips
 * every possible value.
 */

#ifndef SCIFINDER_TRACE_CODEC_HH
#define SCIFINDER_TRACE_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scif::trace {

/** Append @p v as an LEB128 varint. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

/**
 * Decode one LEB128 varint at @p pos, advancing it.
 * @return false on truncation or a varint longer than 10 bytes.
 */
inline bool
getVarint(const uint8_t *src, size_t srcLen, size_t &pos, uint64_t &v)
{
    v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= srcLen)
            return false;
        uint8_t b = src[pos++];
        v |= uint64_t(b & 0x7f) << shift;
        if (!(b & 0x80))
            return true;
    }
    return false;
}

inline uint32_t
zigzag32(uint32_t v)
{
    return (v << 1) ^ (uint32_t(int32_t(v) >> 31));
}

inline uint32_t
unzigzag32(uint32_t v)
{
    return (v >> 1) ^ (0u - (v & 1));
}

inline uint64_t
zigzag64(uint64_t v)
{
    return (v << 1) ^ (uint64_t(int64_t(v) >> 63));
}

inline uint64_t
unzigzag64(uint64_t v)
{
    return (v >> 1) ^ (0ull - (v & 1));
}

/**
 * Delta-zigzag-varint encode @p n u32 values read from @p src with
 * stride @p stride (in elements); the first delta is against 0.
 */
inline void
encodeDeltaU32(std::vector<uint8_t> &out, const uint32_t *src,
               size_t n, size_t stride = 1)
{
    uint32_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
        uint32_t v = src[i * stride];
        putVarint(out, zigzag32(v - prev));
        prev = v;
    }
}

/** Decode @p n values written by encodeDeltaU32 into a stride-1 dst. */
inline bool
decodeDeltaU32(const uint8_t *src, size_t srcLen, size_t &pos,
               uint32_t *dst, size_t n)
{
    uint32_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t raw;
        if (!getVarint(src, srcLen, pos, raw) || raw > UINT32_MAX)
            return false;
        prev += unzigzag32(uint32_t(raw));
        dst[i] = prev;
    }
    return true;
}

/** Delta-zigzag-varint encode @p n u64 values. */
inline void
encodeDeltaU64(std::vector<uint8_t> &out, const uint64_t *src, size_t n)
{
    uint64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
        putVarint(out, zigzag64(src[i] - prev));
        prev = src[i];
    }
}

/** Decode @p n values written by encodeDeltaU64. */
inline bool
decodeDeltaU64(const uint8_t *src, size_t srcLen, size_t &pos,
               uint64_t *dst, size_t n)
{
    uint64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t raw;
        if (!getVarint(src, srcLen, pos, raw))
            return false;
        prev += unzigzag64(raw);
        dst[i] = prev;
    }
    return true;
}

} // namespace scif::trace

#endif // SCIFINDER_TRACE_CODEC_HH

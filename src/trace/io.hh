/**
 * @file
 * Binary serialization of execution traces.
 *
 * The paper's pipeline buffers 26 GB of trace data on disk between the
 * simulation and the invariant generator; this module provides the
 * equivalent capability so large corpora need not be held in memory.
 * The per-trace format is a small header (magic, version, schema size)
 * followed by fixed-size little-endian records. Trace-set artifacts
 * come in two versions: the original sequential v1 layout written by
 * saveTraceSet(), and the chunked compressed v2 layout of
 * trace/store.hh; loadTraceSet() sniffs the magic and reads either.
 *
 * All I/O and format failures throw support::IoError with the path
 * (and errno, where applicable).
 */

#ifndef SCIFINDER_TRACE_IO_HH
#define SCIFINDER_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace scif::support {
class ThreadPool;
}

namespace scif::trace {

/** Streaming trace writer implementing the TraceSink interface. */
class TraceWriter : public TraceSink
{
  public:
    /** Open @p path for writing; throws support::IoError on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void record(const Record &rec) override;

    /** Flush and close; further record() calls are invalid. */
    void close();

    /** @return number of records written so far. */
    uint64_t count() const { return count_; }

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    uint64_t count_ = 0;
};

/** Streaming trace reader. */
class TraceReader
{
  public:
    /** Open @p path; throws support::IoError on failure or a bad
     *  header. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Read the next record.
     * @return false at end of file.
     */
    bool next(Record &rec);

    /** Read the remainder of the file into a buffer. */
    void readAll(TraceBuffer &buffer);

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
};

/**
 * One named trace of a trace-set artifact: the workload (or trigger)
 * name plus its execution trace.
 */
struct NamedTrace
{
    std::string name;
    TraceBuffer trace;
};

/**
 * Persist a whole training corpus as a single versioned v1 artifact.
 * Unlike the per-trace TraceWriter format, the set format carries the
 * provenance names, so a reloaded corpus is self-describing. New
 * artifacts should prefer the chunked v2 store (trace/store.hh); this
 * stays as the v1 compatibility writer.
 */
void saveTraceSet(const std::string &path,
                  const std::vector<NamedTrace> &traces);

/**
 * Load a trace-set artifact of either version; v2 chunks are
 * decompressed on @p pool when given. Throws support::IoError on
 * truncation, corruption, a schema mismatch, or an unsupported
 * version.
 */
std::vector<NamedTrace> loadTraceSet(const std::string &path,
                                     support::ThreadPool *pool = nullptr);

} // namespace scif::trace

#endif // SCIFINDER_TRACE_IO_HH

#include "derived.hh"

#include "support/bits.hh"
#include "support/logging.hh"

namespace scif::trace {

using isa::Mnemonic;

uint32_t
compareOracle(Mnemonic m, uint32_t a, uint32_t b)
{
    int32_t sa = int32_t(a);
    int32_t sb = int32_t(b);
    switch (m) {
      case Mnemonic::L_SFEQ:
      case Mnemonic::L_SFEQI:
        return a == b;
      case Mnemonic::L_SFNE:
      case Mnemonic::L_SFNEI:
        return a != b;
      case Mnemonic::L_SFGTU:
      case Mnemonic::L_SFGTUI:
        return a > b;
      case Mnemonic::L_SFGEU:
      case Mnemonic::L_SFGEUI:
        return a >= b;
      case Mnemonic::L_SFLTU:
      case Mnemonic::L_SFLTUI:
        return a < b;
      case Mnemonic::L_SFLEU:
      case Mnemonic::L_SFLEUI:
        return a <= b;
      case Mnemonic::L_SFGTS:
      case Mnemonic::L_SFGTSI:
        return sa > sb;
      case Mnemonic::L_SFGES:
      case Mnemonic::L_SFGESI:
        return sa >= sb;
      case Mnemonic::L_SFLTS:
      case Mnemonic::L_SFLTSI:
        return sa < sb;
      case Mnemonic::L_SFLES:
      case Mnemonic::L_SFLESI:
        return sa <= sb;
      default:
        panic("compareOracle: %s is not a compare",
              isa::info(m).name);
    }
}

namespace {

void
computeSide(Record &rec, std::array<uint32_t, numVars> &side, bool post)
{
    uint32_t srv = side[VarId::SR];
    side[VarId::SF] = bit(srv, isa::sr::F);
    side[VarId::SM] = bit(srv, isa::sr::SM);
    side[VarId::CY] = bit(srv, isa::sr::CY);
    side[VarId::OV] = bit(srv, isa::sr::OV);
    side[VarId::DSX] = bit(srv, isa::sr::DSX);
    side[VarId::FO] = bit(srv, isa::sr::FO);

    bool isInsn = !rec.point.isInterrupt();
    Mnemonic m = isInsn ? rec.point.mnemonic() : Mnemonic::L_NOP;
    const isa::InsnInfo &ii = isa::info(m);

    // FLAGOK: for compare points, whether the post-state flag matches
    // the ISA oracle applied to the orig operands. Defined as 1 on
    // every other point and on the pre side so the variable is total.
    uint32_t flag_ok = 1;
    if (post && isInsn && ii.kind == isa::InsnKind::Compare) {
        uint32_t a = rec.pre[VarId::OPA];
        uint32_t b = ii.readsRb ? rec.pre[VarId::OPB]
                                : rec.pre[VarId::IMM];
        flag_ok = rec.post[VarId::SF] == compareOracle(m, a, b);
    }
    side[VarId::FLAGOK] = flag_ok;

    // MEMOK: for loads, the destination equals the architecturally
    // correct extension of the bus data; for stores, the bus data
    // equals the correct truncation of the source register. Total 1
    // elsewhere, and 1 on records whose access faulted (the LSU never
    // transferred data).
    uint32_t mem_ok = 1;
    if (post && isInsn &&
        rec.point.exception() == isa::Exception::None) {
        uint32_t bus = rec.post[VarId::MEMBUS];
        switch (m) {
          case Mnemonic::L_LWZ:
          case Mnemonic::L_LWS:
          case Mnemonic::L_LBZ:
          case Mnemonic::L_LHZ:
            mem_ok = rec.post[VarId::OPDEST] == bus;
            break;
          case Mnemonic::L_LBS:
            mem_ok = rec.post[VarId::OPDEST] == signExtend(bus, 8);
            break;
          case Mnemonic::L_LHS:
            mem_ok = rec.post[VarId::OPDEST] == signExtend(bus, 16);
            break;
          case Mnemonic::L_SW:
            mem_ok = bus == rec.pre[VarId::OPB];
            break;
          case Mnemonic::L_SB:
            mem_ok = bus == (rec.pre[VarId::OPB] & 0xffu);
            break;
          case Mnemonic::L_SH:
            mem_ok = bus == (rec.pre[VarId::OPB] & 0xffffu);
            break;
          default:
            break;
        }
    }
    side[VarId::MEMOK] = mem_ok;

    // JEA: architecturally specified target of a J-format control
    // transfer (the "effective address" of §5.4 / property p10).
    uint32_t jea = 0;
    if (isInsn && ii.format == isa::Format::J) {
        jea = side[VarId::PC] + (side[VarId::IMM] << 2);
    }
    side[VarId::JEA] = jea;

    // EA: load/store effective address per the ISA (rA + sext(imm)).
    uint32_t ea = 0;
    if (isInsn &&
        (ii.kind == isa::InsnKind::Load ||
         ii.kind == isa::InsnKind::Store)) {
        ea = rec.pre[VarId::OPA] + side[VarId::IMM];
    }
    side[VarId::EA] = ea;
}

} // namespace

void
computeDerived(Record &rec)
{
    computeSide(rec, rec.pre, false);
    computeSide(rec, rec.post, true);
}

} // namespace scif::trace

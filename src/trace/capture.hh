/**
 * @file
 * Capture-time columnar tracing.
 *
 * The classic pipeline buffers every simulator record into an AoS
 * TraceBuffer and later transposes the whole set into the SoA
 * matrices of trace/columns.hh. A ColumnarCapture removes the
 * intermediate: each record the Cpu emits is bucketed straight into
 * its program point's builder as it is produced, so sealing into a
 * ColumnSet is one small in-cache transpose per point instead of a
 * second full pass over a trace-sized AoS buffer — the post-hoc
 * transpose and its allocation churn become optional.
 *
 * The capture keeps enough side information (per-record point order,
 * the index and fused flags) to reconstruct the exact AoS record
 * stream on demand, so persisted trace artifacts stay byte-identical
 * with the record-buffer path; the gtest differential suite enforces
 * both equalities.
 */

#ifndef SCIFINDER_TRACE_CAPTURE_HH
#define SCIFINDER_TRACE_CAPTURE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/columns.hh"
#include "trace/record.hh"

namespace scif::trace {

/** A TraceSink that builds per-point columns as records arrive.
 *  Final so the simulator's columnar dispatch loop, which selects
 *  this concrete type once per run, emits records through a direct
 *  call instead of the TraceSink vtable. */
class ColumnarCapture final : public TraceSink
{
  public:
    void record(const Record &rec) override;

    /** @return number of records captured. */
    size_t size() const { return order_.size(); }

    /**
     * Seal this capture into a ColumnSet with every slot
     * materialized — identical (values, row order, padding) to
     * ColumnSet::build over the equivalent record stream.
     */
    ColumnSet seal() const;

    /**
     * Merge-seal several captures, rows interleaved per point in
     * capture order — identical to ColumnSet::build over the
     * corresponding TraceBuffer list.
     */
    static ColumnSet
    seal(const std::vector<const ColumnarCapture *> &captures);

    /** Reconstruct the exact AoS record stream. */
    TraceBuffer toRecords() const;

    /** Append the reconstructed record stream to @p out. */
    void appendRecords(TraceBuffer &out) const;

  private:
    /** Growable value matrix of one program point, row-major in slot
     *  order (one contiguous append per record, so the capture loop
     *  touches a single buffer tail per point), plus the per-row
     *  record metadata. seal() turns each point's matrix slot-major
     *  with one in-cache transpose per point. */
    struct PointBuilder
    {
        std::vector<uint32_t> vals; ///< [rows][numSlots]
        std::vector<uint64_t> index; ///< Record::index
        std::vector<uint8_t> fused;  ///< Record::fused

        size_t rows() const { return index.size(); }
    };

    PointBuilder &builder(uint16_t pointId);

    /** Point ids sorted ascending, with the matching builder index
     *  (the order ColumnSet::build produces points in). */
    std::vector<std::pair<uint16_t, size_t>> sortedPoints() const;

    std::vector<PointBuilder> builders_;  ///< in first-seen order
    std::vector<uint16_t> builderIds_;    ///< point id per builder
    std::vector<int32_t> byId_;           ///< point id -> builder index
    std::vector<uint16_t> order_;         ///< point id per record
};

/** A named capture, one per workload (mirrors trace::NamedTrace). */
struct NamedCapture
{
    std::string name;
    ColumnarCapture capture;
};

} // namespace scif::trace

#endif // SCIFINDER_TRACE_CAPTURE_HH

#include "capture.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace scif::trace {

namespace {

/** Highest representable packed point id (mnem 248 | exc 31) + 1. */
constexpr size_t pointIdSpace = 8192;

} // namespace

ColumnarCapture::PointBuilder &
ColumnarCapture::builder(uint16_t pointId)
{
    if (byId_.empty())
        byId_.assign(pointIdSpace, -1);
    SCIF_ASSERT(pointId < pointIdSpace);
    int32_t idx = byId_[pointId];
    if (idx < 0) {
        idx = int32_t(builders_.size());
        byId_[pointId] = idx;
        builderIds_.push_back(pointId);
        builders_.emplace_back();
    }
    return builders_[size_t(idx)];
}

void
ColumnarCapture::record(const Record &rec)
{
    uint16_t id = rec.point.id();
    PointBuilder &b = builder(id);
    size_t base = b.vals.size();
    b.vals.resize(base + numSlots);
    uint32_t *dst = b.vals.data() + base;
    for (uint16_t v = 0; v < numVars; ++v) {
        dst[slotId(v, true)] = rec.pre[v];
        dst[slotId(v, false)] = rec.post[v];
    }
    b.index.push_back(rec.index);
    b.fused.push_back(rec.fused ? 1 : 0);
    order_.push_back(id);
}

std::vector<std::pair<uint16_t, size_t>>
ColumnarCapture::sortedPoints() const
{
    std::vector<std::pair<uint16_t, size_t>> out;
    out.reserve(builderIds_.size());
    for (size_t i = 0; i < builderIds_.size(); ++i)
        out.emplace_back(builderIds_[i], i);
    std::sort(out.begin(), out.end());
    return out;
}

ColumnSet
ColumnarCapture::seal() const
{
    return seal({this});
}

ColumnSet
ColumnarCapture::seal(const std::vector<const ColumnarCapture *> &captures)
{
    // Row count per point across all captures.
    std::map<uint16_t, size_t> counts;
    for (const auto *c : captures) {
        for (size_t i = 0; i < c->builderIds_.size(); ++i)
            counts[c->builderIds_[i]] += c->builders_[i].rows();
    }

    // Same geometry as ColumnSet::build with all slots materialized:
    // points ascending by id, rows padded to a multiple of 16, one
    // 64-byte-aligned backing allocation per point.
    ColumnSet set;
    set.points_.reserve(counts.size());
    std::map<uint16_t, size_t> pointPos;
    for (const auto &[id, n] : counts) {
        PointColumns pc;
        pc.point_ = Point::fromId(id);
        pc.rows_ = n;
        pc.padded_ = (n + 15) & ~size_t(15);
        pc.data_ = PointColumns::allocate(pc.padded_ * numSlots);
        pc.slotPos_.resize(numSlots);
        for (uint16_t s = 0; s < numSlots; ++s)
            pc.slotPos_[s] = int32_t(s);
        pointPos[id] = set.points_.size();
        set.points_.push_back(std::move(pc));
    }

    // One transpose per (capture, point): the builder's row-major
    // matrix is read column by column (strided but point-local, so it
    // stays cache resident) into the contiguous slot columns.
    // Captures interleave per point in the order given, matching the
    // multi-buffer build().
    std::vector<size_t> cursor(set.points_.size(), 0);
    for (const auto *c : captures) {
        for (size_t i = 0; i < c->builderIds_.size(); ++i) {
            const PointBuilder &b = c->builders_[i];
            size_t rows = b.rows();
            if (rows == 0)
                continue;
            size_t pos = pointPos.at(c->builderIds_[i]);
            PointColumns &pc = set.points_[pos];
            size_t row = cursor[pos];
            uint32_t *data = pc.data_.get();
            const uint32_t *src = b.vals.data();
            for (uint16_t s = 0; s < numSlots; ++s) {
                uint32_t *col = data + size_t(s) * pc.padded_ + row;
                for (size_t r = 0; r < rows; ++r)
                    col[r] = src[r * numSlots + s];
            }
            cursor[pos] = row + rows;
        }
    }
    return set;
}

void
ColumnarCapture::appendRecords(TraceBuffer &out) const
{
    std::vector<size_t> cursor(builders_.size(), 0);
    out.reserve(out.size() + order_.size());
    Record rec;
    for (uint16_t id : order_) {
        size_t bi = size_t(byId_[id]);
        const PointBuilder &b = builders_[bi];
        size_t row = cursor[bi]++;
        rec.point = Point::fromId(id);
        rec.index = b.index[row];
        rec.fused = b.fused[row] != 0;
        const uint32_t *vals = b.vals.data() + row * numSlots;
        for (uint16_t v = 0; v < numVars; ++v) {
            rec.pre[v] = vals[slotId(v, true)];
            rec.post[v] = vals[slotId(v, false)];
        }
        out.record(rec);
    }
}

TraceBuffer
ColumnarCapture::toRecords() const
{
    TraceBuffer out;
    appendRecords(out);
    return out;
}

} // namespace scif::trace

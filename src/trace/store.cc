#include "store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/binio.hh"
#include "support/compress.hh"
#include "support/ioerror.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "trace/codec.hh"

namespace scif::trace {

namespace {

constexpr uint32_t magicV2 = 0x32544353;   // "SCT2"
constexpr uint32_t footerMagic = 0x46544353; // "SCTF"
constexpr uint32_t versionV2 = 2;

constexpr uint32_t setMagicV1 = 0x53435453; // "SCTS"
constexpr uint32_t setVersionV1 = 1;

constexpr size_t headerBytes = 16;
constexpr size_t trailerBytes = 12;
constexpr size_t maxStreams = size_t(1) << 20;
constexpr size_t maxNameLen = 4096;
constexpr size_t maxChunksPerStream = size_t(1) << 28;

/** On-disk size of one v1 set record. */
constexpr uint64_t v1RecordBytes = 2 + 1 + 8 + 2 * 4 * uint64_t(numVars);

uint64_t
fnv1a64(const uint8_t *data, size_t n)
{
    uint64_t h = 14695981039346656037ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    const uint8_t *p = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(v));
}

/** Bounds-checked sequential parser over an in-memory byte range. */
struct ByteCursor
{
    const uint8_t *data;
    size_t len;
    size_t pos = 0;

    bool
    bytes(void *dst, size_t n)
    {
        if (n > len - pos)
            return false;
        std::memcpy(dst, data + pos, n);
        pos += n;
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        return bytes(&v, sizeof(v));
    }

    bool
    u64(uint64_t &v)
    {
        return bytes(&v, sizeof(v));
    }
};

/** Loose upper bound on the encoded payload size of @p records. */
uint64_t
maxEncodedBytes(uint64_t records)
{
    return records * (10 + 5 * (2 * uint64_t(numVars) + 1)) +
           records / 8 + 16;
}

} // namespace

// ---------------------------------------------------------------------
// TraceSetWriter

TraceSetWriter::TraceSetWriter(const std::string &path,
                               uint32_t chunkRecords)
    : path_(path), chunkRecords_(chunkRecords)
{
    SCIF_ASSERT(chunkRecords_ > 0);
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        throw support::IoError(
            path, "cannot open '" + path + "' for writing", errno);
    }
    std::vector<uint8_t> header;
    putU32(header, magicV2);
    putU32(header, versionV2);
    putU32(header, numVars);
    putU32(header, chunkRecords_);
    writeBlob(header.data(), header.size());
    offset_ = headerBytes;
}

TraceSetWriter::~TraceSetWriter()
{
    // Best effort only: a file closed without close() has no footer
    // and is rejected by the reader.
    if (file_)
        std::fclose(file_);
}

void
TraceSetWriter::writeBlob(const void *data, size_t size)
{
    SCIF_ASSERT(file_);
    if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
        int errnum = errno;
        std::fclose(file_);
        file_ = nullptr;
        throw support::IoError(
            path_, "write to '" + path_ + "' failed", errnum);
    }
}

void
TraceSetWriter::beginStream(const std::string &name)
{
    SCIF_ASSERT(!inStream_);
    streams_.push_back(StreamInfo{name, 0, {}});
    inStream_ = true;
}

void
TraceSetWriter::record(const Record &rec)
{
    SCIF_ASSERT(inStream_);
    pointIds_.push_back(rec.point.id());
    fused_.push_back(uint8_t(rec.fused));
    indexes_.push_back(rec.index);
    vals_.insert(vals_.end(), rec.pre.begin(), rec.pre.end());
    vals_.insert(vals_.end(), rec.post.begin(), rec.post.end());
    if (pointIds_.size() >= chunkRecords_)
        sealChunk();
}

void
TraceSetWriter::sealChunk()
{
    size_t n = pointIds_.size();
    if (n == 0)
        return;

    resident_.set(n * (sizeof(uint16_t) + sizeof(uint8_t) +
                       sizeof(uint64_t)) +
                  vals_.size() * sizeof(uint32_t));

    std::vector<uint8_t> enc;
    enc.reserve(n * (2 * numVars + 4));

    std::vector<uint32_t> wide(n);
    for (size_t i = 0; i < n; ++i)
        wide[i] = pointIds_[i];
    encodeDeltaU32(enc, wide.data(), n);

    size_t bitBytes = (n + 7) / 8;
    size_t bitBase = enc.size();
    enc.resize(bitBase + bitBytes, 0);
    for (size_t i = 0; i < n; ++i) {
        if (fused_[i])
            enc[bitBase + i / 8] |= uint8_t(1u << (i % 8));
    }

    encodeDeltaU64(enc, indexes_.data(), n);

    const size_t stride = 2 * numVars;
    for (size_t var = 0; var < numVars; ++var)
        encodeDeltaU32(enc, vals_.data() + var, n, stride);
    for (size_t var = 0; var < numVars; ++var)
        encodeDeltaU32(enc, vals_.data() + numVars + var, n, stride);

    std::vector<uint8_t> stored =
        support::lzCompress(enc.data(), enc.size());
    resident_.grow(enc.size() + stored.size());

    ChunkRef ref;
    ref.offset = offset_;
    ref.storedBytes = stored.size();
    ref.encodedBytes = enc.size();
    ref.checksum = fnv1a64(enc.data(), enc.size());
    ref.records = uint32_t(n);

    writeBlob(stored.data(), stored.size());
    offset_ += stored.size();

    streams_.back().chunks.push_back(ref);
    streams_.back().records += n;

    pointIds_.clear();
    fused_.clear();
    indexes_.clear();
    vals_.clear();
    resident_.set(0);
}

void
TraceSetWriter::endStream()
{
    SCIF_ASSERT(inStream_);
    sealChunk();
    inStream_ = false;
}

void
TraceSetWriter::appendRawChunk(const std::vector<uint8_t> &stored,
                               const ChunkRef &ref)
{
    SCIF_ASSERT(inStream_ && pointIds_.empty());
    SCIF_ASSERT(stored.size() == ref.storedBytes);
    ChunkRef placed = ref;
    placed.offset = offset_;
    writeBlob(stored.data(), stored.size());
    offset_ += stored.size();
    streams_.back().chunks.push_back(placed);
    streams_.back().records += ref.records;
}

void
TraceSetWriter::close()
{
    SCIF_ASSERT(file_ && !inStream_);

    std::vector<uint8_t> footer;
    putU64(footer, streams_.size());
    for (const auto &s : streams_) {
        putU32(footer, uint32_t(s.name.size()));
        footer.insert(footer.end(), s.name.begin(), s.name.end());
        putU64(footer, s.records);
        putU64(footer, s.chunks.size());
        for (const auto &c : s.chunks) {
            putU64(footer, c.offset);
            putU64(footer, c.storedBytes);
            putU64(footer, c.encodedBytes);
            putU64(footer, c.checksum);
            putU32(footer, c.records);
        }
    }
    uint64_t footerOffset = offset_;
    putU64(footer, footerOffset);
    putU32(footer, footerMagic);

    writeBlob(footer.data(), footer.size());
    bool ok = std::fclose(file_) == 0;
    int errnum = errno;
    file_ = nullptr;
    if (!ok) {
        throw support::IoError(
            path_, "closing '" + path_ + "' failed", errnum);
    }
}

uint64_t
TraceSetWriter::totalRecords() const
{
    uint64_t total = 0;
    for (const auto &s : streams_)
        total += s.records;
    return total;
}

// ---------------------------------------------------------------------
// TraceSetReader

void
TraceSetReader::corrupt(const std::string &why, uint64_t offset) const
{
    throw support::IoError(path_,
                           "trace set '" + path_ + "' " + why, 0,
                           offset);
}

namespace {

void
preadFully(int fd, const std::string &path, void *dst, size_t n,
           uint64_t offset)
{
    uint8_t *p = static_cast<uint8_t *>(dst);
    while (n > 0) {
        ssize_t got = ::pread(fd, p, n, off_t(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            throw support::IoError(
                path, "read from '" + path + "' failed", errno);
        }
        if (got == 0) {
            throw support::IoError(
                path, "trace set '" + path +
                          "' is truncated or corrupt");
        }
        p += got;
        n -= size_t(got);
        offset += uint64_t(got);
    }
}

} // namespace

TraceSetReader::TraceSetReader(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
        throw support::IoError(
            path, "cannot open trace set '" + path + "'", errno);
    }
    try {
        struct stat st;
        if (::fstat(fd_, &st) != 0) {
            throw support::IoError(
                path, "cannot stat trace set '" + path + "'", errno);
        }
        fileSize_ = uint64_t(st.st_size);
        if (fileSize_ < headerBytes + 8 + trailerBytes)
            corrupt("is truncated or corrupt");

        uint32_t head[4];
        preadFully(fd_, path_, head, sizeof(head), 0);
        if (head[0] != magicV2) {
            throw support::IoError(
                path, "'" + path + "' is not a trace set artifact");
        }
        if (head[1] != versionV2) {
            corrupt("has version " + std::to_string(head[1]) +
                        ", this build reads " +
                        std::to_string(versionV2),
                    4);
        }
        if (head[2] != numVars) {
            corrupt("has " + std::to_string(head[2]) +
                        " vars, this build has " +
                        std::to_string(numVars),
                    8);
        }
        chunkRecords_ = head[3];
        if (chunkRecords_ == 0)
            corrupt("is truncated or corrupt", 12);

        uint8_t trailer[trailerBytes];
        preadFully(fd_, path_, trailer, sizeof(trailer),
                   fileSize_ - trailerBytes);
        uint64_t footerOffset;
        uint32_t footMagic;
        std::memcpy(&footerOffset, trailer, 8);
        std::memcpy(&footMagic, trailer + 8, 4);
        if (footMagic != footerMagic)
            corrupt("is truncated or corrupt (bad trailer magic)",
                    fileSize_ - trailerBytes + 8);
        if (footerOffset < headerBytes ||
            footerOffset > fileSize_ - trailerBytes - 8)
            corrupt("is truncated or corrupt (bad footer offset)",
                    fileSize_ - trailerBytes);

        size_t footerLen =
            size_t(fileSize_ - trailerBytes - footerOffset);
        std::vector<uint8_t> footer(footerLen);
        preadFully(fd_, path_, footer.data(), footerLen, footerOffset);

        // Directory parse failures report the absolute file offset
        // of the bad footer field, so a corrupted artifact can be
        // located with a hex dump.
        ByteCursor cur{footer.data(), footerLen};
        auto at = [&] { return footerOffset + cur.pos; };
        uint64_t streamCount;
        if (!cur.u64(streamCount) || streamCount > maxStreams)
            corrupt("is truncated or corrupt (bad stream count)",
                    at());
        streams_.resize(size_t(streamCount));
        for (auto &s : streams_) {
            uint32_t nameLen;
            if (!cur.u32(nameLen) || nameLen > maxNameLen)
                corrupt("is truncated or corrupt (bad stream name)",
                        at());
            s.name.resize(nameLen);
            if (!cur.bytes(s.name.data(), nameLen))
                corrupt("is truncated or corrupt (bad stream name)",
                        at());
            uint64_t chunkCount;
            if (!cur.u64(s.records) || !cur.u64(chunkCount) ||
                chunkCount > maxChunksPerStream)
                corrupt("is truncated or corrupt (bad chunk count)",
                        at());
            s.chunks.resize(size_t(chunkCount));
            uint64_t total = 0;
            for (auto &c : s.chunks) {
                uint64_t entry = at();
                if (!cur.u64(c.offset) || !cur.u64(c.storedBytes) ||
                    !cur.u64(c.encodedBytes) || !cur.u64(c.checksum) ||
                    !cur.u32(c.records))
                    corrupt("is truncated or corrupt (bad chunk "
                            "directory entry)",
                            entry);
                if (c.records == 0 || c.storedBytes == 0 ||
                    c.offset < headerBytes ||
                    c.offset > footerOffset ||
                    c.storedBytes > footerOffset - c.offset ||
                    c.encodedBytes > maxEncodedBytes(c.records))
                    corrupt("is truncated or corrupt (bad chunk "
                            "directory entry)",
                            entry);
                total += c.records;
            }
            if (total != s.records)
                corrupt("is truncated or corrupt (stream/chunk "
                        "record mismatch)",
                        at());
        }
        if (cur.pos != footerLen)
            corrupt("is truncated or corrupt (trailing footer "
                    "bytes)",
                    at());
    } catch (...) {
        ::close(fd_);
        fd_ = -1;
        throw;
    }
}

TraceSetReader::~TraceSetReader()
{
    if (fd_ >= 0)
        ::close(fd_);
}

uint64_t
TraceSetReader::totalRecords() const
{
    uint64_t total = 0;
    for (const auto &s : streams_)
        total += s.records;
    return total;
}

std::vector<uint8_t>
TraceSetReader::readRawChunk(size_t stream, size_t chunk) const
{
    SCIF_ASSERT(stream < streams_.size() &&
                chunk < streams_[stream].chunks.size());
    const ChunkRef &ref = streams_[stream].chunks[chunk];
    std::vector<uint8_t> stored(size_t(ref.storedBytes));
    preadFully(fd_, path_, stored.data(), stored.size(), ref.offset);
    return stored;
}

void
TraceSetReader::readChunk(size_t stream, size_t chunk,
                          TraceBuffer &out) const
{
    const ChunkRef &ref = streams_[stream].chunks[chunk];
    std::vector<uint8_t> stored = readRawChunk(stream, chunk);

    std::vector<uint8_t> enc(size_t(ref.encodedBytes));
    if (!support::lzDecompress(stored.data(), stored.size(),
                               enc.data(), enc.size()))
        corrupt("is truncated or corrupt (chunk failed to "
                "decompress)",
                ref.offset);
    if (fnv1a64(enc.data(), enc.size()) != ref.checksum)
        corrupt("is truncated or corrupt (chunk checksum "
                "mismatch)",
                ref.offset);

    size_t n = ref.records;
    size_t pos = 0;
    std::vector<Record> recs(n);
    std::vector<uint32_t> col(n);

    if (!decodeDeltaU32(enc.data(), enc.size(), pos, col.data(), n))
        corrupt("is truncated or corrupt (bad chunk payload)",
                ref.offset);
    for (size_t i = 0; i < n; ++i) {
        if (col[i] > UINT16_MAX)
            corrupt("is truncated or corrupt (bad chunk "
                    "payload)",
                    ref.offset);
        recs[i].point = Point::fromId(uint16_t(col[i]));
    }

    size_t bitBytes = (n + 7) / 8;
    if (bitBytes > enc.size() - pos)
        corrupt("is truncated or corrupt (bad chunk payload)",
                ref.offset);
    for (size_t i = 0; i < n; ++i)
        recs[i].fused = (enc[pos + i / 8] >> (i % 8)) & 1;
    pos += bitBytes;

    std::vector<uint64_t> idx(n);
    if (!decodeDeltaU64(enc.data(), enc.size(), pos, idx.data(), n))
        corrupt("is truncated or corrupt (bad chunk payload)",
                ref.offset);
    for (size_t i = 0; i < n; ++i)
        recs[i].index = idx[i];

    for (size_t var = 0; var < numVars; ++var) {
        if (!decodeDeltaU32(enc.data(), enc.size(), pos, col.data(), n))
            corrupt("is truncated or corrupt (bad chunk "
                    "payload)",
                    ref.offset);
        for (size_t i = 0; i < n; ++i)
            recs[i].pre[var] = col[i];
    }
    for (size_t var = 0; var < numVars; ++var) {
        if (!decodeDeltaU32(enc.data(), enc.size(), pos, col.data(), n))
            corrupt("is truncated or corrupt (bad chunk "
                    "payload)",
                    ref.offset);
        for (size_t i = 0; i < n; ++i)
            recs[i].post[var] = col[i];
    }
    if (pos != enc.size())
        corrupt("is truncated or corrupt (bad chunk payload)",
                ref.offset);

    out.reserve(out.size() + n);
    for (const auto &rec : recs)
        out.record(rec);
}

std::vector<NamedTrace>
TraceSetReader::readAll(support::ThreadPool *pool) const
{
    struct Job
    {
        size_t stream;
        size_t chunk;
    };
    std::vector<Job> jobs;
    for (size_t s = 0; s < streams_.size(); ++s) {
        for (size_t c = 0; c < streams_[s].chunks.size(); ++c)
            jobs.push_back({s, c});
    }

    auto buffers =
        support::parallelMap(pool, jobs, [&](const Job &j) {
            TraceBuffer b;
            readChunk(j.stream, j.chunk, b);
            return b;
        });

    support::ResidentTracker resident;
    resident.set(totalRecords() * sizeof(Record));

    std::vector<NamedTrace> out(streams_.size());
    size_t k = 0;
    for (size_t s = 0; s < streams_.size(); ++s) {
        out[s].name = streams_[s].name;
        out[s].trace.reserve(size_t(streams_[s].records));
        for (size_t c = 0; c < streams_[s].chunks.size(); ++c)
            out[s].trace.append(buffers[k++]);
    }
    return out;
}

// ---------------------------------------------------------------------
// ChunkCursor

bool
ChunkCursor::nextChunk(TraceBuffer &out)
{
    const auto &chunks = reader_.streams()[stream_].chunks;
    if (chunk_ >= chunks.size())
        return false;
    out.clear();
    reader_.readChunk(stream_, chunk_, out);
    ++chunk_;
    return true;
}

bool
ChunkCursor::next(Record &rec)
{
    while (!buffered_ || pos_ >= buffer_.size()) {
        if (!nextChunk(buffer_))
            return false;
        buffered_ = true;
        pos_ = 0;
    }
    rec = buffer_.records()[pos_++];
    return true;
}

// ---------------------------------------------------------------------
// Convenience writers

bool
isTraceSetV2(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint32_t magic = 0;
    bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1;
    std::fclose(f);
    return ok && magic == magicV2;
}

void
saveTraceSetV2(const std::string &path,
               const std::vector<NamedTrace> &traces,
               uint32_t chunkRecords)
{
    TraceSetWriter out(path, chunkRecords);
    for (const auto &nt : traces) {
        out.beginStream(nt.name);
        for (const auto &rec : nt.trace.records())
            out.record(rec);
        out.endStream();
    }
    out.close();
}

// ---------------------------------------------------------------------
// Version-agnostic sources

namespace {

class V2Cursor final : public RecordCursor
{
  public:
    V2Cursor(const TraceSetReader &reader, size_t stream)
        : cursor_(reader, stream)
    {}

    bool next(Record &rec) override { return cursor_.next(rec); }

  private:
    ChunkCursor cursor_;
};

class V2Source final : public TraceSetSource
{
  public:
    explicit V2Source(const std::string &path) : reader_(path) {}

    uint32_t version() const override { return 2; }
    size_t streamCount() const override
    {
        return reader_.streams().size();
    }
    const std::string &streamName(size_t i) const override
    {
        return reader_.streams()[i].name;
    }
    uint64_t streamRecords(size_t i) const override
    {
        return reader_.streams()[i].records;
    }
    size_t streamChunks(size_t i) const override
    {
        return reader_.streams()[i].chunks.size();
    }
    std::unique_ptr<RecordCursor> cursor(size_t i) const override
    {
        return std::make_unique<V2Cursor>(reader_, i);
    }

    const TraceSetReader &reader() const { return reader_; }

  private:
    TraceSetReader reader_;
};

/** Directory of a v1 set artifact, built by one scan over the file. */
class V1Source final : public TraceSetSource
{
  public:
    struct Stream
    {
        std::string name;
        uint64_t records = 0;
        uint64_t offset = 0; ///< file offset of the first record
    };

    explicit V1Source(const std::string &path) : path_(path)
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            throw support::IoError(
                path, "cannot open trace set '" + path + "'", errno);
        }
        try {
            scan(f);
        } catch (...) {
            std::fclose(f);
            throw;
        }
        std::fclose(f);
    }

    uint32_t version() const override { return 1; }
    size_t streamCount() const override { return streams_.size(); }
    const std::string &streamName(size_t i) const override
    {
        return streams_[i].name;
    }
    uint64_t streamRecords(size_t i) const override
    {
        return streams_[i].records;
    }
    size_t streamChunks(size_t) const override { return 1; }
    std::unique_ptr<RecordCursor> cursor(size_t i) const override;

  private:
    [[noreturn]] void
    corrupt() const
    {
        throw support::IoError(path_, "trace set '" + path_ +
                                          "' is truncated or corrupt");
    }

    void
    need(std::FILE *f, void *dst, size_t n) const
    {
        if (std::fread(dst, 1, n, f) != n)
            corrupt();
    }

    void
    scan(std::FILE *f)
    {
        if (std::fseek(f, 0, SEEK_END) != 0)
            corrupt();
        long size = std::ftell(f);
        if (size < 0 || std::fseek(f, 0, SEEK_SET) != 0)
            corrupt();
        uint64_t fileSize = uint64_t(size);

        uint32_t magic, version, vars;
        need(f, &magic, sizeof(magic));
        if (magic != setMagicV1) {
            throw support::IoError(path_, "'" + path_ +
                                              "' is not a trace set "
                                              "artifact");
        }
        need(f, &version, sizeof(version));
        if (version != setVersionV1) {
            throw support::IoError(
                path_, "trace set '" + path_ + "' has version " +
                           std::to_string(version) +
                           ", this build reads " +
                           std::to_string(setVersionV1));
        }
        need(f, &vars, sizeof(vars));
        if (vars != numVars) {
            throw support::IoError(
                path_, "trace set '" + path_ + "' has " +
                           std::to_string(vars) +
                           " vars, this build has " +
                           std::to_string(numVars));
        }

        uint64_t count;
        need(f, &count, sizeof(count));
        if (count > maxStreams)
            corrupt();
        streams_.reserve(size_t(count));
        uint64_t pos = 4 + 4 + 4 + 8;
        for (uint64_t i = 0; i < count; ++i) {
            Stream s;
            uint32_t nameLen;
            need(f, &nameLen, sizeof(nameLen));
            if (nameLen > maxNameLen)
                corrupt();
            s.name.resize(nameLen);
            need(f, s.name.data(), nameLen);
            need(f, &s.records, sizeof(s.records));
            pos += 4 + nameLen + 8;
            s.offset = pos;
            uint64_t dataBytes = s.records * v1RecordBytes;
            if (dataBytes > fileSize - pos)
                corrupt();
            pos += dataBytes;
            if (std::fseek(f, long(pos), SEEK_SET) != 0)
                corrupt();
            streams_.push_back(std::move(s));
        }
        if (pos != fileSize) {
            throw support::IoError(path_, "trace set '" + path_ +
                                              "' has trailing garbage");
        }
    }

    std::string path_;
    std::vector<Stream> streams_;

    friend class V1Cursor;
};

class V1Cursor final : public RecordCursor
{
  public:
    V1Cursor(const V1Source &src, size_t stream)
        : path_(src.path_), remaining_(src.streams_[stream].records)
    {
        file_ = std::fopen(path_.c_str(), "rb");
        if (!file_) {
            throw support::IoError(
                path_, "cannot open trace set '" + path_ + "'", errno);
        }
        if (std::fseek(file_, long(src.streams_[stream].offset),
                       SEEK_SET) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            throw support::IoError(path_,
                                   "trace set '" + path_ +
                                       "' is truncated or corrupt");
        }
    }

    ~V1Cursor() override
    {
        if (file_)
            std::fclose(file_);
    }

    bool
    next(Record &rec) override
    {
        if (remaining_ == 0)
            return false;
        uint16_t pointId;
        uint8_t fused;
        bool ok = std::fread(&pointId, sizeof(pointId), 1, file_) == 1;
        ok = ok && std::fread(&fused, sizeof(fused), 1, file_) == 1;
        ok = ok &&
             std::fread(&rec.index, sizeof(rec.index), 1, file_) == 1;
        ok = ok && std::fread(rec.pre.data(), sizeof(uint32_t),
                              numVars, file_) == numVars;
        ok = ok && std::fread(rec.post.data(), sizeof(uint32_t),
                              numVars, file_) == numVars;
        if (!ok) {
            throw support::IoError(path_,
                                   "trace set '" + path_ +
                                       "' is truncated or corrupt");
        }
        rec.point = Point::fromId(pointId);
        rec.fused = fused != 0;
        --remaining_;
        return true;
    }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    uint64_t remaining_;
};

std::unique_ptr<RecordCursor>
V1Source::cursor(size_t i) const
{
    return std::make_unique<V1Cursor>(*this, i);
}

} // namespace

std::unique_ptr<TraceSetSource>
TraceSetSource::open(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        throw support::IoError(
            path, "cannot open trace set '" + path + "'", errno);
    }
    uint32_t magic = 0;
    bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1;
    std::fclose(f);
    if (!ok || (magic != magicV2 && magic != setMagicV1)) {
        throw support::IoError(
            path, "'" + path + "' is not a trace set artifact");
    }
    if (magic == magicV2)
        return std::make_unique<V2Source>(path);
    return std::make_unique<V1Source>(path);
}

size_t
TraceSetSource::findStream(const std::string &name) const
{
    for (size_t i = 0; i < streamCount(); ++i) {
        if (streamName(i) == name)
            return i;
    }
    return npos;
}

// ---------------------------------------------------------------------
// merge / convert / parallel build

void
mergeTraceSets(const std::string &outPath,
               const std::vector<std::string> &inputs,
               uint32_t chunkRecords)
{
    TraceSetWriter out(outPath, chunkRecords);
    std::unordered_set<std::string> seen;
    for (const auto &input : inputs) {
        if (isTraceSetV2(input)) {
            TraceSetReader reader(input);
            for (size_t s = 0; s < reader.streams().size(); ++s) {
                const StreamInfo &info = reader.streams()[s];
                if (!seen.insert(info.name).second) {
                    throw support::IoError(
                        input, "duplicate stream '" + info.name +
                                   "' in '" + input + "'");
                }
                out.beginStream(info.name);
                for (size_t c = 0; c < info.chunks.size(); ++c) {
                    out.appendRawChunk(reader.readRawChunk(s, c),
                                       info.chunks[c]);
                }
                out.endStream();
            }
        } else {
            auto src = TraceSetSource::open(input);
            for (size_t s = 0; s < src->streamCount(); ++s) {
                if (!seen.insert(src->streamName(s)).second) {
                    throw support::IoError(
                        input, "duplicate stream '" +
                                   src->streamName(s) + "' in '" +
                                   input + "'");
                }
                out.beginStream(src->streamName(s));
                auto cursor = src->cursor(s);
                Record rec;
                while (cursor->next(rec))
                    out.record(rec);
                out.endStream();
            }
        }
    }
    out.close();
}

void
convertTraceSet(const std::string &inPath, const std::string &outPath,
                uint32_t version, uint32_t chunkRecords)
{
    auto src = TraceSetSource::open(inPath);
    if (version == 2) {
        TraceSetWriter out(outPath, chunkRecords);
        for (size_t s = 0; s < src->streamCount(); ++s) {
            out.beginStream(src->streamName(s));
            auto cursor = src->cursor(s);
            Record rec;
            while (cursor->next(rec))
                out.record(rec);
            out.endStream();
        }
        out.close();
    } else if (version == 1) {
        // Must stay byte-identical to saveTraceSet() so a
        // v1 -> v2 -> v1 round trip reproduces the original file.
        support::BinWriter out(outPath, setMagicV1, setVersionV1,
                               support::OnError::Throw);
        out.u32(numVars);
        out.u64(src->streamCount());
        for (size_t s = 0; s < src->streamCount(); ++s) {
            out.str(src->streamName(s));
            out.u64(src->streamRecords(s));
            auto cursor = src->cursor(s);
            Record rec;
            while (cursor->next(rec)) {
                out.u16(rec.point.id());
                out.u8(rec.fused);
                out.u64(rec.index);
                out.bytes(rec.pre.data(), sizeof(uint32_t) * numVars);
                out.bytes(rec.post.data(), sizeof(uint32_t) * numVars);
            }
        }
        out.close();
    } else {
        throw support::IoError(outPath,
                               "unsupported trace-set version " +
                                   std::to_string(version));
    }
}

std::vector<uint64_t>
buildTraceSetParallel(
    const std::string &path, uint32_t chunkRecords,
    const std::vector<std::string> &names,
    const std::function<void(size_t, TraceSink &)> &produce,
    support::ThreadPool *pool)
{
    std::vector<uint64_t> counts(names.size());

    if (!pool || names.size() <= 1) {
        TraceSetWriter out(path, chunkRecords);
        for (size_t i = 0; i < names.size(); ++i) {
            out.beginStream(names[i]);
            produce(i, out);
            out.endStream();
            counts[i] = out.streams()[i].records;
        }
        out.close();
        return counts;
    }

    std::vector<std::string> temps(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        temps[i] = path + ".tmp" + std::to_string(i);

    support::parallelFor(pool, names.size(), [&](size_t i) {
        TraceSetWriter out(temps[i], chunkRecords);
        out.beginStream(names[i]);
        produce(i, out);
        out.endStream();
        out.close();
    });

    // Raw-merge in stream order: the chunk bytes are identical to
    // what a serial single-writer run would have produced, so the
    // merged file is byte-identical too.
    TraceSetWriter out(path, chunkRecords);
    for (size_t i = 0; i < names.size(); ++i) {
        TraceSetReader reader(temps[i]);
        const StreamInfo &info = reader.streams()[0];
        out.beginStream(names[i]);
        for (size_t c = 0; c < info.chunks.size(); ++c)
            out.appendRawChunk(reader.readRawChunk(0, c),
                               info.chunks[c]);
        out.endStream();
        counts[i] = info.records;
    }
    out.close();
    for (const auto &temp : temps)
        std::remove(temp.c_str());
    return counts;
}

} // namespace scif::trace

/**
 * @file
 * OpenRISC 1000 basic integer instruction set (ORBIS32) model.
 *
 * This header defines the instruction registry: every mnemonic of the
 * basic set together with its binary encoding (match value + operand
 * format), assembly syntax class, and semantic metadata used by the
 * simulator and by the invariant engine (instruction class features).
 *
 * Encodings follow the OpenRISC 1000 architecture manual: the primary
 * opcode lives in bits [31:26]; register fields are rD[25:21],
 * rA[20:16], rB[15:11]; 16-bit immediates occupy [15:0]; stores and
 * l.mtspr split their immediate across [25:21] and [10:0].
 */

#ifndef SCIFINDER_ISA_INSN_HH
#define SCIFINDER_ISA_INSN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scif::isa {

/**
 * Operand format of an instruction; determines which encoding fields
 * are live and the assembly syntax.
 */
enum class Format {
    J,      ///< 26-bit pc-relative target:        l.j    target
    JR,     ///< register target:                  l.jr   rB
    RRR,    ///< three registers:                  l.add  rD,rA,rB
    RRDA,   ///< two registers (no rB):            l.extbs rD,rA
    RRAB,   ///< two source registers:             l.sfeq rA,rB
    RRI,    ///< reg-reg-imm16:                    l.addi rD,rA,I
    RIA,    ///< source reg + imm16:               l.sfeqi rA,I
    RI,     ///< dest reg + imm16:                 l.movhi rD,K
    RD,     ///< dest reg only:                    l.macrc rD
    RRL,    ///< reg-reg-shift-amount:             l.slli rD,rA,L
    LOAD,   ///< load syntax:                      l.lwz  rD,I(rA)
    STORE,  ///< store syntax (split imm):         l.sw   I(rA),rB
    MTSPR,  ///< l.mtspr rA,rB,K (split imm)
    K16,    ///< 16-bit constant only:             l.nop  K
    NONE,   ///< no operands:                      l.rfe
};

/**
 * Coarse semantic class of an instruction. Used as a feature by the
 * SCI inference model and for workload coverage reporting.
 */
enum class InsnKind {
    Arith,    ///< add/sub family
    Logic,    ///< and/or/xor/cmov/ff1
    Shift,    ///< shifts and rotates
    Extend,   ///< sign/zero extensions
    Compare,  ///< set-flag instructions
    MulDiv,   ///< multiply and divide
    Mac,      ///< multiply-accumulate family
    Load,     ///< memory loads
    Store,    ///< memory stores
    Jump,     ///< unconditional jumps
    Branch,   ///< conditional branches
    System,   ///< l.sys/l.trap/l.rfe/l.nop
    SprMove,  ///< l.mfspr/l.mtspr/l.movhi
};

/**
 * The instruction list. Columns:
 *   enum name, mnemonic string, Format, match word, InsnKind,
 *   has delay slot, writes rD, reads rA, reads rB, sets SR[F],
 *   reads SR[F], signed immediate.
 *
 * The match word holds every fixed bit of the encoding (primary and
 * secondary opcodes); the mask is derived from the format's live
 * fields, so (word & mask(format)) == match identifies the insn.
 */
// clang-format off
#define SCIF_ISA_INSN_LIST(X)                                                         \
    /*  enum     str         format         match       kind     ds  wD  rA  rB  sF  rF  sI */ \
    X(L_J,      "l.j",      Format::J,     0x00000000u, Jump,    1,  0,  0,  0,  0,  0,  1)  \
    X(L_JAL,    "l.jal",    Format::J,     0x04000000u, Jump,    1,  0,  0,  0,  0,  0,  1)  \
    X(L_BNF,    "l.bnf",    Format::J,     0x0c000000u, Branch,  1,  0,  0,  0,  0,  1,  1)  \
    X(L_BF,     "l.bf",     Format::J,     0x10000000u, Branch,  1,  0,  0,  0,  0,  1,  1)  \
    X(L_NOP,    "l.nop",    Format::K16,   0x15000000u, System,  0,  0,  0,  0,  0,  0,  0)  \
    X(L_MOVHI,  "l.movhi",  Format::RI,    0x18000000u, SprMove, 0,  1,  0,  0,  0,  0,  0)  \
    X(L_MACRC,  "l.macrc",  Format::RD,    0x18010000u, Mac,     0,  1,  0,  0,  0,  0,  0)  \
    X(L_SYS,    "l.sys",    Format::K16,   0x20000000u, System,  0,  0,  0,  0,  0,  0,  0)  \
    X(L_TRAP,   "l.trap",   Format::K16,   0x21000000u, System,  0,  0,  0,  0,  0,  0,  0)  \
    X(L_RFE,    "l.rfe",    Format::NONE,  0x24000000u, System,  0,  0,  0,  0,  0,  0,  0)  \
    X(L_JR,     "l.jr",     Format::JR,    0x44000000u, Jump,    1,  0,  0,  1,  0,  0,  0)  \
    X(L_JALR,   "l.jalr",   Format::JR,    0x48000000u, Jump,    1,  0,  0,  1,  0,  0,  0)  \
    X(L_MACI,   "l.maci",   Format::RIA,   0x4c000000u, Mac,     0,  0,  1,  0,  0,  0,  1)  \
    X(L_LWZ,    "l.lwz",    Format::LOAD,  0x84000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_LWS,    "l.lws",    Format::LOAD,  0x88000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_LBZ,    "l.lbz",    Format::LOAD,  0x8c000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_LBS,    "l.lbs",    Format::LOAD,  0x90000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_LHZ,    "l.lhz",    Format::LOAD,  0x94000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_LHS,    "l.lhs",    Format::LOAD,  0x98000000u, Load,    0,  1,  1,  0,  0,  0,  1)  \
    X(L_ADDI,   "l.addi",   Format::RRI,   0x9c000000u, Arith,   0,  1,  1,  0,  0,  0,  1)  \
    X(L_ADDIC,  "l.addic",  Format::RRI,   0xa0000000u, Arith,   0,  1,  1,  0,  0,  0,  1)  \
    X(L_ANDI,   "l.andi",   Format::RRI,   0xa4000000u, Logic,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_ORI,    "l.ori",    Format::RRI,   0xa8000000u, Logic,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_XORI,   "l.xori",   Format::RRI,   0xac000000u, Logic,   0,  1,  1,  0,  0,  0,  1)  \
    X(L_MULI,   "l.muli",   Format::RRI,   0xb0000000u, MulDiv,  0,  1,  1,  0,  0,  0,  1)  \
    X(L_MFSPR,  "l.mfspr",  Format::RRI,   0xb4000000u, SprMove, 0,  1,  1,  0,  0,  0,  0)  \
    X(L_SLLI,   "l.slli",   Format::RRL,   0xb8000000u, Shift,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_SRLI,   "l.srli",   Format::RRL,   0xb8000040u, Shift,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_SRAI,   "l.srai",   Format::RRL,   0xb8000080u, Shift,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_RORI,   "l.rori",   Format::RRL,   0xb80000c0u, Shift,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_SFEQI,  "l.sfeqi",  Format::RIA,   0xbc000000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFNEI,  "l.sfnei",  Format::RIA,   0xbc200000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFGTUI, "l.sfgtui", Format::RIA,   0xbc400000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFGEUI, "l.sfgeui", Format::RIA,   0xbc600000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFLTUI, "l.sfltui", Format::RIA,   0xbc800000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFLEUI, "l.sfleui", Format::RIA,   0xbca00000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFGTSI, "l.sfgtsi", Format::RIA,   0xbd400000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFGESI, "l.sfgesi", Format::RIA,   0xbd600000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFLTSI, "l.sfltsi", Format::RIA,   0xbd800000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_SFLESI, "l.sflesi", Format::RIA,   0xbda00000u, Compare, 0,  0,  1,  0,  1,  0,  1)  \
    X(L_MTSPR,  "l.mtspr",  Format::MTSPR, 0xc0000000u, SprMove, 0,  0,  1,  1,  0,  0,  0)  \
    X(L_MAC,    "l.mac",    Format::RRAB,  0xc4000001u, Mac,     0,  0,  1,  1,  0,  0,  0)  \
    X(L_MSB,    "l.msb",    Format::RRAB,  0xc4000002u, Mac,     0,  0,  1,  1,  0,  0,  0)  \
    X(L_SW,     "l.sw",     Format::STORE, 0xd4000000u, Store,   0,  0,  1,  1,  0,  0,  1)  \
    X(L_SB,     "l.sb",     Format::STORE, 0xd8000000u, Store,   0,  0,  1,  1,  0,  0,  1)  \
    X(L_SH,     "l.sh",     Format::STORE, 0xdc000000u, Store,   0,  0,  1,  1,  0,  0,  1)  \
    X(L_ADD,    "l.add",    Format::RRR,   0xe0000000u, Arith,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_ADDC,   "l.addc",   Format::RRR,   0xe0000001u, Arith,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_SUB,    "l.sub",    Format::RRR,   0xe0000002u, Arith,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_AND,    "l.and",    Format::RRR,   0xe0000003u, Logic,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_OR,     "l.or",     Format::RRR,   0xe0000004u, Logic,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_XOR,    "l.xor",    Format::RRR,   0xe0000005u, Logic,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_MUL,    "l.mul",    Format::RRR,   0xe0000306u, MulDiv,  0,  1,  1,  1,  0,  0,  0)  \
    X(L_SLL,    "l.sll",    Format::RRR,   0xe0000008u, Shift,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_SRL,    "l.srl",    Format::RRR,   0xe0000048u, Shift,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_SRA,    "l.sra",    Format::RRR,   0xe0000088u, Shift,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_ROR,    "l.ror",    Format::RRR,   0xe00000c8u, Shift,   0,  1,  1,  1,  0,  0,  0)  \
    X(L_DIV,    "l.div",    Format::RRR,   0xe0000309u, MulDiv,  0,  1,  1,  1,  0,  0,  0)  \
    X(L_DIVU,   "l.divu",   Format::RRR,   0xe000030au, MulDiv,  0,  1,  1,  1,  0,  0,  0)  \
    X(L_MULU,   "l.mulu",   Format::RRR,   0xe000030bu, MulDiv,  0,  1,  1,  1,  0,  0,  0)  \
    X(L_EXTHS,  "l.exths",  Format::RRDA,  0xe000000cu, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_EXTBS,  "l.extbs",  Format::RRDA,  0xe000004cu, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_EXTHZ,  "l.exthz",  Format::RRDA,  0xe000008cu, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_EXTBZ,  "l.extbz",  Format::RRDA,  0xe00000ccu, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_EXTWS,  "l.extws",  Format::RRDA,  0xe000000du, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_EXTWZ,  "l.extwz",  Format::RRDA,  0xe000004du, Extend,  0,  1,  1,  0,  0,  0,  0)  \
    X(L_CMOV,   "l.cmov",   Format::RRR,   0xe000000eu, Logic,   0,  1,  1,  1,  0,  1,  0)  \
    X(L_FF1,    "l.ff1",    Format::RRDA,  0xe000000fu, Logic,   0,  1,  1,  0,  0,  0,  0)  \
    X(L_SFEQ,   "l.sfeq",   Format::RRAB,  0xe4000000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFNE,   "l.sfne",   Format::RRAB,  0xe4200000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFGTU,  "l.sfgtu",  Format::RRAB,  0xe4400000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFGEU,  "l.sfgeu",  Format::RRAB,  0xe4600000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFLTU,  "l.sfltu",  Format::RRAB,  0xe4800000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFLEU,  "l.sfleu",  Format::RRAB,  0xe4a00000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFGTS,  "l.sfgts",  Format::RRAB,  0xe5400000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFGES,  "l.sfges",  Format::RRAB,  0xe5600000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFLTS,  "l.sflts",  Format::RRAB,  0xe5800000u, Compare, 0,  0,  1,  1,  1,  0,  0)  \
    X(L_SFLES,  "l.sfles",  Format::RRAB,  0xe5a00000u, Compare, 0,  0,  1,  1,  1,  0,  0)
// clang-format on

/** Mnemonic identifiers for every implemented instruction. */
enum class Mnemonic : uint8_t {
#define X(name, str, fmt, match, kind, ds, wd, ra, rb, sf, rf, si) name,
    SCIF_ISA_INSN_LIST(X)
#undef X
        NumMnemonics
};

/** Number of implemented instructions. */
constexpr size_t numMnemonics = size_t(Mnemonic::NumMnemonics);

/** Static description of one instruction. */
struct InsnInfo
{
    Mnemonic mnemonic;
    const char *name;       ///< assembly mnemonic, e.g. "l.add"
    Format format;          ///< operand format
    uint32_t match;         ///< fixed encoding bits
    InsnKind kind;          ///< semantic class
    bool hasDelaySlot;      ///< jump/branch with one delay slot
    bool writesRd;          ///< writes general purpose register rD
    bool readsRa;           ///< reads rA
    bool readsRb;           ///< reads rB
    bool setsFlag;          ///< writes SR[F]
    bool readsFlag;         ///< reads SR[F]
    bool signedImm;         ///< immediate is sign extended
};

/** @return the info record for @p m. */
const InsnInfo &info(Mnemonic m);

/** @return the info record for mnemonic string, or nullptr. */
const InsnInfo *infoByName(std::string_view name);

/** @return all instruction records, ordered by Mnemonic value. */
const std::vector<InsnInfo> &allInsns();

/** @return the encoding mask (fixed bits) implied by a format. */
uint32_t formatMask(Format format);

/** @return a printable name for an instruction kind. */
std::string_view kindName(InsnKind kind);

/**
 * A decoded instruction: the mnemonic plus extracted operand fields.
 * The immediate is already sign or zero extended per the instruction.
 */
struct DecodedInsn
{
    Mnemonic mnemonic = Mnemonic::L_NOP;
    uint32_t raw = 0;     ///< original instruction word
    uint8_t rd = 0;       ///< destination register index
    uint8_t ra = 0;       ///< source register A index
    uint8_t rb = 0;       ///< source register B index
    int32_t imm = 0;      ///< extended immediate / shift amount / K

    /** Convenience: static info for the mnemonic. */
    const InsnInfo &info() const { return isa::info(mnemonic); }
};

/**
 * Decode an instruction word.
 *
 * @param word the 32-bit instruction.
 * @return the decoded instruction, or nullopt for an illegal encoding.
 */
std::optional<DecodedInsn> decode(uint32_t word);

/**
 * Encode a decoded instruction back into its word. Field values
 * outside their encodable range are truncated to the field width.
 */
uint32_t encode(const DecodedInsn &insn);

/** Render a decoded instruction as assembly text. */
std::string disassemble(const DecodedInsn &insn);

/**
 * @return the branch/jump target for a J-format instruction at @p pc.
 * The 26-bit immediate is a signed word offset.
 */
uint32_t jumpTarget(const DecodedInsn &insn, uint32_t pc);

} // namespace scif::isa

#endif // SCIFINDER_ISA_INSN_HH

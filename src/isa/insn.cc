#include "insn.hh"

#include <array>
#include <unordered_map>

#include "support/bits.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::isa {

namespace {

std::vector<InsnInfo>
buildTable()
{
    std::vector<InsnInfo> table;
#define X(name, str, fmt, match, kind, ds, wd, ra, rb, sf, rf, si)           \
    table.push_back(InsnInfo{Mnemonic::name, str, fmt, match,                \
                             InsnKind::kind, ds, wd, ra, rb, sf, rf, si});
    SCIF_ISA_INSN_LIST(X)
#undef X
    return table;
}

const std::vector<InsnInfo> &
table()
{
    static const std::vector<InsnInfo> t = buildTable();
    return t;
}

const std::unordered_map<std::string_view, const InsnInfo *> &
nameIndex()
{
    static const auto *index = [] {
        auto *m =
            new std::unordered_map<std::string_view, const InsnInfo *>();
        for (const auto &ii : table())
            (*m)[ii.name] = &ii;
        return m;
    }();
    return *index;
}

/** Decode table bucketed by primary opcode for O(1) lookup. */
const std::array<std::vector<const InsnInfo *>, 64> &
opcodeBuckets()
{
    static const auto *buckets = [] {
        auto *b = new std::array<std::vector<const InsnInfo *>, 64>();
        for (const auto &ii : table())
            (*b)[ii.match >> 26].push_back(&ii);
        return b;
    }();
    return *buckets;
}

} // namespace

const InsnInfo &
info(Mnemonic m)
{
    SCIF_ASSERT(size_t(m) < numMnemonics);
    return table()[size_t(m)];
}

const InsnInfo *
infoByName(std::string_view name)
{
    auto it = nameIndex().find(name);
    return it == nameIndex().end() ? nullptr : it->second;
}

const std::vector<InsnInfo> &
allInsns()
{
    return table();
}

uint32_t
formatMask(Format format)
{
    // Start from all bits fixed and clear the live operand fields.
    uint32_t mask = 0xffffffffu;
    auto clearField = [&mask](unsigned hi, unsigned lo) {
        mask = insertBits(mask, hi, lo, 0);
    };
    switch (format) {
      case Format::J:
        clearField(25, 0);
        break;
      case Format::JR:
        clearField(15, 11);
        break;
      case Format::RRR:
        clearField(25, 21);
        clearField(20, 16);
        clearField(15, 11);
        break;
      case Format::RRDA:
        clearField(25, 21);
        clearField(20, 16);
        break;
      case Format::RRAB:
        clearField(20, 16);
        clearField(15, 11);
        break;
      case Format::RRI:
      case Format::LOAD:
        clearField(25, 21);
        clearField(20, 16);
        clearField(15, 0);
        break;
      case Format::RIA:
        clearField(20, 16);
        clearField(15, 0);
        break;
      case Format::RI:
        clearField(25, 21);
        clearField(15, 0);
        break;
      case Format::RD:
        clearField(25, 21);
        break;
      case Format::RRL:
        clearField(25, 21);
        clearField(20, 16);
        clearField(5, 0);
        break;
      case Format::STORE:
      case Format::MTSPR:
        clearField(25, 21);
        clearField(20, 16);
        clearField(15, 11);
        clearField(10, 0);
        break;
      case Format::K16:
        clearField(15, 0);
        break;
      case Format::NONE:
        break;
    }
    return mask;
}

std::string_view
kindName(InsnKind kind)
{
    switch (kind) {
      case InsnKind::Arith: return "arith";
      case InsnKind::Logic: return "logic";
      case InsnKind::Shift: return "shift";
      case InsnKind::Extend: return "extend";
      case InsnKind::Compare: return "compare";
      case InsnKind::MulDiv: return "muldiv";
      case InsnKind::Mac: return "mac";
      case InsnKind::Load: return "load";
      case InsnKind::Store: return "store";
      case InsnKind::Jump: return "jump";
      case InsnKind::Branch: return "branch";
      case InsnKind::System: return "system";
      case InsnKind::SprMove: return "sprmove";
    }
    return "unknown";
}

std::optional<DecodedInsn>
decode(uint32_t word)
{
    const auto &bucket = opcodeBuckets()[word >> 26];
    const InsnInfo *found = nullptr;
    for (const InsnInfo *ii : bucket) {
        if ((word & formatMask(ii->format)) == ii->match) {
            found = ii;
            break;
        }
    }
    if (!found)
        return std::nullopt;

    DecodedInsn insn;
    insn.mnemonic = found->mnemonic;
    insn.raw = word;

    auto imm16 = [&](uint32_t v) {
        return found->signedImm ? int32_t(signExtend(v, 16)) : int32_t(v);
    };

    switch (found->format) {
      case Format::J:
        insn.imm = int32_t(signExtend(bits(word, 25, 0), 26));
        break;
      case Format::JR:
        insn.rb = uint8_t(bits(word, 15, 11));
        break;
      case Format::RRR:
        insn.rd = uint8_t(bits(word, 25, 21));
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.rb = uint8_t(bits(word, 15, 11));
        break;
      case Format::RRDA:
        insn.rd = uint8_t(bits(word, 25, 21));
        insn.ra = uint8_t(bits(word, 20, 16));
        break;
      case Format::RRAB:
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.rb = uint8_t(bits(word, 15, 11));
        break;
      case Format::RRI:
      case Format::LOAD:
        insn.rd = uint8_t(bits(word, 25, 21));
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.imm = imm16(bits(word, 15, 0));
        break;
      case Format::RIA:
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.imm = imm16(bits(word, 15, 0));
        break;
      case Format::RI:
        insn.rd = uint8_t(bits(word, 25, 21));
        insn.imm = int32_t(bits(word, 15, 0));
        break;
      case Format::RD:
        insn.rd = uint8_t(bits(word, 25, 21));
        break;
      case Format::RRL:
        insn.rd = uint8_t(bits(word, 25, 21));
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.imm = int32_t(bits(word, 5, 0));
        break;
      case Format::STORE:
      case Format::MTSPR: {
        insn.ra = uint8_t(bits(word, 20, 16));
        insn.rb = uint8_t(bits(word, 15, 11));
        uint32_t split = (bits(word, 25, 21) << 11) | bits(word, 10, 0);
        insn.imm = imm16(split);
        break;
      }
      case Format::K16:
        insn.imm = int32_t(bits(word, 15, 0));
        break;
      case Format::NONE:
        break;
    }
    return insn;
}

uint32_t
encode(const DecodedInsn &insn)
{
    const InsnInfo &ii = info(insn.mnemonic);
    uint32_t word = ii.match;
    uint32_t uimm = uint32_t(insn.imm);

    switch (ii.format) {
      case Format::J:
        word = insertBits(word, 25, 0, uimm);
        break;
      case Format::JR:
        word = insertBits(word, 15, 11, insn.rb);
        break;
      case Format::RRR:
        word = insertBits(word, 25, 21, insn.rd);
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 15, 11, insn.rb);
        break;
      case Format::RRDA:
        word = insertBits(word, 25, 21, insn.rd);
        word = insertBits(word, 20, 16, insn.ra);
        break;
      case Format::RRAB:
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 15, 11, insn.rb);
        break;
      case Format::RRI:
      case Format::LOAD:
        word = insertBits(word, 25, 21, insn.rd);
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 15, 0, uimm);
        break;
      case Format::RIA:
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 15, 0, uimm);
        break;
      case Format::RI:
        word = insertBits(word, 25, 21, insn.rd);
        word = insertBits(word, 15, 0, uimm);
        break;
      case Format::RD:
        word = insertBits(word, 25, 21, insn.rd);
        break;
      case Format::RRL:
        word = insertBits(word, 25, 21, insn.rd);
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 5, 0, uimm);
        break;
      case Format::STORE:
      case Format::MTSPR:
        word = insertBits(word, 20, 16, insn.ra);
        word = insertBits(word, 15, 11, insn.rb);
        word = insertBits(word, 25, 21, bits(uimm, 15, 11));
        word = insertBits(word, 10, 0, bits(uimm, 10, 0));
        break;
      case Format::K16:
        word = insertBits(word, 15, 0, uimm);
        break;
      case Format::NONE:
        break;
    }
    return word;
}

std::string
disassemble(const DecodedInsn &insn)
{
    const InsnInfo &ii = info(insn.mnemonic);
    auto reg = [](uint8_t r) { return format("r%u", unsigned(r)); };

    switch (ii.format) {
      case Format::J:
        return format("%s %d", ii.name, insn.imm);
      case Format::JR:
        return format("%s %s", ii.name, reg(insn.rb).c_str());
      case Format::RRR:
        return format("%s %s,%s,%s", ii.name, reg(insn.rd).c_str(),
                      reg(insn.ra).c_str(), reg(insn.rb).c_str());
      case Format::RRDA:
        return format("%s %s,%s", ii.name, reg(insn.rd).c_str(),
                      reg(insn.ra).c_str());
      case Format::RRAB:
        return format("%s %s,%s", ii.name, reg(insn.ra).c_str(),
                      reg(insn.rb).c_str());
      case Format::RRI:
        return format("%s %s,%s,%d", ii.name, reg(insn.rd).c_str(),
                      reg(insn.ra).c_str(), insn.imm);
      case Format::RIA:
        return format("%s %s,%d", ii.name, reg(insn.ra).c_str(), insn.imm);
      case Format::RI:
        return format("%s %s,%d", ii.name, reg(insn.rd).c_str(), insn.imm);
      case Format::RD:
        return format("%s %s", ii.name, reg(insn.rd).c_str());
      case Format::RRL:
        return format("%s %s,%s,%d", ii.name, reg(insn.rd).c_str(),
                      reg(insn.ra).c_str(), insn.imm);
      case Format::LOAD:
        return format("%s %s,%d(%s)", ii.name, reg(insn.rd).c_str(),
                      insn.imm, reg(insn.ra).c_str());
      case Format::STORE:
        return format("%s %d(%s),%s", ii.name, insn.imm,
                      reg(insn.ra).c_str(), reg(insn.rb).c_str());
      case Format::MTSPR:
        return format("%s %s,%s,%d", ii.name, reg(insn.ra).c_str(),
                      reg(insn.rb).c_str(), insn.imm);
      case Format::K16:
        return format("%s %d", ii.name, insn.imm);
      case Format::NONE:
        return ii.name;
    }
    return ii.name;
}

uint32_t
jumpTarget(const DecodedInsn &insn, uint32_t pc)
{
    SCIF_ASSERT(info(insn.mnemonic).format == Format::J);
    return pc + (uint32_t(insn.imm) << 2);
}

} // namespace scif::isa

/**
 * @file
 * Architectural constants of the OpenRISC 1000: special purpose
 * register addresses, supervision register bits, and exception
 * vectors. Shared by the simulator, the trace schema, and the
 * security-property catalog.
 */

#ifndef SCIFINDER_ISA_ARCH_HH
#define SCIFINDER_ISA_ARCH_HH

#include <cstdint>
#include <string>

namespace scif::isa {

/** Number of general purpose registers. */
constexpr unsigned numGprs = 32;

/** Link register index (written by l.jal / l.jalr). */
constexpr unsigned linkReg = 9;

/**
 * Special purpose register addresses (group << 11 | index), per the
 * OpenRISC 1000 architecture manual.
 */
namespace spr {

constexpr uint16_t VR = 0x0000;      ///< version register
constexpr uint16_t UPR = 0x0001;     ///< unit present register
constexpr uint16_t NPC = 0x0010;     ///< next program counter
constexpr uint16_t SR = 0x0011;      ///< supervision register
constexpr uint16_t PPC = 0x0012;     ///< previous program counter
constexpr uint16_t EPCR0 = 0x0020;   ///< exception PC register
constexpr uint16_t EEAR0 = 0x0030;   ///< exception effective address
constexpr uint16_t ESR0 = 0x0040;    ///< exception status register
constexpr uint16_t MACLO = 0x2801;   ///< MAC accumulator, low word
constexpr uint16_t MACHI = 0x2802;   ///< MAC accumulator, high word
constexpr uint16_t PICMR = 0x4800;   ///< interrupt mask register
constexpr uint16_t PICSR = 0x4802;   ///< interrupt status register
constexpr uint16_t TTMR = 0x5000;    ///< tick timer mode register
constexpr uint16_t TTCR = 0x5001;    ///< tick timer count register

/** @return a printable name for an SPR address ("SR", "spr_0x123"). */
std::string name(uint16_t addr);

} // namespace spr

/** Bit positions inside the supervision register (SR). */
namespace sr {

constexpr unsigned SM = 0;     ///< supervisor mode
constexpr unsigned TEE = 1;    ///< tick timer exception enable
constexpr unsigned IEE = 2;    ///< interrupt exception enable
constexpr unsigned DCE = 3;    ///< data cache enable
constexpr unsigned ICE = 4;    ///< instruction cache enable
constexpr unsigned DME = 5;    ///< data MMU enable
constexpr unsigned IME = 6;    ///< instruction MMU enable
constexpr unsigned LEE = 7;    ///< little endian enable
constexpr unsigned CE = 8;     ///< context id enable
constexpr unsigned F = 9;      ///< conditional branch flag
constexpr unsigned CY = 10;    ///< carry flag
constexpr unsigned OV = 11;    ///< overflow flag
constexpr unsigned OVE = 12;   ///< overflow exception enable
constexpr unsigned DSX = 13;   ///< delay slot exception
constexpr unsigned EPH = 14;   ///< exception prefix high
constexpr unsigned FO = 15;    ///< fixed one (always reads 1)

/** SR value after reset: supervisor mode, FO set. */
constexpr uint32_t resetValue = (1u << FO) | (1u << SM);

} // namespace sr

/**
 * Exception identifiers, ordered by vector address. The numeric value
 * doubles as the priority used when multiple exceptions are pending
 * (lower vector = higher priority, reset highest).
 */
enum class Exception : uint8_t {
    None = 0,
    Reset,          ///< 0x100
    BusError,       ///< 0x200
    DataPageFault,  ///< 0x300
    InsnPageFault,  ///< 0x400
    Tick,           ///< 0x500
    Alignment,      ///< 0x600
    Illegal,        ///< 0x700
    External,       ///< 0x800
    DTlbMiss,       ///< 0x900
    ITlbMiss,       ///< 0xa00
    Range,          ///< 0xb00
    Syscall,        ///< 0xc00
    FloatingPoint,  ///< 0xd00
    Trap,           ///< 0xe00
};

/** @return the handler vector address for an exception. */
uint32_t exceptionVector(Exception e);

/** @return a printable exception name. */
std::string_view exceptionName(Exception e);

} // namespace scif::isa

#endif // SCIFINDER_ISA_ARCH_HH

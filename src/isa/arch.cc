#include "arch.hh"

#include "support/strings.hh"

namespace scif::isa {

namespace spr {

std::string
name(uint16_t addr)
{
    switch (addr) {
      case VR: return "VR";
      case UPR: return "UPR";
      case NPC: return "NPC";
      case SR: return "SR";
      case PPC: return "PPC";
      case EPCR0: return "EPCR0";
      case EEAR0: return "EEAR0";
      case ESR0: return "ESR0";
      case MACLO: return "MACLO";
      case MACHI: return "MACHI";
      case PICMR: return "PICMR";
      case PICSR: return "PICSR";
      case TTMR: return "TTMR";
      case TTCR: return "TTCR";
      default: return format("spr_0x%04x", addr);
    }
}

} // namespace spr

uint32_t
exceptionVector(Exception e)
{
    return uint32_t(e) * 0x100u;
}

std::string_view
exceptionName(Exception e)
{
    switch (e) {
      case Exception::None: return "none";
      case Exception::Reset: return "reset";
      case Exception::BusError: return "bus-error";
      case Exception::DataPageFault: return "data-page-fault";
      case Exception::InsnPageFault: return "insn-page-fault";
      case Exception::Tick: return "tick";
      case Exception::Alignment: return "alignment";
      case Exception::Illegal: return "illegal-instruction";
      case Exception::External: return "external-interrupt";
      case Exception::DTlbMiss: return "dtlb-miss";
      case Exception::ITlbMiss: return "itlb-miss";
      case Exception::Range: return "range";
      case Exception::Syscall: return "syscall";
      case Exception::FloatingPoint: return "floating-point";
      case Exception::Trap: return "trap";
    }
    return "unknown";
}

} // namespace scif::isa

/**
 * @file
 * Minimal dense linear-algebra support for the inference engine:
 * a row-major matrix, column standardization, and a symmetric
 * eigensolver (cyclic Jacobi) for PCA.
 */

#ifndef SCIFINDER_ML_MATRIX_HH
#define SCIFINDER_ML_MATRIX_HH

#include <cstddef>
#include <vector>

namespace scif::ml {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Create a zero matrix of the given shape. */
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Pointer to the start of row @p r. */
    const double *row(size_t r) const { return &data_[r * cols_]; }
    double *row(size_t r) { return &data_[r * cols_]; }

    /** Append a row; its length must equal cols() (or set cols). */
    void appendRow(const std::vector<double> &values);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/** Column means and standard deviations for standardization. */
struct Standardizer
{
    std::vector<double> mean;
    std::vector<double> stddev; ///< zero-variance columns get 1

    /** Fit to the columns of @p X. */
    static Standardizer fit(const Matrix &X);

    /** @return (x - mean) / stddev applied to a copy of @p X. */
    Matrix apply(const Matrix &X) const;

    /** Standardize a single row in place. */
    void applyRow(std::vector<double> &row) const;
};

/**
 * Eigendecomposition of a symmetric matrix by the cyclic Jacobi
 * method.
 *
 * @param A symmetric matrix (only read).
 * @param eigenvalues out: descending eigenvalues.
 * @param eigenvectors out: one eigenvector per *column*, matching
 *        the eigenvalue order.
 */
void symmetricEigen(const Matrix &A, std::vector<double> &eigenvalues,
                    Matrix &eigenvectors);

} // namespace scif::ml

#endif // SCIFINDER_ML_MATRIX_HH

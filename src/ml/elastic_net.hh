/**
 * @file
 * Elastic-net-penalized logistic regression (paper §3.4).
 *
 * A from-scratch implementation of the glmnet algorithm (Friedman,
 * Hastie, Tibshirani): iteratively reweighted least squares with an
 * inner cyclic coordinate descent and soft thresholding, fit over a
 * descending lambda path with warm starts; k-fold cross validation
 * picks the final lambda. The paper fits with alpha = 0.5 and 3-fold
 * cross validation and reports lambda = 0.08 with 90% held-out
 * accuracy.
 *
 * Class convention follows the paper: y = 1 means NON-security-
 * critical, so features with negative weights are associated with
 * security-critical invariants (Table 4).
 */

#ifndef SCIFINDER_ML_ELASTIC_NET_HH
#define SCIFINDER_ML_ELASTIC_NET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/matrix.hh"

namespace scif::ml {

/** Hyper-parameters for the fit. */
struct ElasticNetConfig
{
    double alpha = 0.5;          ///< L1/L2 mix (1 = lasso)
    int folds = 3;               ///< cross-validation folds
    int pathLength = 40;         ///< lambdas on the path
    double lambdaMinRatio = 1e-3;
    int maxIterations = 200;     ///< IRLS iterations per lambda
    double tolerance = 1e-7;
    uint64_t seed = 0x5eed;      ///< fold assignment seed
};

/** A fitted logistic model (coefficients on the standardized scale,
 *  prediction handles standardization internally). */
struct LogisticModel
{
    Standardizer standardizer;
    std::vector<double> beta;   ///< per standardized feature
    double intercept = 0.0;
    double lambda = 0.0;        ///< the CV-selected penalty

    /** @return P(y = 1 | x) for a raw (unstandardized) feature row. */
    double predict(const std::vector<double> &x) const;

    /** Indices of features with non-zero coefficients. */
    std::vector<size_t> nonZeroFeatures() const;
};

/**
 * Fit the model on raw features @p X and binary labels @p y,
 * selecting lambda by k-fold cross validation over the path.
 */
LogisticModel fitElasticNet(const Matrix &X, const std::vector<int> &y,
                            const ElasticNetConfig &config =
                                ElasticNetConfig());

/**
 * Fit with a fixed lambda (no cross validation); used by the CV
 * driver and by tests.
 */
LogisticModel fitElasticNetFixed(const Matrix &X,
                                 const std::vector<int> &y,
                                 double lambda,
                                 const ElasticNetConfig &config =
                                     ElasticNetConfig());

} // namespace scif::ml

#endif // SCIFINDER_ML_ELASTIC_NET_HH

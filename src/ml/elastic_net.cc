#include "elastic_net.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/random.hh"

namespace scif::ml {

namespace {

double
softThreshold(double z, double gamma)
{
    if (z > gamma)
        return z - gamma;
    if (z < -gamma)
        return z + gamma;
    return 0.0;
}

double
sigmoid(double t)
{
    if (t > 30)
        return 1.0;
    if (t < -30)
        return 0.0;
    return 1.0 / (1.0 + std::exp(-t));
}

/**
 * One glmnet-style fit on *standardized* X at a fixed lambda,
 * warm-started from the supplied coefficients.
 */
void
fitAtLambda(const Matrix &X, const std::vector<int> &y, double lambda,
            const ElasticNetConfig &cfg, std::vector<double> &beta,
            double &intercept)
{
    size_t n = X.rows(), p = X.cols();
    SCIF_ASSERT(y.size() == n);

    std::vector<double> eta(n, 0.0);
    auto computeEta = [&]() {
        for (size_t i = 0; i < n; ++i) {
            double t = intercept;
            const double *row = X.row(i);
            for (size_t j = 0; j < p; ++j)
                t += row[j] * beta[j];
            eta[i] = t;
        }
    };

    std::vector<double> w(n), z(n);
    for (int iter = 0; iter < cfg.maxIterations; ++iter) {
        computeEta();

        // Quadratic approximation around the current estimate.
        for (size_t i = 0; i < n; ++i) {
            double pi = sigmoid(eta[i]);
            double wi = std::max(pi * (1.0 - pi), 1e-5);
            w[i] = wi;
            z[i] = eta[i] + (double(y[i]) - pi) / wi;
        }

        // Cyclic coordinate descent on the penalized WLS problem.
        double maxDelta = 0.0;
        for (int cd = 0; cd < 100; ++cd) {
            maxDelta = 0.0;

            // Residual r_i = z_i - eta_i where eta tracks the
            // current working fit.
            for (size_t j = 0; j < p; ++j) {
                double num = 0.0, denom = 0.0;
                for (size_t i = 0; i < n; ++i) {
                    double xij = X.at(i, j);
                    if (xij == 0.0)
                        continue;
                    double partial =
                        z[i] - (eta[i] - xij * beta[j]);
                    num += w[i] * xij * partial;
                    denom += w[i] * xij * xij;
                }
                double nw = double(n);
                double bj = softThreshold(num / nw,
                                          lambda * cfg.alpha) /
                            (denom / nw +
                             lambda * (1.0 - cfg.alpha));
                double delta = bj - beta[j];
                if (delta != 0.0) {
                    for (size_t i = 0; i < n; ++i)
                        eta[i] += X.at(i, j) * delta;
                    beta[j] = bj;
                    maxDelta = std::max(maxDelta, std::fabs(delta));
                }
            }

            // Intercept (unpenalized).
            double num = 0.0, denom = 0.0;
            for (size_t i = 0; i < n; ++i) {
                num += w[i] * (z[i] - (eta[i] - intercept));
                denom += w[i];
            }
            double b0 = num / denom;
            double delta = b0 - intercept;
            if (delta != 0.0) {
                for (size_t i = 0; i < n; ++i)
                    eta[i] += delta;
                intercept = b0;
                maxDelta = std::max(maxDelta, std::fabs(delta));
            }

            if (maxDelta < cfg.tolerance)
                break;
        }
        if (maxDelta < cfg.tolerance)
            break;
    }
}

/** Largest lambda with all coefficients zero (path start). */
double
lambdaMax(const Matrix &X, const std::vector<int> &y, double alpha)
{
    size_t n = X.rows(), p = X.cols();
    double ybar = 0.0;
    for (int yi : y)
        ybar += yi;
    ybar /= double(n);

    double best = 0.0;
    for (size_t j = 0; j < p; ++j) {
        double dot = 0.0;
        for (size_t i = 0; i < n; ++i)
            dot += X.at(i, j) * (double(y[i]) - ybar);
        best = std::max(best, std::fabs(dot) / double(n));
    }
    return best / std::max(alpha, 1e-3);
}

/** Binomial deviance of predictions on a fold. */
double
deviance(const Matrix &X, const std::vector<int> &y,
         const std::vector<size_t> &idx, const std::vector<double> &beta,
         double intercept)
{
    double dev = 0.0;
    for (size_t i : idx) {
        double t = intercept;
        const double *row = X.row(i);
        for (size_t j = 0; j < beta.size(); ++j)
            t += row[j] * beta[j];
        double pi = std::clamp(sigmoid(t), 1e-9, 1.0 - 1e-9);
        dev += y[i] ? -std::log(pi) : -std::log(1.0 - pi);
    }
    return dev;
}

} // namespace

double
LogisticModel::predict(const std::vector<double> &x) const
{
    std::vector<double> row = x;
    standardizer.applyRow(row);
    double t = intercept;
    for (size_t j = 0; j < beta.size(); ++j)
        t += row[j] * beta[j];
    return sigmoid(t);
}

std::vector<size_t>
LogisticModel::nonZeroFeatures() const
{
    std::vector<size_t> out;
    for (size_t j = 0; j < beta.size(); ++j) {
        if (beta[j] != 0.0)
            out.push_back(j);
    }
    return out;
}

LogisticModel
fitElasticNetFixed(const Matrix &X, const std::vector<int> &y,
                   double lambda, const ElasticNetConfig &config)
{
    LogisticModel model;
    model.standardizer = Standardizer::fit(X);
    Matrix Xs = model.standardizer.apply(X);
    model.beta.assign(X.cols(), 0.0);
    model.lambda = lambda;
    fitAtLambda(Xs, y, lambda, config, model.beta, model.intercept);
    return model;
}

LogisticModel
fitElasticNet(const Matrix &X, const std::vector<int> &y,
              const ElasticNetConfig &config)
{
    size_t n = X.rows();
    SCIF_ASSERT(n >= size_t(config.folds) && n == y.size());

    Standardizer standardizer = Standardizer::fit(X);
    Matrix Xs = standardizer.apply(X);

    // Descending log-spaced lambda path.
    double lmax = lambdaMax(Xs, y, config.alpha);
    if (lmax <= 0)
        lmax = 1.0;
    std::vector<double> path(config.pathLength);
    double lmin = lmax * config.lambdaMinRatio;
    for (int k = 0; k < config.pathLength; ++k) {
        double f = double(k) / double(config.pathLength - 1);
        path[k] = lmax * std::pow(lmin / lmax, f);
    }

    // Fold assignment.
    Rng rng(config.seed);
    std::vector<size_t> perm = rng.permutation(n);
    std::vector<int> fold(n);
    for (size_t i = 0; i < n; ++i)
        fold[perm[i]] = int(i % size_t(config.folds));

    // Cross-validated deviance per lambda, warm starts down the path.
    std::vector<std::vector<double>> foldDeviance(
        path.size(), std::vector<double>(config.folds, 0.0));
    for (int f = 0; f < config.folds; ++f) {
        std::vector<size_t> trainIdx, testIdx;
        for (size_t i = 0; i < n; ++i)
            (fold[i] == f ? testIdx : trainIdx).push_back(i);

        Matrix Xtrain(trainIdx.size(), X.cols());
        std::vector<int> ytrain(trainIdx.size());
        for (size_t i = 0; i < trainIdx.size(); ++i) {
            for (size_t j = 0; j < X.cols(); ++j)
                Xtrain.at(i, j) = Xs.at(trainIdx[i], j);
            ytrain[i] = y[trainIdx[i]];
        }

        std::vector<double> beta(X.cols(), 0.0);
        double intercept = 0.0;
        for (size_t k = 0; k < path.size(); ++k) {
            fitAtLambda(Xtrain, ytrain, path[k], config, beta,
                        intercept);
            foldDeviance[k][f] =
                deviance(Xs, y, testIdx, beta, intercept);
        }
    }

    // glmnet's one-standard-error rule: take the *largest* lambda
    // whose mean CV deviance is within one standard error of the
    // minimum — the sparsest model statistically indistinguishable
    // from the best one.
    std::vector<double> cvMean(path.size()), cvSe(path.size());
    for (size_t k = 0; k < path.size(); ++k) {
        double mean = 0.0;
        for (double d : foldDeviance[k])
            mean += d;
        mean /= double(config.folds);
        double var = 0.0;
        for (double d : foldDeviance[k])
            var += (d - mean) * (d - mean);
        var /= double(std::max(config.folds - 1, 1));
        cvMean[k] = mean;
        cvSe[k] = std::sqrt(var / double(config.folds));
    }
    size_t minK = 0;
    for (size_t k = 1; k < path.size(); ++k) {
        if (cvMean[k] < cvMean[minK])
            minK = k;
    }
    size_t bestK = minK;
    for (size_t k = 0; k <= minK; ++k) {
        if (cvMean[k] <= cvMean[minK] + cvSe[minK]) {
            bestK = k; // path is descending: first hit is largest
            break;
        }
    }

    // Final fit on all data at the selected lambda.
    LogisticModel model;
    model.standardizer = standardizer;
    model.beta.assign(X.cols(), 0.0);
    model.lambda = path[bestK];
    double intercept = 0.0;
    std::vector<double> beta(X.cols(), 0.0);
    for (size_t k = 0; k <= bestK; ++k)
        fitAtLambda(Xs, y, path[k], config, beta, intercept);
    model.beta = beta;
    model.intercept = intercept;
    return model;
}

} // namespace scif::ml

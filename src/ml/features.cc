#include "features.hh"

#include "analysis/secflow.hh"
#include "support/logging.hh"
#include "trace/schema.hh"

namespace scif::ml {

using expr::CmpOp;
using expr::Invariant;
using expr::Op2;
using expr::Operand;

namespace {

/** Operator feature order; mirrors the grammar of Fig. 2. */
const char *const opNames[] = {
    "==", "!=", "<", "<=", ">", ">=", "in",
    "and", "or", "+", "-", "not", "*", "mod",
};
constexpr size_t numOps = sizeof(opNames) / sizeof(opNames[0]);

/** Semantic feature tags, in analysis::SecClass order. */
const char *const secTags[] = {"PRIV", "MEM", "EXC", "CFI"};

/** "Near" radius: security state within this many def-use steps. */
constexpr uint32_t nearSteps = 2;

} // namespace

FeatureExtractor::FeatureExtractor()
{
    // Post-state variable features, then orig() features.
    for (uint16_t v = 0; v < trace::numVars; ++v)
        names_.emplace_back(trace::varName(v));
    for (uint16_t v = 0; v < trace::numVars; ++v)
        names_.push_back("orig(" + std::string(trace::varName(v)) +
                         ")");
    opBase_ = names_.size();
    for (const char *op : opNames)
        names_.emplace_back(op);
    constIdx_ = names_.size();
    names_.emplace_back("CONST");
    // Semantic security-signature features: direct, then near.
    secBase_ = names_.size();
    for (const char *tag : secTags)
        names_.push_back(std::string("SEC_") + tag);
    for (const char *tag : secTags)
        names_.push_back(std::string("SEC_") + tag + "_NEAR");
}

std::vector<double>
FeatureExtractor::extract(const Invariant &inv) const
{
    std::vector<double> x(size(), 0.0);

    auto markVar = [this, &x](const expr::VarRef &ref) {
        size_t idx = ref.orig ? trace::numVars + ref.var : ref.var;
        x[idx] = 1.0;
    };
    auto markOp = [this, &x](std::string_view name) {
        for (size_t i = 0; i < numOps; ++i) {
            if (opNames[i] == name) {
                x[opBase_ + i] = 1.0;
                return;
            }
        }
        panic("unknown operator feature '%.*s'", int(name.size()),
              name.data());
    };

    auto markOperand = [&](const Operand &o) {
        if (o.isConst) {
            x[constIdx_] = 1.0;
            return;
        }
        markVar(o.a);
        if (o.op2 != Op2::None) {
            markVar(o.b);
            markOp(expr::op2Name(o.op2));
        }
        if (o.negate)
            markOp("not");
        if (o.mulImm != 1) {
            markOp("*");
            x[constIdx_] = 1.0;
        }
        if (o.modImm != 0) {
            markOp("mod");
            x[constIdx_] = 1.0;
        }
        if (o.addImm != 0) {
            markOp("+");
            x[constIdx_] = 1.0;
        }
    };

    markOp(expr::cmpOpName(inv.op));
    markOperand(inv.lhs);
    if (inv.op == CmpOp::In)
        x[constIdx_] = 1.0;
    else
        markOperand(inv.rhs);

    analysis::SecSignature sig = analysis::invariantSignature(
        analysis::StateGraph::instance(), inv);
    for (size_t c = 0; c < analysis::numSecClasses; ++c) {
        if (sig.dist[c] == 0)
            x[secBase_ + c] = 1.0;
        if (sig.dist[c] != analysis::unreachableDist &&
            sig.dist[c] <= nearSteps)
            x[secBase_ + analysis::numSecClasses + c] = 1.0;
    }
    return x;
}

} // namespace scif::ml

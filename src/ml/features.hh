/**
 * @file
 * Invariant feature extraction for the inference model (paper §3.4).
 *
 * "The features are all the ISA-level variables such as general
 * purpose registers, flags, and memory addresses, and also operators
 * such as >, <, !=." Each invariant maps to a binary feature vector:
 * one feature per variable in post state, one per variable in orig()
 * state, one per comparison/combination operator, and one for the
 * presence of an immediate constant (the paper's CONST feature).
 *
 * The lexical features are augmented with *semantic* ones from the
 * static security-dataflow analyzer (analysis/secflow): per security
 * class, whether the invariant constrains state of that class
 * directly (SEC_*) or within two def-use steps (SEC_*_NEAR) — the
 * signal the paper's surface features can only approximate through
 * variable names.
 */

#ifndef SCIFINDER_ML_FEATURES_HH
#define SCIFINDER_ML_FEATURES_HH

#include <string>
#include <vector>

#include "expr/expr.hh"

namespace scif::ml {

/** Maps invariants into the fixed feature space. */
class FeatureExtractor
{
  public:
    FeatureExtractor();

    /** Number of features P. */
    size_t size() const { return names_.size(); }

    /** Feature names, e.g. "GPR0", "orig(NPC)", "==", "CONST". */
    const std::vector<std::string> &names() const { return names_; }

    /** Extract the binary feature vector of one invariant. */
    std::vector<double> extract(const expr::Invariant &inv) const;

  private:
    std::vector<std::string> names_;
    size_t opBase_;    ///< index of the first operator feature
    size_t constIdx_;  ///< index of the CONST feature
    size_t secBase_;   ///< index of the first semantic feature
};

} // namespace scif::ml

#endif // SCIFINDER_ML_FEATURES_HH

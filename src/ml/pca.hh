/**
 * @file
 * Principal component analysis (paper §5.3 / Figure 4): PCA over the
 * invariants restricted to the features the elastic net selected,
 * projecting the labeled invariants to two dimensions to show the
 * SCI / non-SCI separation.
 */

#ifndef SCIFINDER_ML_PCA_HH
#define SCIFINDER_ML_PCA_HH

#include <vector>

#include "ml/matrix.hh"

namespace scif::ml {

/** PCA output. */
struct PcaResult
{
    /** One principal axis per column, descending variance. */
    Matrix components;
    /** Explained variance per component. */
    std::vector<double> eigenvalues;
    /** Input rows projected onto the components. */
    Matrix projected;
    /** Column means removed before projection. */
    std::vector<double> mean;
};

/**
 * Run PCA on the rows of @p X.
 *
 * @param X data matrix (rows = observations).
 * @param num_components how many leading components to project onto.
 */
PcaResult pca(const Matrix &X, size_t num_components);

} // namespace scif::ml

#endif // SCIFINDER_ML_PCA_HH

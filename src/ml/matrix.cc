#include "matrix.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.hh"

namespace scif::ml {

void
Matrix::appendRow(const std::vector<double> &values)
{
    if (rows_ == 0 && cols_ == 0)
        cols_ = values.size();
    SCIF_ASSERT(values.size() == cols_);
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
}

Standardizer
Standardizer::fit(const Matrix &X)
{
    Standardizer s;
    size_t n = X.rows(), p = X.cols();
    s.mean.assign(p, 0.0);
    s.stddev.assign(p, 1.0);
    if (n == 0)
        return s;

    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < p; ++c)
            s.mean[c] += X.at(r, c);
    }
    for (size_t c = 0; c < p; ++c)
        s.mean[c] /= double(n);

    std::vector<double> var(p, 0.0);
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < p; ++c) {
            double d = X.at(r, c) - s.mean[c];
            var[c] += d * d;
        }
    }
    for (size_t c = 0; c < p; ++c) {
        double sd = std::sqrt(var[c] / double(n));
        s.stddev[c] = sd > 1e-12 ? sd : 1.0;
    }
    return s;
}

Matrix
Standardizer::apply(const Matrix &X) const
{
    Matrix out(X.rows(), X.cols());
    for (size_t r = 0; r < X.rows(); ++r) {
        for (size_t c = 0; c < X.cols(); ++c)
            out.at(r, c) = (X.at(r, c) - mean[c]) / stddev[c];
    }
    return out;
}

void
Standardizer::applyRow(std::vector<double> &row) const
{
    SCIF_ASSERT(row.size() == mean.size());
    for (size_t c = 0; c < row.size(); ++c)
        row[c] = (row[c] - mean[c]) / stddev[c];
}

void
symmetricEigen(const Matrix &A, std::vector<double> &eigenvalues,
               Matrix &eigenvectors)
{
    size_t n = A.rows();
    SCIF_ASSERT(A.cols() == n);

    // Working copy and accumulated rotations.
    Matrix S = A;
    Matrix V(n, n);
    for (size_t i = 0; i < n; ++i)
        V.at(i, i) = 1.0;

    const int maxSweeps = 64;
    for (int sweep = 0; sweep < maxSweeps; ++sweep) {
        double off = 0.0;
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j)
                off += S.at(i, j) * S.at(i, j);
        }
        if (off < 1e-20)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                double apq = S.at(p, q);
                if (std::fabs(apq) < 1e-18)
                    continue;
                double app = S.at(p, p), aqq = S.at(q, q);
                double theta = (aqq - app) / (2.0 * apq);
                double t = (theta >= 0 ? 1.0 : -1.0) /
                           (std::fabs(theta) +
                            std::sqrt(theta * theta + 1.0));
                double c = 1.0 / std::sqrt(t * t + 1.0);
                double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    double skp = S.at(k, p), skq = S.at(k, q);
                    S.at(k, p) = c * skp - s * skq;
                    S.at(k, q) = s * skp + c * skq;
                }
                for (size_t k = 0; k < n; ++k) {
                    double spk = S.at(p, k), sqk = S.at(q, k);
                    S.at(p, k) = c * spk - s * sqk;
                    S.at(q, k) = s * spk + c * sqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    double vkp = V.at(k, p), vkq = V.at(k, q);
                    V.at(k, p) = c * vkp - s * vkq;
                    V.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&S](size_t a, size_t b) {
        return S.at(a, a) > S.at(b, b);
    });

    eigenvalues.resize(n);
    eigenvectors = Matrix(n, n);
    for (size_t c = 0; c < n; ++c) {
        eigenvalues[c] = S.at(order[c], order[c]);
        for (size_t r = 0; r < n; ++r)
            eigenvectors.at(r, c) = V.at(r, order[c]);
    }
}

} // namespace scif::ml

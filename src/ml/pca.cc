#include "pca.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scif::ml {

PcaResult
pca(const Matrix &X, size_t num_components)
{
    size_t n = X.rows(), p = X.cols();
    SCIF_ASSERT(n > 1 && p > 0);
    num_components = std::min(num_components, p);

    PcaResult result;
    result.mean.assign(p, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < p; ++j)
            result.mean[j] += X.at(i, j);
    }
    for (size_t j = 0; j < p; ++j)
        result.mean[j] /= double(n);

    // Covariance matrix.
    Matrix cov(p, p);
    for (size_t i = 0; i < n; ++i) {
        for (size_t a = 0; a < p; ++a) {
            double da = X.at(i, a) - result.mean[a];
            for (size_t b = a; b < p; ++b) {
                double db = X.at(i, b) - result.mean[b];
                cov.at(a, b) += da * db;
            }
        }
    }
    for (size_t a = 0; a < p; ++a) {
        for (size_t b = a; b < p; ++b) {
            double v = cov.at(a, b) / double(n - 1);
            cov.at(a, b) = v;
            cov.at(b, a) = v;
        }
    }

    std::vector<double> eigenvalues;
    Matrix eigenvectors;
    symmetricEigen(cov, eigenvalues, eigenvectors);

    result.eigenvalues.assign(eigenvalues.begin(),
                              eigenvalues.begin() +
                                  long(num_components));
    result.components = Matrix(p, num_components);
    for (size_t j = 0; j < p; ++j) {
        for (size_t c = 0; c < num_components; ++c)
            result.components.at(j, c) = eigenvectors.at(j, c);
    }

    result.projected = Matrix(n, num_components);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < num_components; ++c) {
            double dot = 0.0;
            for (size_t j = 0; j < p; ++j) {
                dot += (X.at(i, j) - result.mean[j]) *
                       result.components.at(j, c);
            }
            result.projected.at(i, c) = dot;
        }
    }
    return result;
}

} // namespace scif::ml

/**
 * @file
 * SCI inference (paper §3.4 / §5.3): train the elastic-net logistic
 * regression on the labeled invariants from identification (SCI vs
 * identification false positives), validate on a held-out split,
 * then classify every unlabeled invariant. Recommended invariants
 * that the validation corpus exposes as non-invariant are the "clear
 * false positives" the paper's expert struck out; the survivors are
 * grouped into security properties by their point-independent
 * expression shape (Table 5's "33 security properties").
 */

#ifndef SCIFINDER_SCI_INFER_HH
#define SCIFINDER_SCI_INFER_HH

#include <map>

#include "ml/elastic_net.hh"
#include "ml/features.hh"
#include "sci/identify.hh"

namespace scif::sci {

/** Inference configuration (paper §5.3 values). */
struct InferConfig
{
    double trainFraction = 0.7;  ///< 70/30 train/test split
    ml::ElasticNetConfig net;    ///< alpha = 0.5, 3 folds
    uint64_t seed = 0x1fe2;      ///< split seed

    /**
     * Posterior P(security-critical) needed to recommend an
     * unlabeled invariant. The paper does not state its decision
     * rule; 0.6 keeps every invariant the held-out detection
     * experiment (§5.6) relies on while rejecting the bulk of the
     * borderline cases.
     */
    double recommendThreshold = 0.6;

    /**
     * Lower posterior bar for invariants the security-dataflow
     * analysis marks as directly security-classed (a relational
     * invariant whose operands read state in one of the four §2 bug
     * classes, e.g. "l.mfspr -> OPDEST == SPRV"). The static
     * signature acts as a semantic prior: such invariants need less
     * statistical evidence than lexically similar but
     * security-irrelevant ones.
     */
    double semanticThreshold = 0.4;
};

/** Output of the inference phase. */
struct InferenceResult
{
    ml::LogisticModel model;
    ml::FeatureExtractor features;

    size_t labeledSci = 0;     ///< positive labels used
    size_t labeledNonSci = 0;  ///< negative labels used
    double testAccuracy = 0;   ///< held-out split accuracy

    /** Unlabeled invariants the model recommends as SCI. */
    std::vector<size_t> recommended;
    /** Of those, admitted by the semantic prior (below the plain
     *  posterior threshold but directly security-classed). */
    size_t semanticRecommended = 0;
    /** Of those, exposed as non-invariant by validation (the paper's
     *  852 "clear false positives"). */
    std::vector<size_t> clearFalsePositives;
    /** recommended minus clearFalsePositives. */
    std::vector<size_t> inferredSci;
};

/**
 * Run the inference phase.
 *
 * @param set the optimized invariant model.
 * @param db identification output (labels).
 * @param knownNonInvariant validation-corpus violations.
 * @param config tuning.
 */
InferenceResult infer(const invgen::InvariantSet &set,
                      const SciDatabase &db,
                      const std::set<size_t> &knownNonInvariant,
                      const InferConfig &config = InferConfig());

/**
 * Group invariants into security properties: invariants whose
 * canonical expression (with the program point's mnemonic abstracted
 * away) coincides form one property — e.g. GPR0 == 0 at forty points
 * is a single property.
 *
 * @return map from the group's representative expression to the
 *         member invariant indices.
 */
std::map<std::string, std::vector<size_t>>
groupIntoProperties(const invgen::InvariantSet &set,
                    const std::vector<size_t> &indices);

} // namespace scif::sci

#endif // SCIFINDER_SCI_INFER_HH

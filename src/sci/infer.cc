#include "infer.hh"

#include <algorithm>

#include "analysis/secflow.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace scif::sci {

namespace {

/**
 * True when the static security signature justifies a lower
 * recommendation bar: the invariant relates two pieces of live state
 * (no constant, no value-set enumeration) and at least one operand
 * is directly security-classed. Constant pins like "SPRV == 0" stay
 * on the plain statistical threshold — they are overwhelmingly
 * artifacts of the trace corpus, not security properties.
 */
bool
semanticallyImplicated(const expr::Invariant &inv)
{
    if (inv.op == expr::CmpOp::In || inv.lhs.isConst ||
        inv.rhs.isConst)
        return false;
    return !analysis::invariantSignature(
                analysis::StateGraph::instance(), inv)
                .direct()
                .empty();
}

} // namespace

InferenceResult
infer(const invgen::InvariantSet &set, const SciDatabase &db,
      const std::set<size_t> &knownNonInvariant,
      const InferConfig &config)
{
    InferenceResult result;

    // Assemble the labeled data. y = 1 means NON-security-critical
    // (the paper's convention).
    std::vector<size_t> sci = db.sciIndices();
    std::vector<size_t> nonSci = db.nonSciIndices();
    result.labeledSci = sci.size();
    result.labeledNonSci = nonSci.size();
    SCIF_ASSERT(!sci.empty() && !nonSci.empty());

    std::vector<size_t> labeled;
    std::vector<int> labels;
    for (size_t idx : sci) {
        labeled.push_back(idx);
        labels.push_back(0);
    }
    for (size_t idx : nonSci) {
        labeled.push_back(idx);
        labels.push_back(1);
    }

    // 70/30 split.
    Rng rng(config.seed);
    std::vector<size_t> perm = rng.permutation(labeled.size());
    size_t trainCount =
        size_t(double(labeled.size()) * config.trainFraction);

    ml::Matrix Xtrain(trainCount, result.features.size());
    std::vector<int> ytrain(trainCount);
    for (size_t i = 0; i < trainCount; ++i) {
        size_t k = perm[i];
        auto x = result.features.extract(set.all()[labeled[k]]);
        for (size_t j = 0; j < x.size(); ++j)
            Xtrain.at(i, j) = x[j];
        ytrain[i] = labels[k];
    }

    result.model = ml::fitElasticNet(Xtrain, ytrain, config.net);

    // Held-out accuracy.
    size_t correct = 0, total = 0;
    for (size_t i = trainCount; i < labeled.size(); ++i) {
        size_t k = perm[i];
        auto x = result.features.extract(set.all()[labeled[k]]);
        int predicted = result.model.predict(x) >= 0.5 ? 1 : 0;
        correct += predicted == labels[k];
        ++total;
    }
    result.testAccuracy =
        total ? double(correct) / double(total) : 0.0;

    // Classify every unlabeled invariant.
    std::set<size_t> labeledSet(labeled.begin(), labeled.end());
    for (size_t idx = 0; idx < set.size(); ++idx) {
        if (labeledSet.count(idx))
            continue;
        auto x = result.features.extract(set.all()[idx]);
        double pSci = 1.0 - result.model.predict(x);
        if (pSci >= config.recommendThreshold) {
            result.recommended.push_back(idx);
        } else if (pSci >= config.semanticThreshold &&
                   semanticallyImplicated(set.all()[idx])) {
            result.recommended.push_back(idx);
            ++result.semanticRecommended;
        }
    }

    // The expert pass: recommended invariants the validation corpus
    // exposes as non-invariant are clear false positives.
    for (size_t idx : result.recommended) {
        if (knownNonInvariant.count(idx))
            result.clearFalsePositives.push_back(idx);
        else
            result.inferredSci.push_back(idx);
    }
    return result;
}

std::map<std::string, std::vector<size_t>>
groupIntoProperties(const invgen::InvariantSet &set,
                    const std::vector<size_t> &indices)
{
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t idx : indices) {
        const expr::Invariant &inv = set.all()[idx];
        // Abstract the program point: keep only the exception
        // qualifier so "l.add@range" and "l.addi@range" group, and
        // "l.add" and "l.sub" group. Immediate values are abstracted
        // to K so that e.g. the per-vector NPC constants form one
        // property.
        expr::Invariant shape = inv;
        auto abstractConst = [](expr::Operand &o) {
            if (o.isConst)
                o.constVal = 0xabcdef;
            o.addImm = o.addImm ? 1 : 0;
            o.mulImm = o.mulImm != 1 ? 2 : 1;
            o.modImm = o.modImm ? 2 : 0;
        };
        abstractConst(shape.lhs);
        if (shape.op != expr::CmpOp::In)
            abstractConst(shape.rhs);
        else
            shape.set = {0xabcdef};
        std::string key = shape.exprKey();
        // Render the sentinel constant as "K" for readability.
        for (size_t pos; (pos = key.find("0xabcdef")) !=
                         std::string::npos;) {
            key.replace(pos, 8, "K");
        }
        if (inv.point.exception() != isa::Exception::None) {
            key = "@" +
                  std::string(isa::exceptionName(
                      inv.point.exception())) +
                  ": " + key;
        }
        groups[key].push_back(idx);
    }
    return groups;
}

} // namespace scif::sci

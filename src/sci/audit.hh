/**
 * @file
 * The static bug-footprint audit: for every Table 1 bug, what state
 * its injected defect corrupts, which security state that corruption
 * can reach through the def-use state graph, and which invariants of
 * the model statically guard that state — cross-checked against the
 * dynamic identification result when one is available.
 *
 * The cross-check is the module's soundness contract: every
 * dynamically identified SCI must be statically reachable from its
 * bug's mutation footprint. A violation means the secflow state
 * graph is missing a real value flow and is reported as unsound (the
 * audit renders it and `scifinder audit` exits nonzero).
 */

#ifndef SCIFINDER_SCI_AUDIT_HH
#define SCIFINDER_SCI_AUDIT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/secflow.hh"
#include "bugs/registry.hh"
#include "invgen/invgen.hh"
#include "sci/identify.hh"

namespace scif::support {
class ThreadPool;
} // namespace scif::support

namespace scif::sci {

/** The audit of one bug. */
struct BugAudit
{
    std::string bugId;
    std::string synopsis;
    /** Schema variables the defect corrupts directly. */
    std::vector<uint16_t> footprint;
    /** Security-tagged variables reachable from the footprint, with
     *  their taint distance; sorted by (distance, variable). */
    std::vector<std::pair<uint16_t, uint32_t>> reachable;
    /** Invariants with a finite taint distance (static guards). */
    size_t guarded = 0;
    /** Static guards at distance 0 (operands in the footprint's
     *  direct blast radius). */
    size_t guardedDirect = 0;
    /** The first few guards in triage order (model indices). */
    std::vector<size_t> topGuards;

    // Dynamic cross-check (only filled when a database is given).
    bool checked = false; ///< database had a result for this bug
    size_t dynamicSci = 0;
    double rankQuality = 1.0; ///< where the SCI land in the order
    size_t firstSciRank = 0;  ///< triage rank of the earliest SCI
    /** Dynamic SCI *not* statically reachable: soundness bugs. */
    std::vector<size_t> unsound;
};

/** The full audit: per-bug sections plus the soundness verdict. */
class AuditReport
{
  public:
    const std::vector<BugAudit> &bugs() const { return bugs_; }

    /** @return true if no bug has an unsound dynamic SCI. */
    bool sound() const;

    /** Mean rank quality over the checked bugs with at least one
     *  dynamic SCI (1.0 when none were checked). */
    double meanRankQuality() const;

    /**
     * Render the deterministic text artifact. Byte-identical for
     * identical inputs regardless of the thread count the audit ran
     * with.
     */
    std::string render() const;

  private:
    friend AuditReport audit(const invgen::InvariantSet &,
                             const std::vector<const bugs::Bug *> &,
                             const SciDatabase *,
                             support::ThreadPool *);

    const invgen::InvariantSet *set_ = nullptr;
    std::vector<BugAudit> bugs_;
};

/**
 * Audit @p bugList against the invariant model @p set. When @p db is
 * non-null, each bug's dynamic identification result is cross-checked
 * against the static reachability. Bugs fan out over @p pool when one
 * is given; the report is identical either way.
 */
AuditReport audit(const invgen::InvariantSet &set,
                  const std::vector<const bugs::Bug *> &bugList,
                  const SciDatabase *db = nullptr,
                  support::ThreadPool *pool = nullptr);

} // namespace scif::sci

#endif // SCIFINDER_SCI_AUDIT_HH

/**
 * @file
 * The security-property catalog (paper Tables 6 and 7).
 *
 * p1..p18 are SPECS's manually written properties, p19..p27 are
 * Security-Checker's, and p28..p30 are the three new properties
 * SCIFinder contributes. Each in-scope property carries a structural
 * matcher deciding whether a given invariant *represents* it; the
 * coverage evaluation (bench/table6) checks which catalog entries are
 * represented by the identified and inferred SCI. A single SCI may
 * represent several properties (the paper's PC = 0xC00 example covers
 * p17, p21 and p23 at once).
 */

#ifndef SCIFINDER_SCI_PROPERTIES_HH
#define SCIFINDER_SCI_PROPERTIES_HH

#include <functional>
#include <string>
#include <vector>

#include "expr/expr.hh"

namespace scif::sci {

/** Property class labels of §5.5. */
enum class PropClass {
    CF,       ///< control flow
    XR,       ///< exception related
    MA,       ///< memory access
    IE,       ///< instruction execution
    CR,       ///< correct results
    RU,       ///< register update
    OffCore,  ///< hardware outside the processor core
};

/** @return printable class name ("CF", "XR", ...). */
std::string_view propClassName(PropClass cls);

/** Why a property can or cannot be represented by our invariants. */
enum class Expressibility {
    Yes,           ///< matcher provided
    NotGenerated,  ///< not in the generated invariant set (N)
    Microarch,     ///< needs microarchitectural state (*)
    OffCore,       ///< concerns hardware outside the core (box)
};

/** One catalog entry. */
struct Property
{
    std::string id;           ///< "p1".."p30"
    std::string description;  ///< Table 6/7 wording
    std::string origin;       ///< "SPECS", "Security-Checker", "new"
    PropClass cls;
    Expressibility expressibility;

    /** Structural matcher; unset unless expressibility is Yes. */
    std::function<bool(const expr::Invariant &)> matches;
};

/** @return the full 30-property catalog. */
const std::vector<Property> &catalog();

/** @return catalog entry by id; aborts if unknown. */
const Property &propertyById(const std::string &id);

/**
 * @return ids of all catalog properties represented by @p inv
 * (empty if none).
 */
std::vector<std::string> matchProperties(const expr::Invariant &inv);

} // namespace scif::sci

#endif // SCIFINDER_SCI_PROPERTIES_HH

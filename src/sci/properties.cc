#include "properties.hh"

#include "support/logging.hh"
#include "trace/schema.hh"

namespace scif::sci {

using expr::CmpOp;
using expr::Invariant;
using trace::VarId;

std::string_view
propClassName(PropClass cls)
{
    switch (cls) {
      case PropClass::CF: return "CF";
      case PropClass::XR: return "XR";
      case PropClass::MA: return "MA";
      case PropClass::IE: return "IE";
      case PropClass::CR: return "CR";
      case PropClass::RU: return "RU";
      case PropClass::OffCore: return "off-core";
    }
    return "?";
}

namespace {

using Matcher = std::function<bool(const Invariant &)>;

bool
mentions(const Invariant &inv, uint16_t var)
{
    if (inv.lhs.mentions(var))
        return true;
    return inv.op != CmpOp::In && inv.rhs.mentions(var);
}

bool
mentionsAny(const Invariant &inv, std::initializer_list<uint16_t> vars)
{
    for (uint16_t v : vars) {
        if (mentions(inv, v))
            return true;
    }
    return false;
}

/** Point is qualified with a synchronous exception or an interrupt. */
bool
exceptional(const Invariant &inv)
{
    return inv.point.exception() != isa::Exception::None;
}

bool
pointIs(const Invariant &inv, isa::Mnemonic m)
{
    return !inv.point.isInterrupt() && inv.point.mnemonic() == m;
}

bool
pointKind(const Invariant &inv, isa::InsnKind kind)
{
    return !inv.point.isInterrupt() &&
           isa::info(inv.point.mnemonic()).kind == kind;
}

/** Comparison of one bare variable against a constant. */
bool
varEqualsConst(const Invariant &inv, uint16_t var, uint32_t value)
{
    if (inv.op != CmpOp::Eq)
        return false;
    const auto &l = inv.lhs;
    const auto &r = inv.rhs;
    if (l.isBareVar() && l.a.var == var && !l.a.orig && r.isConst &&
        r.constVal == value) {
        return true;
    }
    if (r.isBareVar() && r.a.var == var && !r.a.orig && l.isConst &&
        l.constVal == value) {
        return true;
    }
    return false;
}

/** op between bare var A (post or orig per flags) and bare var B. */
bool
varsRelated(const Invariant &inv, CmpOp op, uint16_t varA,
            uint16_t varB)
{
    if (inv.op != op || inv.op == CmpOp::In)
        return false;
    const auto &l = inv.lhs;
    const auto &r = inv.rhs;
    if (!l.isBareVar() || !r.isBareVar())
        return false;
    return (l.a.var == varA && r.a.var == varB) ||
           (l.a.var == varB && r.a.var == varA);
}

/** NPC compared against an exception-vector constant. */
bool
vectoredControlFlow(const Invariant &inv)
{
    if (!exceptional(inv) || inv.op != CmpOp::Eq)
        return false;
    auto isVectorConst = [](const expr::Operand &o) {
        return o.isConst && o.constVal >= 0x100 &&
               o.constVal <= 0xe04 && (o.constVal & 0xff) <= 4;
    };
    auto isNextPc = [](const expr::Operand &o) {
        return o.isBareVar() &&
               (o.a.var == VarId::NPC || o.a.var == VarId::NNPC) &&
               !o.a.orig;
    };
    return (isNextPc(inv.lhs) && isVectorConst(inv.rhs)) ||
           (isNextPc(inv.rhs) && isVectorConst(inv.lhs));
}

std::vector<Property>
buildCatalog()
{
    std::vector<Property> cat;
    auto add = [&cat](const std::string &id, const std::string &desc,
                      const std::string &origin, PropClass cls,
                      Expressibility ex, Matcher m = nullptr) {
        cat.push_back(Property{id, desc, origin, cls, ex, std::move(m)});
    };

    // ---------------- SPECS properties ----------------

    add("p1", "Execution privilege matches page privilege", "SPECS",
        PropClass::XR, Expressibility::Yes, [](const Invariant &inv) {
            auto e = inv.point.exception();
            return (e == isa::Exception::DataPageFault ||
                    e == isa::Exception::InsnPageFault) &&
                   mentions(inv, VarId::SM);
        });

    add("p2", "SPR equals GPR in register move instructions", "SPECS",
        PropClass::RU, Expressibility::Yes, [](const Invariant &inv) {
            return pointIs(inv, isa::Mnemonic::L_MTSPR) &&
                   mentions(inv, VarId::SPRV) &&
                   mentions(inv, VarId::OPB) && inv.op == CmpOp::Eq;
        });

    add("p3", "Updates to exception registers make sense", "SPECS",
        PropClass::XR, Expressibility::Yes, [](const Invariant &inv) {
            return exceptional(inv) && inv.op != CmpOp::In &&
                   mentionsAny(inv, {VarId::EPCR0, VarId::ESR0,
                                     VarId::EEAR0}) &&
                   mentionsAny(inv, {VarId::PC, VarId::NPC, VarId::SR,
                                     VarId::EEAR0});
        });

    add("p4", "Destination matches the target", "SPECS", PropClass::CR,
        Expressibility::Yes, [](const Invariant &inv) {
            if (inv.op != CmpOp::Eq || !mentions(inv, VarId::OPDEST))
                return false;
            // OPDEST tied to a named GPR: the write went where the
            // instruction said.
            for (const auto *o : {&inv.lhs, &inv.rhs}) {
                if (o->isBareVar() && o->a.var < 32)
                    return true;
            }
            return false;
        });

    add("p5", "Memory value in equals register value out", "SPECS",
        PropClass::MA, Expressibility::Yes, [](const Invariant &inv) {
            return pointKind(inv, isa::InsnKind::Store) &&
                   (varEqualsConst(inv, VarId::MEMOK, 1) ||
                    (mentions(inv, VarId::MEMBUS) &&
                     mentions(inv, VarId::OPB)));
        });

    add("p6", "Register value in equals memory value out", "SPECS",
        PropClass::MA, Expressibility::Yes, [](const Invariant &inv) {
            return pointKind(inv, isa::InsnKind::Load) &&
                   (varEqualsConst(inv, VarId::MEMOK, 1) ||
                    varsRelated(inv, CmpOp::Eq, VarId::MEMBUS,
                                VarId::DMEM) ||
                    (mentions(inv, VarId::OPDEST) &&
                     mentions(inv, VarId::MEMBUS)));
        });

    add("p7", "Memory address equals effective address", "SPECS",
        PropClass::MA, Expressibility::Yes, [](const Invariant &inv) {
            if (inv.op != CmpOp::Eq || !mentions(inv, VarId::MEMADDR))
                return false;
            // MEMADDR == orig(OPA) + IMM (either side), or == EA.
            for (const auto *o : {&inv.lhs, &inv.rhs}) {
                if (o->op2 == expr::Op2::Add &&
                    mentions(inv, VarId::OPA) &&
                    mentions(inv, VarId::IMM)) {
                    return true;
                }
                if (o->isBareVar() && o->a.var == VarId::EA)
                    return true;
            }
            return false;
        });

    add("p8", "Privilege escalates correctly", "SPECS", PropClass::XR,
        Expressibility::Yes, [](const Invariant &inv) {
            return exceptional(inv) &&
                   varEqualsConst(inv, VarId::SM, 1);
        });

    add("p9", "Privilege deescalates correctly", "SPECS", PropClass::XR,
        Expressibility::Yes, [](const Invariant &inv) {
            if (!pointIs(inv, isa::Mnemonic::L_RFE))
                return false;
            return (mentions(inv, VarId::SR) &&
                    mentions(inv, VarId::ESR0)) ||
                   mentions(inv, VarId::SM);
        });

    add("p10", "Jumps update the PC correctly", "SPECS", PropClass::CF,
        Expressibility::NotGenerated, [](const Invariant &inv) {
            // Only representable once the effective-address derived
            // variable (JEA) is enabled — the paper's §5.4 fix.
            return mentions(inv, VarId::JEA) &&
                   mentions(inv, VarId::NPC);
        });

    add("p11", "Jumps update the LR correctly", "SPECS", PropClass::CF,
        Expressibility::Yes, [](const Invariant &inv) {
            return (pointIs(inv, isa::Mnemonic::L_JAL) ||
                    pointIs(inv, isa::Mnemonic::L_JALR)) &&
                   mentions(inv, trace::gprVar(isa::linkReg)) &&
                   mentions(inv, VarId::PC) && inv.op == CmpOp::Eq;
        });

    add("p12", "Instruction is in a valid format", "SPECS",
        PropClass::IE, Expressibility::Yes, [](const Invariant &inv) {
            return varsRelated(inv, CmpOp::Eq, VarId::INSN,
                               VarId::IMEM);
        });

    add("p13", "Continuous control flow", "SPECS", PropClass::CF,
        Expressibility::Yes, [](const Invariant &inv) {
            if (vectoredControlFlow(inv))
                return true;
            // NPC == PC + 4 style sequencing invariants.
            if (inv.op != CmpOp::Eq)
                return false;
            return mentions(inv, VarId::NPC) &&
                   mentions(inv, VarId::PC) && !exceptional(inv);
        });

    add("p14", "Exception return updates state correctly", "SPECS",
        PropClass::XR, Expressibility::Yes, [](const Invariant &inv) {
            if (pointIs(inv, isa::Mnemonic::L_RFE)) {
                return mentionsAny(inv, {VarId::SR, VarId::NPC,
                                         VarId::EPCR0, VarId::ESR0});
            }
            // The state an l.rfe will consume, recorded at the
            // exception itself.
            return exceptional(inv) && mentions(inv, VarId::EPCR0) &&
                   (inv.op == CmpOp::Eq || inv.op == CmpOp::Ne);
        });

    add("p15", "Reg. change implies that it is the instruction target",
        "SPECS", PropClass::CR, Expressibility::Yes,
        [](const Invariant &inv) {
            // GPRk == orig(GPRk): registers the instruction does not
            // name stay unchanged.
            if (inv.op != CmpOp::Eq)
                return false;
            const auto &l = inv.lhs;
            const auto &r = inv.rhs;
            return l.isBareVar() && r.isBareVar() &&
                   l.a.var == r.a.var && l.a.var < 32 &&
                   l.a.orig != r.a.orig;
        });

    add("p16", "SR is not written to a GPR in user mode", "SPECS",
        PropClass::RU, Expressibility::Yes, [](const Invariant &inv) {
            return varsRelated(inv, CmpOp::Ne, VarId::SR,
                               VarId::OPDEST);
        });

    add("p17", "Interrupt implies handled", "SPECS", PropClass::XR,
        Expressibility::Yes, vectoredControlFlow);

    add("p18", "Instr unchanged in pipeline", "SPECS", PropClass::IE,
        Expressibility::Microarch);

    // ---------------- Security-Checker properties ----------------

    add("p19", "SPR modified only in supervisor mode",
        "Security-Checker", PropClass::RU, Expressibility::Yes,
        [](const Invariant &inv) {
            return pointIs(inv, isa::Mnemonic::L_MTSPR) &&
                   !exceptional(inv) &&
                   (varEqualsConst(inv, VarId::SM, 1) ||
                    mentions(inv, VarId::SM));
        });

    add("p20", "Enter supervisor mode is on reset or exception",
        "Security-Checker", PropClass::XR, Expressibility::Yes,
        [](const Invariant &inv) {
            // SM unchanged at ordinary points...
            if (!exceptional(inv) &&
                !pointIs(inv, isa::Mnemonic::L_RFE)) {
                const auto &l = inv.lhs;
                const auto &r = inv.rhs;
                if (inv.op == CmpOp::Eq && l.isBareVar() &&
                    r.isBareVar() && l.a.var == VarId::SM &&
                    r.a.var == VarId::SM && l.a.orig != r.a.orig) {
                    return true;
                }
            }
            // ...and set on exception entry.
            return exceptional(inv) &&
                   varEqualsConst(inv, VarId::SM, 1);
        });

    add("p21", "Exception handling implies exception mechanism "
        "activated",
        "Security-Checker", PropClass::XR, Expressibility::Yes,
        [](const Invariant &inv) {
            if (vectoredControlFlow(inv))
                return true;
            return exceptional(inv) && inv.op == CmpOp::Eq &&
                   mentions(inv, VarId::ESR0) &&
                   mentions(inv, VarId::SR);
        });

    add("p22", "Unspecified custom instructions are not allowed",
        "Security-Checker", PropClass::IE,
        Expressibility::NotGenerated);

    add("p23", "Exception handler accessed only during exception, in "
        "supvr mode, or on reset",
        "Security-Checker", PropClass::XR, Expressibility::Yes,
        vectoredControlFlow);

    add("p24", "Page fault generated if MMU detects an access control "
        "violation",
        "Security-Checker", PropClass::MA, Expressibility::Microarch);

    add("p25", "UART output changes on a write command from CPU",
        "Security-Checker", PropClass::OffCore,
        Expressibility::OffCore);

    add("p26", "Only transmit cmd or initialization change Ethernet "
        "data output",
        "Security-Checker", PropClass::OffCore,
        Expressibility::OffCore);

    add("p27", "Debug Unit's value and ctrl regs only accessible from "
        "supvr mode",
        "Security-Checker", PropClass::OffCore,
        Expressibility::OffCore);

    // ---------------- new properties (Table 7) ----------------

    add("p28", "Flags that influence control flow should be set "
        "correctly",
        "new", PropClass::CF, Expressibility::Yes,
        [](const Invariant &inv) {
            return pointKind(inv, isa::InsnKind::Compare) &&
                   varEqualsConst(inv, VarId::FLAGOK, 1);
        });

    add("p29", "Calculation of memory address or memory data is "
        "correct",
        "new", PropClass::MA, Expressibility::Yes,
        [](const Invariant &inv) {
            // Word extensions are the identity (b3)...
            if (pointKind(inv, isa::InsnKind::Extend) &&
                inv.op == CmpOp::Eq && mentions(inv, VarId::OPDEST) &&
                mentions(inv, VarId::OPA)) {
                return true;
            }
            // ...and GPR0, the base of address arithmetic, is zero.
            return varEqualsConst(inv, trace::gprVar(0), 0);
        });

    add("p30", "Link address is not modified during function call "
        "execution",
        "new", PropClass::CF, Expressibility::Yes,
        [](const Invariant &inv) {
            if (pointIs(inv, isa::Mnemonic::L_JAL) ||
                pointIs(inv, isa::Mnemonic::L_JALR)) {
                return false;
            }
            const auto &l = inv.lhs;
            const auto &r = inv.rhs;
            return inv.op == CmpOp::Eq && l.isBareVar() &&
                   r.isBareVar() &&
                   l.a.var == trace::gprVar(isa::linkReg) &&
                   r.a.var == trace::gprVar(isa::linkReg) &&
                   l.a.orig != r.a.orig;
        });

    return cat;
}

} // namespace

const std::vector<Property> &
catalog()
{
    static const std::vector<Property> cat = buildCatalog();
    return cat;
}

const Property &
propertyById(const std::string &id)
{
    for (const auto &p : catalog()) {
        if (p.id == id)
            return p;
    }
    panic("unknown property '%s'", id.c_str());
}

std::vector<std::string>
matchProperties(const expr::Invariant &inv)
{
    std::vector<std::string> out;
    for (const auto &p : catalog()) {
        if (p.matches && p.matches(inv))
            out.push_back(p.id);
    }
    return out;
}

} // namespace scif::sci

/**
 * @file
 * Security-critical invariant identification (paper §3.3, §5.2).
 *
 * For each reproduced bug the trigger program runs on the buggy and
 * on the clean processor:
 *
 *  - invariants violated on the *clean* run are not true invariants
 *    at all (generation artifacts); they are silently discarded;
 *  - invariants violated on the buggy run only are candidate SCI;
 *  - candidates are then validated the way the paper's human expert
 *    validated them (§5.7: five hours of marking candidates that are
 *    "clearly non-invariant as determined by the ISA"): a candidate
 *    violated by any clean run of the held-out validation corpus is
 *    not a real processor invariant and becomes a false positive —
 *    Table 3's FP column; the survivors are the bug's true SCI.
 */

#ifndef SCIFINDER_SCI_IDENTIFY_HH
#define SCIFINDER_SCI_IDENTIFY_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bugs/registry.hh"
#include "expr/compile.hh"
#include "expr/fused.hh"
#include "invgen/invgen.hh"

namespace scif::support {
class ThreadPool;
} // namespace scif::support

namespace scif::sci {

/**
 * How violation scans evaluate invariant expressions: compiled batch
 * programs over columnar trace matrices (the default), or the
 * interpreted Expr tree walk over AoS records (the oracle both the
 * differential tests and the eval-throughput bench compare against).
 */
enum class EvalMode { Compiled, Interpreted };

/**
 * An invariant model compiled for batch violation scanning: one
 * register-machine program per invariant plus the column
 * materialization list (exactly the slots the model references) and
 * the covered program points. Build once, share read-only across the
 * per-bug / per-trace fan-outs.
 *
 * When fused evaluation is enabled (expr::fusedEvalDefault() at
 * construction), the model additionally fuses each point's programs
 * into one expr::FusedProgram — in atPoint() order — so a violation
 * scan traverses a point's columns once for all its invariants
 * instead of once per invariant.
 */
class CompiledModel
{
  public:
    explicit CompiledModel(const invgen::InvariantSet &set);

    const invgen::InvariantSet &set() const { return *set_; }
    const std::vector<expr::CompiledInvariant> &programs() const
    {
        return programs_;
    }
    /** Slot ids referenced by any invariant, ascending. */
    const std::vector<uint16_t> &slots() const { return slots_; }
    /** Point ids with at least one invariant. */
    const std::set<uint16_t> &points() const { return points_; }

    /**
     * The point's invariants as one fused batch program (member m is
     * the m-th index of set().atPoint(pointId)), or null when fused
     * evaluation was disabled at construction. Sweeping it yields
     * exactly the per-program firstViolation() outcomes.
     */
    const expr::FusedProgram *fusedAt(uint16_t pointId) const
    {
        auto it = fused_.find(pointId);
        return it == fused_.end() ? nullptr : &it->second;
    }

  private:
    const invgen::InvariantSet *set_;
    std::vector<expr::CompiledInvariant> programs_;
    std::vector<uint16_t> slots_;
    std::set<uint16_t> points_;
    std::map<uint16_t, expr::FusedProgram> fused_;
};

/**
 * Scan a trace for invariant violations.
 *
 * @param set the invariant model.
 * @param trace the execution trace.
 * @param mode evaluation substrate; both produce identical results.
 * @return indices (into set.all()) of every invariant violated by at
 *         least one record, in ascending order.
 */
std::vector<size_t> findViolations(const invgen::InvariantSet &set,
                                   const trace::TraceBuffer &trace,
                                   EvalMode mode = EvalMode::Compiled);

/** Scan with a prebuilt compiled model (the hot path). */
std::vector<size_t> findViolations(const CompiledModel &model,
                                   const trace::TraceBuffer &trace);

/**
 * Triage-ordered violation scan: invariants are evaluated in the
 * given priority order (see analysis::triageOrder), so the
 * statically implicated invariants run their differential checks
 * first. The returned violation set is identical to the unordered
 * findViolations() — triage changes only which checks run early.
 */
std::vector<size_t> findViolations(const CompiledModel &model,
                                   const trace::TraceBuffer &trace,
                                   const std::vector<size_t> &order);

/**
 * Union of violations across a corpus of clean traces — the automated
 * stand-in for the expert's ISA knowledge. Traces are scanned in
 * parallel over @p pool when one is given; the union is
 * order-independent, so the result is identical either way.
 */
std::set<size_t>
corpusViolations(const invgen::InvariantSet &set,
                 const std::vector<trace::TraceBuffer> &corpus,
                 support::ThreadPool *pool = nullptr,
                 EvalMode mode = EvalMode::Compiled);

/** Corpus scan with a prebuilt compiled model. */
std::set<size_t>
corpusViolations(const CompiledModel &model,
                 const std::vector<trace::TraceBuffer> &corpus,
                 support::ThreadPool *pool = nullptr);

/**
 * Corpus scan over a chunked v2 trace-set artifact without
 * materializing it: chunks are decompressed, scanned, and released
 * independently (in parallel over @p pool), so resident trace memory
 * is O(chunk x jobs). The violation union is order-independent and
 * identical to scanning the fully loaded corpus.
 */
std::set<size_t>
corpusViolations(const CompiledModel &model,
                 const trace::TraceSetReader &reader,
                 support::ThreadPool *pool = nullptr);

/** Streaming corpus scan without a prebuilt model. */
std::set<size_t>
corpusViolations(const invgen::InvariantSet &set,
                 const trace::TraceSetReader &reader,
                 support::ThreadPool *pool = nullptr,
                 EvalMode mode = EvalMode::Compiled);

/** Per-bug identification outcome (one row of Table 3). */
struct IdentificationResult
{
    std::string bugId;
    /** Violated on the buggy run only and validated: the true SCI. */
    std::vector<size_t> trueSci;
    /** Violated on the buggy run only but exposed as non-invariant
     *  by the validation corpus: Table 3's FP column. */
    std::vector<size_t> falsePositives;
    /** Violated on the clean trigger run: generation artifacts,
     *  discarded before validation. */
    std::vector<size_t> notInvariant;

    /** An enforced assertion would fire on this bug. */
    bool detected() const { return !trueSci.empty(); }
};

/**
 * Identify the SCI for one bug.
 *
 * @param set the optimized invariant model.
 * @param bug the reproduced erratum and its trigger.
 * @param knownNonInvariant invariants the validation corpus exposed
 *        as non-invariant (see corpusViolations()).
 */
IdentificationResult identify(const invgen::InvariantSet &set,
                              const bugs::Bug &bug,
                              const std::set<size_t> &knownNonInvariant,
                              EvalMode mode = EvalMode::Compiled,
                              bool interpretedSim = false);

/**
 * Static-triage telemetry for one bug's identification: the scan
 * priority (analysis::triageOrder over the bug's mutation footprint)
 * and where the dynamically identified SCI landed in it. quality is
 * analysis::rankQuality — 1.0 when every true SCI leads the order,
 * 0.5 when the static ordering is no better than random.
 */
struct TriageReport
{
    std::vector<size_t> order;      ///< scan order, invariant indices
    std::vector<uint32_t> distance; ///< per-invariant taint distance
    double quality = 1.0;           ///< rank quality of the true SCI
    size_t firstSciRank = 0;        ///< order rank of the first SCI
};

/**
 * Identify with a prebuilt compiled model (the hot path). The
 * trigger pair runs on one Cpu via bugs::runTriggers();
 * @p interpretedSim forces the interpreted simulator front end (the
 * differential oracle for the predecoded default). When @p triage is
 * non-null, the buggy-trace scan runs in static triage order and the
 * report is filled in; the identification result is unchanged.
 */
IdentificationResult identify(const CompiledModel &model,
                              const bugs::Bug &bug,
                              const std::set<size_t> &knownNonInvariant,
                              bool interpretedSim = false,
                              TriageReport *triage = nullptr);

/**
 * Identify the SCI for a list of bugs, fanning out per bug over
 * @p pool when one is given. Results are folded into the returned
 * database in the order of @p bugList, so the output is identical to
 * the serial per-bug loop.
 */
class SciDatabase;
SciDatabase identifyAll(const invgen::InvariantSet &set,
                        const std::vector<const bugs::Bug *> &bugList,
                        const std::set<size_t> &knownNonInvariant,
                        support::ThreadPool *pool = nullptr,
                        EvalMode mode = EvalMode::Compiled,
                        bool interpretedSim = false);

/**
 * Identify all bugs with a prebuilt compiled model. When @p triage
 * is non-null it is resized to the bug list and one report is
 * produced per bug (the scans then run in static triage order).
 */
SciDatabase identifyAll(const CompiledModel &model,
                        const std::vector<const bugs::Bug *> &bugList,
                        const std::set<size_t> &knownNonInvariant,
                        support::ThreadPool *pool = nullptr,
                        bool interpretedSim = false,
                        std::vector<TriageReport> *triage = nullptr);

/**
 * The accumulated identification output: which invariants are SCI
 * (and from which bugs), and which are labeled false positives — the
 * labeled data the inference phase trains on (§5.3: SCI plus the
 * unique false positives from the identification step).
 */
class SciDatabase
{
  public:
    /** Fold one bug's identification result in. */
    void addResult(const IdentificationResult &result);

    /** @return indices of all identified SCI, ascending. */
    std::vector<size_t> sciIndices() const;

    /**
     * @return indices of labeled non-SCI (identification false
     * positives never identified as SCI by any bug), ascending.
     */
    std::vector<size_t> nonSciIndices() const;

    /** @return bugs whose trigger identified invariant @p index. */
    const std::vector<std::string> &provenance(size_t index) const;

    /** @return true if the invariant is an identified SCI. */
    bool isSci(size_t index) const { return sci_.count(index) != 0; }

    /** @return per-bug results in insertion order. */
    const std::vector<IdentificationResult> &results() const
    {
        return results_;
    }

    /**
     * Persist to a versioned binary artifact (the phase-3 output of
     * the staged pipeline). The per-bug results are the source of
     * truth; the SCI and false-positive indices are rebuilt on load.
     */
    void saveBinary(const std::string &path) const;

    /** Load a binary artifact; aborts on a truncated or corrupt
     *  file, or on an unsupported version. */
    static SciDatabase loadBinary(const std::string &path);

  private:
    std::vector<IdentificationResult> results_;
    std::map<size_t, std::vector<std::string>> sci_;
    std::set<size_t> falsePositives_;
};

} // namespace scif::sci

#endif // SCIFINDER_SCI_IDENTIFY_HH

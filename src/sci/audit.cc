#include "audit.hh"

#include <algorithm>
#include <cstdio>

#include "support/threadpool.hh"
#include "trace/schema.hh"

namespace scif::sci {

namespace {

/** Fixed-format rendering of a rank-quality value. */
std::string
fmtQuality(double q)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", q);
    return buf;
}

/** Number of triage-leading guards listed per bug. */
constexpr size_t topGuardCount = 5;

BugAudit
auditBug(const invgen::InvariantSet &set, const bugs::Bug &bug,
         const SciDatabase *db)
{
    const analysis::StateGraph &graph =
        analysis::StateGraph::instance();

    BugAudit a;
    a.bugId = bug.id;
    a.synopsis = bug.synopsis;

    analysis::BugReach reach = analysis::bugReach(graph, bug.mutation);
    a.footprint = reach.footprint;
    for (uint16_t v = 0; v < trace::numVars; ++v) {
        if (reach.dist[v] == analysis::unreachableDist)
            continue;
        if (analysis::varSecurityClasses(v).empty())
            continue;
        a.reachable.emplace_back(v, reach.dist[v]);
    }
    std::sort(a.reachable.begin(), a.reachable.end(),
              [](const auto &x, const auto &y) {
                  return x.second != y.second ? x.second < y.second
                                              : x.first < y.first;
              });

    analysis::TriageOrder triage =
        analysis::triageOrder(graph, set.all(), bug.mutation);
    for (uint32_t d : triage.distance) {
        if (d == analysis::unreachableDist)
            continue;
        ++a.guarded;
        if (d == 0)
            ++a.guardedDirect;
    }
    for (size_t idx : triage.order) {
        if (a.topGuards.size() >= topGuardCount)
            break;
        if (triage.distance[idx] == analysis::unreachableDist)
            break;
        a.topGuards.push_back(idx);
    }

    if (db == nullptr)
        return a;
    for (const IdentificationResult &res : db->results()) {
        if (res.bugId != bug.id)
            continue;
        a.checked = true;
        a.dynamicSci = res.trueSci.size();
        a.rankQuality =
            analysis::rankQuality(triage.order, res.trueSci);
        std::vector<size_t> rank(triage.order.size(), 0);
        for (size_t pos = 0; pos < triage.order.size(); ++pos)
            rank[triage.order[pos]] = pos;
        a.firstSciRank = triage.order.size();
        for (size_t idx : res.trueSci) {
            a.firstSciRank = std::min(a.firstSciRank, rank[idx]);
            if (triage.distance[idx] == analysis::unreachableDist)
                a.unsound.push_back(idx);
        }
        break;
    }
    return a;
}

} // namespace

bool
AuditReport::sound() const
{
    for (const BugAudit &a : bugs_)
        if (!a.unsound.empty())
            return false;
    return true;
}

double
AuditReport::meanRankQuality() const
{
    double sum = 0.0;
    size_t n = 0;
    for (const BugAudit &a : bugs_) {
        if (!a.checked || a.dynamicSci == 0)
            continue;
        sum += a.rankQuality;
        ++n;
    }
    return n == 0 ? 1.0 : sum / double(n);
}

std::string
AuditReport::render() const
{
    std::string out;
    out += "SCIFinder security-dataflow audit\n";
    out += "=================================\n";
    out += "model: " + std::to_string(set_->size()) + " invariants; ";
    out += "bugs audited: " + std::to_string(bugs_.size()) + "\n";

    for (const BugAudit &a : bugs_) {
        out += "\n== " + a.bugId + ": " + a.synopsis + " ==\n";

        out += "mutated defs:";
        for (uint16_t v : a.footprint)
            out += " " + std::string(trace::varName(v));
        out += "\n";

        out += "reachable security state:\n";
        if (a.reachable.empty())
            out += "  (none: the defect is not ISA-visible)\n";
        for (const auto &[v, dist] : a.reachable) {
            out += "  @" + std::to_string(dist) + " " +
                   std::string(trace::varName(v)) + " [" +
                   analysis::varSecurityClasses(v).str() + "]\n";
        }

        out += "static guards: " + std::to_string(a.guarded) +
               " invariants (" + std::to_string(a.guardedDirect) +
               " direct)\n";
        for (size_t idx : a.topGuards) {
            out += "  [" + std::to_string(idx) + "] " +
                   set_->all()[idx].str() + "\n";
        }

        if (!a.checked) {
            out += "dynamic cross-check: (no identification result)\n";
            continue;
        }
        out += "dynamic cross-check: " + std::to_string(a.dynamicSci) +
               " SCI";
        if (a.dynamicSci != 0) {
            out += "; rank quality " + fmtQuality(a.rankQuality) +
                   "; first SCI at rank " +
                   std::to_string(a.firstSciRank);
        }
        out += "\n";
        if (a.unsound.empty()) {
            out += "soundness: OK\n";
        } else {
            out += "soundness: UNSOUND — dynamically identified SCI "
                   "not statically reachable:\n";
            for (size_t idx : a.unsound) {
                out += "  [" + std::to_string(idx) + "] " +
                       set_->all()[idx].str() + "\n";
            }
        }
    }

    size_t checked = 0;
    for (const BugAudit &a : bugs_)
        checked += a.checked;
    out += "\noverall: ";
    out += sound() ? "sound" : "UNSOUND";
    out += " (" + std::to_string(checked) + "/" +
           std::to_string(bugs_.size()) + " bugs cross-checked)";
    if (checked != 0)
        out += "; mean rank quality " + fmtQuality(meanRankQuality());
    out += "\n";
    return out;
}

AuditReport
audit(const invgen::InvariantSet &set,
      const std::vector<const bugs::Bug *> &bugList,
      const SciDatabase *db, support::ThreadPool *pool)
{
    AuditReport report;
    report.set_ = &set;
    report.bugs_ = support::parallelMap(
        pool, bugList, [&](const bugs::Bug *bug) {
            return auditBug(set, *bug, db);
        });
    return report;
}

} // namespace scif::sci

#include "identify.hh"

#include <algorithm>

#include "analysis/secflow.hh"
#include "support/binio.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "trace/store.hh"

namespace scif::sci {

CompiledModel::CompiledModel(const invgen::InvariantSet &set)
    : set_(&set)
{
    programs_.reserve(set.all().size());
    std::set<uint16_t> slots;
    for (const auto &inv : set.all()) {
        programs_.push_back(expr::CompiledInvariant::compile(inv));
        for (uint16_t s : programs_.back().slots())
            slots.insert(s);
        points_.insert(inv.point.id());
    }
    slots_.assign(slots.begin(), slots.end());

    if (expr::fusedEvalDefault()) {
        for (uint16_t pid : points_) {
            expr::FusedProgram &fp = fused_[pid];
            for (size_t idx : set.atPoint(pid))
                fp.add(programs_[idx]);
            fp.seal();
        }
    }
}

std::vector<size_t>
findViolations(const CompiledModel &model,
               const trace::TraceBuffer &trace)
{
    // Transpose only the referenced slots at the covered points:
    // records elsewhere cannot violate anything.
    trace::ColumnSet cols = trace::ColumnSet::build(
        trace, model.slots(), &model.points());

    std::set<size_t> violated;
    for (const auto &pc : cols.points()) {
        const std::vector<size_t> &idxs =
            model.set().atPoint(pc.point().id());
        const expr::FusedProgram *fp =
            model.fusedAt(pc.point().id());
        if (fp != nullptr) {
            // One traversal of the point's columns for all its
            // invariants; a member's violation verdict is the same
            // "does a violating row exist" answer firstViolation()
            // gives, so the violated set is identical.
            std::vector<size_t> firstBad(fp->members());
            fp->sweepViolations(pc, 0, pc.rows(), firstBad.data());
            for (size_t m = 0; m < firstBad.size(); ++m) {
                if (firstBad[m] != expr::FusedProgram::npos)
                    violated.insert(idxs[m]);
            }
            continue;
        }
        for (size_t idx : idxs) {
            if (model.programs()[idx].firstViolation(pc, 0,
                                                     pc.rows()) !=
                expr::CompiledInvariant::npos) {
                violated.insert(idx);
            }
        }
    }
    return std::vector<size_t>(violated.begin(), violated.end());
}

std::vector<size_t>
findViolations(const CompiledModel &model,
               const trace::TraceBuffer &trace,
               const std::vector<size_t> &order)
{
    trace::ColumnSet cols = trace::ColumnSet::build(
        trace, model.slots(), &model.points());

    // Invariant-major sweep in the given priority order; the violated
    // set — and therefore the returned vector — is order independent.
    // The whole purpose of this overload is running the statically
    // implicated checks first, so it keeps the per-invariant kernels:
    // fusing a point's members would erase the priority within it.
    std::set<size_t> violated;
    for (size_t idx : order) {
        const expr::Invariant &inv = model.set().all()[idx];
        trace::PointColumns *pc = cols.point(inv.point.id());
        if (pc == nullptr)
            continue;
        if (model.programs()[idx].firstViolation(*pc, 0, pc->rows()) !=
            expr::CompiledInvariant::npos) {
            violated.insert(idx);
        }
    }
    return std::vector<size_t>(violated.begin(), violated.end());
}

std::vector<size_t>
findViolations(const invgen::InvariantSet &set,
               const trace::TraceBuffer &trace, EvalMode mode)
{
    if (mode == EvalMode::Compiled)
        return findViolations(CompiledModel(set), trace);

    std::set<size_t> violated;
    const auto &invs = set.all();
    for (const auto &rec : trace.records()) {
        for (size_t idx : set.atPoint(rec.point.id())) {
            if (violated.count(idx))
                continue;
            if (!invs[idx].exprHolds(rec))
                violated.insert(idx);
        }
    }
    return std::vector<size_t>(violated.begin(), violated.end());
}

std::set<size_t>
corpusViolations(const CompiledModel &model,
                 const std::vector<trace::TraceBuffer> &corpus,
                 support::ThreadPool *pool)
{
    std::vector<std::vector<size_t>> perTrace(corpus.size());
    support::parallelFor(pool, corpus.size(), [&](size_t i) {
        perTrace[i] = findViolations(model, corpus[i]);
    });
    std::set<size_t> out;
    for (const auto &violations : perTrace)
        out.insert(violations.begin(), violations.end());
    return out;
}

std::set<size_t>
corpusViolations(const invgen::InvariantSet &set,
                 const std::vector<trace::TraceBuffer> &corpus,
                 support::ThreadPool *pool, EvalMode mode)
{
    if (mode == EvalMode::Compiled)
        return corpusViolations(CompiledModel(set), corpus, pool);
    std::vector<std::vector<size_t>> perTrace(corpus.size());
    support::parallelFor(pool, corpus.size(), [&](size_t i) {
        perTrace[i] = findViolations(set, corpus[i], mode);
    });
    std::set<size_t> out;
    for (const auto &violations : perTrace)
        out.insert(violations.begin(), violations.end());
    return out;
}

std::set<size_t>
corpusViolations(const CompiledModel &model,
                 const trace::TraceSetReader &reader,
                 support::ThreadPool *pool)
{
    // One job per chunk: decode, scan, release. The union is
    // order-independent, so the fan-out is jobs-invariant.
    struct Job
    {
        size_t stream;
        size_t chunk;
    };
    std::vector<Job> jobs;
    const auto &streams = reader.streams();
    for (size_t s = 0; s < streams.size(); ++s)
        for (size_t c = 0; c < streams[s].chunks.size(); ++c)
            jobs.push_back({s, c});

    std::vector<std::vector<size_t>> perChunk = support::parallelMap(
        pool, jobs, [&](const Job &job) -> std::vector<size_t> {
            trace::TraceBuffer buffer;
            reader.readChunk(job.stream, job.chunk, buffer);
            return findViolations(model, buffer);
        });

    std::set<size_t> out;
    for (const auto &violations : perChunk)
        out.insert(violations.begin(), violations.end());
    return out;
}

std::set<size_t>
corpusViolations(const invgen::InvariantSet &set,
                 const trace::TraceSetReader &reader,
                 support::ThreadPool *pool, EvalMode mode)
{
    if (mode == EvalMode::Compiled)
        return corpusViolations(CompiledModel(set), reader, pool);

    struct Job
    {
        size_t stream;
        size_t chunk;
    };
    std::vector<Job> jobs;
    const auto &streams = reader.streams();
    for (size_t s = 0; s < streams.size(); ++s)
        for (size_t c = 0; c < streams[s].chunks.size(); ++c)
            jobs.push_back({s, c});

    std::vector<std::vector<size_t>> perChunk = support::parallelMap(
        pool, jobs, [&](const Job &job) -> std::vector<size_t> {
            trace::TraceBuffer buffer;
            reader.readChunk(job.stream, job.chunk, buffer);
            return findViolations(set, buffer, mode);
        });

    std::set<size_t> out;
    for (const auto &violations : perChunk)
        out.insert(violations.begin(), violations.end());
    return out;
}

namespace {

/** Fold the trigger scans into one bug's result (§3.3). */
IdentificationResult
combineScans(const bugs::Bug &bug,
             const std::vector<size_t> &buggyViolations,
             std::vector<size_t> cleanViolations,
             const std::set<size_t> &knownNonInvariant)
{
    IdentificationResult result;
    result.bugId = bug.id;
    result.notInvariant = std::move(cleanViolations);

    std::vector<size_t> candidates;
    std::set_difference(buggyViolations.begin(), buggyViolations.end(),
                        result.notInvariant.begin(),
                        result.notInvariant.end(),
                        std::back_inserter(candidates));

    for (size_t idx : candidates) {
        if (knownNonInvariant.count(idx))
            result.falsePositives.push_back(idx);
        else
            result.trueSci.push_back(idx);
    }
    return result;
}

} // namespace

IdentificationResult
identify(const CompiledModel &model, const bugs::Bug &bug,
         const std::set<size_t> &knownNonInvariant, bool interpretedSim,
         TriageReport *triage)
{
    bugs::TriggerTraces traces = bugs::runTriggers(bug, interpretedSim);
    std::vector<size_t> buggyViolations;
    if (triage != nullptr) {
        analysis::TriageOrder order = analysis::triageOrder(
            analysis::StateGraph::instance(), model.set().all(),
            bug.mutation);
        buggyViolations = findViolations(model, traces.buggy,
                                         order.order);
        triage->order = std::move(order.order);
        triage->distance = std::move(order.distance);
    } else {
        buggyViolations = findViolations(model, traces.buggy);
    }
    IdentificationResult result =
        combineScans(bug, buggyViolations,
                     findViolations(model, traces.clean),
                     knownNonInvariant);
    if (triage != nullptr) {
        triage->quality =
            analysis::rankQuality(triage->order, result.trueSci);
        std::vector<size_t> rank(triage->order.size(), 0);
        for (size_t pos = 0; pos < triage->order.size(); ++pos)
            rank[triage->order[pos]] = pos;
        triage->firstSciRank = triage->order.size();
        for (size_t idx : result.trueSci)
            triage->firstSciRank =
                std::min(triage->firstSciRank, rank[idx]);
    }
    return result;
}

IdentificationResult
identify(const invgen::InvariantSet &set, const bugs::Bug &bug,
         const std::set<size_t> &knownNonInvariant, EvalMode mode,
         bool interpretedSim)
{
    if (mode == EvalMode::Compiled) {
        return identify(CompiledModel(set), bug, knownNonInvariant,
                        interpretedSim);
    }
    bugs::TriggerTraces traces = bugs::runTriggers(bug, interpretedSim);
    return combineScans(bug, findViolations(set, traces.buggy, mode),
                        findViolations(set, traces.clean, mode),
                        knownNonInvariant);
}

SciDatabase
identifyAll(const CompiledModel &model,
            const std::vector<const bugs::Bug *> &bugList,
            const std::set<size_t> &knownNonInvariant,
            support::ThreadPool *pool, bool interpretedSim,
            std::vector<TriageReport> *triage)
{
    // The compiled programs are immutable and shared read-only by
    // the per-bug workers. Each bug's identification (two trigger
    // simulations plus the violation scans) is independent; folding
    // the results in bug-list order keeps the database identical to
    // the serial loop.
    if (triage != nullptr)
        triage->assign(bugList.size(), TriageReport{});
    std::vector<IdentificationResult> results(bugList.size());
    support::parallelFor(pool, bugList.size(), [&](size_t i) {
        results[i] = identify(model, *bugList[i], knownNonInvariant,
                              interpretedSim,
                              triage != nullptr ? &(*triage)[i]
                                                : nullptr);
    });
    SciDatabase db;
    for (const auto &result : results)
        db.addResult(result);
    return db;
}

SciDatabase
identifyAll(const invgen::InvariantSet &set,
            const std::vector<const bugs::Bug *> &bugList,
            const std::set<size_t> &knownNonInvariant,
            support::ThreadPool *pool, EvalMode mode,
            bool interpretedSim)
{
    if (mode == EvalMode::Compiled) {
        return identifyAll(CompiledModel(set), bugList,
                           knownNonInvariant, pool, interpretedSim);
    }
    std::vector<IdentificationResult> results(bugList.size());
    support::parallelFor(pool, bugList.size(), [&](size_t i) {
        results[i] = identify(set, *bugList[i], knownNonInvariant,
                              mode, interpretedSim);
    });
    SciDatabase db;
    for (const auto &result : results)
        db.addResult(result);
    return db;
}

void
SciDatabase::addResult(const IdentificationResult &result)
{
    results_.push_back(result);
    for (size_t idx : result.trueSci)
        sci_[idx].push_back(result.bugId);
    for (size_t idx : result.falsePositives)
        falsePositives_.insert(idx);
}

std::vector<size_t>
SciDatabase::sciIndices() const
{
    std::vector<size_t> out;
    for (const auto &[idx, bugs] : sci_)
        out.push_back(idx);
    return out;
}

std::vector<size_t>
SciDatabase::nonSciIndices() const
{
    std::vector<size_t> out;
    for (size_t idx : falsePositives_) {
        if (!sci_.count(idx))
            out.push_back(idx);
    }
    return out;
}

const std::vector<std::string> &
SciDatabase::provenance(size_t index) const
{
    static const std::vector<std::string> empty;
    auto it = sci_.find(index);
    return it == sci_.end() ? empty : it->second;
}

namespace {

constexpr uint32_t dbMagic = 0x53434944; // "SCID"
constexpr uint32_t dbVersion = 1;
constexpr uint64_t dbMaxIndices = 1ull << 32;

void
writeIndices(support::BinWriter &out, const std::vector<size_t> &v)
{
    out.u64(v.size());
    for (size_t idx : v)
        out.u64(idx);
}

std::vector<size_t>
readIndices(support::BinReader &in, const std::string &path)
{
    uint64_t count = in.u64();
    if (count > dbMaxIndices)
        fatal("SCI database '%s' is corrupt (%llu indices)",
              path.c_str(), (unsigned long long)count);
    std::vector<size_t> out(count);
    for (uint64_t i = 0; i < count; ++i)
        out[i] = size_t(in.u64());
    return out;
}

} // namespace

void
SciDatabase::saveBinary(const std::string &path) const
{
    support::BinWriter out(path, dbMagic, dbVersion);
    out.u64(results_.size());
    for (const auto &result : results_) {
        out.str(result.bugId);
        writeIndices(out, result.trueSci);
        writeIndices(out, result.falsePositives);
        writeIndices(out, result.notInvariant);
    }
    out.close();
}

SciDatabase
SciDatabase::loadBinary(const std::string &path)
{
    support::BinReader in(path, dbMagic, dbVersion, "SCI database");
    SciDatabase db;
    uint64_t count = in.u64();
    for (uint64_t i = 0; i < count; ++i) {
        IdentificationResult result;
        result.bugId = in.str(256);
        result.trueSci = readIndices(in, path);
        result.falsePositives = readIndices(in, path);
        result.notInvariant = readIndices(in, path);
        db.addResult(result);
    }
    in.expectEof();
    return db;
}

} // namespace scif::sci

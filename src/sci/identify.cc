#include "identify.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scif::sci {

std::vector<size_t>
findViolations(const invgen::InvariantSet &set,
               const trace::TraceBuffer &trace)
{
    std::set<size_t> violated;
    const auto &invs = set.all();
    for (const auto &rec : trace.records()) {
        for (size_t idx : set.atPoint(rec.point.id())) {
            if (violated.count(idx))
                continue;
            if (!invs[idx].exprHolds(rec))
                violated.insert(idx);
        }
    }
    return std::vector<size_t>(violated.begin(), violated.end());
}

std::set<size_t>
corpusViolations(const invgen::InvariantSet &set,
                 const std::vector<trace::TraceBuffer> &corpus)
{
    std::set<size_t> out;
    for (const auto &trace : corpus) {
        for (size_t idx : findViolations(set, trace))
            out.insert(idx);
    }
    return out;
}

IdentificationResult
identify(const invgen::InvariantSet &set, const bugs::Bug &bug,
         const std::set<size_t> &knownNonInvariant)
{
    trace::TraceBuffer buggy = bugs::runTrigger(bug, true);
    trace::TraceBuffer clean = bugs::runTrigger(bug, false);

    std::vector<size_t> buggyViolations = findViolations(set, buggy);
    std::vector<size_t> cleanViolations = findViolations(set, clean);

    IdentificationResult result;
    result.bugId = bug.id;
    result.notInvariant = std::move(cleanViolations);

    std::vector<size_t> candidates;
    std::set_difference(buggyViolations.begin(), buggyViolations.end(),
                        result.notInvariant.begin(),
                        result.notInvariant.end(),
                        std::back_inserter(candidates));

    for (size_t idx : candidates) {
        if (knownNonInvariant.count(idx))
            result.falsePositives.push_back(idx);
        else
            result.trueSci.push_back(idx);
    }
    return result;
}

void
SciDatabase::addResult(const IdentificationResult &result)
{
    results_.push_back(result);
    for (size_t idx : result.trueSci)
        sci_[idx].push_back(result.bugId);
    for (size_t idx : result.falsePositives)
        falsePositives_.insert(idx);
}

std::vector<size_t>
SciDatabase::sciIndices() const
{
    std::vector<size_t> out;
    for (const auto &[idx, bugs] : sci_)
        out.push_back(idx);
    return out;
}

std::vector<size_t>
SciDatabase::nonSciIndices() const
{
    std::vector<size_t> out;
    for (size_t idx : falsePositives_) {
        if (!sci_.count(idx))
            out.push_back(idx);
    }
    return out;
}

const std::vector<std::string> &
SciDatabase::provenance(size_t index) const
{
    static const std::vector<std::string> empty;
    auto it = sci_.find(index);
    return it == sci_.end() ? empty : it->second;
}

} // namespace scif::sci

/**
 * @file
 * The scifinder command-line tool: the library's functionality as a
 * standalone program.
 *
 * The pipeline phases are separate subcommands over a shared artifact
 * directory, so any phase can be re-run alone from its predecessors'
 * persisted outputs:
 *
 *   scifinder run       [--jobs N] [--artifact-dir D]   all phases
 *   scifinder generate  [--jobs N] --artifact-dir D     phase 1
 *   scifinder optimize  --artifact-dir D                phase 2
 *   scifinder identify  [--jobs N] --artifact-dir D     phase 3
 *   scifinder infer     --artifact-dir D                phase 4
 *
 * plus the catalog/utility commands (workloads, bugs, errata,
 * properties, trace, exec) and the legacy trace-file mode of
 * generate/identify, which runs in memory without artifacts.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "bugs/classification.hh"
#include "core/artifacts.hh"
#include "core/scifinder.hh"
#include "fuzz/fleet.hh"
#include "fuzz/fuzzer.hh"
#include "monitor/overhead.hh"
#include "monitor/service.hh"
#include "sci/audit.hh"
#include "support/ioerror.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "support/threadpool.hh"
#include "trace/io.hh"
#include "trace/store.hh"

namespace {

using namespace scif;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: scifinder <command> [args]\n"
        "\n"
        "pipeline (artifact-backed; any phase can be re-run alone):\n"
        "  run       [opts] [--no-inference]\n"
        "                            run all phases and report\n"
        "  generate  [opts] [workload...]\n"
        "                            phase 1: run the workloads, "
        "infer the\n"
        "                            raw invariant model\n"
        "            [-o f] <trace-file>...\n"
        "                            legacy: infer from trace files\n"
        "  optimize  --artifact-dir D\n"
        "                            phase 2: optimize the raw "
        "model\n"
        "  identify  [opts] [bug...] phase 3: identify SCI for the "
        "errata\n"
        "  infer     --artifact-dir D\n"
        "                            phase 4: infer additional SCI\n"
        "  analyze   [--jobs N] [--json] [--audit-traces] "
        "--artifact-dir D\n"
        "                            classify the optimized model "
        "with the\n"
        "                            abstract-interpretation "
        "analyzer;\n"
        "                            --json emits the report as JSON "
        "on stdout;\n"
        "                            --audit-traces also scans the "
        "persisted\n"
        "                            training traces for violations\n"
        "  audit     [--jobs N] --artifact-dir D [bug...]\n"
        "                            security-dataflow audit: per-bug "
        "mutated\n"
        "                            defs, reachable security state, "
        "and static\n"
        "                            invariant guards, cross-checked "
        "against the\n"
        "                            phase-3 identification (exit 1 "
        "= unsound)\n"
        "\n"
        "  common [opts]: --jobs N (0 = all cores), --artifact-dir "
        "D,\n"
        "                 --chunk-records N (v2 trace-set chunk "
        "size),\n"
        "                 --validation N (corpus size, default 24),\n"
        "                 --interpreted-eval (identify: scan with "
        "the\n"
        "                 interpreted oracle instead of the compiled "
        "kernels),\n"
        "                 --interpreted-sim (simulate on the "
        "interpreted\n"
        "                 front end instead of the predecoded block "
        "cache\n"
        "                 with capture-time columns; same "
        "artifacts),\n"
        "                 --no-chain (keep the block cache but "
        "disable\n"
        "                 superblock chaining; same artifacts),\n"
        "                 --no-fused-eval (evaluate invariants "
        "one\n"
        "                 kernel at a time instead of fused batch\n"
        "                 programs; same artifacts)\n"
        "\n"
        "testing:\n"
        "  fuzz      [opts] [--seed S] [--count N] "
        "[--mutation-coverage]\n"
        "            [--replay D] [--fleet N] [--grain N]\n"
        "                            --fleet runs N work-stealing "
        "shards\n"
        "                            (0 = all cores; artifacts "
        "byte-identical\n"
        "                            for any width; not with "
        "--replay)\n"
        "                            differential fuzz the simulator "
        "against\n"
        "                            the independent reference "
        "interpreter;\n"
        "                            optionally score mutation kill "
        "rates\n"
        "  serve     --artifact-dir D [--shards N] [--queue-batches "
        "N]\n"
        "            [--batch-records N] [--stats] [--workloads]\n"
        "            [--fuzz N [--seed S]] [set.bin...]\n"
        "                            enforce the identified-SCI "
        "assertion set\n"
        "                            on concurrent sessions: "
        "trace-set streams,\n"
        "                            live workload replays, fuzz "
        "programs\n"
        "                            (exit 1 if any assertion "
        "fired)\n"
        "\n"
        "catalogs and utilities:\n"
        "  workloads                 list the 17 training workloads\n"
        "  bugs                      list the 31 reproduced errata\n"
        "  errata                    the collected-errata catalog and\n"
        "                            the phase-2 classification aid\n"
        "  properties                list the security-property "
        "catalog\n"
        "  trace <workload> <out>    run a workload, write its "
        "binary trace\n"
        "  trace capture <workload> <out> [--chunk-records N]\n"
        "                            run a workload straight into a "
        "v2 set\n"
        "  trace dump <set> [--stream S] [--limit N] [--vars A,B]\n"
        "                            print records of a set "
        "artifact\n"
        "  trace count <set> [--points]\n"
        "                            stream/record totals (or a "
        "per-point\n"
        "                            histogram) of a set artifact\n"
        "  trace diff <a> <b>        compare two set artifacts "
        "record by\n"
        "                            record (exit 1 = differ, 3 = "
        "I/O error)\n"
        "  trace extract <in> <out> --stream S [--from N] [--count "
        "N]\n"
        "                            copy one stream (or a record "
        "range)\n"
        "                            into a new v2 set\n"
        "  trace merge <out> <in>...\n"
        "                            merge set artifacts into one "
        "v2 set\n"
        "  trace convert <in> <out> [--v1] [--chunk-records N]\n"
        "                            re-encode a set artifact as v2 "
        "(or v1)\n"
        "  exec <file.s>             assemble and execute a "
        "program\n");
    return 2;
}

/** Options shared by the pipeline subcommands, stripped from args. */
struct CommonOpts
{
    size_t jobs = 1;
    std::string artifactDir;
    size_t validationPrograms = 24;
    bool noInference = false;
    /** Force the interpreted Expr oracle for violation scans
     *  (identify); the default is the compiled batch kernels. */
    bool interpretedEval = false;
    /** Force the interpreted simulator front end (no predecoded
     *  block cache, no capture-time columns); the differential
     *  oracle for the fast path. Artifacts are byte-identical. */
    bool interpretedSim = false;
    /** Records per chunk of written v2 trace sets. */
    size_t chunkRecords = trace::defaultChunkRecords;
};

/**
 * Strip the common pipeline flags out of @p args.
 * @return false (after printing a diagnostic) on a malformed flag.
 */
bool
parseCommon(std::vector<std::string> &args, CommonOpts &opts)
{
    std::vector<std::string> rest;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *flag) -> const std::string * {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return &args[++i];
        };
        auto count = [](const std::string &s, const char *flag,
                        size_t *out) {
            char *end = nullptr;
            unsigned long v = std::strtoul(s.c_str(), &end, 10);
            if (s.empty() || *end != '\0') {
                std::fprintf(stderr, "%s expects a number, got '%s'\n",
                             flag, s.c_str());
                return false;
            }
            *out = size_t(v);
            return true;
        };
        if (arg == "--jobs" || arg == "-j") {
            const std::string *v = value("--jobs");
            if (!v || !count(*v, "--jobs", &opts.jobs))
                return false;
        } else if (arg == "--artifact-dir") {
            const std::string *v = value("--artifact-dir");
            if (!v)
                return false;
            opts.artifactDir = *v;
        } else if (arg == "--validation") {
            const std::string *v = value("--validation");
            if (!v ||
                !count(*v, "--validation", &opts.validationPrograms))
                return false;
        } else if (arg == "--chunk-records") {
            const std::string *v = value("--chunk-records");
            if (!v || !count(*v, "--chunk-records", &opts.chunkRecords))
                return false;
            if (opts.chunkRecords == 0) {
                std::fprintf(stderr,
                             "--chunk-records must be positive\n");
                return false;
            }
        } else if (arg == "--no-inference") {
            opts.noInference = true;
        } else if (arg == "--interpreted-eval") {
            opts.interpretedEval = true;
        } else if (arg == "--interpreted-sim") {
            opts.interpretedSim = true;
        } else if (arg == "--no-chain") {
            // Process-wide: every simulation this invocation runs
            // uses the plain (unchained) block-cache dispatch.
            cpu::setChainDefault(false);
        } else if (arg == "--no-fused-eval") {
            // Process-wide: generation falsification, identification
            // scans and the checking service all fall back to the
            // per-invariant kernels (the differential oracle for the
            // fused batch programs). Artifacts are byte-identical.
            expr::setFusedEvalDefault(false);
        } else {
            rest.push_back(arg);
        }
    }
    args = std::move(rest);
    return true;
}

/** Pool for a subcommand's own fan-outs (null = serial). */
std::unique_ptr<support::ThreadPool>
makePool(const CommonOpts &opts)
{
    size_t jobs = support::ThreadPool::resolveJobs(opts.jobs);
    if (jobs <= 1)
        return nullptr;
    return std::make_unique<support::ThreadPool>(jobs);
}

/** Load an artifact after checking it exists, with a phase hint. */
#define REQUIRE_ARTIFACT(path, hint)                                         \
    do {                                                                     \
        if (!core::ArtifactPaths::exists(path)) {                            \
            std::fprintf(stderr,                                             \
                         "missing artifact %s (run 'scifinder %s' "          \
                         "first)\n",                                         \
                         (path).c_str(), hint);                              \
            return 1;                                                        \
        }                                                                    \
    } while (0)

int
cmdWorkloads()
{
    TextTable table({"name", "records", "instructions"});
    for (const auto &w : workloads::all()) {
        trace::TraceBuffer buf = workloads::run(w);
        uint64_t insns = 0;
        for (const auto &rec : buf.records())
            insns += rec.fused ? 2 : 1;
        table.addRow({w.name, std::to_string(buf.size()),
                      std::to_string(insns)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdBugs()
{
    TextTable table({"id", "set", "source", "synopsis"});
    for (const auto &bug : bugs::all()) {
        table.addRow({bug.id, bug.heldOut ? "held-out" : "Table 1",
                      bug.source, bug.synopsis});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdErrata()
{
    TextTable table({"id", "processor", "judged", "assistant",
                     "reproduced", "synopsis"});
    for (const auto &e : bugs::collectedErrata()) {
        auto suggestion = bugs::classifyBySynopsis(e.synopsis);
        table.addRow(
            {e.id, e.processor,
             e.judged == bugs::ErratumClass::Security ? "security"
                                                      : "functional",
             suggestion.suggested == bugs::ErratumClass::Security
                 ? "security"
                 : "functional",
             e.reproducedAs, e.synopsis.substr(0, 52)});
    }
    std::printf("%s", table.render().c_str());
    auto s = bugs::summarizeCollection();
    std::printf("\n%zu collected, %zu security-critical, %zu "
                "reproduced, %zu not reproducible; assistant agrees "
                "on %zu/%zu\n",
                s.collected, s.security, s.reproduced,
                s.notReproducible, s.assistantAgrees, s.collected);
    return 0;
}

int
cmdProperties()
{
    TextTable table({"id", "class", "origin", "scope", "description"});
    for (const auto &p : sci::catalog()) {
        std::string scope;
        switch (p.expressibility) {
          case sci::Expressibility::Yes: scope = "in-scope"; break;
          case sci::Expressibility::NotGenerated:
            scope = "not-generated";
            break;
          case sci::Expressibility::Microarch:
            scope = "microarch";
            break;
          case sci::Expressibility::OffCore:
            scope = "off-core";
            break;
        }
        table.addRow({p.id, std::string(sci::propClassName(p.cls)),
                      p.origin, scope, p.description});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

/** Parse a --vars list ("PC,INSN,GPR3") into slot ids. */
bool
parseVarList(const std::string &list, std::vector<uint16_t> *out)
{
    for (const auto &name : split(list, ',')) {
        uint16_t var = trace::varByName(name);
        if (var >= trace::numVars) {
            std::fprintf(stderr, "unknown variable '%s'\n",
                         name.c_str());
            return false;
        }
        out->push_back(var);
    }
    return true;
}

/**
 * Structured I/O diagnostic for the trace toolbelt: path and file
 * offset as separate fields, exit status 3 — distinct from "traces
 * differ" (1) and usage errors (2), so CI scripts can tell a flaky
 * filesystem from a real regression.
 */
int
ioErrorExit(const support::IoError &e)
{
    std::fprintf(stderr, "scifinder: I/O error: %s\n", e.what());
    std::fprintf(stderr, "  path:   %s\n", e.path().c_str());
    if (e.hasOffset())
        std::fprintf(stderr, "  offset: %llu\n",
                     (unsigned long long)e.offset());
    if (e.errnum())
        std::fprintf(stderr, "  errno:  %d (%s)\n", e.errnum(),
                     std::strerror(e.errnum()));
    return 3;
}

/** trace capture: run a workload straight into a v2 set artifact. */
int
cmdTraceCapture(const CommonOpts &opts,
                const std::vector<std::string> &args)
try {
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace capture <workload> <out> "
                     "[--chunk-records N]\n");
        return 2;
    }
    const auto &w = workloads::byName(args[0]);
    trace::TraceSetWriter writer(args[1],
                                 uint32_t(opts.chunkRecords));
    writer.beginStream(w.name);
    workloads::runInto(w, {}, opts.interpretedSim, &writer);
    writer.endStream();
    uint64_t records = writer.totalRecords();
    size_t chunks = writer.streams()[0].chunks.size();
    writer.close();
    std::printf("wrote %llu records in %zu chunks to %s\n",
                (unsigned long long)records, chunks, args[1].c_str());
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/** trace dump: print records of a set artifact (v1 or v2). */
int
cmdTraceDump(const std::vector<std::string> &args_in)
try {
    std::vector<std::string> args;
    std::string stream;
    size_t limit = 16;
    std::vector<uint16_t> vars;
    for (size_t i = 0; i < args_in.size(); ++i) {
        const std::string &arg = args_in[i];
        if (arg == "--stream" && i + 1 < args_in.size()) {
            stream = args_in[++i];
        } else if (arg == "--limit" && i + 1 < args_in.size()) {
            limit = size_t(std::strtoull(args_in[++i].c_str(),
                                         nullptr, 10));
        } else if (arg == "--vars" && i + 1 < args_in.size()) {
            if (!parseVarList(args_in[++i], &vars))
                return 2;
        } else {
            args.push_back(arg);
        }
    }
    if (args.size() != 1) {
        std::fprintf(stderr,
                     "usage: scifinder trace dump <set> [--stream S] "
                     "[--limit N] [--vars A,B,...]\n");
        return 2;
    }
    if (vars.empty()) {
        vars = {trace::VarId::PC, trace::VarId::INSN,
                trace::VarId::OPA, trace::VarId::OPB,
                trace::VarId::OPDEST};
    }

    auto src = trace::TraceSetSource::open(args[0]);
    for (size_t s = 0; s < src->streamCount(); ++s) {
        if (!stream.empty() && src->streamName(s) != stream)
            continue;
        std::printf("stream %s: %llu records, %zu chunks\n",
                    src->streamName(s).c_str(),
                    (unsigned long long)src->streamRecords(s),
                    src->streamChunks(s));
        auto cur = src->cursor(s);
        trace::Record rec;
        for (size_t n = 0; n < limit && cur->next(rec); ++n) {
            std::printf("  %8llu %-16s%s",
                        (unsigned long long)rec.index,
                        rec.point.name().c_str(),
                        rec.fused ? " fused" : "");
            for (uint16_t var : vars) {
                std::printf("  %s %08x->%08x",
                            std::string(trace::varName(var)).c_str(),
                            rec.pre[var], rec.post[var]);
            }
            std::printf("\n");
        }
    }
    if (!stream.empty() &&
        src->findStream(stream) == trace::TraceSetSource::npos) {
        std::fprintf(stderr, "no stream named '%s' in %s\n",
                     stream.c_str(), args[0].c_str());
        return 1;
    }
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/** trace count: stream totals or a per-point histogram. */
int
cmdTraceCount(const std::vector<std::string> &args_in)
try {
    std::vector<std::string> args;
    bool points = false;
    for (const auto &arg : args_in) {
        if (arg == "--points")
            points = true;
        else
            args.push_back(arg);
    }
    if (args.size() != 1) {
        std::fprintf(stderr,
                     "usage: scifinder trace count <set> "
                     "[--points]\n");
        return 2;
    }
    auto src = trace::TraceSetSource::open(args[0]);
    if (points) {
        std::map<uint16_t, uint64_t> histogram;
        trace::Record rec;
        for (size_t s = 0; s < src->streamCount(); ++s) {
            auto cur = src->cursor(s);
            while (cur->next(rec))
                ++histogram[rec.point.id()];
        }
        TextTable table({"point", "records"});
        for (const auto &[id, n] : histogram) {
            table.addRow({trace::Point::fromId(id).name(),
                          std::to_string(n)});
        }
        std::printf("%s", table.render().c_str());
        return 0;
    }
    TextTable table({"stream", "records", "chunks"});
    uint64_t records = 0;
    size_t chunks = 0;
    for (size_t s = 0; s < src->streamCount(); ++s) {
        records += src->streamRecords(s);
        chunks += src->streamChunks(s);
        table.addRow({src->streamName(s),
                      std::to_string(src->streamRecords(s)),
                      std::to_string(src->streamChunks(s))});
    }
    std::printf("%s", table.render().c_str());
    std::printf("v%u set: %zu streams, %llu records, %zu chunks\n",
                src->version(), src->streamCount(),
                (unsigned long long)records, chunks);
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/**
 * trace diff: record-exact comparison of two set artifacts.
 * Exit 0 = identical, 1 = traces differ, 2 = usage, 3 = I/O error.
 */
int
cmdTraceDiff(const std::vector<std::string> &args)
try {
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace diff <a> <b>\n");
        return 2;
    }
    auto a = trace::TraceSetSource::open(args[0]);
    auto b = trace::TraceSetSource::open(args[1]);

    bool differ = false;
    for (size_t s = 0; s < a->streamCount(); ++s) {
        size_t t = b->findStream(a->streamName(s));
        if (t == trace::TraceSetSource::npos) {
            std::printf("stream %s: only in %s\n",
                        a->streamName(s).c_str(), args[0].c_str());
            differ = true;
            continue;
        }
        auto ca = a->cursor(s);
        auto cb = b->cursor(t);
        trace::Record ra, rb;
        uint64_t pos = 0;
        while (true) {
            bool hasA = ca->next(ra);
            bool hasB = cb->next(rb);
            if (!hasA || !hasB) {
                if (hasA != hasB) {
                    std::printf("stream %s: record counts differ "
                                "(%llu vs %llu)\n",
                                a->streamName(s).c_str(),
                                (unsigned long long)a->streamRecords(s),
                                (unsigned long long)b->streamRecords(t));
                    differ = true;
                }
                break;
            }
            if (ra.point.id() != rb.point.id() ||
                ra.index != rb.index || ra.fused != rb.fused ||
                ra.pre != rb.pre || ra.post != rb.post) {
                std::printf("stream %s: first difference at record "
                            "%llu (%s vs %s)\n",
                            a->streamName(s).c_str(),
                            (unsigned long long)pos,
                            ra.point.name().c_str(),
                            rb.point.name().c_str());
                differ = true;
                break;
            }
            ++pos;
        }
    }
    for (size_t t = 0; t < b->streamCount(); ++t) {
        if (a->findStream(b->streamName(t)) ==
            trace::TraceSetSource::npos) {
            std::printf("stream %s: only in %s\n",
                        b->streamName(t).c_str(), args[1].c_str());
            differ = true;
        }
    }
    if (!differ)
        std::printf("trace sets are identical (%zu streams)\n",
                    a->streamCount());
    return differ ? 1 : 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/** trace extract: copy one stream (or a range of it) to a new set. */
int
cmdTraceExtract(const CommonOpts &opts,
                const std::vector<std::string> &args_in)
try {
    std::vector<std::string> args;
    std::string stream;
    uint64_t from = 0;
    uint64_t count = UINT64_MAX;
    for (size_t i = 0; i < args_in.size(); ++i) {
        const std::string &arg = args_in[i];
        if (arg == "--stream" && i + 1 < args_in.size()) {
            stream = args_in[++i];
        } else if (arg == "--from" && i + 1 < args_in.size()) {
            from = std::strtoull(args_in[++i].c_str(), nullptr, 10);
        } else if (arg == "--count" && i + 1 < args_in.size()) {
            count = std::strtoull(args_in[++i].c_str(), nullptr, 10);
        } else {
            args.push_back(arg);
        }
    }
    if (args.size() != 2 || stream.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder trace extract <in> <out> "
                     "--stream S [--from N] [--count N] "
                     "[--chunk-records N]\n");
        return 2;
    }
    auto src = trace::TraceSetSource::open(args[0]);
    size_t s = src->findStream(stream);
    if (s == trace::TraceSetSource::npos) {
        std::fprintf(stderr, "no stream named '%s' in %s\n",
                     stream.c_str(), args[0].c_str());
        return 1;
    }
    trace::TraceSetWriter writer(args[1],
                                 uint32_t(opts.chunkRecords));
    writer.beginStream(stream);
    auto cur = src->cursor(s);
    trace::Record rec;
    uint64_t pos = 0, written = 0;
    while (written < count && cur->next(rec)) {
        if (pos++ < from)
            continue;
        writer.record(rec);
        ++written;
    }
    writer.endStream();
    writer.close();
    std::printf("extracted %llu records of stream %s to %s\n",
                (unsigned long long)written, stream.c_str(),
                args[1].c_str());
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/** trace merge: combine several set artifacts into one v2 file. */
int
cmdTraceMerge(const CommonOpts &opts,
              const std::vector<std::string> &args)
try {
    if (args.size() < 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace merge <out> <in>... "
                     "[--chunk-records N]\n");
        return 2;
    }
    std::vector<std::string> inputs(args.begin() + 1, args.end());
    trace::mergeTraceSets(args[0], inputs,
                          uint32_t(opts.chunkRecords));
    trace::TraceSetReader reader(args[0]);
    std::printf("merged %zu inputs into %s (%zu streams, %llu "
                "records)\n",
                inputs.size(), args[0].c_str(),
                reader.streams().size(),
                (unsigned long long)reader.totalRecords());
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

/** trace convert: re-encode a set artifact as v2 (or back to v1). */
int
cmdTraceConvert(const CommonOpts &opts,
                const std::vector<std::string> &args_in)
try {
    std::vector<std::string> args;
    uint32_t version = 2;
    for (const auto &arg : args_in) {
        if (arg == "--v1")
            version = 1;
        else if (arg == "--v2")
            version = 2;
        else
            args.push_back(arg);
    }
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace convert <in> <out> "
                     "[--v1] [--chunk-records N]\n");
        return 2;
    }
    trace::convertTraceSet(args[0], args[1], version,
                           uint32_t(opts.chunkRecords));
    auto out = trace::TraceSetSource::open(args[1]);
    uint64_t records = 0;
    for (size_t s = 0; s < out->streamCount(); ++s)
        records += out->streamRecords(s);
    std::printf("converted %s to v%u %s (%zu streams, %llu "
                "records)\n",
                args[0].c_str(), version, args[1].c_str(),
                out->streamCount(), (unsigned long long)records);
    return 0;
} catch (const support::IoError &e) {
    return ioErrorExit(e);
}

int
cmdTrace(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (!args.empty()) {
        std::string sub = args[0];
        std::vector<std::string> rest(args.begin() + 1, args.end());
        if (sub == "capture")
            return cmdTraceCapture(opts, rest);
        if (sub == "dump")
            return cmdTraceDump(rest);
        if (sub == "count")
            return cmdTraceCount(rest);
        if (sub == "diff")
            return cmdTraceDiff(rest);
        if (sub == "extract")
            return cmdTraceExtract(opts, rest);
        if (sub == "merge")
            return cmdTraceMerge(opts, rest);
        if (sub == "convert")
            return cmdTraceConvert(opts, rest);
    }

    // Legacy mode: write one workload's per-trace binary file.
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace <workload> <out>\n"
                     "       scifinder trace "
                     "{capture|dump|count|diff|extract|merge|convert} "
                     "...\n");
        return 2;
    }
    const auto &w = workloads::byName(args[0]);
    trace::TraceBuffer buf = workloads::run(w);
    trace::TraceWriter writer(args[1]);
    for (const auto &rec : buf.records())
        writer.record(rec);
    writer.close();
    std::printf("wrote %zu records (%zu bytes/record) to %s\n",
                buf.size(), sizeof(trace::Record), args[1].c_str());
    return 0;
}

/** Phase 1: run the workloads, infer the raw model, persist both. */
int
cmdGeneratePhase(const CommonOpts &opts,
                 const std::vector<std::string> &workloadNames)
{
    core::ArtifactPaths paths(opts.artifactDir);
    paths.ensureDir();
    auto pool = makePool(opts);

    std::vector<const workloads::Workload *> list;
    if (workloadNames.empty()) {
        for (const auto &w : workloads::all())
            list.push_back(&w);
    } else {
        for (const auto &name : workloadNames)
            list.push_back(&workloads::byName(name));
    }
    // Out-of-core: workloads seal compressed chunks into the v2 set
    // as they simulate, then invariant generation streams the chunks
    // back a window at a time. Same model as the in-memory run.
    std::vector<std::string> names;
    names.reserve(list.size());
    for (const auto *w : list)
        names.push_back(w->name);
    auto counts = trace::buildTraceSetParallel(
        paths.traces(), uint32_t(opts.chunkRecords), names,
        [&](size_t i, trace::TraceSink &sink) {
            workloads::runInto(*list[i], {}, opts.interpretedSim,
                               &sink);
        },
        pool.get());
    uint64_t records = 0;
    for (uint64_t n : counts)
        records += n;
    size_t count = list.size();

    invgen::GenStats stats;
    trace::TraceSetReader reader(paths.traces());
    invgen::InvariantSet model =
        invgen::generateStreaming(reader, {}, &stats, pool.get());
    model.saveBinary(paths.rawModel());
    std::printf("%zu workloads, %llu records, %llu program points, "
                "%zu raw invariants\n",
                count, (unsigned long long)records,
                (unsigned long long)stats.points, model.size());
    if (stats.candidatesDeduped != 0)
        std::printf("%llu structurally duplicate candidates fused\n",
                    (unsigned long long)stats.candidatesDeduped);
    std::printf("wrote %s and %s\n", paths.traces().c_str(),
                paths.rawModel().c_str());
    return 0;
}

int
cmdGenerate(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (!opts.artifactDir.empty())
        return cmdGeneratePhase(opts, args);

    // Legacy mode: infer from previously written trace files.
    std::string outPath;
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == "-o") {
            outPath = args[i + 1];
            args.erase(args.begin() + long(i),
                       args.begin() + long(i) + 2);
            break;
        }
    }
    if (args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder generate [--jobs N] "
                     "--artifact-dir D [workload...]\n"
                     "       scifinder generate [-o invs.txt] "
                     "<trace>...\n");
        return 2;
    }
    std::vector<trace::TraceBuffer> buffers;
    for (const auto &path : args) {
        trace::TraceReader reader(path);
        trace::TraceBuffer buf;
        reader.readAll(buf);
        std::printf("loaded %zu records from %s\n", buf.size(),
                    path.c_str());
        buffers.push_back(std::move(buf));
    }
    std::vector<const trace::TraceBuffer *> ptrs;
    for (const auto &b : buffers)
        ptrs.push_back(&b);

    invgen::GenStats stats;
    invgen::InvariantSet set = invgen::generate(ptrs, {}, &stats);
    auto optStats = opt::optimize(set);
    std::printf("%llu program points, %zu raw invariants, %zu after "
                "optimization\n",
                (unsigned long long)stats.points,
                optStats[0].invariantsBefore, set.size());
    if (stats.candidatesDeduped != 0)
        std::printf("%llu structurally duplicate candidates fused\n",
                    (unsigned long long)stats.candidatesDeduped);
    if (!outPath.empty()) {
        set.saveText(outPath);
        std::printf("wrote the invariant model to %s\n",
                    outPath.c_str());
    } else {
        for (size_t i = 0; i < set.size(); ++i)
            std::printf("%s\n", set.all()[i].str().c_str());
    }
    return 0;
}

/** Phase 2: optimize the persisted raw model. */
int
cmdOptimize(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (opts.artifactDir.empty() || !args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder optimize --artifact-dir D\n");
        return 2;
    }
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.rawModel(), "generate");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.rawModel());
    size_t before = model.size();
    auto passStats = opt::optimize(model);
    model.saveBinary(paths.model());
    const char *passNames[] = {"constant propagation",
                               "deducible removal",
                               "equivalence removal",
                               "vacuity removal"};
    for (size_t i = 0; i < passStats.size(); ++i) {
        const char *name =
            i < 4 ? passNames[i] : "pass";
        std::printf("%-22s %zu -> %zu invariants, %zu -> %zu "
                    "variables\n",
                    name, passStats[i].invariantsBefore,
                    passStats[i].invariantsAfter,
                    passStats[i].variablesBefore,
                    passStats[i].variablesAfter);
    }
    std::printf("%zu raw invariants, %zu after optimization\n",
                before, model.size());
    std::printf("wrote %s\n", paths.model().c_str());
    return 0;
}

void
printIdentification(const sci::SciDatabase &db,
                    const invgen::InvariantSet &model)
{
    for (const auto &res : db.results()) {
        std::printf("%s: %zu true SCI, %zu false positives, "
                    "detected=%s\n",
                    res.bugId.c_str(), res.trueSci.size(),
                    res.falsePositives.size(),
                    res.detected() ? "yes" : "no");
        for (size_t idx : res.trueSci)
            std::printf("  %s\n", model.all()[idx].str().c_str());
    }
}

/** Phase 3: identify SCI from the persisted optimized model —
 *  no workload re-simulation, only the triggers and the validation
 *  corpus run. */
int
cmdIdentifyPhase(const CommonOpts &opts,
                 const std::vector<std::string> &bugIds)
{
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.model(), "optimize");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.model());
    auto pool = makePool(opts);

    sci::EvalMode mode = opts.interpretedEval
                             ? sci::EvalMode::Interpreted
                             : sci::EvalMode::Compiled;
    // The simulated expert's corpus goes through the trace store:
    // each random program seals compressed chunks as it runs, then
    // the violation scan streams them back a chunk at a time.
    workloads::validationCorpusToStore(
        paths.validation(), opts.validationPrograms, 0x5eed,
        pool.get(), opts.interpretedSim,
        uint32_t(opts.chunkRecords));
    trace::TraceSetReader validation(paths.validation());
    std::set<size_t> violations =
        sci::corpusViolations(model, validation, pool.get(), mode);

    std::vector<const bugs::Bug *> bugList;
    if (bugIds.empty()) {
        bugList = bugs::table1();
    } else {
        for (const auto &id : bugIds)
            bugList.push_back(&bugs::byId(id));
    }
    // The compiled path scans in static triage order (secflow): the
    // statically implicated invariants run their differential checks
    // first, and the per-bug rank quality of the dynamically
    // identified SCI is reported below. The violation sets — and so
    // every persisted artifact — are unchanged by the ordering.
    std::vector<sci::TriageReport> triage;
    sci::SciDatabase db;
    if (mode == sci::EvalMode::Compiled) {
        sci::CompiledModel compiled(model);
        db = sci::identifyAll(compiled, bugList, violations,
                              pool.get(), opts.interpretedSim,
                              &triage);
    } else {
        db = sci::identifyAll(model, bugList, violations, pool.get(),
                              mode, opts.interpretedSim);
    }

    core::saveIndexSet(paths.violations(), violations);
    db.saveBinary(paths.sciDatabase());
    printIdentification(db, model);
    double qualitySum = 0.0;
    size_t qualityBugs = 0;
    for (size_t i = 0; i < triage.size(); ++i) {
        const sci::IdentificationResult &res = db.results()[i];
        if (res.trueSci.empty())
            continue;
        std::printf("triage %s: rank quality %.3f, first SCI at "
                    "rank %zu/%zu\n",
                    res.bugId.c_str(), triage[i].quality,
                    triage[i].firstSciRank, triage[i].order.size());
        qualitySum += triage[i].quality;
        ++qualityBugs;
    }
    if (qualityBugs != 0)
        std::printf("triage mean rank quality: %.3f over %zu "
                    "detected bugs\n",
                    qualitySum / double(qualityBugs), qualityBugs);
    std::printf("wrote %s and %s\n", paths.violations().c_str(),
                paths.sciDatabase().c_str());
    return 0;
}

int
cmdIdentify(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (!opts.artifactDir.empty())
        return cmdIdentifyPhase(opts, args);

    // Legacy mode: run phases 1-3 in memory for the given bugs.
    if (args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder identify [--jobs N] "
                     "[--artifact-dir D] [--interpreted-eval] "
                     "[bug...]\n");
        return 2;
    }
    core::PipelineConfig config;
    config.bugIds = args;
    config.runInference = false;
    config.jobs = opts.jobs;
    config.validationPrograms = opts.validationPrograms;
    config.interpretedSim = opts.interpretedSim;
    core::PipelineResult result = core::runPipeline(config);
    printIdentification(result.database, result.model);
    return 0;
}

/** Phase 4: infer additional SCI from the persisted phase-2/3
 *  artifacts. */
int
cmdInfer(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (opts.artifactDir.empty() || !args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder infer --artifact-dir D\n");
        return 2;
    }
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.model(), "optimize");
    REQUIRE_ARTIFACT(paths.violations(), "identify");
    REQUIRE_ARTIFACT(paths.sciDatabase(), "identify");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.model());
    std::set<size_t> violations =
        core::loadIndexSet(paths.violations());
    sci::SciDatabase db =
        sci::SciDatabase::loadBinary(paths.sciDatabase());

    sci::InferenceResult inference =
        sci::infer(model, db, violations);
    std::printf("labeled:   %zu SCI, %zu non-SCI\n",
                inference.labeledSci, inference.labeledNonSci);
    std::printf("inferred:  %zu SCI (accuracy %.0f%%, %zu clear "
                "false positives rejected)\n",
                inference.inferredSci.size(),
                100 * inference.testAccuracy,
                inference.clearFalsePositives.size());
    std::printf("semantic prior admitted %zu below the posterior "
                "threshold\n",
                inference.semanticRecommended);

    std::ofstream out(paths.inference());
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n",
                     paths.inference().c_str());
        return 1;
    }
    std::vector<size_t> final_set = db.sciIndices();
    final_set.insert(final_set.end(), inference.inferredSci.begin(),
                     inference.inferredSci.end());
    std::sort(final_set.begin(), final_set.end());
    final_set.erase(std::unique(final_set.begin(), final_set.end()),
                    final_set.end());
    out << "# identified SCI: " << db.sciIndices().size() << "\n";
    out << "# inferred SCI: " << inference.inferredSci.size() << "\n";
    out << "# test accuracy: " << inference.testAccuracy << "\n";
    for (size_t idx : final_set)
        out << idx << "\t" << model.all()[idx].str() << "\n";
    std::printf("wrote %s\n", paths.inference().c_str());
    return 0;
}

/**
 * Static analysis over the optimized model: classify every invariant
 * and prove sibling implications; the report is deterministic and
 * byte-identical across --jobs values.
 */
int
cmdAnalyze(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    bool auditTraces = false;
    bool json = false;
    for (auto it = args.begin(); it != args.end();) {
        if (*it == "--audit-traces") {
            auditTraces = true;
            it = args.erase(it);
        } else if (*it == "--json") {
            json = true;
            it = args.erase(it);
        } else {
            ++it;
        }
    }
    if (opts.artifactDir.empty() || !args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder analyze [--jobs N] [--json] "
                     "[--audit-traces] --artifact-dir D\n");
        return 2;
    }
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.model(), "optimize");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.model());

    auto pool = makePool(opts);
    analysis::AnalysisReport report =
        analysis::analyze(model.all(), pool.get());

    std::string audit;
    if (auditTraces) {
        // Cross-check the model against the persisted training
        // traces: a violation here means an invariant the optimizer
        // kept does not even hold on its own training corpus. The
        // scan streams the v2 set a chunk at a time (a v1 artifact
        // is materialized instead).
        REQUIRE_ARTIFACT(paths.traces(), "generate");
        sci::CompiledModel compiled(model);
        std::set<size_t> violated;
        if (trace::isTraceSetV2(paths.traces())) {
            trace::TraceSetReader traces(paths.traces());
            violated = sci::corpusViolations(compiled, traces,
                                             pool.get());
        } else {
            auto named = trace::loadTraceSet(paths.traces(),
                                             pool.get());
            std::vector<trace::TraceBuffer> corpus;
            corpus.reserve(named.size());
            for (auto &nt : named)
                corpus.push_back(std::move(nt.trace));
            violated = sci::corpusViolations(compiled, corpus,
                                             pool.get());
        }
        audit += "\n== trace audit ==\n";
        audit += format("%zu invariants violated by the training "
                        "traces\n",
                        violated.size());
        for (size_t idx : violated)
            audit += format("%zu\t%s\n", idx,
                            model.all()[idx].str().c_str());
        std::printf("trace audit: %zu invariants violated by the "
                    "training traces\n",
                    violated.size());
    }

    std::ofstream out(paths.analysis(), std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n",
                     paths.analysis().c_str());
        return 1;
    }
    std::string text = report.render() + audit;
    out << text;

    if (json) {
        // Machine-readable mode: emit only the JSON document on
        // stdout (deterministic across --jobs; the text artifact is
        // still written above).
        std::fputs(report.renderJson().c_str(), stdout);
        return 0;
    }
    std::printf("%zu invariants: %zu tautology, %zu contradiction, "
                "%zu isa-implied (%zu structural), %zu contingent; "
                "%zu implications\n",
                report.entries.size(),
                report.counts[size_t(
                    analysis::Verdict::Tautology)],
                report.counts[size_t(
                    analysis::Verdict::Contradiction)],
                report.counts[size_t(
                    analysis::Verdict::IsaImplied)],
                report.structuralImplied,
                report.counts[size_t(
                    analysis::Verdict::Contingent)],
                report.implications.size());
    std::printf("wrote %s\n", paths.analysis().c_str());
    return 0;
}

/**
 * Security-dataflow audit over the optimized model: for every Table 1
 * bug (or the bugs named on the command line), the state its injected
 * defect corrupts, the security state that corruption can reach
 * through the def-use state graph, and the invariants that statically
 * guard it. When a phase-3 database exists the static reachability is
 * cross-checked against the dynamic identification: every dynamic SCI
 * must be statically reachable from its bug's footprint.
 *
 * Exit status: 0 sound, 1 when the cross-check found a dynamic SCI
 * with no static flow (a missing edge in the state graph), 2 on usage
 * errors. The report is byte-identical across --jobs values.
 */
int
cmdAudit(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (opts.artifactDir.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder audit [--jobs N] "
                     "--artifact-dir D [bug...]\n");
        return 2;
    }
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.model(), "optimize");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.model());

    // The dynamic cross-check is best-effort: without a phase-3
    // database the audit still reports footprints and static guards.
    std::unique_ptr<sci::SciDatabase> db;
    if (core::ArtifactPaths::exists(paths.sciDatabase()))
        db = std::make_unique<sci::SciDatabase>(
            sci::SciDatabase::loadBinary(paths.sciDatabase()));

    std::vector<const bugs::Bug *> bugList;
    if (args.empty()) {
        bugList = bugs::table1();
    } else {
        for (const auto &id : args)
            bugList.push_back(&bugs::byId(id));
    }

    auto pool = makePool(opts);
    sci::AuditReport report =
        sci::audit(model, bugList, db.get(), pool.get());

    std::string text = report.render();
    std::ofstream out(paths.audit(), std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "cannot open %s\n",
                     paths.audit().c_str());
        return 1;
    }
    out << text;
    std::printf("%s", text.c_str());
    std::printf("\nwrote %s\n", paths.audit().c_str());
    return report.sound() ? 0 : 1;
}

int
cmdRun(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;
    if (!args.empty()) {
        std::fprintf(stderr, "unknown option %s\n", args[0].c_str());
        return 2;
    }
    core::PipelineConfig config;
    config.runInference = !opts.noInference;
    config.jobs = opts.jobs;
    config.artifactDir = opts.artifactDir;
    config.validationPrograms = opts.validationPrograms;
    config.interpretedSim = opts.interpretedSim;
    core::PipelineResult r = core::runPipeline(config);
    std::printf("traces:      %llu records\n",
                (unsigned long long)r.traceRecords);
    std::printf("invariants:  %zu raw, %zu optimized\n",
                r.rawInvariants, r.model.size());
    std::printf("identified:  %zu SCI (%zu labeled non-SCI)\n",
                r.identifiedSci().size(),
                r.database.nonSciIndices().size());
    if (config.runInference) {
        std::printf("inferred:    %zu SCI (accuracy %.0f%%)\n",
                    r.inference.inferredSci.size(),
                    100 * r.inference.testAccuracy);
    }
    auto deployed = core::deployedAssertions(r, r.finalSci());
    auto overhead = monitor::estimateOverhead(deployed);
    std::printf("deployment:  %zu assertions, %.2f%% logic, "
                "%.2f%% power, 0%% delay\n",
                deployed.size(), overhead.logicPct,
                overhead.powerPct);
    for (const auto &stage : r.stages) {
        std::printf("stage %-21s %8.2fs  %llu -> %llu items  "
                    "rss %llu KiB  traces-resident %llu KiB",
                    stage.name.c_str(), stage.seconds,
                    (unsigned long long)stage.itemsIn,
                    (unsigned long long)stage.itemsOut,
                    (unsigned long long)stage.maxRssKb,
                    (unsigned long long)(stage.traceResidentPeak /
                                         1024));
        if (stage.chainHits != 0 || stage.chainSevers != 0 ||
            stage.cacheFallbacks != 0) {
            std::printf("  chain-hits %llu  chain-severs %llu  "
                        "fallbacks %llu",
                        (unsigned long long)stage.chainHits,
                        (unsigned long long)stage.chainSevers,
                        (unsigned long long)stage.cacheFallbacks);
        }
        if (stage.fusedMembers != 0) {
            std::printf("  fused %llu  deduped %llu  retired %llu  "
                        "compactions %llu",
                        (unsigned long long)stage.fusedMembers,
                        (unsigned long long)stage.fusedDeduped,
                        (unsigned long long)stage.fusedRetired,
                        (unsigned long long)stage.fusedCompactions);
        }
        std::printf("\n");
    }
    if (!opts.artifactDir.empty())
        std::printf("artifacts:   %s\n", opts.artifactDir.c_str());
    return 0;
}

/**
 * Differential fuzzing campaign. Exit status: 0 when no divergence
 * (and, with --mutation-coverage, every Table 1 mutation killed),
 * 1 otherwise, 2 on usage errors.
 */
int
cmdFuzz(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;

    fuzz::FuzzConfig config;
    config.artifactDir = opts.artifactDir;
    bool fleet = false;
    unsigned fleetShards = 0;
    uint32_t fleetGrain = 16;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *flag) -> const std::string * {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return &args[++i];
        };
        auto number = [](const std::string &s, const char *flag,
                         uint64_t *out) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(s.c_str(), &end, 0);
            if (s.empty() || *end != '\0') {
                std::fprintf(stderr, "%s expects a number, got '%s'\n",
                             flag, s.c_str());
                return false;
            }
            *out = v;
            return true;
        };
        if (arg == "--seed") {
            const std::string *v = value("--seed");
            if (!v || !number(*v, "--seed", &config.seed))
                return 2;
        } else if (arg == "--count") {
            const std::string *v = value("--count");
            uint64_t n = 0;
            if (!v || !number(*v, "--count", &n))
                return 2;
            config.count = uint32_t(n);
        } else if (arg == "--mutation-coverage") {
            config.mutationCoverage = true;
        } else if (arg == "--replay") {
            const std::string *v = value("--replay");
            if (!v)
                return 2;
            config.replayDir = *v;
        } else if (arg == "--fleet") {
            const std::string *v = value("--fleet");
            uint64_t n = 0;
            if (!v || !number(*v, "--fleet", &n))
                return 2;
            fleet = true;
            fleetShards = unsigned(n);
        } else if (arg == "--grain") {
            const std::string *v = value("--grain");
            uint64_t n = 0;
            if (!v || !number(*v, "--grain", &n))
                return 2;
            if (n == 0) {
                std::fprintf(stderr,
                             "--grain must be at least 1\n");
                return 2;
            }
            fleetGrain = uint32_t(n);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    if (fleet) {
        if (!config.replayDir.empty()) {
            std::fprintf(stderr,
                         "--fleet cannot replay a directory; drop "
                         "--replay\n");
            return 2;
        }
        fuzz::FleetConfig fc;
        fc.fuzz = config;
        fc.shards = fleetShards;
        fc.grain = fleetGrain;
        fuzz::FleetResult fr = fuzz::runFleet(fc);
        std::printf("%s", fr.result.render().c_str());
        std::printf("fleet: %u shards, %llu claims, %llu raw "
                    "divergences (%llu deduped)\n",
                    fr.shardsUsed, (unsigned long long)fr.claims,
                    (unsigned long long)fr.divergences,
                    (unsigned long long)fr.dedupDropped);
        if (!opts.artifactDir.empty())
            std::printf("artifacts:   %s\n", opts.artifactDir.c_str());
        return fr.result.ok() ? 0 : 1;
    }

    auto pool = makePool(opts);
    fuzz::FuzzResult result = fuzz::runFuzz(config, pool.get());
    std::printf("%s", result.render().c_str());
    if (!opts.artifactDir.empty())
        std::printf("artifacts:   %s\n", opts.artifactDir.c_str());
    return result.ok() ? 0 : 1;
}

/**
 * serve: the always-on checking service. Sessions come from trace-set
 * streams, live workload replays, or fuzzer-generated programs; every
 * session's retirement stream is enforced against the identified-SCI
 * assertion set by a monitor::CheckService.
 *
 * Exit status: 0 when every session is clean, 1 when any assertion
 * fired, 2 on usage errors.
 */
int
cmdServe(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    CommonOpts opts;
    if (!parseCommon(args, opts))
        return 2;

    monitor::ServiceConfig config;
    bool useWorkloads = false;
    uint64_t fuzzCount = 0;
    uint64_t fuzzSeed = 1;
    bool stats = false;
    std::vector<std::string> sets;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *flag) -> const std::string * {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                return nullptr;
            }
            return &args[++i];
        };
        auto number = [](const std::string &s, const char *flag,
                         uint64_t *out) {
            char *end = nullptr;
            unsigned long long v = std::strtoull(s.c_str(), &end, 0);
            if (s.empty() || *end != '\0') {
                std::fprintf(stderr, "%s expects a number, got '%s'\n",
                             flag, s.c_str());
                return false;
            }
            *out = v;
            return true;
        };
        uint64_t n = 0;
        if (arg == "--shards") {
            const std::string *v = value("--shards");
            if (!v || !number(*v, "--shards", &n))
                return 2;
            config.shards = size_t(n);
        } else if (arg == "--queue-batches") {
            const std::string *v = value("--queue-batches");
            if (!v || !number(*v, "--queue-batches", &n) || n == 0)
                return 2;
            config.queueBatches = size_t(n);
        } else if (arg == "--batch-records") {
            const std::string *v = value("--batch-records");
            if (!v || !number(*v, "--batch-records", &n) || n == 0)
                return 2;
            config.batchRecords = size_t(n);
        } else if (arg == "--workloads") {
            useWorkloads = true;
        } else if (arg == "--fuzz") {
            const std::string *v = value("--fuzz");
            if (!v || !number(*v, "--fuzz", &fuzzCount))
                return 2;
        } else if (arg == "--seed") {
            const std::string *v = value("--seed");
            if (!v || !number(*v, "--seed", &fuzzSeed))
                return 2;
        } else if (arg == "--stats") {
            stats = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        } else {
            sets.push_back(arg);
        }
    }
    if (opts.artifactDir.empty() ||
        (sets.empty() && !useWorkloads && fuzzCount == 0)) {
        std::fprintf(
            stderr,
            "usage: scifinder serve --artifact-dir D [--jobs N] "
            "[--shards N]\n"
            "                 [--queue-batches N] [--batch-records N] "
            "[--stats]\n"
            "                 [--workloads] [--fuzz N [--seed S]] "
            "[set.bin...]\n");
        return 2;
    }

    // The deployed set: assertions synthesized from the SCI the
    // pipeline identified (54 SCI -> 14 assertions in the paper).
    core::ArtifactPaths paths(opts.artifactDir);
    REQUIRE_ARTIFACT(paths.model(), "optimize");
    REQUIRE_ARTIFACT(paths.sciDatabase(), "identify");
    invgen::InvariantSet model =
        invgen::InvariantSet::loadBinary(paths.model());
    sci::SciDatabase db =
        sci::SciDatabase::loadBinary(paths.sciDatabase());
    std::vector<monitor::Assertion> assertions =
        monitor::synthesize(model, db.sciIndices());
    if (assertions.empty()) {
        std::fprintf(stderr, "no SCI identified in %s; nothing to "
                             "enforce\n",
                     opts.artifactDir.c_str());
        return 1;
    }

    monitor::CheckService service(assertions, config);

    // One session per source stream. Each session is fed by exactly
    // one client task; sessions fan out over the pool.
    struct Source
    {
        std::string name;
        std::function<void(monitor::SessionSink &)> feed;
    };
    std::vector<Source> sources;

    std::vector<std::shared_ptr<trace::TraceSetSource>> open;
    for (const auto &path : sets) {
        std::shared_ptr<trace::TraceSetSource> src =
            trace::TraceSetSource::open(path);
        for (size_t s = 0; s < src->streamCount(); ++s) {
            Source source;
            source.name = path + ":" + src->streamName(s);
            source.feed = [src, s](monitor::SessionSink &sink) {
                auto cur = src->cursor(s);
                trace::Record rec;
                while (cur->next(rec))
                    sink.record(rec);
            };
            sources.push_back(std::move(source));
        }
        open.push_back(std::move(src));
    }
    if (useWorkloads) {
        for (const auto &w : workloads::all()) {
            Source source;
            source.name = "workload:" + w.name;
            source.feed = [&w](monitor::SessionSink &sink) {
                workloads::runInto(w, {}, false, &sink);
            };
            sources.push_back(std::move(source));
        }
    }
    for (uint64_t i = 0; i < fuzzCount; ++i) {
        fuzz::GenConfig gen;
        Source source;
        source.name = format("fuzz-%llu-%llu",
                             (unsigned long long)fuzzSeed,
                             (unsigned long long)i);
        source.feed = [gen, fuzzSeed, i](monitor::SessionSink &sink) {
            fuzz::GeneratedProgram prog =
                fuzz::generate(gen, fuzzSeed, uint32_t(i));
            auto asmResult = assembler::assemble(prog.source());
            if (!asmResult.ok)
                return;
            cpu::CpuConfig cc;
            cc.memBytes = gen.memBytes;
            cpu::Cpu cpu(cc);
            cpu.loadProgram(asmResult.program);
            cpu.run(&sink);
        };
        sources.push_back(std::move(source));
    }

    // Feed concurrently, report in source order (deterministic for
    // any --jobs/--shards combination).
    auto pool = makePool(opts);
    std::vector<monitor::SessionReport> reports(sources.size());
    support::parallelFor(pool.get(), sources.size(), [&](size_t i) {
        monitor::SessionSink sink(service, sources[i].name);
        sources[i].feed(sink);
        reports[i] = sink.close();
    });

    uint64_t totalEvents = 0, totalFirings = 0;
    for (const auto &r : reports) {
        std::printf("%s", r.render(service.set().assertions()).c_str());
        totalEvents += r.events;
        totalFirings += r.firings;
    }
    std::printf("served %zu sessions: %llu events, %llu firings, "
                "%zu assertions enforced\n",
                reports.size(), (unsigned long long)totalEvents,
                (unsigned long long)totalFirings,
                service.set().assertions().size());
    if (stats) {
        monitor::ServiceTelemetry t = service.telemetry();
        std::printf("throughput:  %.0f events/s over %.2fs (%llu "
                    "batches)\n",
                    t.eventsPerSecond, t.elapsedSeconds,
                    (unsigned long long)t.batches);
        for (size_t i = 0; i < t.shards.size(); ++i) {
            const auto &sh = t.shards[i];
            std::printf("shard %-2zu     %llu events in %llu batches "
                        "(max %llu), queue high-water %llu, busy "
                        "%.2fs\n",
                        i, (unsigned long long)sh.events,
                        (unsigned long long)sh.batches,
                        (unsigned long long)sh.maxBatchRecords,
                        (unsigned long long)sh.queueHighWater,
                        sh.busySeconds);
        }
        for (const auto &stage : service.stageStats()) {
            std::printf("stage %-21s %8.2fs  %llu -> %llu items\n",
                        stage.name.c_str(), stage.seconds,
                        (unsigned long long)stage.itemsIn,
                        (unsigned long long)stage.itemsOut);
        }
    }
    return totalFirings ? 1 : 0;
}

int
cmdExec(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::fprintf(stderr, "usage: scifinder exec <file.s>\n");
        return 2;
    }
    std::ifstream in(args[0]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", args[0].c_str());
        return 1;
    }
    std::stringstream source;
    source << in.rdbuf();

    auto asmResult = assembler::assemble(source.str());
    if (!asmResult.ok) {
        for (const auto &err : asmResult.errors)
            std::fprintf(stderr, "%s: %s\n", args[0].c_str(),
                         err.c_str());
        return 1;
    }

    cpu::Cpu cpu;
    cpu.loadProgram(asmResult.program);
    trace::TraceBuffer buf;
    cpu::RunResult run = cpu.run(&buf);

    const char *reason =
        run.reason == cpu::HaltReason::Halted     ? "halted"
        : run.reason == cpu::HaltReason::MaxInsns ? "budget exhausted"
                                                  : "wedged";
    std::printf("%s after %llu instructions (%llu trace records)\n",
                reason, (unsigned long long)run.instructions,
                (unsigned long long)run.records);
    for (unsigned r = 0; r < isa::numGprs; r += 4) {
        std::printf("r%-2u %08x  r%-2u %08x  r%-2u %08x  r%-2u %08x\n",
                    r, cpu.gpr(r), r + 1, cpu.gpr(r + 1), r + 2,
                    cpu.gpr(r + 2), r + 3, cpu.gpr(r + 3));
    }
    std::printf("pc  %08x  sr  %08x  epcr %08x  esr %08x\n",
                cpu.pc(), cpu.readSpr(isa::spr::SR),
                cpu.readSpr(isa::spr::EPCR0),
                cpu.readSpr(isa::spr::ESR0));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    try {
        if (cmd == "workloads")
            return cmdWorkloads();
        if (cmd == "bugs")
            return cmdBugs();
        if (cmd == "errata")
            return cmdErrata();
        if (cmd == "properties")
            return cmdProperties();
        if (cmd == "trace")
            return cmdTrace(args);
        if (cmd == "generate")
            return cmdGenerate(args);
        if (cmd == "optimize")
            return cmdOptimize(args);
        if (cmd == "identify")
            return cmdIdentify(args);
        if (cmd == "infer")
            return cmdInfer(args);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "audit")
            return cmdAudit(args);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "fuzz")
            return cmdFuzz(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "exec")
            return cmdExec(args);
    } catch (const support::IoError &e) {
        std::fprintf(stderr, "scifinder: %s\n", e.what());
        return 1;
    }
    return usage();
}

/**
 * @file
 * The scifinder command-line tool: the library's functionality as a
 * standalone program.
 *
 *   scifinder workloads                 list the training workloads
 *   scifinder bugs                      list the reproduced errata
 *   scifinder properties                list the property catalog
 *   scifinder trace <workload> <out>    write a binary trace
 *   scifinder generate <trace>...       infer invariants from traces
 *   scifinder identify <bug>...         identify SCI for errata
 *   scifinder run [--no-inference]      the full pipeline
 *   scifinder exec <file.s>             assemble + run a program
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bugs/classification.hh"
#include "core/scifinder.hh"
#include "monitor/overhead.hh"
#include "support/strings.hh"
#include "support/table.hh"
#include "trace/io.hh"

namespace {

using namespace scif;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: scifinder <command> [args]\n"
        "\n"
        "  workloads                 list the 17 training workloads\n"
        "  bugs                      list the 31 reproduced errata\n"
        "  errata                    the collected-errata catalog and\n"
        "                            the phase-2 classification aid\n"
        "  properties                list the security-property "
        "catalog\n"
        "  trace <workload> <out>    run a workload, write its "
        "binary trace\n"
        "  generate [-o f] <trace>.. infer invariants from trace "
        "files\n"
        "  identify <bug>...         identify SCI for the given "
        "errata\n"
        "  run [--no-inference]      run the full pipeline and "
        "report\n"
        "  exec <file.s>             assemble and execute a "
        "program\n");
    return 2;
}

int
cmdWorkloads()
{
    TextTable table({"name", "records", "instructions"});
    for (const auto &w : workloads::all()) {
        trace::TraceBuffer buf = workloads::run(w);
        uint64_t insns = 0;
        for (const auto &rec : buf.records())
            insns += rec.fused ? 2 : 1;
        table.addRow({w.name, std::to_string(buf.size()),
                      std::to_string(insns)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdBugs()
{
    TextTable table({"id", "set", "source", "synopsis"});
    for (const auto &bug : bugs::all()) {
        table.addRow({bug.id, bug.heldOut ? "held-out" : "Table 1",
                      bug.source, bug.synopsis});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdErrata()
{
    TextTable table({"id", "processor", "judged", "assistant",
                     "reproduced", "synopsis"});
    for (const auto &e : bugs::collectedErrata()) {
        auto suggestion = bugs::classifyBySynopsis(e.synopsis);
        table.addRow(
            {e.id, e.processor,
             e.judged == bugs::ErratumClass::Security ? "security"
                                                      : "functional",
             suggestion.suggested == bugs::ErratumClass::Security
                 ? "security"
                 : "functional",
             e.reproducedAs, e.synopsis.substr(0, 52)});
    }
    std::printf("%s", table.render().c_str());
    auto s = bugs::summarizeCollection();
    std::printf("\n%zu collected, %zu security-critical, %zu "
                "reproduced, %zu not reproducible; assistant agrees "
                "on %zu/%zu\n",
                s.collected, s.security, s.reproduced,
                s.notReproducible, s.assistantAgrees, s.collected);
    return 0;
}

int
cmdProperties()
{
    TextTable table({"id", "class", "origin", "scope", "description"});
    for (const auto &p : sci::catalog()) {
        std::string scope;
        switch (p.expressibility) {
          case sci::Expressibility::Yes: scope = "in-scope"; break;
          case sci::Expressibility::NotGenerated:
            scope = "not-generated";
            break;
          case sci::Expressibility::Microarch:
            scope = "microarch";
            break;
          case sci::Expressibility::OffCore:
            scope = "off-core";
            break;
        }
        table.addRow({p.id, std::string(sci::propClassName(p.cls)),
                      p.origin, scope, p.description});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args)
{
    if (args.size() != 2) {
        std::fprintf(stderr,
                     "usage: scifinder trace <workload> <out>\n");
        return 2;
    }
    const auto &w = workloads::byName(args[0]);
    trace::TraceBuffer buf = workloads::run(w);
    trace::TraceWriter writer(args[1]);
    for (const auto &rec : buf.records())
        writer.record(rec);
    writer.close();
    std::printf("wrote %zu records (%zu bytes/record) to %s\n",
                buf.size(), sizeof(trace::Record), args[1].c_str());
    return 0;
}

int
cmdGenerate(const std::vector<std::string> &args_in)
{
    std::vector<std::string> args = args_in;
    std::string outPath;
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == "-o") {
            outPath = args[i + 1];
            args.erase(args.begin() + long(i),
                       args.begin() + long(i) + 2);
            break;
        }
    }
    if (args.empty()) {
        std::fprintf(stderr,
                     "usage: scifinder generate [-o invs.txt] "
                     "<trace>...\n");
        return 2;
    }
    std::vector<trace::TraceBuffer> buffers;
    for (const auto &path : args) {
        trace::TraceReader reader(path);
        trace::TraceBuffer buf;
        reader.readAll(buf);
        std::printf("loaded %zu records from %s\n", buf.size(),
                    path.c_str());
        buffers.push_back(std::move(buf));
    }
    std::vector<const trace::TraceBuffer *> ptrs;
    for (const auto &b : buffers)
        ptrs.push_back(&b);

    invgen::GenStats stats;
    invgen::InvariantSet set = invgen::generate(ptrs, {}, &stats);
    auto optStats = opt::optimize(set);
    std::printf("%llu program points, %zu raw invariants, %zu after "
                "optimization\n",
                (unsigned long long)stats.points,
                optStats[0].invariantsBefore, set.size());
    if (!outPath.empty()) {
        set.saveText(outPath);
        std::printf("wrote the invariant model to %s\n",
                    outPath.c_str());
    } else {
        for (size_t i = 0; i < set.size(); ++i)
            std::printf("%s\n", set.all()[i].str().c_str());
    }
    return 0;
}

int
cmdIdentify(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::fprintf(stderr, "usage: scifinder identify <bug>...\n");
        return 2;
    }
    core::PipelineConfig config;
    config.bugIds = args;
    config.runInference = false;
    core::PipelineResult result = core::runPipeline(config);
    for (const auto &res : result.database.results()) {
        std::printf("%s: %zu true SCI, %zu false positives, "
                    "detected=%s\n",
                    res.bugId.c_str(), res.trueSci.size(),
                    res.falsePositives.size(),
                    res.detected() ? "yes" : "no");
        for (size_t idx : res.trueSci) {
            std::printf("  %s\n",
                        result.model.all()[idx].str().c_str());
        }
    }
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    core::PipelineConfig config;
    for (const auto &arg : args) {
        if (arg == "--no-inference")
            config.runInference = false;
        else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    core::PipelineResult r = core::runPipeline(config);
    std::printf("traces:      %llu records\n",
                (unsigned long long)r.traceRecords);
    std::printf("invariants:  %zu raw, %zu optimized\n",
                r.rawInvariants, r.model.size());
    std::printf("identified:  %zu SCI (%zu labeled non-SCI)\n",
                r.identifiedSci().size(),
                r.database.nonSciIndices().size());
    if (config.runInference) {
        std::printf("inferred:    %zu SCI (accuracy %.0f%%)\n",
                    r.inference.inferredSci.size(),
                    100 * r.inference.testAccuracy);
    }
    auto deployed = core::deployedAssertions(r, r.finalSci());
    auto overhead = monitor::estimateOverhead(deployed);
    std::printf("deployment:  %zu assertions, %.2f%% logic, "
                "%.2f%% power, 0%% delay\n",
                deployed.size(), overhead.logicPct,
                overhead.powerPct);
    return 0;
}

int
cmdExec(const std::vector<std::string> &args)
{
    if (args.size() != 1) {
        std::fprintf(stderr, "usage: scifinder exec <file.s>\n");
        return 2;
    }
    std::ifstream in(args[0]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", args[0].c_str());
        return 1;
    }
    std::stringstream source;
    source << in.rdbuf();

    auto asmResult = assembler::assemble(source.str());
    if (!asmResult.ok) {
        for (const auto &err : asmResult.errors)
            std::fprintf(stderr, "%s: %s\n", args[0].c_str(),
                         err.c_str());
        return 1;
    }

    cpu::Cpu cpu;
    cpu.loadProgram(asmResult.program);
    trace::TraceBuffer buf;
    cpu::RunResult run = cpu.run(&buf);

    const char *reason =
        run.reason == cpu::HaltReason::Halted     ? "halted"
        : run.reason == cpu::HaltReason::MaxInsns ? "budget exhausted"
                                                  : "wedged";
    std::printf("%s after %llu instructions (%llu trace records)\n",
                reason, (unsigned long long)run.instructions,
                (unsigned long long)run.records);
    for (unsigned r = 0; r < isa::numGprs; r += 4) {
        std::printf("r%-2u %08x  r%-2u %08x  r%-2u %08x  r%-2u %08x\n",
                    r, cpu.gpr(r), r + 1, cpu.gpr(r + 1), r + 2,
                    cpu.gpr(r + 2), r + 3, cpu.gpr(r + 3));
    }
    std::printf("pc  %08x  sr  %08x  epcr %08x  esr %08x\n",
                cpu.pc(), cpu.readSpr(isa::spr::SR),
                cpu.readSpr(isa::spr::EPCR0),
                cpu.readSpr(isa::spr::ESR0));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);

    if (cmd == "workloads")
        return cmdWorkloads();
    if (cmd == "bugs")
        return cmdBugs();
    if (cmd == "errata")
        return cmdErrata();
    if (cmd == "properties")
        return cmdProperties();
    if (cmd == "trace")
        return cmdTrace(args);
    if (cmd == "generate")
        return cmdGenerate(args);
    if (cmd == "identify")
        return cmdIdentify(args);
    if (cmd == "run")
        return cmdRun(args);
    if (cmd == "exec")
        return cmdExec(args);
    return usage();
}

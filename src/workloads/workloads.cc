#include "workloads.hh"

#include <map>

#include "asm/assembler.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "support/threadpool.hh"
#include "trace/store.hh"

namespace scif::workloads {

namespace {

/**
 * Handler block for the compute workloads: exceptions other than
 * syscalls are unexpected and halt the run; syscalls return.
 */
const char *computeHandlers = R"(
    .org 0x200
        l.nop 0xf
    .org 0x300
        l.nop 0xf
    .org 0x400
        l.nop 0xf
    .org 0x500
        l.nop 0xf
    .org 0x600
        l.nop 0xf
    .org 0x700
        l.nop 0xf
    .org 0x800
        l.nop 0xf
    .org 0xb00
        l.nop 0xf
    .org 0xc00
        l.rfe
    .org 0xe00
        l.nop 0xf
)";

/** Wrap a workload body in the standard layout. */
std::string
wrapCompute(const std::string &body)
{
    return std::string(computeHandlers) + R"(
    .org 0x100
        l.j main
        l.nop 0
    .org 0x1000
    main:
)" + body + R"(
        l.nop 0xf
)";
}

/**
 * The "vmlinux" workload: a synthetic boot that exercises the
 * privileged architecture — every exception class, tick and external
 * interrupts, a user-mode excursion, and SPR traffic. Provides the
 * exception-qualified program points the trigger programs later hit.
 */
std::string
bootSource()
{
    return R"(
    .equ KDATA, 0x4000
    .equ UCODE, 0x8000

    .org 0x100
        l.j main
        l.nop 0

    ; ---- bus error: data faults skip, fetch faults bounce ----
    .org 0x200
        l.mfspr r26, r0, EPCR0
        l.mfspr r27, r0, EEAR0
        l.sfeq  r26, r27
        l.bf    buserr_fetch
        l.nop   0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe
    buserr_fetch:
        l.movhi r26, hi(fetch_resume)
        l.ori   r26, r26, lo(fetch_resume)
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- data page fault: skip the faulting instruction ----
    .org 0x300
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- insn page fault: bounce the user back ----
    .org 0x400
        l.movhi r26, hi(user_resume)
        l.ori   r26, r26, lo(user_resume)
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- tick: count and clear the pending bit ----
    .org 0x500
        l.addi  r28, r28, 1
        l.mfspr r26, r0, TTMR
        l.movhi r27, 0xefff
        l.ori   r27, r27, 0xffff
        l.and   r26, r26, r27
        l.mtspr r0, r26, TTMR
        l.rfe

    ; ---- alignment: skip ----
    .org 0x600
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- illegal instruction: skip ----
    .org 0x700
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- external interrupt: count and acknowledge ----
    .org 0x800
        l.addi  r29, r29, 1
        l.mtspr r0, r0, PICSR
        l.rfe

    ; ---- range: the op committed, skip it ----
    .org 0xb00
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ---- syscall: count; the magic value in r30 returns the user
    ;      excursion to kernel code ----
    .org 0xc00
        l.addi  r25, r25, 1
        l.movhi r26, 0xdead
        l.ori   r26, r26, 0xbeef
        l.sfeq  r30, r26
        l.bnf   sys_done
        l.nop   0
        l.addi  r30, r0, 0
        l.movhi r26, hi(after_user)
        l.ori   r26, r26, lo(after_user)
        l.mtspr r0, r26, EPCR0
        l.mfspr r26, r0, ESR0
        l.ori   r26, r26, 1
        l.mtspr r0, r26, ESR0
    sys_done:
        l.rfe

    ; ---- trap: skip ----
    .org 0xe00
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe

    ; ================= main =================
    .org 0x1000
    main:
        ; phase A: syscalls and traps
        l.addi r1, r0, 0
    phaseA:
        l.sys  0
        l.trap 0
        l.addi r1, r1, 1
        l.sys  0
        l.trap 0
        l.sfltsi r1, 10
        l.bf   phaseA
        l.nop  0

        ; phase B: syscall in a branch delay slot
        l.addi r1, r0, 0
    phaseB:
        l.j    phaseB_cont
        l.sys  0
    phaseB_cont:
        l.addi r1, r1, 1
        l.sfltsi r1, 8
        l.bf   phaseB
        l.nop  0

        ; phase C: range exceptions on overflowing arithmetic
        l.mfspr r3, r0, SR
        l.ori   r3, r3, 0x1000
        l.mtspr r0, r3, SR
        l.addi  r1, r0, 0
        l.movhi r4, 0x7fff
        l.ori   r4, r4, 0xfff0
    phaseC:
        l.add   r5, r4, r4
        l.addi  r6, r4, 0x7fff
        l.add   r5, r4, r4
        l.addi  r6, r4, 0x7fff
        l.addi  r4, r4, 1
        l.addi  r1, r1, 1
        l.sfltsi r1, 8
        l.bf    phaseC
        l.nop   0
        l.mfspr r3, r0, SR
        l.movhi r5, 0xffff
        l.ori   r5, r5, 0xefff
        l.and   r3, r3, r5
        l.mtspr r0, r3, SR

        ; phase D: alignment faults, including one in a delay slot
        l.addi  r1, r0, 0
        l.movhi r7, hi(KDATA)
        l.ori   r7, r7, lo(KDATA)
        l.ori   r7, r7, 1
    phaseD:
        l.lwz  r8, 0(r7)
        l.lhz  r8, 0(r7)
        l.sw   0(r7), r8
        l.j    phaseD_cont
        l.lwz  r8, 2(r7)
    phaseD_cont:
        l.addi r7, r7, 4
        l.addi r1, r1, 1
        l.sfltsi r1, 8
        l.bf   phaseD
        l.nop  0

        ; phase E: illegal instruction words
        l.addi r1, r0, 0
    phaseE:
        .word 0xfc000001
        .word 0xe0000007
        l.addi r1, r1, 1
        l.sfltsi r1, 8
        l.bf   phaseE
        l.nop  0

        ; phase F: bus errors, data then fetch
        l.addi  r1, r0, 0
        l.movhi r10, 0x10
    phaseF:
        l.lwz  r11, 0(r10)
        l.sw   4(r10), r11
        l.addi r10, r10, 8
        l.addi r1, r1, 1
        l.sfltsi r1, 8
        l.bf   phaseF
        l.nop  0
        l.addi r1, r0, 0
    phaseF2:
        l.movhi r10, 0x10
        l.jr    r10
        l.nop   0
    fetch_resume:
        l.addi r1, r1, 1
        l.sfltsi r1, 6
        l.bf   phaseF2
        l.nop  0

        ; phase G: tick timer interrupts over a compute loop
        l.movhi r3, 0x6000
        l.ori   r3, r3, 40
        l.mtspr r0, r3, TTMR
        l.mfspr r4, r0, SR
        l.ori   r4, r4, 2
        l.mtspr r0, r4, SR
        l.addi  r1, r0, 0
    phaseG:
        l.addi  r5, r5, 3
        l.muli  r6, r5, 7
        l.addi  r1, r1, 1
        l.sfltsi r1, 150
        l.bf    phaseG
        l.nop   0
        l.mtspr r0, r0, TTMR
        l.mfspr r4, r0, SR
        l.xori  r5, r0, -1
        l.xori  r5, r5, 2
        l.and   r4, r4, r5
        l.mtspr r0, r4, SR

        ; phase H: external interrupts over a compute loop
        l.addi  r3, r0, 0xff
        l.mtspr r0, r3, PICMR
        l.mfspr r4, r0, SR
        l.ori   r4, r4, 4
        l.mtspr r0, r4, SR
        l.addi  r1, r0, 0
    phaseH:
        l.addi  r5, r5, 1
        l.addi  r1, r1, 1
        l.sfltsi r1, 200
        l.bf    phaseH
        l.nop   0
        l.mfspr r4, r0, SR
        l.xori  r5, r0, -1
        l.xori  r5, r5, 4
        l.and   r4, r4, r5
        l.mtspr r0, r4, SR
        l.mtspr r0, r0, PICMR

        ; phase I: user-mode excursion
        l.movhi r3, hi(UCODE)
        l.ori   r3, r3, lo(UCODE)
        l.mtspr r0, r3, EPCR0
        l.mfspr r4, r0, SR
        l.xori  r5, r0, -1
        l.xori  r5, r5, 1
        l.and   r4, r4, r5
        l.mtspr r0, r4, ESR0
        l.rfe
    after_user:

        ; phase J: SPR traffic
        l.addi r1, r0, 0
        l.addi r3, r0, 0x111
    phaseJ:
        l.mtspr r0, r3, EEAR0
        l.mfspr r4, r0, EEAR0
        l.mtspr r0, r3, EPCR0
        l.mfspr r5, r0, EPCR0
        l.mtspr r0, r3, MACLO
        l.mfspr r6, r0, MACLO
        l.mtspr r0, r3, MACHI
        l.mtspr r0, r0, MACHI
        l.mtspr r0, r0, MACLO
        l.addi  r3, r3, 0x111
        l.addi  r1, r1, 1
        l.sfltsi r1, 8
        l.bf    phaseJ
        l.nop   0

        l.nop 0xf

    ; ================= user code =================
    .org 0x8000
        l.addi r12, r0, 0
    user_loop:
        l.addi r13, r13, 5
        l.mul  r14, r13, r13
        l.sys  0
        l.lwz  r15, 0x400(r0)
        l.mfspr r16, r0, SR
        l.addi r12, r12, 1
        l.sfltsi r12, 9
        l.bf   user_loop
        l.nop  0
        l.movhi r17, 0
        l.ori   r17, r17, 0x1000
        l.jr    r17
        l.nop   0
    user_resume:
        l.movhi r30, 0xdead
        l.ori   r30, r30, 0xbeef
        l.sys   0
        l.nop   0
)";
}

std::string
basicmathSource()
{
    return wrapCompute(R"(
        l.addi r1, r0, 1
        l.addi r2, r0, 0
    bm_loop:
        l.add   r2, r2, r1
        l.mul   r3, r1, r1
        l.addi  r4, r1, 100
        l.div   r5, r4, r1
        l.divu  r6, r3, r1
        l.sub   r7, r3, r2
        l.addc  r8, r2, r3
        l.addic r10, r2, 5
        l.jal   bm_square
        l.nop   0
        l.addi  r1, r1, 1
        l.sfltsi r1, 200
        l.bf    bm_loop
        l.nop   0
        l.j     bm_done
        l.nop   0
    bm_square:
        l.mul   r11, r1, r1
        l.jr    r9
        l.nop   0
    bm_done:
)");
}

std::string
parserSource()
{
    return wrapCompute(R"(
        .equ BUF, 0x4000
        l.movhi r1, hi(BUF)
        l.ori   r1, r1, lo(BUF)
        l.addi  r2, r0, 0
    pw_loop:
        l.andi  r3, r2, 0x3f
        l.addi  r3, r3, 32
        l.add   r4, r1, r2
        l.sb    0(r4), r3
        l.addi  r2, r2, 1
        l.sfltsi r2, 96
        l.bf    pw_loop
        l.nop   0
        l.addi  r2, r0, 0
        l.addi  r5, r0, 0
    ps_loop:
        l.add   r4, r1, r2
        l.lbz   r3, 0(r4)
        l.sfeqi r3, 32
        l.bf    ps_space
        l.nop   0
        l.addi  r5, r5, 1
    ps_space:
        l.lbs   r6, 0(r4)
        l.extbz r7, r6
        l.addi  r2, r2, 1
        l.sfltsi r2, 96
        l.bf    ps_loop
        l.nop   0
)");
}

std::string
mesaSource()
{
    return wrapCompute(R"(
        l.addi r1, r0, 0
    mesa_loop:
        l.muli  r2, r1, 13
        l.slli  r3, r2, 2
        l.srai  r4, r2, 3
        l.mac   r2, r3
        l.mul   r5, r2, r4
        l.macrc r6
        l.srli  r7, r5, 1
        l.addi  r1, r1, 1
        l.sfltsi r1, 150
        l.bf    mesa_loop
        l.nop   0
)");
}

std::string
ammpSource()
{
    return wrapCompute(R"(
        .equ ARR, 0x4400
        l.movhi r1, hi(ARR)
        l.ori   r1, r1, lo(ARR)
        l.addi  r2, r0, 0
    fill:
        l.slli  r3, r2, 2
        l.add   r4, r1, r3
        l.muli  r5, r2, 37
        l.sw    0(r4), r5
        l.addi  r2, r2, 1
        l.sfltsi r2, 128
        l.bf    fill
        l.nop   0
        l.addi  r2, r0, 0
        l.addi  r6, r0, 0
    sweep:
        l.slli  r3, r2, 2
        l.add   r4, r1, r3
        l.lws   r5, 0(r4)
        l.add   r6, r6, r5
        l.lwz   r7, 4(r4)
        l.sub   r8, r7, r5
        l.sw    4(r4), r8
        l.addi  r2, r2, 2
        l.sfltsi r2, 126
        l.bf    sweep
        l.nop   0
)");
}

std::string
mcfSource()
{
    return wrapCompute(R"(
        .equ NODES, 0x5000
        ; build a 32-node singly linked list: {next, value}
        l.movhi r1, hi(NODES)
        l.ori   r1, r1, lo(NODES)
        l.addi  r2, r0, 0
    build:
        l.slli  r3, r2, 3
        l.add   r4, r1, r3
        l.addi  r5, r4, 8
        l.sw    0(r4), r5
        l.muli  r6, r2, 11
        l.sw    4(r4), r6
        l.addi  r2, r2, 1
        l.sfltsi r2, 32
        l.bf    build
        l.nop   0
        ; terminate the list
        l.slli  r3, r2, 3
        l.add   r4, r1, r3
        l.addi  r4, r4, -8
        l.sw    0(r4), r0
        ; traverse it a few times via a function pointer
        l.movhi r11, hi(chase_fn)
        l.ori   r11, r11, lo(chase_fn)
        l.addi  r10, r0, 0
    pass:
        l.jalr  r11
        l.nop   0
        l.addi  r10, r10, 1
        l.sfltsi r10, 6
        l.bf    pass
        l.nop   0
        l.j     mcf_done
        l.nop   0
    chase_fn:
        l.add   r7, r1, r0
        l.addi  r8, r0, 0
    chase:
        l.lwz   r6, 4(r7)
        l.add   r8, r8, r6
        l.lwz   r7, 0(r7)
        l.sfne  r7, r0
        l.bf    chase
        l.nop   0
        l.jr    r9
        l.nop   0
    mcf_done:
)");
}

std::string
instruSource()
{
    return wrapCompute(R"(
        l.movhi r2, 0x8765
        l.ori   r2, r2, 0x4321
        l.addi  r1, r0, 0
    ins_loop:
        l.extbs r3, r2
        l.extbz r4, r2
        l.exths r5, r2
        l.exthz r6, r2
        l.extws r7, r2
        l.extwz r8, r2
        l.ff1   r10, r2
        l.sfltsi r1, 50
        l.cmov  r11, r3, r4
        l.ror   r2, r2, r10
        l.xori  r2, r2, 0x35
        l.addi  r1, r1, 1
        l.sfltsi r1, 100
        l.bf    ins_loop
        l.nop   0
)");
}

std::string
gzipSource()
{
    return wrapCompute(R"(
        l.movhi r2, 0x1f8b
        l.ori   r2, r2, 0x0808
        l.addi  r1, r0, 0
        l.addi  r3, r0, 0
    gz_loop:
        l.slli  r4, r2, 3
        l.srli  r5, r2, 5
        l.xor   r6, r4, r5
        l.or    r3, r3, r6
        l.and   r7, r6, r2
        l.rori  r2, r6, 7
        l.sll   r8, r2, r1
        l.srl   r10, r2, r1
        l.sra   r11, r2, r1
        l.addi  r1, r1, 1
        l.andi  r1, r1, 0xff
        l.sfltsi r1, 180
        l.bf    gz_loop
        l.nop   0
)");
}

std::string
craftySource()
{
    return wrapCompute(R"(
        ; bitboard-style: 64-bit values in register pairs
        l.movhi r2, 0x0f0f
        l.ori   r2, r2, 0x0f0f
        l.movhi r3, 0x00ff
        l.ori   r3, r3, 0xff00
        l.movhi r13, hi(cf_popcnt)
        l.ori   r13, r13, lo(cf_popcnt)
        l.addi  r1, r0, 0
    cf_loop:
        l.and   r4, r2, r3
        l.or    r5, r2, r3
        l.xor   r6, r2, r3
        l.ff1   r7, r6
        l.slli  r2, r2, 1
        l.srli  r3, r3, 1
        l.or    r2, r2, r7
        l.or    r3, r3, r4
        l.jal   cf_popcnt
        l.nop   0
        l.jalr  r13
        l.nop   0
        l.addi  r1, r1, 1
        l.sfltsi r1, 80
        l.bf    cf_loop
        l.nop   0
        l.j     cf_done
        l.nop   0
    cf_popcnt:
        l.addi  r10, r0, 0
        l.add   r11, r6, r0
    cf_pop_loop:
        l.sfne  r11, r0
        l.bnf   cf_pop_done
        l.nop   0
        l.ff1   r12, r11
        l.srl   r11, r11, r12
        l.addi  r10, r10, 1
        l.j     cf_pop_loop
        l.nop   0
    cf_pop_done:
        l.jr    r9
        l.nop   0
    cf_done:
)");
}

std::string
bzipSource()
{
    return wrapCompute(R"(
        .equ SRC, 0x4000
        .equ DST, 0x4800
        l.movhi r1, hi(SRC)
        l.ori   r1, r1, lo(SRC)
        l.movhi r2, hi(DST)
        l.ori   r2, r2, lo(DST)
        l.addi  r3, r0, 0
    bz_fill:
        l.muli  r4, r3, 67
        l.andi  r4, r4, 0xff
        l.add   r5, r1, r3
        l.sb    0(r5), r4
        l.addi  r3, r3, 1
        l.sfltsi r3, 128
        l.bf    bz_fill
        l.nop   0
        l.addi  r3, r0, 0
    bz_move:
        l.add   r5, r1, r3
        l.lbz   r4, 0(r5)
        l.rori  r4, r4, 1
        l.andi  r4, r4, 0xff
        l.xori  r4, r4, 0x5a
        l.addi  r6, r0, 127
        l.sub   r7, r6, r3
        l.add   r8, r2, r7
        l.sb    0(r8), r4
        l.addi  r3, r3, 1
        l.sfltsi r3, 128
        l.bf    bz_move
        l.nop   0
)");
}

std::string
quakeSource()
{
    return wrapCompute(R"(
        .equ VEC, 0x4000
        l.movhi r1, hi(VEC)
        l.ori   r1, r1, lo(VEC)
        l.addi  r2, r0, 0
    qk_fill:
        l.slli  r3, r2, 2
        l.add   r4, r1, r3
        l.addi  r5, r2, -32
        l.muli  r5, r5, 9
        l.sw    0(r4), r5
        l.addi  r2, r2, 1
        l.sfltsi r2, 64
        l.bf    qk_fill
        l.nop   0
        ; dot products with the MAC unit
        l.addi  r2, r0, 0
    qk_dot:
        l.slli  r3, r2, 2
        l.add   r4, r1, r3
        l.lwz   r5, 0(r4)
        l.lwz   r6, 4(r4)
        l.mac   r5, r6
        l.maci  r5, 3
        l.msb   r6, r6
        l.addi  r2, r2, 1
        l.sfltsi r2, 60
        l.bf    qk_dot
        l.nop   0
        l.macrc r7
)");
}

std::string
twolfSource()
{
    return wrapCompute(R"(
        .equ VALS, 0x4000
        ; value table with signed/unsigned corner cases
        l.movhi r1, hi(VALS)
        l.ori   r1, r1, lo(VALS)
        l.sw    0(r1), r0
        l.addi  r2, r0, 5
        l.sw    4(r1), r2
        l.addi  r2, r0, -5
        l.sw    8(r1), r2
        l.movhi r2, 0x8000
        l.ori   r2, r2, 1
        l.sw    12(r1), r2
        l.movhi r2, 0x7fff
        l.ori   r2, r2, 0xffff
        l.sw    16(r1), r2
        l.addi  r2, r0, 1
        l.sw    20(r1), r2

        l.addi  r3, r0, 0          ; i
    tw_outer:
        l.slli  r5, r3, 2
        l.add   r5, r1, r5
        l.lwz   r6, 0(r5)          ; a
        l.addi  r4, r0, 0          ; j
    tw_inner:
        l.slli  r7, r4, 2
        l.add   r7, r1, r7
        l.lwz   r8, 0(r7)          ; b
        l.sfeq  r6, r8
        l.cmov  r10, r6, r8
        l.sfne  r6, r8
        l.cmov  r10, r6, r8
        l.sfgtu r6, r8
        l.cmov  r10, r6, r8
        l.sfgeu r6, r8
        l.cmov  r10, r6, r8
        l.sfltu r6, r8
        l.cmov  r10, r6, r8
        l.sfleu r6, r8
        l.cmov  r10, r6, r8
        l.sfgts r6, r8
        l.cmov  r10, r6, r8
        l.sfges r6, r8
        l.cmov  r10, r6, r8
        l.sflts r6, r8
        l.cmov  r10, r6, r8
        l.sfles r6, r8
        l.cmov  r10, r6, r8
        l.sfeqi r6, 5
        l.sfnei r6, 0
        l.sfgtui r6, 100
        l.sfgeui r6, 0
        l.sfltui r6, 1000
        l.sfleui r6, 1000
        l.sfgtsi r6, -7
        l.sfgesi r6, -7
        l.sfltsi r6, 7
        l.sflesi r6, 7
        l.addi  r4, r4, 1
        l.sfltsi r4, 6
        l.bf    tw_inner
        l.nop   0
        l.addi  r3, r3, 1
        l.sfltsi r3, 6
        l.bf    tw_outer
        l.nop   0
)");
}

std::string
vprSource()
{
    return wrapCompute(R"(
        .equ GRID, 0x4000
        l.movhi r1, hi(GRID)
        l.ori   r1, r1, lo(GRID)
        l.addi  r2, r0, 0
    vp_fill:
        l.slli  r3, r2, 1
        l.add   r4, r1, r3
        l.addi  r5, r2, -40
        l.muli  r5, r5, 3
        l.sh    0(r4), r5
        l.addi  r2, r2, 1
        l.sfltsi r2, 80
        l.bf    vp_fill
        l.nop   0
        l.addi  r2, r0, 0
        l.addi  r6, r0, 0
    vp_cost:
        l.slli  r3, r2, 1
        l.add   r4, r1, r3
        l.lhs   r5, 0(r4)
        l.lhz   r7, 2(r4)
        l.exths r8, r7
        l.add   r6, r6, r5
        l.sub   r6, r6, r8
        l.addi  r2, r2, 2
        l.sfltsi r2, 78
        l.bf    vp_cost
        l.nop   0
)");
}

std::string
piSource()
{
    return wrapCompute(R"(
        ; integer arctan-series flavour: heavy division
        l.movhi r2, 0x000f
        l.ori   r2, r2, 0x4240     ; 1,000,000
        l.addi  r3, r0, 1          ; k
        l.addi  r4, r0, 0          ; acc
    pi_loop:
        l.div   r5, r2, r3
        l.divu  r6, r2, r3
        l.mulu  r8, r5, r6
        l.andi  r7, r3, 2
        l.sfeqi r7, 0
        l.bf    pi_add
        l.nop   0
        l.sub   r4, r4, r5
        l.j     pi_next
        l.nop   0
    pi_add:
        l.add   r4, r4, r5
    pi_next:
        l.addi  r3, r3, 2
        l.sfltsi r3, 300
        l.bf    pi_loop
        l.nop   0
)");
}

std::string
bitcountSource()
{
    return wrapCompute(R"(
        l.movhi r2, 0xdead
        l.ori   r2, r2, 0xbeef
        l.addi  r1, r0, 0
        l.addi  r3, r0, 0
    bc_outer:
        l.add   r4, r2, r0
    bc_inner:
        l.sfne  r4, r0
        l.bnf   bc_next
        l.nop   0
        l.ff1   r5, r4
        l.srl   r4, r4, r5
        l.addi  r3, r3, 1
        l.j     bc_inner
        l.nop   0
    bc_next:
        l.muli  r2, r2, 17
        l.addi  r2, r2, 29
        l.addi  r1, r1, 1
        l.sfltsi r1, 40
        l.bf    bc_outer
        l.nop   0
)");
}

std::string
fftSource()
{
    return wrapCompute(R"(
        .equ RE, 0x4000
        .equ IM, 0x4400
        l.movhi r1, hi(RE)
        l.ori   r1, r1, lo(RE)
        l.movhi r2, hi(IM)
        l.ori   r2, r2, lo(IM)
        l.addi  r3, r0, 0
    ff_fill:
        l.slli  r4, r3, 2
        l.add   r5, r1, r4
        l.muli  r6, r3, 5
        l.sw    0(r5), r6
        l.add   r5, r2, r4
        l.addi  r6, r3, -16
        l.sw    0(r5), r6
        l.addi  r3, r3, 1
        l.sfltsi r3, 32
        l.bf    ff_fill
        l.nop   0
        ; butterfly passes
        l.addi  r10, r0, 0
    ff_pass:
        l.addi  r3, r0, 0
    ff_bfly:
        l.slli  r4, r3, 2
        l.add   r5, r1, r4
        l.lwz   r6, 0(r5)          ; a
        l.lwz   r7, 4(r5)          ; b
        l.add   r8, r6, r7
        l.sub   r11, r6, r7
        l.srai  r8, r8, 1
        l.srai  r11, r11, 1
        l.sw    0(r5), r8
        l.sw    4(r5), r11
        l.addi  r3, r3, 2
        l.sfltsi r3, 30
        l.bf    ff_bfly
        l.nop   0
        l.addi  r10, r10, 1
        l.sfltsi r10, 5
        l.bf    ff_pass
        l.nop   0
)");
}

std::string
helloworldSource()
{
    return wrapCompute(R"(
        .equ OUT, 0x4000
        l.movhi r1, hi(OUT)
        l.ori   r1, r1, lo(OUT)
        l.addi  r2, r0, 72         ; 'H'
        l.sb    0(r1), r2
        l.addi  r2, r0, 69         ; 'E'
        l.sb    1(r1), r2
        l.addi  r2, r0, 76         ; 'L'
        l.sb    2(r1), r2
        l.sb    3(r1), r2
        l.addi  r2, r0, 79         ; 'O'
        l.sb    4(r1), r2
        l.sys   0
)");
}

std::vector<Workload>
buildAll()
{
    std::vector<Workload> out;

    auto add = [&out](const std::string &name, std::string source,
                      cpu::CpuConfig config = cpu::CpuConfig()) {
        out.push_back(Workload{name, std::move(source), config});
    };

    cpu::CpuConfig bootCfg;
    // External interrupt lines arrive every ~100 instructions; they
    // are only taken while the boot enables IEE (phase H).
    for (uint64_t at = 100; at < 12000; at += 100)
        bootCfg.irqSchedule.push_back({at, (at / 100) % 3});

    add("vmlinux", bootSource(), bootCfg);
    add("basicmath", basicmathSource());
    add("parser", parserSource());
    add("mesa", mesaSource());
    add("ammp", ammpSource());
    add("mcf", mcfSource());
    add("instru", instruSource());
    add("gzip", gzipSource());
    add("crafty", craftySource());
    add("bzip", bzipSource());
    add("quake", quakeSource());
    add("twolf", twolfSource());
    add("vpr", vprSource());
    add("pi", piSource());
    add("bitcount", bitcountSource());
    add("fft", fftSource());
    add("helloworld", helloworldSource());
    return out;
}

} // namespace

const std::vector<Workload> &
all()
{
    static const std::vector<Workload> workloads = buildAll();
    return workloads;
}

const Workload &
byName(const std::string &name)
{
    for (const auto &w : all()) {
        if (w.name == name)
            return w;
    }
    panic("unknown workload '%s'", name.c_str());
}

void
runInto(const Workload &w, const cpu::MutationSet &mutations,
        bool interpreted, trace::TraceSink *sink)
{
    cpu::CpuConfig config = w.config;
    config.mutations = mutations;
    config.predecode = !interpreted;
    cpu::Cpu cpu(config);
    cpu.loadProgram(assembler::assembleOrDie(w.source));
    cpu::RunResult result = cpu.run(sink);
    if (result.reason != cpu::HaltReason::Halted && mutations.empty()) {
        panic("workload '%s' did not halt cleanly (reason %d)",
              w.name.c_str(), int(result.reason));
    }
}

trace::TraceBuffer
run(const Workload &w, const cpu::MutationSet &mutations,
    bool interpreted)
{
    trace::TraceBuffer buffer;
    runInto(w, mutations, interpreted, &buffer);
    return buffer;
}

trace::ColumnarCapture
runColumnar(const Workload &w, const cpu::MutationSet &mutations)
{
    trace::ColumnarCapture capture;
    runInto(w, mutations, /*interpreted=*/false, &capture);
    return capture;
}

std::string
randomProgram(Rng &rng, size_t length)
{
    // Leaf functions callable both forward (from the 0x1000 chunk)
    // and backward (from the 0x30000 chunk).
    const char *functions = R"(
        .org 0x3000
    fn_mix:
        l.xori  r15, r15, 0x35
        l.addi  r15, r15, 3
        l.jr    r9
        l.nop   0
    fn_rot:
        l.rori  r14, r14, 5
        l.add   r14, r14, r15
        l.jr    r9
        l.nop   0
)";

    auto chunk = [&rng](size_t n) {
        std::string body;
        auto reg = [&rng]() {
            // A wide pool excluding r6/r7 (the generator's own
            // address temporaries) and r9 (the link register).
            static const unsigned pool[] = {1,  2,  3,  4,  5,  8,
                                            10, 11, 12, 13, 14, 15,
                                            16, 17, 18, 19, 20, 21,
                                            22, 23, 24, 28, 29, 30,
                                            31};
            return format("r%u", pool[rng.below(25)]);
        };
        body += "        l.movhi r7, 0\n";
        body += "        l.ori   r7, r7, 0x4000\n";
        for (size_t i = 0; i < n; ++i) {
            switch (rng.below(16)) {
              case 0:
                body += format("        l.addi %s, %s, %d\n",
                               reg().c_str(), reg().c_str(),
                               int(rng.range(-5000, 5000)));
                break;
              case 1:
                body += format("        l.add %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 2:
                body += format("        l.sub %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 3:
                body += format("        l.xor %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 4:
                body += format("        l.and %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 5:
                body += format("        l.slli %s, %s, %u\n",
                               reg().c_str(), reg().c_str(),
                               unsigned(rng.below(31)));
                break;
              case 6:
                body += format("        l.rori %s, %s, %u\n",
                               reg().c_str(), reg().c_str(),
                               unsigned(rng.below(31)));
                break;
              case 7:
                body += format("        l.mul %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 8: {
                // Masked store: address forced word aligned, in range.
                std::string v = reg(), x = reg();
                body += format("        l.andi r6, %s, 0x3fc\n",
                               x.c_str());
                body += "        l.add  r6, r6, r7\n";
                body += format("        l.sw   0(r6), %s\n", v.c_str());
                break;
              }
              case 9: {
                std::string d = reg(), x = reg();
                body += format("        l.andi r6, %s, 0x3fc\n",
                               x.c_str());
                body += "        l.add  r6, r6, r7\n";
                body += format("        l.lwz  %s, 0(r6)\n", d.c_str());
                break;
              }
              case 10:
                body += format("        l.sfltsi %s, %d\n",
                               reg().c_str(),
                               int(rng.range(-50, 50)));
                body += format("        l.cmov %s, %s, %s\n",
                               reg().c_str(), reg().c_str(),
                               reg().c_str());
                break;
              case 11:
                body += format("        l.%s %s, %s\n",
                               rng.chance(0.5) ? "exths" : "extbz",
                               reg().c_str(), reg().c_str());
                break;
              case 12:
                // Function calls, forward from one chunk and
                // backward from the other.
                body += format("        l.jal %s\n",
                               rng.chance(0.5) ? "fn_mix" : "fn_rot");
                body += "        l.nop  0\n";
                break;
              case 13:
                body += "        l.sys  0\n";
                break;
              case 14: {
                // Benign SPR traffic.
                static const char *const sprs[] = {"EEAR0", "EPCR0",
                                                   "MACLO"};
                const char *spr = sprs[rng.below(3)];
                std::string v = reg(), d = reg();
                body += format("        l.mtspr r0, %s, %s\n",
                               v.c_str(), spr);
                body += format("        l.mfspr %s, r0, %s\n",
                               d.c_str(), spr);
                break;
              }
              default:
                body += format("        l.ori %s, %s, 0x%x\n",
                               reg().c_str(), reg().c_str(),
                               unsigned(rng.below(0x10000)));
                break;
            }
        }
        return body;
    };

    // Two chunks: 0x1000 (calls go forward) and 0x30000 (calls go
    // backward), joined by a long jump.
    std::string out(computeHandlers);
    out += R"(
    .org 0x100
        l.j main
        l.nop 0
)";
    out += functions;
    out += "    .org 0x1000\n    main:\n";
    out += chunk(length / 2);
    out += "        l.j far_chunk\n        l.nop 0\n";
    out += "    .org 0x30000\n    far_chunk:\n";
    out += chunk(length - length / 2);
    out += "        l.nop 0xf\n";
    return out;
}

std::vector<Workload>
validationPrograms(size_t count, uint64_t seed)
{
    // One sequential random stream decides every program, so the
    // corpus is a pure function of (count, seed); only the runs of
    // the already-fixed programs fan out.
    Rng rng(seed);
    std::vector<Workload> programs(count);
    for (size_t i = 0; i < count; ++i) {
        programs[i].name = format("random-%zu", i);
        programs[i].source = randomProgram(rng, 150);
    }
    return programs;
}

std::vector<trace::TraceBuffer>
validationCorpus(size_t count, uint64_t seed,
                 support::ThreadPool *pool, bool interpreted)
{
    std::vector<Workload> programs = validationPrograms(count, seed);
    return support::parallelMap(
        pool, programs,
        [interpreted](const Workload &w) {
            return run(w, {}, interpreted);
        });
}

std::vector<uint64_t>
validationCorpusToStore(const std::string &path, size_t count,
                        uint64_t seed, support::ThreadPool *pool,
                        bool interpreted, uint32_t chunkRecords)
{
    std::vector<Workload> programs = validationPrograms(count, seed);
    std::vector<std::string> names(count);
    for (size_t i = 0; i < count; ++i)
        names[i] = programs[i].name;
    return trace::buildTraceSetParallel(
        path, chunkRecords, names,
        [&](size_t i, trace::TraceSink &sink) {
            runInto(programs[i], {}, interpreted, &sink);
        },
        pool);
}

} // namespace scif::workloads

/**
 * @file
 * The training workload suite (paper §5.1).
 *
 * The paper generates traces from 17 programs — a Linux boot, SPEC
 * benchmarks, and small numeric kernels. We provide 17 synthetic
 * OR1K assembly programs with the same coverage intent: the "boot"
 * workload exercises the privileged architecture (every exception
 * class, interrupts, user/supervisor transitions, SPR traffic), and
 * the remaining workloads mirror the instruction mix their namesakes
 * are known for (pointer chasing for mcf, bit twiddling for gzip,
 * MAC-heavy loops for quake, ...). Together they cover every
 * implemented instruction.
 *
 * A constrained-random program generator is also provided for
 * property tests and coverage experiments.
 */

#ifndef SCIFINDER_WORKLOADS_WORKLOADS_HH
#define SCIFINDER_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "support/random.hh"
#include "trace/capture.hh"
#include "trace/record.hh"

namespace scif::support {
class ThreadPool;
} // namespace scif::support

namespace scif::workloads {

/** One training program. */
struct Workload
{
    std::string name;
    std::string source;       ///< OR1K assembly text
    cpu::CpuConfig config;    ///< memory size, IRQ schedule, budget
};

/** @return the 17 training workloads, in the paper's Figure 3 order. */
const std::vector<Workload> &all();

/** @return the workload with the given name; aborts if unknown. */
const Workload &byName(const std::string &name);

/**
 * Run a workload on a processor with the given mutations and return
 * its trace.
 *
 * @param w the workload.
 * @param mutations injected errata (empty = clean processor).
 * @param interpreted force the interpreted (non-predecoded) front
 *        end; the record stream is byte-identical either way.
 */
trace::TraceBuffer run(const Workload &w,
                       const cpu::MutationSet &mutations = {},
                       bool interpreted = false);

/**
 * Run a workload, emitting trace records into an arbitrary sink —
 * the out-of-core path: with a trace::TraceSetWriter stream as the
 * sink, records are sealed into compressed chunks as the simulation
 * produces them and never accumulate in memory.
 */
void runInto(const Workload &w, const cpu::MutationSet &mutations,
             bool interpreted, trace::TraceSink *sink);

/**
 * Run a workload, capturing straight into per-point columns (no AoS
 * intermediate). The capture reconstructs the exact run() record
 * stream via toRecords() and seals into the ColumnSet::build
 * geometry.
 */
trace::ColumnarCapture
runColumnar(const Workload &w, const cpu::MutationSet &mutations = {});

/**
 * Generate a constrained-random program: data operations over a wide
 * register pool, masked word-aligned memory accesses, forward and
 * backward function calls, syscalls, and benign SPR traffic, ending
 * in the halt idiom. Never hangs or dies on a clean processor.
 *
 * Random programs serve two roles: property-test stimulus, and the
 * *validation corpus* standing in for the paper's human expert, who
 * spent five hours marking identified SCI that are "clearly
 * non-invariant as determined by the ISA" (§5.7) — an invariant
 * violated by some clean random program is exactly that.
 *
 * @param rng random source.
 * @param length approximate number of instructions to emit.
 */
std::string randomProgram(Rng &rng, size_t length);

/**
 * @return a deterministic validation corpus: @p count random
 * programs executed on the clean processor. Program *generation*
 * consumes one sequential random stream and always runs serially;
 * only the executions fan out over @p pool, so the corpus does not
 * depend on the thread count.
 */
std::vector<trace::TraceBuffer>
validationCorpus(size_t count = 24, uint64_t seed = 0x5eed,
                 support::ThreadPool *pool = nullptr,
                 bool interpreted = false);

/**
 * @return the validation-corpus programs themselves (the same pure
 * function of (count, seed) validationCorpus() executes), without
 * running them.
 */
std::vector<Workload> validationPrograms(size_t count = 24,
                                         uint64_t seed = 0x5eed);

/**
 * Generate the validation corpus straight into a chunked v2
 * trace-set artifact at @p path — the streaming counterpart of
 * validationCorpus(): the record streams and therefore the artifact
 * bytes are identical for any @p pool, and writer memory stays
 * bounded by the chunk size. @return per-stream record counts, in
 * corpus order.
 */
std::vector<uint64_t>
validationCorpusToStore(const std::string &path, size_t count = 24,
                        uint64_t seed = 0x5eed,
                        support::ThreadPool *pool = nullptr,
                        bool interpreted = false,
                        uint32_t chunkRecords = 4096);

} // namespace scif::workloads

#endif // SCIFINDER_WORKLOADS_WORKLOADS_HH

/**
 * @file
 * Invariant-set optimization passes (paper §3.2).
 *
 * Four passes run in order (the paper's three, plus a semantic
 * vacuity pass built on the abstract-interpretation analyzer):
 *
 *  1. Constant propagation (CP): equality-to-constant invariants at a
 *     point are substituted into that point's other invariants,
 *     iterating until a fixed point; this shrinks the total variable
 *     count without changing the number of invariants.
 *  2. Deducible removal (DR): per point and per transitive operator
 *     (>, >=), invariants are edges of a DAG over canonical operand
 *     keys; the transitive reduction drops edges implied by others.
 *  3. Equivalence removal (ER): invariants are canonicalized and
 *     exact duplicates (plus tautologies exposed by CP) are dropped.
 *  4. Vacuity removal (VR): the abstract-interpretation analyzer
 *     (src/analysis/) proves some invariants can never be violated
 *     by any emittable record — semantic tautologies and invariants
 *     implied by structural trace-layer facts (e.g. a derived flag
 *     variable is always 0 or 1). Deleting them cannot change any
 *     violation set, so identification (Table 3) is unaffected.
 */

#ifndef SCIFINDER_OPT_PASSES_HH
#define SCIFINDER_OPT_PASSES_HH

#include "invgen/invgen.hh"

namespace scif::opt {

/** Per-pass size accounting (the rows of Table 2). */
struct PassStats
{
    size_t invariantsBefore = 0;
    size_t invariantsAfter = 0;
    size_t variablesBefore = 0;
    size_t variablesAfter = 0;
};

/**
 * Constant propagation: substitute x == c facts into sibling
 * invariants at the same program point, iterating as new constants
 * appear. Does not remove invariants.
 */
PassStats constantPropagation(std::vector<expr::Invariant> &invs);

/**
 * Deducible removal: transitive reduction of the >,>= relations per
 * program point. Removes implied invariants.
 */
PassStats deducibleRemoval(std::vector<expr::Invariant> &invs);

/**
 * Equivalence removal: drop exact canonical duplicates and
 * tautologies (constant-constant comparisons that are always true).
 * Aborts if a constant-constant comparison is false — that would
 * mean the set is self-contradictory.
 */
PassStats equivalenceRemoval(std::vector<expr::Invariant> &invs);

/**
 * Vacuity removal: drop invariants the analyzer proves unviolatable
 * (semantic tautologies and structurally ISA-implied facts).
 */
PassStats vacuityRemoval(std::vector<expr::Invariant> &invs);

/** Run all four passes in order; returns one stats entry per pass. */
std::vector<PassStats> optimize(invgen::InvariantSet &set);

} // namespace scif::opt

#endif // SCIFINDER_OPT_PASSES_HH

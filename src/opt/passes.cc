#include "passes.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/analyzer.hh"
#include "support/logging.hh"

namespace scif::opt {

using expr::CmpOp;
using expr::Invariant;
using expr::Op2;
using expr::Operand;
using expr::VarRef;

namespace {

size_t
countVariables(const std::vector<Invariant> &invs)
{
    size_t count = 0;
    for (const auto &inv : invs) {
        count += inv.lhs.vars().size();
        if (inv.op != CmpOp::In)
            count += inv.rhs.vars().size();
    }
    return count;
}

/** True for the canonical "bare variable == constant" shape. */
bool
isConstFact(const Invariant &inv, VarRef &var, uint32_t &value)
{
    if (inv.op != CmpOp::Eq)
        return false;
    const Operand *v = nullptr, *c = nullptr;
    if (inv.lhs.isBareVar() && inv.rhs.isConst) {
        v = &inv.lhs;
        c = &inv.rhs;
    } else if (inv.rhs.isBareVar() && inv.lhs.isConst) {
        v = &inv.rhs;
        c = &inv.lhs;
    } else {
        return false;
    }
    var = v->a;
    value = c->constVal;
    return true;
}

/**
 * Substitute known constants into one operand.
 * @return true if the operand changed.
 */
bool
substitute(Operand &o, const std::map<VarRef, uint32_t> &consts)
{
    if (o.isConst)
        return false;

    auto fold = [&o](uint32_t combined) {
        uint32_t v = combined;
        if (o.negate)
            v = ~v;
        v *= o.mulImm;
        if (o.modImm != 0)
            v %= o.modImm;
        v += o.addImm;
        o = Operand::imm(v);
    };

    if (o.op2 == Op2::None) {
        auto it = consts.find(o.a);
        if (it == consts.end())
            return false;
        fold(it->second);
        return true;
    }

    auto ia = consts.find(o.a);
    auto ib = consts.find(o.b);
    bool hasA = ia != consts.end();
    bool hasB = ib != consts.end();
    if (hasA && hasB) {
        uint32_t va = ia->second, vb = ib->second;
        uint32_t combined = 0;
        switch (o.op2) {
          case Op2::And: combined = va & vb; break;
          case Op2::Or: combined = va | vb; break;
          case Op2::Add: combined = va + vb; break;
          case Op2::Sub: combined = va - vb; break;
          case Op2::None: break;
        }
        fold(combined);
        return true;
    }

    // Partial fold: (x + c) and (x - c) collapse into the additive
    // tail when no negate/mod stands in the way.
    if (!o.negate && o.modImm == 0) {
        if (o.op2 == Op2::Add && (hasA || hasB)) {
            uint32_t c = hasA ? ia->second : ib->second;
            VarRef keep = hasA ? o.b : o.a;
            o.a = keep;
            o.op2 = Op2::None;
            o.addImm += c * o.mulImm;
            return true;
        }
        if (o.op2 == Op2::Sub && hasB) {
            uint32_t c = ib->second;
            o.op2 = Op2::None;
            o.addImm -= c * o.mulImm;
            return true;
        }
    }
    return false;
}

} // namespace

PassStats
constantPropagation(std::vector<Invariant> &invs)
{
    PassStats stats;
    stats.invariantsBefore = invs.size();
    stats.variablesBefore = countVariables(invs);

    // Group invariant indices by program point.
    std::map<uint16_t, std::vector<size_t>> byPoint;
    for (size_t i = 0; i < invs.size(); ++i)
        byPoint[invs[i].point.id()].push_back(i);

    for (auto &[pointId, indices] : byPoint) {
        // Collect the initial variable-value map.
        std::map<VarRef, uint32_t> consts;
        std::set<size_t> defining;
        for (size_t i : indices) {
            VarRef var;
            uint32_t value;
            if (isConstFact(invs[i], var, value)) {
                consts.emplace(var, value);
                defining.insert(i);
            }
        }

        // Iterate the worklist until no new constants appear.
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t i : indices) {
                if (defining.count(i))
                    continue;
                Invariant &inv = invs[i];
                bool touched = substitute(inv.lhs, consts);
                if (inv.op != CmpOp::In)
                    touched |= substitute(inv.rhs, consts);
                if (!touched)
                    continue;
                // A substitution may expose a new constant fact.
                VarRef var;
                uint32_t value;
                if (isConstFact(inv, var, value) &&
                    !consts.count(var)) {
                    consts.emplace(var, value);
                    defining.insert(i);
                    changed = true;
                }
            }
        }
    }

    stats.invariantsAfter = invs.size();
    stats.variablesAfter = countVariables(invs);
    return stats;
}

PassStats
deducibleRemoval(std::vector<Invariant> &invs)
{
    PassStats stats;
    stats.invariantsBefore = invs.size();
    stats.variablesBefore = countVariables(invs);

    for (auto &inv : invs)
        inv.canonicalize();

    // Bucket transitive relations by (point, operator).
    std::map<std::pair<uint16_t, CmpOp>, std::vector<size_t>> buckets;
    for (size_t i = 0; i < invs.size(); ++i) {
        CmpOp op = invs[i].op;
        if (op == CmpOp::Gt || op == CmpOp::Ge)
            buckets[{invs[i].point.id(), op}].push_back(i);
    }

    std::set<size_t> removed;
    for (const auto &[bucketKey, indices] : buckets) {
        // Build the graph over canonical operand keys.
        std::map<std::string, int> nodeIds;
        auto nodeOf = [&nodeIds](const Operand &o) {
            auto [it, fresh] =
                nodeIds.emplace(o.str(), int(nodeIds.size()));
            (void)fresh;
            return it->second;
        };
        struct Edge
        {
            int from, to;
            size_t inv;
        };
        std::vector<Edge> edges;
        for (size_t i : indices)
            edges.push_back(
                {nodeOf(invs[i].lhs), nodeOf(invs[i].rhs), i});

        size_t n = nodeIds.size();
        std::vector<std::vector<int>> succ(n);
        for (const auto &e : edges)
            succ[e.from].push_back(e.to);

        // Plain DFS reachability (from == to counts as reachable).
        auto reaches = [&](int from, int to) {
            std::vector<bool> visited(n, false);
            std::vector<int> stack{from};
            while (!stack.empty()) {
                int u = stack.back();
                stack.pop_back();
                if (u == to)
                    return true;
                if (visited[u])
                    continue;
                visited[u] = true;
                for (int v : succ[u])
                    stack.push_back(v);
            }
            return false;
        };

        // An edge u -> v is deducible if some other successor of u
        // reaches v, i.e. a path of length >= 2 exists.
        for (const auto &e : edges) {
            for (int w : succ[e.from]) {
                if (w == e.to)
                    continue;
                if (reaches(w, e.to)) {
                    removed.insert(e.inv);
                    break;
                }
            }
        }
    }

    if (!removed.empty()) {
        std::vector<Invariant> kept;
        kept.reserve(invs.size() - removed.size());
        for (size_t i = 0; i < invs.size(); ++i) {
            if (!removed.count(i))
                kept.push_back(std::move(invs[i]));
        }
        invs = std::move(kept);
    }

    stats.invariantsAfter = invs.size();
    stats.variablesAfter = countVariables(invs);
    return stats;
}

PassStats
equivalenceRemoval(std::vector<Invariant> &invs)
{
    PassStats stats;
    stats.invariantsBefore = invs.size();
    stats.variablesBefore = countVariables(invs);

    std::set<std::string> seen;
    std::vector<Invariant> kept;
    kept.reserve(invs.size());
    for (auto &inv : invs) {
        inv.canonicalize();

        // Tautologies exposed by constant propagation.
        if (inv.op != CmpOp::In && inv.lhs.isConst &&
            inv.rhs.isConst) {
            trace::Record dummy{};
            if (!inv.exprHolds(dummy)) {
                panic("contradictory invariant after optimization: %s",
                      inv.str().c_str());
            }
            continue;
        }
        if (inv.op == CmpOp::In && inv.lhs.isConst)
            continue;

        if (seen.insert(inv.key()).second)
            kept.push_back(std::move(inv));
    }
    invs = std::move(kept);

    stats.invariantsAfter = invs.size();
    stats.variablesAfter = countVariables(invs);
    return stats;
}

PassStats
vacuityRemoval(std::vector<Invariant> &invs)
{
    PassStats stats;
    stats.invariantsBefore = invs.size();
    stats.variablesBefore = countVariables(invs);

    analysis::removeVacuous(invs);

    stats.invariantsAfter = invs.size();
    stats.variablesAfter = countVariables(invs);
    return stats;
}

std::vector<PassStats>
optimize(invgen::InvariantSet &set)
{
    std::vector<Invariant> invs = set.all();
    std::vector<PassStats> stats;
    stats.push_back(constantPropagation(invs));
    stats.push_back(deducibleRemoval(invs));
    stats.push_back(equivalenceRemoval(invs));
    stats.push_back(vacuityRemoval(invs));
    set.assign(std::move(invs));
    return stats;
}

} // namespace scif::opt

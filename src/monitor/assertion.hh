/**
 * @file
 * Runtime assertions (paper §2, §4.2).
 *
 * SCI are translated into OVL-style assertion templates and enforced
 * by a monitor that watches the processor's retirement stream — the
 * SPECS-like dynamic verification the paper evaluates. Invariants
 * with the same expression are synthesized into a single assertion
 * enforced at the union of their program points (the paper's 54
 * identified SCI become 14 assertions the same way).
 *
 * Template selection follows §4.2:
 *  - next:   the expression references orig() state, so the checker
 *            samples the instruction and tests one cycle later
 *            against registered previous values;
 *  - edge:   the expression is over post state and is tied to
 *            specific instructions;
 *  - always: the expression is over post state and holds at
 *            (almost) every program point;
 *  - delta:  bounded-update template, provided for completeness.
 */

#ifndef SCIFINDER_MONITOR_ASSERTION_HH
#define SCIFINDER_MONITOR_ASSERTION_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "expr/compile.hh"
#include "expr/fused.hh"
#include "invgen/invgen.hh"
#include "trace/record.hh"

namespace scif::monitor {

/** OVL assertion templates (§4.2). */
enum class Template { Always, Edge, Next, Delta };

/** @return printable template name. */
std::string_view templateName(Template t);

/** One synthesizable assertion. */
struct Assertion
{
    std::string name;        ///< e.g. "a12_sr_restore"
    Template kind;
    /** The enforced expression (representative member). */
    expr::Invariant representative;
    /** Every (point, expression) instance folded into it. */
    std::vector<expr::Invariant> members;

    /** Number of distinct program points covered. */
    size_t pointCount() const;
};

/**
 * Synthesize assertions from invariants: members sharing an
 * expression merge into one assertion over a point set.
 *
 * @param set the invariant model.
 * @param indices the SCI to enforce.
 */
std::vector<Assertion> synthesize(const invgen::InvariantSet &set,
                                  const std::vector<size_t> &indices);

/** One assertion firing. */
struct FiredEvent
{
    size_t assertion;       ///< index into assertions()
    uint64_t recordIndex;   ///< retirement index
    trace::Point point;     ///< where it fired
};

/**
 * An assertion set with every member expression compiled to its flat
 * register-machine program, plus the point-dispatch index derived
 * from the members. Immutable after construction, so one instance is
 * safely shared — without copies — between a sequential
 * AssertionMonitor and every worker shard of a monitor::CheckService.
 */
class CompiledAssertionSet
{
  public:
    explicit CompiledAssertionSet(std::vector<Assertion> assertions);

    const std::vector<Assertion> &assertions() const
    {
        return assertions_;
    }

    /** Compiled program for assertions()[ai].members[mi]. */
    const expr::CompiledInvariant &compiled(size_t ai, size_t mi) const
    {
        return compiled_[ai][mi];
    }

    /**
     * Members enforced at a point, as (assertion, member) pairs in
     * ascending lexicographic order — the order the sequential
     * monitor fires them in. Null when nothing watches the point.
     */
    const std::vector<std::pair<size_t, size_t>> *
    membersAt(uint16_t pointId) const
    {
        auto it = index_.find(pointId);
        return it == index_.end() ? nullptr : &it->second;
    }

    /** Every watched point id (columnar batch filter). */
    const std::set<uint16_t> &points() const { return points_; }

    /** Union of value slots read by any member program. */
    const std::vector<uint16_t> &slots() const { return slots_; }

    /** Total member count across all assertions. */
    size_t memberCount() const { return memberCount_; }

    /**
     * The point's enforced members as one fused batch program —
     * member m is membersAt(pointId)[m] — or null when fused
     * evaluation (expr::fusedEvalDefault()) was off at construction.
     * Its masks are bit-identical to the per-member evalMask()
     * output, so a columnar batch sweep reduces to the same firings.
     */
    const expr::FusedProgram *fusedAt(uint16_t pointId) const
    {
        auto it = fused_.find(pointId);
        return it == fused_.end() ? nullptr : &it->second;
    }

  private:
    std::vector<Assertion> assertions_;
    /** Compiled member programs, parallel to assertions_[i].members. */
    std::vector<std::vector<expr::CompiledInvariant>> compiled_;
    /** point id -> list of (assertion index, member index). */
    std::map<uint16_t, std::vector<std::pair<size_t, size_t>>> index_;
    std::set<uint16_t> points_;
    std::vector<uint16_t> slots_;
    /** point id -> fused member program (when enabled). */
    std::map<uint16_t, expr::FusedProgram> fused_;
    size_t memberCount_ = 0;
};

/**
 * The execution monitor: attach as a trace sink and it evaluates
 * every enforced assertion at each instruction boundary, recording
 * firings (it does not halt the processor; what a system does on a
 * firing is a design choice the paper leaves open).
 *
 * Member expressions are compiled once at construction; the per-
 * record check runs the flat register-machine program rather than
 * walking the Operand tree (the interpreted path remains the oracle
 * pinned by the differential tests).
 */
class AssertionMonitor : public trace::TraceSink
{
  public:
    explicit AssertionMonitor(std::vector<Assertion> assertions);
    /** Share an already-compiled set (no recompilation). */
    explicit AssertionMonitor(
        std::shared_ptr<const CompiledAssertionSet> set);

    void record(const trace::Record &rec) override;

    const std::vector<Assertion> &assertions() const
    {
        return set_->assertions();
    }
    const std::shared_ptr<const CompiledAssertionSet> &set() const
    {
        return set_;
    }
    const std::vector<FiredEvent> &fired() const { return fired_; }
    bool anyFired() const { return !fired_.empty(); }

    /** Distinct assertions that fired at least once. */
    std::vector<size_t> firedAssertions() const;

    /** Forget recorded firings (assertions stay armed). */
    void clearFirings();

  private:
    std::shared_ptr<const CompiledAssertionSet> set_;
    std::vector<FiredEvent> fired_;
};

} // namespace scif::monitor

#endif // SCIFINDER_MONITOR_ASSERTION_HH

#include "overhead.hh"

#include <set>

namespace scif::monitor {

namespace {

/** LUT cost of evaluating one operand (6-input LUT estimates). */
size_t
operandLuts(const expr::Operand &o)
{
    if (o.isConst)
        return 0;
    size_t luts = 0;
    if (o.op2 == expr::Op2::Add || o.op2 == expr::Op2::Sub)
        luts += 16; // 32-bit carry chain
    else if (o.op2 != expr::Op2::None)
        luts += 8; // bitwise combine
    if (o.negate)
        luts += 0; // folds into downstream LUTs
    if (o.mulImm != 1)
        luts += 10; // constant shift-add network
    if (o.modImm != 0)
        luts += 0; // power-of-two moduli: wiring only
    if (o.addImm != 0)
        luts += 8; // constant adder, half carry chain
    return luts;
}

/** Distinct orig() variables needing a history register. */
size_t
historyRegisters(const Assertion &a)
{
    std::set<uint16_t> vars;
    auto scan = [&vars](const expr::Operand &o) {
        for (const auto &ref : o.vars()) {
            if (ref.orig)
                vars.insert(ref.var);
        }
    };
    scan(a.representative.lhs);
    if (a.representative.op != expr::CmpOp::In)
        scan(a.representative.rhs);
    return vars.size();
}

} // namespace

size_t
assertionLuts(const Assertion &assertion)
{
    const expr::Invariant &inv = assertion.representative;
    size_t luts = 0;

    // Instruction-decode match. `always` templates need none; point
    // sets reuse the decoder's one-hot signals through a small OR
    // tree (4 inputs per 6-LUT).
    if (assertion.kind != Template::Always)
        luts += 2 + (assertion.pointCount() + 3) / 4;

    // The comparison itself.
    switch (inv.op) {
      case expr::CmpOp::Eq:
      case expr::CmpOp::Ne:
        luts += 8; // 32-bit equality tree of 6-LUTs
        break;
      case expr::CmpOp::In:
        luts += 8 * inv.set.size();
        break;
      default:
        luts += 12; // magnitude comparator
        break;
    }

    luts += operandLuts(inv.lhs);
    if (inv.op != expr::CmpOp::In)
        luts += operandLuts(inv.rhs);

    // History registers: 32 FFs fold into existing LUT-FF pairs; the
    // sampling enable adds a little control logic.
    luts += historyRegisters(assertion) * 6;

    return luts;
}

Overhead
estimateOverhead(const std::vector<Assertion> &assertions,
                 const Baseline &baseline)
{
    Overhead o;
    o.assertions = assertions.size();
    for (const auto &a : assertions) {
        o.luts += assertionLuts(a);
        o.historyRegs += historyRegisters(a);
    }
    o.logicPct = 100.0 * double(o.luts) / baseline.luts;
    // Checker logic has a low switching activity relative to the
    // datapath; the paper's ratios (1.6% logic -> 0.13% power) imply
    // an effective activity factor of about 0.08.
    o.powerPct = o.logicPct * 0.08;
    o.delayPct = 0.0;
    return o;
}

} // namespace scif::monitor

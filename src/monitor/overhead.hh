/**
 * @file
 * Analytic hardware-cost model for synthesized assertions (paper
 * Table 9).
 *
 * The paper synthesizes its assertions into the OR1200 on a Xilinx
 * xupv5-lx110t and reports logic, power, and delay overhead against
 * the published baseline (10073 LUTs, 3.24 W, 19.1 ns). We replace
 * synthesis with a structural cost model: each assertion costs LUTs
 * for its instruction-decode match, comparators, and arithmetic, and
 * flip-flop pairs for the history registers `next`-template
 * assertions need (§4.2: "we need to store the previous cycle value
 * of ESR0"). Power scales with the added-logic fraction at a low
 * activity factor (checkers toggle rarely), and the checkers sit off
 * the critical path, so delay overhead is zero — the shape Table 9
 * reports.
 */

#ifndef SCIFINDER_MONITOR_OVERHEAD_HH
#define SCIFINDER_MONITOR_OVERHEAD_HH

#include "monitor/assertion.hh"

namespace scif::monitor {

/** Published OR1200 SoC baseline (Table 9). */
struct Baseline
{
    double luts = 10073;
    double powerWatts = 3.24;
    double delayNs = 19.1;
};

/** Estimated cost of an assertion set. */
struct Overhead
{
    size_t assertions = 0;
    size_t luts = 0;           ///< added logic
    size_t historyRegs = 0;    ///< 32-bit previous-value registers
    double logicPct = 0;       ///< added LUTs / baseline LUTs
    double powerPct = 0;
    double delayPct = 0;       ///< always 0: off the critical path
};

/** Estimate LUT cost of a single assertion. */
size_t assertionLuts(const Assertion &assertion);

/**
 * Estimate the overhead of enforcing @p assertions on the baseline
 * system.
 */
Overhead estimateOverhead(const std::vector<Assertion> &assertions,
                          const Baseline &baseline = Baseline());

} // namespace scif::monitor

#endif // SCIFINDER_MONITOR_OVERHEAD_HH

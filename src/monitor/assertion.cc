#include "assertion.hh"

#include <algorithm>
#include <set>

#include "lint.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::monitor {

std::string_view
templateName(Template t)
{
    switch (t) {
      case Template::Always: return "always";
      case Template::Edge: return "edge";
      case Template::Next: return "next";
      case Template::Delta: return "delta";
    }
    return "?";
}

size_t
Assertion::pointCount() const
{
    std::set<uint16_t> points;
    for (const auto &m : members)
        points.insert(m.point.id());
    return points.size();
}

namespace {

/** Does the expression reference orig() state? */
bool
usesOrig(const expr::Invariant &inv)
{
    for (const auto &ref : inv.lhs.vars()) {
        if (ref.orig)
            return true;
    }
    if (inv.op != expr::CmpOp::In) {
        for (const auto &ref : inv.rhs.vars()) {
            if (ref.orig)
                return true;
        }
    }
    return false;
}

} // namespace

std::vector<Assertion>
synthesize(const invgen::InvariantSet &set,
           const std::vector<size_t> &indices)
{
    // Group members by exact expression (constants included: the
    // enforced proposition must be identical).
    std::map<std::string, std::vector<size_t>> groups;
    std::vector<expr::Invariant> lintees;
    for (size_t idx : indices) {
        groups[set.all()[idx].exprKey()].push_back(idx);
        lintees.push_back(set.all()[idx]);
    }
    reportLint(lintees);

    std::vector<Assertion> out;
    size_t counter = 0;
    for (const auto &[exprKey, members] : groups) {
        Assertion a;
        a.representative = set.all()[members.front()];
        for (size_t idx : members)
            a.members.push_back(set.all()[idx]);

        if (usesOrig(a.representative))
            a.kind = Template::Next;
        else if (a.pointCount() > 30)
            a.kind = Template::Always;
        else
            a.kind = Template::Edge;

        a.name = format("a%zu", counter++);
        out.push_back(std::move(a));
    }
    return out;
}

CompiledAssertionSet::CompiledAssertionSet(
    std::vector<Assertion> assertions)
    : assertions_(std::move(assertions))
{
    std::set<uint16_t> slotSet;
    compiled_.resize(assertions_.size());
    for (size_t ai = 0; ai < assertions_.size(); ++ai) {
        const auto &members = assertions_[ai].members;
        compiled_[ai].reserve(members.size());
        for (size_t mi = 0; mi < members.size(); ++mi) {
            index_[members[mi].point.id()].push_back({ai, mi});
            points_.insert(members[mi].point.id());
            compiled_[ai].push_back(
                expr::CompiledInvariant::compile(members[mi]));
            for (uint16_t slot : compiled_[ai].back().slots())
                slotSet.insert(slot);
            ++memberCount_;
        }
    }
    slots_.assign(slotSet.begin(), slotSet.end());

    if (expr::fusedEvalDefault()) {
        for (const auto &[pid, members] : index_) {
            expr::FusedProgram &fp = fused_[pid];
            for (const auto &[ai, mi] : members)
                fp.add(compiled_[ai][mi]);
            fp.seal();
        }
    }
}

AssertionMonitor::AssertionMonitor(std::vector<Assertion> assertions)
    : set_(std::make_shared<const CompiledAssertionSet>(
          std::move(assertions)))
{}

AssertionMonitor::AssertionMonitor(
    std::shared_ptr<const CompiledAssertionSet> set)
    : set_(std::move(set))
{}

void
AssertionMonitor::record(const trace::Record &rec)
{
    const auto *members = set_->membersAt(rec.point.id());
    if (!members)
        return;
    for (const auto &[ai, mi] : *members) {
        if (!set_->compiled(ai, mi).holdsRecord(rec))
            fired_.push_back(FiredEvent{ai, rec.index, rec.point});
    }
}

std::vector<size_t>
AssertionMonitor::firedAssertions() const
{
    std::set<size_t> seen;
    for (const auto &e : fired_)
        seen.insert(e.assertion);
    return std::vector<size_t>(seen.begin(), seen.end());
}

void
AssertionMonitor::clearFirings()
{
    fired_.clear();
}

} // namespace scif::monitor

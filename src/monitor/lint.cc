#include "lint.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::monitor {

std::string
LintFinding::message() const
{
    using analysis::Verdict;
    switch (cls.verdict) {
      case Verdict::Contradiction:
        return format("assertion can never hold (%s): %s",
                      cls.structural ? "contradiction"
                                     : "contradicts ISA promises",
                      invariant.c_str());
      case Verdict::Tautology:
        return format("vacuous assertion (tautology): %s",
                      invariant.c_str());
      case Verdict::IsaImplied:
        return format(
            "vacuous assertion (structurally ISA-implied): %s",
            invariant.c_str());
      case Verdict::Contingent:
        break;
    }
    return {};
}

std::vector<LintFinding>
lintAssertionSet(const std::vector<expr::Invariant> &invs)
{
    std::vector<LintFinding> findings;
    for (const expr::Invariant &inv : invs) {
        analysis::Classification cls = analysis::classify(inv);
        bool defective =
            cls.verdict == analysis::Verdict::Contradiction ||
            cls.removable();
        if (defective)
            findings.push_back({inv.str(), cls});
    }
    return findings;
}

void
reportLint(const std::vector<expr::Invariant> &invs)
{
    for (const LintFinding &f : lintAssertionSet(invs))
        warn("assertion lint: %s", f.message().c_str());
}

} // namespace scif::monitor

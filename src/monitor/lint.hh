/**
 * @file
 * Pre-synthesis assertion lint.
 *
 * Before invariants are translated into OVL assertion templates, the
 * abstract-interpretation analyzer (src/analysis/) screens them for
 * two defects a synthesized checker should never carry:
 *
 *  - vacuity: the expression is a tautology or is implied by
 *    structural trace-layer facts, so the assertion can never fire
 *    and only burns monitor area (Table 9 overhead);
 *  - contradiction: the expression is false for every consistent
 *    valuation, so the assertion fires on every occurrence of its
 *    program point and is unusable as a checker.
 *
 * The lint warns and reports; it never drops an assertion itself —
 * removal policy belongs to the optimizer's VR pass.
 */

#ifndef SCIFINDER_MONITOR_LINT_HH
#define SCIFINDER_MONITOR_LINT_HH

#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "expr/expr.hh"

namespace scif::monitor {

/** One lint diagnostic for an invariant headed into synthesis. */
struct LintFinding
{
    std::string invariant;   ///< Invariant::str()
    analysis::Classification cls;

    /** Human-readable one-line diagnostic. */
    std::string message() const;
};

/**
 * Screen @p invs for vacuous and contradictory expressions.
 * Architecturally ISA-implied invariants are not flagged: enforcing
 * ISA promises is the point of dynamic verification.
 *
 * @return one finding per defective invariant, in input order.
 */
std::vector<LintFinding>
lintAssertionSet(const std::vector<expr::Invariant> &invs);

/** Run the lint and warn() each finding (silenced by setQuiet). */
void reportLint(const std::vector<expr::Invariant> &invs);

} // namespace scif::monitor

#endif // SCIFINDER_MONITOR_LINT_HH

/**
 * @file
 * The checking service: concurrent multi-session SCI enforcement.
 *
 * The sequential AssertionMonitor checks one finished trace in one
 * thread. A CheckService is the always-on deployment shape of the
 * same checker (SPECS-style dynamic verification, paper §2, §4.2):
 * many client *sessions* — one per workload replay, fuzz seed, or
 * stored trace stream — feed retirement events concurrently, and the
 * service enforces the full deployed assertion set on every stream.
 *
 * Architecture (DESIGN.md §13):
 *  - every session is pinned to one of N worker *shards*
 *    (`session id % shards`), each shard owning a bounded MPSC
 *    ingestion queue of micro-batches; a full queue blocks the
 *    producer (backpressure), so memory stays bounded;
 *  - clients stage records into per-session micro-batches of
 *    `batchRecords` events, so queue traffic is thousands of
 *    operations per second, not millions;
 *  - the shard worker transposes each micro-batch into columnar
 *    matrices (trace/columns) restricted to the watched points and
 *    the slot union of the deployed set, and sweeps the compiled
 *    register-machine kernels (expr/compile) over the columns; tiny
 *    batches take the scalar holdsRecord path instead.
 *
 * Determinism: a session's events are checked in stream order by
 * exactly one worker (queues are FIFO, one consumer per shard), and
 * the per-batch columnar sweep reduces firings back to the sequential
 * order (record position, then (assertion, member) ascending) — so a
 * SessionReport is byte-identical to the sequential AssertionMonitor
 * on the same stream, for any shard count. tests/service_test.cc
 * pins this.
 */

#ifndef SCIFINDER_MONITOR_SERVICE_HH
#define SCIFINDER_MONITOR_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stage.hh"
#include "monitor/assertion.hh"
#include "support/mpscqueue.hh"
#include "trace/record.hh"

namespace scif::monitor {

/** Tuning knobs of a CheckService. */
struct ServiceConfig
{
    /** Worker shards; 0 = one per hardware thread. */
    size_t shards = 1;
    /** Per-shard ingestion queue bound, in micro-batches. */
    size_t queueBatches = 64;
    /** Micro-batch size, in records. */
    size_t batchRecords = 256;
    /** Batches smaller than this take the scalar kernel path. */
    size_t scalarBelow = 32;
};

/**
 * What one session observed: per-assertion firing counts plus the
 * first violation in stream order. Produced identically by the
 * service and by sequentialReport() over an AssertionMonitor.
 */
struct SessionReport
{
    std::string session;
    uint64_t events = 0;
    uint64_t firings = 0;
    /** Firing count per deployed assertion (parallel to the set). */
    std::vector<uint64_t> perAssertion;
    bool hasFirst = false;
    FiredEvent first{}; ///< valid only when hasFirst

    /** Canonical text form — the byte-identical artifact tests pin. */
    std::string render(const std::vector<Assertion> &assertions) const;
};

/** Build the report the sequential monitor implies for a stream. */
SessionReport sequentialReport(std::string session,
                               const AssertionMonitor &monitor,
                               uint64_t events);

/** Telemetry of one worker shard. */
struct ShardTelemetry
{
    uint64_t batches = 0;
    uint64_t events = 0;
    uint64_t maxBatchRecords = 0;
    uint64_t queueHighWater = 0; ///< deepest queue depth, in batches
    double busySeconds = 0;      ///< time spent checking batches
};

/** Aggregate service telemetry. */
struct ServiceTelemetry
{
    uint64_t sessionsOpened = 0;
    uint64_t sessionsClosed = 0;
    uint64_t events = 0;
    uint64_t batches = 0;
    uint64_t firings = 0;
    double elapsedSeconds = 0; ///< wall clock since construction
    double eventsPerSecond = 0;
    std::vector<ShardTelemetry> shards;
};

/**
 * The long-running checking engine. Thread-safety contract: open(),
 * close() and post() on *different* sessions may run concurrently
 * from any threads; a single session is fed by one client thread at
 * a time (its staging buffer is not locked). All sessions must be
 * closed before the service is destroyed.
 */
class CheckService
{
  public:
    using SessionId = uint64_t;

    CheckService(std::shared_ptr<const CompiledAssertionSet> set,
                 ServiceConfig config = {});
    explicit CheckService(std::vector<Assertion> assertions,
                          ServiceConfig config = {});
    ~CheckService();

    CheckService(const CheckService &) = delete;
    CheckService &operator=(const CheckService &) = delete;

    const CompiledAssertionSet &set() const { return *set_; }
    size_t shards() const { return shards_.size(); }
    const ServiceConfig &config() const { return config_; }

    /** Start a session; the name keys its report. */
    SessionId open(std::string name);

    /** Feed one event into a session (staged, batched internally). */
    void post(SessionId id, const trace::Record &rec);

    /** Feed a run of events into a session. */
    void post(SessionId id, const trace::Record *recs, size_t n);

    /**
     * Finish a session: flush its staging batch, wait until the
     * owning shard has checked everything, and return the report.
     */
    SessionReport close(SessionId id);

    /** Convenience: run one whole trace as a session. */
    SessionReport check(const std::string &name,
                        const trace::TraceBuffer &trace);

    ServiceTelemetry telemetry() const;

    /** Telemetry rendered as pipeline stage counters. */
    std::vector<core::StageStats> stageStats() const;

    /** Stop the workers (idempotent; implied by destruction). */
    void shutdown();

  private:
    struct Session;
    struct Batch
    {
        Session *session = nullptr;
        trace::TraceBuffer recs;
        bool last = false;
    };
    struct Shard;

    Session *find(SessionId id) const;
    void flush(Session &s, bool last);
    void workerLoop(size_t shardIndex);
    void processBatch(Session &s, const trace::TraceBuffer &batch);

    std::shared_ptr<const CompiledAssertionSet> set_;
    const ServiceConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex sessionsMutex_;
    std::map<SessionId, std::unique_ptr<Session>> sessions_;
    SessionId nextId_ = 0;

    std::atomic<uint64_t> opened_{0};
    std::atomic<uint64_t> closed_{0};
    std::atomic<uint64_t> firings_{0};
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
};

/**
 * TraceSink adapter: attach a service session directly to a live
 * simulation so retirement events stream into the checker as the
 * processor runs.
 */
class SessionSink : public trace::TraceSink
{
  public:
    SessionSink(CheckService &service, std::string name)
        : service_(service), id_(service.open(std::move(name)))
    {}

    void record(const trace::Record &rec) override
    {
        service_.post(id_, rec);
    }

    /** Finish the session and fetch its report. */
    SessionReport close() { return service_.close(id_); }

  private:
    CheckService &service_;
    CheckService::SessionId id_;
};

} // namespace scif::monitor

#endif // SCIFINDER_MONITOR_SERVICE_HH

#include "service.hh"

#include <algorithm>
#include <cassert>

#include "support/strings.hh"
#include "trace/columns.hh"

namespace scif::monitor {

std::string
SessionReport::render(const std::vector<Assertion> &assertions) const
{
    std::string out =
        format("session %s: %llu events, ", session.c_str(),
               (unsigned long long)events);
    if (firings == 0)
        return out + "clean\n";
    out += format("%llu firings\n", (unsigned long long)firings);
    if (hasFirst) {
        const Assertion &a = assertions[first.assertion];
        out += format("  first: %s (%s) at record %llu point %s\n",
                      a.name.c_str(),
                      std::string(templateName(a.kind)).c_str(),
                      (unsigned long long)first.recordIndex,
                      first.point.name().c_str());
    }
    for (size_t ai = 0; ai < perAssertion.size(); ++ai) {
        if (perAssertion[ai]) {
            out += format("  %s: %llu\n", assertions[ai].name.c_str(),
                          (unsigned long long)perAssertion[ai]);
        }
    }
    return out;
}

SessionReport
sequentialReport(std::string session, const AssertionMonitor &monitor,
                 uint64_t events)
{
    SessionReport r;
    r.session = std::move(session);
    r.events = events;
    r.perAssertion.assign(monitor.assertions().size(), 0);
    for (const auto &e : monitor.fired()) {
        ++r.perAssertion[e.assertion];
        ++r.firings;
        if (!r.hasFirst) {
            r.first = e;
            r.hasFirst = true;
        }
    }
    return r;
}

/**
 * One client session. The staging buffer belongs to the client
 * thread; report and firstKey belong to the owning shard worker
 * until the final batch completes and done is fulfilled.
 */
struct CheckService::Session
{
    SessionId id = 0;
    size_t shard = 0;
    trace::TraceBuffer staging;
    SessionReport report;
    std::promise<void> done;
    std::future<void> doneFuture;
};

struct CheckService::Shard
{
    explicit Shard(size_t queueBatches) : queue(queueBatches) {}

    support::BoundedMpscQueue<Batch> queue;
    std::thread worker;
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> events{0};
    std::atomic<uint64_t> maxBatchRecords{0};
    std::atomic<uint64_t> busyNanos{0};
};

CheckService::CheckService(
    std::shared_ptr<const CompiledAssertionSet> set,
    ServiceConfig config)
    : set_(std::move(set)), config_(config),
      start_(std::chrono::steady_clock::now())
{
    size_t n = config_.shards;
    if (n == 0)
        n = std::max(1u, std::thread::hardware_concurrency());
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        shards_.push_back(
            std::make_unique<Shard>(std::max<size_t>(1,
                                        config_.queueBatches)));
    }
    for (size_t i = 0; i < n; ++i)
        shards_[i]->worker = std::thread([this, i] { workerLoop(i); });
}

CheckService::CheckService(std::vector<Assertion> assertions,
                           ServiceConfig config)
    : CheckService(std::make_shared<const CompiledAssertionSet>(
                       std::move(assertions)),
                   config)
{}

CheckService::~CheckService()
{
    shutdown();
}

void
CheckService::shutdown()
{
    if (stopped_)
        return;
    stopped_ = true;
    for (auto &sh : shards_)
        sh->queue.close();
    for (auto &sh : shards_) {
        if (sh->worker.joinable())
            sh->worker.join();
    }
}

CheckService::SessionId
CheckService::open(std::string name)
{
    auto s = std::make_unique<Session>();
    s->report.session = std::move(name);
    s->report.perAssertion.assign(set_->assertions().size(), 0);
    s->staging.reserve(config_.batchRecords);
    s->doneFuture = s->done.get_future();
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    s->id = nextId_++;
    s->shard = s->id % shards_.size();
    SessionId id = s->id;
    sessions_.emplace(id, std::move(s));
    opened_.fetch_add(1, std::memory_order_relaxed);
    return id;
}

CheckService::Session *
CheckService::find(SessionId id) const
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    auto it = sessions_.find(id);
    assert(it != sessions_.end() && "unknown or closed session");
    return it->second.get();
}

void
CheckService::flush(Session &s, bool last)
{
    if (s.staging.size() == 0 && !last)
        return;
    Batch b;
    b.session = &s;
    b.recs = std::move(s.staging);
    b.last = last;
    s.staging.clear();
    s.staging.reserve(config_.batchRecords);
    shards_[s.shard]->queue.push(std::move(b));
}

void
CheckService::post(SessionId id, const trace::Record &rec)
{
    Session *s = find(id);
    s->staging.record(rec);
    if (s->staging.size() >= config_.batchRecords)
        flush(*s, false);
}

void
CheckService::post(SessionId id, const trace::Record *recs, size_t n)
{
    Session *s = find(id);
    for (size_t i = 0; i < n; ++i) {
        s->staging.record(recs[i]);
        if (s->staging.size() >= config_.batchRecords)
            flush(*s, false);
    }
}

SessionReport
CheckService::close(SessionId id)
{
    Session *s = find(id);
    flush(*s, true);
    s->doneFuture.wait();
    SessionReport report = std::move(s->report);
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        sessions_.erase(id);
    }
    closed_.fetch_add(1, std::memory_order_relaxed);
    return report;
}

SessionReport
CheckService::check(const std::string &name,
                    const trace::TraceBuffer &trace)
{
    SessionId id = open(name);
    const auto &recs = trace.records();
    if (!recs.empty())
        post(id, recs.data(), recs.size());
    return close(id);
}

void
CheckService::workerLoop(size_t shardIndex)
{
    Shard &sh = *shards_[shardIndex];
    Batch b;
    while (sh.queue.pop(b)) {
        auto t0 = std::chrono::steady_clock::now();
        processBatch(*b.session, b.recs);
        auto t1 = std::chrono::steady_clock::now();
        sh.busyNanos.fetch_add(
            uint64_t(std::chrono::duration_cast<
                         std::chrono::nanoseconds>(t1 - t0)
                         .count()),
            std::memory_order_relaxed);
        sh.batches.fetch_add(1, std::memory_order_relaxed);
        sh.events.fetch_add(b.recs.size(), std::memory_order_relaxed);
        uint64_t prev =
            sh.maxBatchRecords.load(std::memory_order_relaxed);
        while (prev < b.recs.size() &&
               !sh.maxBatchRecords.compare_exchange_weak(
                   prev, b.recs.size(), std::memory_order_relaxed)) {
        }
        if (b.last)
            b.session->done.set_value();
        b = Batch{};
    }
}

void
CheckService::processBatch(Session &s, const trace::TraceBuffer &batch)
{
    const std::vector<trace::Record> &recs = batch.records();
    SessionReport &r = s.report;
    r.events += recs.size();
    if (recs.empty() || set_->points().empty())
        return;

    uint64_t batchFirings = 0;

    // Tiny batches (and sets with no value columns to materialize)
    // take the scalar path — it is the reference order by
    // construction, so the columnar path below only has to reduce
    // back to it.
    if (recs.size() < config_.scalarBelow || set_->slots().empty()) {
        for (const auto &rec : recs) {
            const auto *members = set_->membersAt(rec.point.id());
            if (!members)
                continue;
            for (const auto &[ai, mi] : *members) {
                if (!set_->compiled(ai, mi).holdsRecord(rec)) {
                    ++r.perAssertion[ai];
                    ++r.firings;
                    ++batchFirings;
                    if (!r.hasFirst) {
                        r.hasFirst = true;
                        r.first = FiredEvent{ai, rec.index, rec.point};
                    }
                }
            }
        }
        firings_.fetch_add(batchFirings, std::memory_order_relaxed);
        return;
    }

    // Columnar path. Row i of a point's matrix is the i-th batch
    // record observed at that point, so one linear scan recovers the
    // row -> batch position mapping.
    std::map<uint16_t, std::vector<uint32_t>> positions;
    bool anyWatched = false;
    for (size_t i = 0; i < recs.size(); ++i) {
        uint16_t pid = recs[i].point.id();
        if (set_->membersAt(pid)) {
            positions[pid].push_back(uint32_t(i));
            anyWatched = true;
        }
    }
    if (!anyWatched)
        return;

    auto cols = trace::ColumnSet::build(batch, set_->slots(),
                                        &set_->points());

    // First-firing candidate: min (batch position, assertion,
    // member) — exactly the first event the sequential record-order
    // scan would have pushed.
    bool haveCand = false;
    size_t candPos = 0, candAi = 0, candMi = 0;

    std::vector<uint8_t> mask;
    for (auto &pc : cols.points()) {
        const auto &rows = positions[pc.point().id()];
        const auto *members = set_->membersAt(pc.point().id());
        // With a fused program the point's matrix is traversed once
        // for every member; the masks are bit-identical to the
        // per-member kernels, so the reduction below — and therefore
        // the report — cannot tell the difference.
        const expr::FusedProgram *fp =
            set_->fusedAt(pc.point().id());
        if (fp != nullptr) {
            mask.resize(members->size() * pc.rows());
            fp->evalMasks(pc, 0, pc.rows(), mask.data(), pc.rows());
        }
        for (size_t m = 0; m < members->size(); ++m) {
            const auto &[ai, mi] = (*members)[m];
            const uint8_t *memberMask;
            if (fp != nullptr) {
                memberMask = mask.data() + m * pc.rows();
            } else {
                mask.resize(pc.rows());
                set_->compiled(ai, mi).evalMask(pc, 0, pc.rows(),
                                                mask.data());
                memberMask = mask.data();
            }
            for (size_t row = 0; row < rows.size(); ++row) {
                if (memberMask[row])
                    continue;
                ++r.perAssertion[ai];
                ++r.firings;
                ++batchFirings;
                size_t pos = rows[row];
                if (!haveCand ||
                    std::tie(pos, ai, mi) <
                        std::tie(candPos, candAi, candMi)) {
                    haveCand = true;
                    candPos = pos;
                    candAi = ai;
                    candMi = mi;
                }
            }
        }
    }
    if (haveCand && !r.hasFirst) {
        const trace::Record &rec = recs[candPos];
        r.hasFirst = true;
        r.first = FiredEvent{candAi, rec.index, rec.point};
    }
    firings_.fetch_add(batchFirings, std::memory_order_relaxed);
}

ServiceTelemetry
CheckService::telemetry() const
{
    ServiceTelemetry t;
    t.sessionsOpened = opened_.load(std::memory_order_relaxed);
    t.sessionsClosed = closed_.load(std::memory_order_relaxed);
    t.firings = firings_.load(std::memory_order_relaxed);
    for (const auto &sh : shards_) {
        ShardTelemetry st;
        st.batches = sh->batches.load(std::memory_order_relaxed);
        st.events = sh->events.load(std::memory_order_relaxed);
        st.maxBatchRecords =
            sh->maxBatchRecords.load(std::memory_order_relaxed);
        st.queueHighWater = sh->queue.highWater();
        st.busySeconds =
            double(sh->busyNanos.load(std::memory_order_relaxed)) *
            1e-9;
        t.events += st.events;
        t.batches += st.batches;
        t.shards.push_back(st);
    }
    t.elapsedSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
    if (t.elapsedSeconds > 0)
        t.eventsPerSecond = double(t.events) / t.elapsedSeconds;
    return t;
}

std::vector<core::StageStats>
CheckService::stageStats() const
{
    ServiceTelemetry t = telemetry();
    std::vector<core::StageStats> out;
    core::StageStats total;
    total.name = "monitor.serve";
    total.seconds = t.elapsedSeconds;
    total.itemsIn = t.events;
    total.itemsOut = t.firings;
    total.maxRssKb = support::peakRssKb();
    out.push_back(total);
    for (size_t i = 0; i < t.shards.size(); ++i) {
        core::StageStats s;
        s.name = format("monitor.shard%zu", i);
        s.seconds = t.shards[i].busySeconds;
        s.itemsIn = t.shards[i].events;
        s.itemsOut = t.shards[i].batches;
        out.push_back(s);
    }
    return out;
}

} // namespace scif::monitor

#include "registry.hh"

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace scif::bugs {

using cpu::Mutation;

namespace {

/**
 * Standard trigger prologue: skip-style handlers so that triggers
 * survive the exceptions they provoke, on both the clean and the
 * buggy processor. Registers r26/r27 are reserved for handlers,
 * r25/r28/r29 count syscalls/ticks/external interrupts.
 */
const char *triggerHandlers = R"(
    .org 0x200                 ; bus error: halt (unexpected)
        l.nop 0xf
    .org 0x300                 ; data page fault: halt
        l.nop 0xf
    .org 0x400                 ; insn page fault: halt
        l.nop 0xf
    .org 0x500                 ; tick: disable and return
        l.mtspr r0, r0, TTMR
        l.rfe
    .org 0x600                 ; alignment: skip the faulting insn
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe
    .org 0x700                 ; illegal: skip
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe
    .org 0x800                 ; external: acknowledge and return
        l.addi  r29, r29, 1
        l.mtspr r0, r0, PICSR
        l.rfe
    .org 0xb00                 ; range: the op committed, skip
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe
    .org 0xc00                 ; syscall: count and return
        l.addi  r25, r25, 1
        l.rfe
    .org 0xe00                 ; trap: skip
        l.mfspr r26, r0, EPCR0
        l.addi  r26, r26, 4
        l.mtspr r0, r26, EPCR0
        l.rfe
)";

std::string
wrapTrigger(const std::string &body)
{
    return std::string(triggerHandlers) + R"(
    .org 0x100
        l.j attack
        l.nop 0
    .org 0x1000
    attack:
)" + body + R"(
        l.nop 0xf
)";
}

std::vector<Bug>
buildRegistry()
{
    std::vector<Bug> bugs;
    auto add = [&bugs](const std::string &id,
                       const std::string &synopsis,
                       const std::string &source, Mutation mutation,
                       const std::string &body,
                       uint64_t max_insns = 100000) {
        Bug bug;
        bug.id = id;
        bug.synopsis = synopsis;
        bug.source = source;
        bug.mutation = mutation;
        bug.heldOut = id[0] == 'h';
        bug.trigger = wrapTrigger(body);
        bug.config.maxInsns = max_insns;
        bugs.push_back(std::move(bug));
    };

    // ---------------- Table 1: identification bugs ----------------

    add("b1", "l.sys in delay slot will run into infinite loop",
        "OR1200, Bugzilla #33", Mutation::B1_SysDelaySlotEpcr,
        R"(
        l.addi r1, r0, 1
        l.j    b1_cont
        l.sys  0
    b1_cont:
        l.addi r2, r0, 2
        )",
        600);

    add("b2", "l.macrc immediately after l.mac stalls the pipeline",
        "OR1200, Bugtracker #1930", Mutation::B2_MacrcAfterMacStall,
        R"(
        l.addi  r1, r0, 6
        l.addi  r2, r0, 7
        l.mac   r1, r2
        l.macrc r3
        l.add   r4, r3, r1
        )");

    add("b3", "l.extw instructions behave incorrectly",
        "OR1200, Bugzilla #88", Mutation::B3_ExtwWrong,
        R"(
        l.movhi r2, 0x1
        l.ori   r2, r2, 0x2344
        l.extws r3, r2
        l.extwz r4, r2
        l.addi  r5, r0, 0x77
        l.sw    0(r3), r5          ; extw result used as an address
        l.lwz   r6, 0(r4)
        )");

    add("b4", "Delay Slot Exception bit is not implemented in SR",
        "OR1200, Bugzilla #85", Mutation::B4_DsxNotImplemented,
        R"(
        l.ori  r1, r0, 0x4001
        l.j    b4_cont
        l.lwz  r2, 0(r1)           ; alignment fault in delay slot
    b4_cont:
        l.addi r3, r0, 3
        )");

    add("b5", "EPCR on range exception is incorrect",
        "OR1200, Bugzilla #90", Mutation::B5_RangeEpcrWrong,
        R"(
        l.mfspr r3, r0, SR
        l.ori   r3, r3, 0x1000     ; OVE
        l.mtspr r0, r3, SR
        l.movhi r4, 0x7fff
        l.ori   r4, r4, 0xffff
        l.add   r5, r4, r4         ; overflow -> range exception
        l.nop   0
        l.nop   0
        l.nop   0
        )");

    add("b6",
        "Comparison wrong for unsigned inequality with different MSB",
        "OR1200, Bugzilla #51", Mutation::B6_UnsignedCmpMsb,
        R"(
        l.movhi r1, 0x8000         ; MSB set
        l.addi  r2, r0, 1
        l.sfleu r2, r1             ; 1 <= 0x80000000: true
        l.bf    b6_taken
        l.nop   0
        l.addi  r3, r0, 99         ; wrong path
    b6_taken:
        l.sfltu r2, r1
        l.cmov  r4, r1, r2
        )");

    add("b7", "Incorrect unsigned integer less-than compare",
        "OR1200, Bugzilla #76", Mutation::B7_SfltuWrong,
        R"(
        l.addi  r1, r0, -8         ; 0xfffffff8
        l.addi  r2, r0, 2
        l.sfltu r2, r1             ; 2 < 0xfffffff8: true
        l.bf    b7_taken
        l.nop   0
        l.addi  r3, r0, 99
    b7_taken:
        l.cmov  r4, r1, r2
        )");

    add("b8", "Logical error in l.rori instruction",
        "OR1200, Bugzilla #97", Mutation::B8_RoriVector,
        R"(
        l.addi r1, r0, 0xff
        l.rori r2, r1, 4
        l.sys  0                   ; vector corrupted by rori residue
        l.addi r3, r0, 3
        )");

    add("b9", "EPCR on illegal instruction exception is incorrect",
        "OR1200, Mail #01767", Mutation::B9_IllegalEpcrWrong,
        R"(
        l.addi r1, r0, 1
        .word  0xfc000001          ; illegal opcode
        l.nop  0
        l.nop  0
        l.addi r2, r0, 2
        )");

    add("b10", "GPR0 can be assigned", "OR1200, Mail #00007",
        Mutation::B10_Gpr0Writable,
        R"(
        l.addi r0, r0, 5           ; assign GPR0
        l.add  r1, r0, r0
        l.sub  r2, r1, r0
        l.and  r3, r1, r0
        l.or   r4, r1, r0
        l.xor  r5, r1, r0
        l.sfeq r0, r1
        l.muli r6, r0, 3
        l.slli r7, r0, 2
        l.exths r8, r0
        )");

    add("b11", "Incorrect instruction fetched after an LSU stall",
        "OR1200, Bugzilla #101", Mutation::B11_FetchAfterLsuStall,
        R"(
        l.ori  r1, r0, 0x4080      ; address arming the stall window
        l.addi r2, r0, 0x55
        l.sw   0(r1), r2
        l.lwz  r3, 0(r1)
        l.addi r4, r0, 9           ; this fetch is corrupted
        l.addi r5, r0, 10
        )");

    add("b12",
        "l.mtspr instruction to some SPRs in supervisor mode treated "
        "as l.nop",
        "OR1200, Bugzilla #95", Mutation::B12_MtsprDropped,
        R"(
        l.addi  r1, r0, 0x123
        l.mtspr r0, r1, EEAR0
        l.mfspr r2, r0, EEAR0
        l.addi  r3, r0, 0x456
        l.mtspr r0, r3, EPCR0
        l.mfspr r4, r0, EPCR0
        )");

    add("b13", "Call return address failure with large displacement",
        "LEON2, Amtel-errata #2", Mutation::B13_JalLargeDispLr,
        R"(
        l.j     b13_far
        l.nop   0
        .org 0x41000
    b13_far:
        l.jal   b13_func           ; large negative displacement
        l.nop   0
        l.addi  r2, r0, 2
        l.nop   0xf
        .org 0x1100
    b13_func:
        l.addi  r1, r0, 1
        l.jr    r9
        l.nop   0
        )",
        60);

    add("b14",
        "Byte and half-word write to SRAM failure when executing "
        "from SDRAM",
        "LEON2, Amtel-errata #3", Mutation::B14_ByteStoreCorrupt,
        R"(
        l.ori  r1, r0, 0x4000
        l.addi r2, r0, 0x7f
        l.sb   0(r1), r2
        l.lbz  r3, 0(r1)
        l.addi r4, r0, 0x1234
        l.sh   2(r1), r4
        l.lhz  r5, 2(r1)
        )");

    add("b15", "Wrong PC stored during FPU exception trap",
        "LEON2, Amtel-errata #4 (FPU trap modelled as l.trap)",
        Mutation::B15_TrapEpcrWrong,
        R"(
        l.addi r1, r0, 1
        l.trap 0
        l.nop  0
        l.nop  0
        l.addi r2, r0, 2
        )");

    add("b16", "Sign/unsign extend of data alignment in LSU",
        "OpenSPARC T1", Mutation::B16_LoadExtendWrong,
        R"(
        l.ori  r1, r0, 0x4000
        l.addi r2, r0, -54         ; 0xca in the low byte
        l.sb   0(r1), r2
        l.lbs  r3, 0(r1)           ; must sign extend
        l.sh   2(r1), r2
        l.lhs  r4, 2(r1)
        )");

    add("b17", "Overwrite of ldxa-data with subsequent st-data",
        "OpenSPARC T1", Mutation::B17_StoreForwardClobber,
        R"(
        l.ori   r1, r0, 0x5100
        l.movhi r2, 0x1111
        l.ori   r2, r2, 0x2222
        l.sw    0(r1), r2          ; victim data at 0x5100
        l.ori   r3, r0, 0x4100     ; same cache index, different tag
        l.movhi r4, 0xaaaa
        l.ori   r4, r4, 0xbbbb
        l.sw    0(r3), r4          ; store-buffer entry
        l.lwz   r5, 0(r1)          ; aliased load gets forwarded data
        )");

    // ---------------- §5.6: held-out bugs ----------------

    {
        Bug bug;
        bug.id = "h1";
        bug.synopsis = "EPCR corrupted on external interrupt";
        bug.source = "AMD-errata class: interrupt EPC corruption";
        bug.mutation = Mutation::H1_IntrEpcrOff;
        bug.heldOut = true;
        bug.trigger = wrapTrigger(R"(
        l.addi  r3, r0, 1
        l.mtspr r0, r3, PICMR
        l.mfspr r4, r0, SR
        l.ori   r4, r4, 4          ; IEE
        l.mtspr r0, r4, SR
        l.addi  r1, r0, 0
    h1_loop:
        l.addi  r1, r1, 1
        l.sfltsi r1, 40
        l.bf    h1_loop
        l.nop   0
        )");
        bug.config.maxInsns = 100000;
        bug.config.irqSchedule = {{20, 0}};
        bugs.push_back(std::move(bug));
    }

    add("h2", "l.movhi spuriously clears the branch flag",
        "AMD-errata class: flag corruption", Mutation::H2_MovhiClearsFlag,
        R"(
        l.addi  r1, r0, 5
        l.sfeq  r1, r1             ; flag := 1
        l.movhi r2, 0x1234         ; must not touch the flag
        l.bf    h2_ok
        l.nop   0
        l.addi  r3, r0, 99
    h2_ok:
        l.addi  r4, r0, 4
        )");

    add("h3", "Word store drops address bit 2 for negative offsets",
        "AMD-errata class: store address corruption",
        Mutation::H3_StoreAddrBit,
        R"(
        l.ori  r1, r0, 0x4108
        l.addi r2, r0, 0x77
        l.sw   -4(r1), r2          ; address 0x4104
        l.lwz  r3, -4(r1)
        )");

    add("h4", "l.jalr writes LR = PC instead of PC + 8",
        "AMD-errata class: return address corruption",
        Mutation::H4_JalrLrWrong,
        R"(
        l.movhi r1, hi(h4_func)
        l.ori   r1, r1, lo(h4_func)
        l.jalr  r1
        l.nop   0
        l.addi  r2, r0, 2
        l.nop   0xf
    h4_func:
        l.addi  r3, r0, 3
        l.jr    r9
        l.nop   0
        )",
        400);

    add("h5", "l.mfspr from ESR0 returns SR instead",
        "AMD-errata class: SPR read mux error",
        Mutation::H5_MfsprEsrAlias,
        R"(
        l.addi  r1, r0, 0x6aa       ; distinct from any live SR value
        l.mtspr r0, r1, ESR0
        l.mfspr r2, r0, ESR0
        l.add   r3, r2, r2
        )");

    add("h6", "l.rfe restores SR with the fixed-one bit cleared",
        "AMD-errata class: status register corruption",
        Mutation::H6_RfeDropsFo,
        R"(
        l.sys  0                   ; enter and leave the handler
        l.addi r1, r0, 1
        l.sys  0
        l.addi r2, r0, 2
        )");

    add("h7", "l.rfe leaves SM set: privilege fails to de-escalate",
        "AMD-errata class: privilege leak", Mutation::H7_RfeKeepsSm,
        R"(
        l.movhi r3, hi(h7_user)
        l.ori   r3, r3, lo(h7_user)
        l.mtspr r0, r3, EPCR0
        l.mfspr r4, r0, SR
        l.xori  r5, r0, -1
        l.xori  r5, r5, 1
        l.and   r4, r4, r5
        l.mtspr r0, r4, ESR0
        l.rfe                      ; drop to user mode
        .org 0x8000
    h7_user:
        l.addi  r6, r0, 6
        )");

    add("h8", "Loaded word byte-rotated for addresses with bit 6 set",
        "AMD-errata class: load data corruption",
        Mutation::H8_LoadRotated,
        R"(
        l.ori   r1, r0, 0x4040
        l.movhi r2, 0x0102
        l.ori   r2, r2, 0x0304
        l.sw    0(r1), r2
        l.lwz   r3, 0(r1)
        l.add   r4, r3, r3
        )");

    add("h9", "l.sfges result inverted when the operands are equal",
        "AMD-errata class: comparator corner case",
        Mutation::H9_SfgesEqWrong,
        R"(
        l.addi  r1, r0, 17
        l.addi  r2, r0, 17
        l.sfges r1, r2             ; 17 >= 17: true
        l.bf    h9_ok
        l.nop   0
        l.addi  r3, r0, 99
    h9_ok:
        l.addi  r4, r0, 4
        )");

    add("h10", "l.sys stores EPCR = PC of the l.sys itself",
        "AMD-errata class: syscall EPC corruption",
        Mutation::H10_SysEpcrSelf,
        R"(
        l.addi r1, r0, 1
        l.sys  0
        l.addi r2, r0, 2
        )",
        400);

    add("h11", "Set-flag compares also write GPR[cond-code field]",
        "AMD-errata class: stuck register write enable",
        Mutation::H11_CompareClobbersReg,
        R"(
        l.addi r1, r0, 5
        l.sfeq r1, r1              ; cond 0: clobbers GPR0
        l.add  r2, r0, r0
        l.addi r3, r0, 1
        l.sub  r4, r3, r0
        )");

    add("h12",
        "Misaligned halfword loads truncate instead of faulting",
        "AMD-errata class: alignment check dropped",
        Mutation::H12_AlignSuppressed,
        R"(
        l.ori  r1, r0, 0x4001
        l.lhz  r2, 0(r1)           ; must raise alignment
        l.addi r3, r0, 3
        )");

    add("h13", "Prefetch buffer wedges on repeated loads",
        "AMD-errata class: microarchitectural hang",
        Mutation::H13_PrefetchStall,
        R"(
        l.ori  r1, r0, 0x4000
        l.lwz  r2, 0(r1)
        l.lwz  r3, 0(r1)
        l.lwz  r4, 0(r1)
        l.lwz  r5, 0(r1)
        )");

    add("h14", "Store buffer merges adjacent byte stores",
        "AMD-errata class: invisible store coalescing",
        Mutation::H14_StoreMerge,
        R"(
        l.ori  r1, r0, 0x4000
        l.addi r2, r0, 0x11
        l.sb   0(r1), r2
        l.sb   1(r1), r2
        l.lhz  r3, 0(r1)
        )");

    return bugs;
}

} // namespace

const std::vector<Bug> &
all()
{
    static const std::vector<Bug> registry = buildRegistry();
    return registry;
}

const Bug &
byId(const std::string &id)
{
    for (const auto &bug : all()) {
        if (bug.id == id)
            return bug;
    }
    panic("unknown bug '%s'", id.c_str());
}

std::vector<const Bug *>
table1()
{
    std::vector<const Bug *> out;
    for (const auto &bug : all()) {
        if (!bug.heldOut)
            out.push_back(&bug);
    }
    return out;
}

std::vector<const Bug *>
heldOut()
{
    std::vector<const Bug *> out;
    for (const auto &bug : all()) {
        if (bug.heldOut)
            out.push_back(&bug);
    }
    return out;
}

trace::TraceBuffer
runTrigger(const Bug &bug, bool buggy)
{
    cpu::CpuConfig config = bug.config;
    if (buggy)
        config.mutations.add(bug.mutation);
    cpu::Cpu cpu(config);
    cpu.loadProgram(assembler::assembleOrDie(bug.trigger));
    trace::TraceBuffer buffer;
    cpu::RunResult result = cpu.run(&buffer);
    if (!buggy && result.reason != cpu::HaltReason::Halted) {
        panic("clean run of trigger '%s' did not halt (reason %d)",
              bug.id.c_str(), int(result.reason));
    }
    return buffer;
}

TriggerTraces
runTriggers(const Bug &bug, bool interpretedSim)
{
    cpu::CpuConfig config = bug.config;
    cpu::MutationSet buggy = config.mutations;
    buggy.add(bug.mutation);
    config.mutations = buggy;
    config.predecode = !interpretedSim;
    cpu::Cpu cpu(config);

    assembler::Program program = assembler::assembleOrDie(bug.trigger);
    cpu.loadProgram(program);
    TriggerTraces out;
    cpu.run(&out.buggy);

    // Switch to the clean processor on the *same* Cpu. The block
    // cache keys entries by the active mutation set, so the buggy
    // run's blocks stay resident but are never dispatched here. The
    // image is reloaded only if the buggy run dirtied memory;
    // reset() restores everything else a fresh Cpu would have.
    cpu.setMutations(bug.config.mutations);
    if (cpu.memoryDirty()) {
        cpu.loadProgram(program);
    } else {
        cpu.reset();
        cpu.setPc(program.entry);
    }
    cpu::RunResult result = cpu.run(&out.clean);
    if (result.reason != cpu::HaltReason::Halted) {
        panic("clean run of trigger '%s' did not halt (reason %d)",
              bug.id.c_str(), int(result.reason));
    }
    return out;
}

} // namespace scif::bugs

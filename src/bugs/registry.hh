/**
 * @file
 * The security-critical bug registry (paper Table 1 and §5.6).
 *
 * Each entry pairs a reproduced erratum (a simulator mutation, see
 * cpu/mutation.hh) with the trigger program that makes it manifest —
 * the paper's "program written in a mixture of C and assembly that
 * attacks the buggy processor". The b-series are the 17 security
 * errata of Table 1 used to *identify* SCI; the h-series are the 14
 * held-out bugs used only to *test* the final assertion set (§5.6,
 * standing in for the SPECS AMD-errata reproductions).
 */

#ifndef SCIFINDER_BUGS_REGISTRY_HH
#define SCIFINDER_BUGS_REGISTRY_HH

#include <string>
#include <vector>

#include "cpu/cpu.hh"
#include "trace/record.hh"

namespace scif::bugs {

/** One reproduced erratum plus its trigger. */
struct Bug
{
    std::string id;          ///< "b1".."b17", "h1".."h14"
    std::string synopsis;    ///< Table 1 wording
    std::string source;      ///< erratum provenance
    cpu::Mutation mutation;  ///< the injected defect
    bool heldOut;            ///< h-series (never used to identify SCI)
    std::string trigger;     ///< OR1K assembly of the attack program
    cpu::CpuConfig config;   ///< trigger run configuration
};

/** @return all 31 bugs, b-series then h-series. */
const std::vector<Bug> &all();

/** @return bug by id; aborts if unknown. */
const Bug &byId(const std::string &id);

/** @return the 17 identification bugs of Table 1. */
std::vector<const Bug *> table1();

/** @return the 14 held-out bugs of §5.6. */
std::vector<const Bug *> heldOut();

/**
 * Run a bug's trigger program.
 *
 * @param bug the bug.
 * @param buggy true to run on the processor with the defect
 *              injected, false for the clean processor.
 * @return the execution trace.
 */
trace::TraceBuffer runTrigger(const Bug &bug, bool buggy);

/** The buggy/clean trigger trace pair identification diffs. */
struct TriggerTraces
{
    trace::TraceBuffer buggy;
    trace::TraceBuffer clean;
};

/**
 * Run a bug's trigger on the buggy and the clean processor using a
 * single Cpu: the defect is toggled with setMutations() between the
 * runs, so the predecoded block cache keeps both variants resident
 * under their mutation keys. The program is reloaded between runs
 * only if the buggy run dirtied memory. Traces are identical to two
 * runTrigger() calls.
 *
 * @param bug the bug.
 * @param interpretedSim force the interpreted front end (the
 *        differential oracle for the predecoded default).
 */
TriggerTraces runTriggers(const Bug &bug, bool interpretedSim = false);

} // namespace scif::bugs

#endif // SCIFINDER_BUGS_REGISTRY_HH

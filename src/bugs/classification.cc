#include "classification.hh"

#include "support/strings.hh"

namespace scif::bugs {

namespace {

std::vector<CollectedErratum>
buildCatalog()
{
    std::vector<CollectedErratum> cat;
    size_t counter = 0;
    auto add = [&cat, &counter](const std::string &processor,
                                const std::string &source,
                                const std::string &synopsis,
                                ErratumClass judged,
                                const std::string &reproducedAs = "") {
        cat.push_back(CollectedErratum{format("e%zu", ++counter),
                                       processor, source, synopsis,
                                       judged, reproducedAs});
    };
    const auto SEC = ErratumClass::Security;
    const auto FUN = ErratumClass::Functional;

    // ---- the 17 reproduced security errata (Table 1) ----
    add("OR1200", "Bugzilla #33",
        "l.sys in delay slot will run into infinite loop", SEC, "b1");
    add("OR1200", "Bugtracker #1930",
        "l.macrc immediately after l.mac stalls the pipeline", SEC,
        "b2");
    add("OR1200", "Bugzilla #88",
        "l.extw instructions behave incorrectly", SEC, "b3");
    add("OR1200", "Bugzilla #85",
        "Delay Slot Exception bit is not implemented in SR", SEC,
        "b4");
    add("OR1200", "Bugzilla #90",
        "EPCR on range exception is incorrect", SEC, "b5");
    add("OR1200", "Bugzilla #51",
        "Comparison wrong for unsigned inequality with different MSB",
        SEC, "b6");
    add("OR1200", "Bugzilla #76",
        "Incorrect unsigned integer less-than compare", SEC, "b7");
    add("OR1200", "Bugzilla #97",
        "Logical error in l.rori instruction", SEC, "b8");
    add("OR1200", "Mail #01767",
        "EPCR on illegal instruction exception is incorrect", SEC,
        "b9");
    add("OR1200", "Mail #00007", "GPR0 can be assigned", SEC, "b10");
    add("OR1200", "Bugzilla #101",
        "Incorrect instruction fetched after an LSU stall", SEC,
        "b11");
    add("OR1200", "Bugzilla #95",
        "l.mtspr to some SPRs in supervisor mode treated as l.nop",
        SEC, "b12");
    add("LEON2", "Amtel-errata #2",
        "Call return address failure with large displacement", SEC,
        "b13");
    add("LEON2", "Amtel-errata #3",
        "Byte and half-word write to SRAM failure when executing "
        "from SDRAM",
        SEC, "b14");
    add("LEON2", "Amtel-errata #4",
        "Wrong PC stored during FPU exception trap", SEC, "b15");
    add("OpenSPARC-T1", "errata",
        "Sign/unsign extend of data alignment in LSU", SEC, "b16");
    add("OpenSPARC-T1", "errata",
        "Overwrite of load data with subsequent store data", SEC,
        "b17");

    // ---- security-judged but not reproducible (the paper's 8) ----
    add("LEON3", "GRLIB tracker",
        "Privilege check skipped for alternate-space load in a "
        "corner case of the MMU bypass",
        SEC);
    add("LEON3", "GRLIB tracker",
        "Supervisor bit restored from the wrong register window on "
        "nested trap return",
        SEC);
    add("OpenMSP430", "issue tracker",
        "Interrupt vector fetched from unprotected RAM region when "
        "the watchdog fires mid-write",
        SEC);
    add("OpenMSP430", "issue tracker",
        "Status register GIE bit survives an illegal opcode fault",
        SEC);
    add("OpenSPARC-T1", "errata",
        "ASI-privileged register readable during a narrow pipeline "
        "replay window",
        SEC);
    add("LEON2", "Amtel-errata",
        "Cache line lock leaks data across context switch under "
        "freeze mode",
        SEC);
    add("OR1200", "Mail archive",
        "SPR access succeeds one cycle before the supervisor bit "
        "clears on rfe",
        SEC);
    add("LEON3", "GRLIB tracker",
        "Write buffer drains to the wrong address after a store "
        "that faults on the MMU",
        SEC);

    // ---- a representative cross-section of the functional
    //      majority (the bulk of the 185) ----
    add("OR1200", "Bugzilla", "Performance counters overcount "
        "stalled cycles in the icache miss path", FUN);
    add("OR1200", "Bugzilla", "Synthesis warning: latch inferred in "
        "the debug unit mux", FUN);
    add("OR1200", "Mail archive", "Typo in the SPR address comments "
        "of the PIC documentation", FUN);
    add("OR1200", "Bugzilla", "Simulation-only mismatch in the "
        "testbench monitor after reset deassert", FUN);
    add("OR1200", "Bugzilla", "Icache invalidate-all takes one cycle "
        "longer than documented", FUN);
    add("OR1200", "Mail archive", "Makefile misses a dependency for "
        "the generated defines file", FUN);
    add("LEON2", "Amtel-errata", "UART baud-rate divisor rounds "
        "down, off-by-one at high rates", FUN);
    add("LEON2", "Amtel-errata", "Timer prescaler reload delayed one "
        "tick after configuration write", FUN);
    add("LEON2", "tracker", "JTAG TAP state machine needs an extra "
        "TCK to settle in debug mode", FUN);
    add("LEON3", "GRLIB tracker", "Ethernet MAC drops a statistics "
        "increment under back-to-back frames", FUN);
    add("LEON3", "GRLIB tracker", "AHB arbiter fairness degrades "
        "with more than eight masters", FUN);
    add("LEON3", "GRLIB tracker", "Lint cleanup: unused signal in "
        "the cache controller", FUN);
    add("LEON3", "GRLIB tracker", "Division takes 35 cycles instead "
        "of the documented 34", FUN);
    add("OpenSPARC-T1", "errata", "Thermal sensor readout jitters in "
        "the low temperature range", FUN);
    add("OpenSPARC-T1", "errata", "Floating point rounding differs "
        "in a denormal corner accepted by the architecture", FUN);
    add("OpenMSP430", "issue tracker", "GPIO edge-detect misses a "
        "pulse shorter than one clock", FUN);
    add("OpenMSP430", "issue tracker", "Simulator model of the DAC "
        "ignores the enable bit", FUN);
    add("OpenMSP430", "issue tracker", "Documentation lists the "
        "wrong reset value for the clock divider", FUN);
    add("OR1200", "Bugzilla", "Multiplier result forwarded one cycle "
        "late, costing a bubble", FUN);
    add("LEON2", "tracker", "SDRAM refresh counter misconfigured "
        "after deep power down, recovered by init", FUN);

    return cat;
}

} // namespace

const std::vector<CollectedErratum> &
collectedErrata()
{
    static const std::vector<CollectedErratum> cat = buildCatalog();
    return cat;
}

Suggestion
classifyBySynopsis(const std::string &synopsis)
{
    std::string text = toLower(synopsis);
    auto has = [&text](const char *needle) {
        return text.find(needle) != std::string::npos;
    };

    // Guideline (a): privileged state read or modified against the
    // ISA — privilege bits, exception registers, SPRs, protection.
    if (has("privileg") || has("supervisor") || has("spr") ||
        has("epcr") || has("status register") || has("gie") ||
        has("unprotected") || has("vector") || has("trap return") ||
        has("rfe") || has("exception")) {
        return {ErratumClass::Security,
                "guideline (a): privileged state reachable or "
                "corrupted against the ISA"};
    }

    // Guideline (b): core functionality subverted — addresses and
    // data of memory traffic, executed instructions, control flow,
    // architectural registers.
    if (has("address") || has(" load") || has(" store") ||
        has("write to sram") || has("gpr") || has("fetched") ||
        has("delay slot") || has("return address") ||
        has("compare") || has("comparison") || has("inequality") ||
        has("extend") || has("l.") ||
        has("stalls the pipeline") || has("cache line lock")) {
        return {ErratumClass::Security,
                "guideline (b): core functionality (memory access, "
                "instruction execution, control flow) subverted"};
    }

    return {ErratumClass::Functional,
            "no guideline applies: correctness, performance, "
            "documentation, or peripheral behaviour only"};
}

CollectionSummary
summarizeCollection()
{
    CollectionSummary s;
    for (const auto &e : collectedErrata()) {
        ++s.collected;
        if (e.judged == ErratumClass::Security) {
            ++s.security;
            if (!e.reproducedAs.empty())
                ++s.reproduced;
            else
                ++s.notReproducible;
        }
        if (classifyBySynopsis(e.synopsis).suggested == e.judged)
            ++s.assistantAgrees;
    }
    return s;
}

} // namespace scif::bugs

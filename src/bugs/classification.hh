/**
 * @file
 * Errata collection and classification (paper §4.1 / phase 2).
 *
 * The paper collects 185 bugs from the bug trackers, mailing lists,
 * commit logs, and errata sheets of five open-source processors
 * (OR1200, LEON2, LEON3, OpenSPARC-T1, OpenMSP430), and a human
 * judges 25 of them security-critical using two guidelines: a bug is
 * security-critical if it lets an attacker (a) gain privileges to
 * read or modify processor state the ISA would not allow, or
 * (b) subvert core processor functionality, such as the address of a
 * load. 17 of the 25 are reproducible and become Table 1.
 *
 * This module carries a representative catalog of the collection —
 * every reproduced security erratum, the security errata that could
 * not be reproduced, and a cross-section of the functional majority —
 * together with a guideline-based classification assistant that
 * suggests a judgment (with its reason) for a human to confirm, the
 * "human in the loop" of the paper's phase 2.
 */

#ifndef SCIFINDER_BUGS_CLASSIFICATION_HH
#define SCIFINDER_BUGS_CLASSIFICATION_HH

#include <string>
#include <vector>

namespace scif::bugs {

/** The human's judgment of an erratum (phase 2's output). */
enum class ErratumClass {
    Security,    ///< exploitable per the §4.1 guidelines
    Functional,  ///< correctness/performance only
};

/** One collected erratum. */
struct CollectedErratum
{
    std::string id;          ///< catalog id, "e1"...
    std::string processor;   ///< OR1200 / LEON2 / LEON3 / ...
    std::string source;      ///< tracker/list reference
    std::string synopsis;    ///< one-line description
    ErratumClass judged;     ///< the human's classification
    /** Reproduced in this repository as registry bug (empty if the
     *  erratum was not reproducible or is functional). */
    std::string reproducedAs;
};

/** @return the collected-errata catalog. */
const std::vector<CollectedErratum> &collectedErrata();

/** Guideline-based suggestion for the human reviewer. */
struct Suggestion
{
    ErratumClass suggested;
    /** Which guideline or functional indicator fired. */
    std::string reason;
};

/**
 * Apply the §4.1 guidelines to an erratum synopsis: flag wording that
 * indicates privileged-state corruption or core-functionality
 * subversion as security-critical; everything else defaults to
 * functional. A decision aid, not a replacement for the human.
 */
Suggestion classifyBySynopsis(const std::string &synopsis);

/** Summary counts over the catalog (the §4.1 narrative numbers). */
struct CollectionSummary
{
    size_t collected = 0;
    size_t security = 0;
    size_t reproduced = 0;
    size_t notReproducible = 0;
    /** Catalog entries where the assistant agrees with the human. */
    size_t assistantAgrees = 0;
};

/** @return the summary over collectedErrata(). */
CollectionSummary summarizeCollection();

} // namespace scif::bugs

#endif // SCIFINDER_BUGS_CLASSIFICATION_HH

#include "scifinder.hh"

#include <algorithm>
#include <fstream>
#include <memory>

#include "core/artifacts.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "trace/io.hh"

namespace scif::core {

std::vector<size_t>
PipelineResult::finalSci() const
{
    std::vector<size_t> out = database.sciIndices();
    out.insert(out.end(), inference.inferredSci.begin(),
               inference.inferredSci.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

namespace {

/** Resolve the configured workload list to registry entries. */
std::vector<const workloads::Workload *>
resolveWorkloads(const PipelineConfig &config)
{
    std::vector<const workloads::Workload *> list;
    if (config.workloadNames.empty()) {
        for (const auto &w : workloads::all())
            list.push_back(&w);
    } else {
        for (const auto &name : config.workloadNames)
            list.push_back(&workloads::byName(name));
    }
    return list;
}

/** Resolve the configured bug list to registry entries. */
std::vector<const bugs::Bug *>
resolveBugs(const PipelineConfig &config)
{
    if (config.bugIds.empty())
        return bugs::table1();
    std::vector<const bugs::Bug *> list;
    for (const auto &id : config.bugIds)
        list.push_back(&bugs::byId(id));
    return list;
}

/** The phase-4 human-readable artifact: the final SCI report. */
void
writeInferenceReport(const std::string &path,
                     const PipelineResult &result)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << "# identified SCI: "
        << result.identifiedSci().size() << "\n";
    out << "# inferred SCI: "
        << result.inference.inferredSci.size() << "\n";
    out << "# test accuracy: " << result.inference.testAccuracy
        << "\n";
    for (size_t idx : result.finalSci())
        out << idx << "\t" << result.model.all()[idx].str() << "\n";
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

} // namespace

PipelineResult
runPipeline(const PipelineConfig &config)
{
    PipelineResult result;

    size_t jobs = support::ThreadPool::resolveJobs(config.jobs);
    std::unique_ptr<support::ThreadPool> pool;
    if (jobs > 1)
        pool = std::make_unique<support::ThreadPool>(jobs);
    StageContext ctx(pool.get(), &result.stages);

    const bool persist = !config.artifactDir.empty();
    ArtifactPaths paths(config.artifactDir);
    if (persist)
        paths.ensureDir();

    // ---- phase 1: trace + invariant generation ----
    //
    // Default front end: predecoded simulation scattering records
    // straight into per-point columns (no AoS intermediate); the
    // trace artifact is reconstructed from the captures on demand.
    // --interpreted-sim keeps the classic interpreted + AoS-buffer +
    // post-hoc-transpose path as the differential oracle. With an
    // artifact directory, both front ends instead stream: workloads
    // seal compressed chunks into the v2 trace set as they simulate,
    // and invariant generation folds the chunks back a window at a
    // time. All paths produce byte-identical artifacts and models.
    PipelineConfig cfg = config;
    if (persist) {
        // -- phase 1a: out-of-core trace generation (per workload) --
        Stage<PipelineConfig, std::vector<uint64_t>> traceStage(
            "trace-generation",
            [&paths](StageContext &sc, PipelineConfig &c) {
                auto list = resolveWorkloads(c);
                std::vector<std::string> names;
                names.reserve(list.size());
                for (const auto *w : list)
                    names.push_back(w->name);
                return trace::buildTraceSetParallel(
                    paths.traces(), c.traceChunkRecords, names,
                    [&](size_t i, trace::TraceSink &sink) {
                        workloads::runInto(*list[i], {},
                                           c.interpretedSim, &sink);
                    },
                    sc.pool());
            });
        auto counts = traceStage.run(ctx, cfg);
        for (uint64_t n : counts) {
            result.traceRecords += n;
            result.traceBytes += n * sizeof(trace::Record);
        }

        // -- phase 1b: streaming invariant generation --
        Stage<std::vector<uint64_t>, invgen::InvariantSet> genStage(
            "invariant-generation",
            [&cfg, &paths](StageContext &sc, std::vector<uint64_t> &) {
                trace::TraceSetReader reader(paths.traces());
                return invgen::generateStreaming(
                    reader, cfg.generation, nullptr, sc.pool());
            });
        result.model = genStage.run(ctx, counts);
    } else if (config.interpretedSim) {
        // -- phase 1a: trace generation (fans out per workload) --
        Stage<PipelineConfig, std::vector<trace::NamedTrace>>
            traceStage(
                "trace-generation",
                [](StageContext &sc, PipelineConfig &c) {
                    auto list = resolveWorkloads(c);
                    return support::parallelMap(
                        sc.pool(), list,
                        [](const workloads::Workload *w) {
                            return trace::NamedTrace{
                                w->name,
                                workloads::run(*w, {},
                                               /*interpreted=*/true)};
                        });
                });
        auto traces = traceStage.run(ctx, cfg);
        for (const auto &nt : traces) {
            result.traceRecords += nt.trace.size();
            result.traceBytes +=
                nt.trace.size() * sizeof(trace::Record);
        }

        // -- phase 1b: invariant generation (fans out per point) --
        Stage<std::vector<trace::NamedTrace>, invgen::InvariantSet>
            genStage("invariant-generation",
                     [&cfg](StageContext &sc,
                            std::vector<trace::NamedTrace> &in) {
                         std::vector<const trace::TraceBuffer *> ptrs;
                         for (const auto &nt : in)
                             ptrs.push_back(&nt.trace);
                         return invgen::generate(ptrs, cfg.generation,
                                                 nullptr, sc.pool());
                     });
        result.model = genStage.run(ctx, traces);
    } else {
        // -- phase 1a: columnar trace capture (per workload) --
        Stage<PipelineConfig, std::vector<trace::NamedCapture>>
            traceStage(
                "trace-generation",
                [](StageContext &sc, PipelineConfig &c) {
                    auto list = resolveWorkloads(c);
                    return support::parallelMap(
                        sc.pool(), list,
                        [](const workloads::Workload *w) {
                            return trace::NamedCapture{
                                w->name, workloads::runColumnar(*w)};
                        });
                });
        auto captures = traceStage.run(ctx, cfg);
        for (const auto &nc : captures) {
            result.traceRecords += nc.capture.size();
            result.traceBytes +=
                nc.capture.size() * sizeof(trace::Record);
        }

        // -- phase 1b: invariant generation from the sealed columns
        //    (the AoS-to-SoA transpose never happens) --
        Stage<std::vector<trace::NamedCapture>, invgen::InvariantSet>
            genStage("invariant-generation",
                     [&cfg](StageContext &sc,
                            std::vector<trace::NamedCapture> &in) {
                         std::vector<const trace::ColumnarCapture *>
                             caps;
                         for (const auto &nc : in)
                             caps.push_back(&nc.capture);
                         return invgen::generate(
                             trace::ColumnarCapture::seal(caps),
                             cfg.generation, nullptr, sc.pool());
                     });
        result.model = genStage.run(ctx, captures);
    }
    result.rawInvariants = result.model.size();
    result.rawVariables = result.model.variableCount();
    if (persist)
        result.model.saveBinary(paths.rawModel());

    // ---- phase 2: optimization (rewrites the model in place) ----
    Stage<invgen::InvariantSet, std::vector<opt::PassStats>> optStage(
        "optimization", [](StageContext &, invgen::InvariantSet &m) {
            return opt::optimize(m);
        });
    result.optimizationStats = optStage.run(ctx, result.model);
    if (persist)
        result.model.saveBinary(paths.model());

    // ---- phase 3: identification (fans out per bug, with the
    //      simulated expert's validation corpus fanned per program) --
    struct IdentOutput
    {
        std::set<size_t> violations;
        sci::SciDatabase db;
    };
    Stage<invgen::InvariantSet, IdentOutput> identStage(
        "identification",
        [&cfg, persist, &paths](StageContext &sc,
                                invgen::InvariantSet &model) {
            IdentOutput out;
            // Compile the model once for both the validation-corpus
            // scan and the per-bug identification sweeps.
            sci::CompiledModel compiled(model);
            if (persist) {
                // Stream the simulated expert's corpus through the
                // trace store: each random program seals compressed
                // chunks as it runs, then the scan decodes them a
                // chunk at a time. Same violation set as the
                // in-memory corpus scan.
                workloads::validationCorpusToStore(
                    paths.validation(), cfg.validationPrograms, 0x5eed,
                    sc.pool(), cfg.interpretedSim,
                    cfg.traceChunkRecords);
                trace::TraceSetReader validation(paths.validation());
                out.violations = sci::corpusViolations(
                    compiled, validation, sc.pool());
            } else {
                auto validation = workloads::validationCorpus(
                    cfg.validationPrograms, 0x5eed, sc.pool(),
                    cfg.interpretedSim);
                out.violations = sci::corpusViolations(
                    compiled, validation, sc.pool());
            }
            out.db = sci::identifyAll(compiled, resolveBugs(cfg),
                                      out.violations, sc.pool(),
                                      cfg.interpretedSim);
            return out;
        });
    IdentOutput ident = identStage.run(ctx, result.model);
    result.validationViolations = std::move(ident.violations);
    result.database = std::move(ident.db);
    if (persist) {
        saveIndexSet(paths.violations(), result.validationViolations);
        result.database.saveBinary(paths.sciDatabase());
    }

    // ---- phase 4: inference ----
    if (config.runInference) {
        Stage<invgen::InvariantSet, sci::InferenceResult> inferStage(
            "inference",
            [&cfg, &result](StageContext &,
                            invgen::InvariantSet &model) {
                return sci::infer(model, result.database,
                                  result.validationViolations,
                                  cfg.inference);
            });
        result.inference = inferStage.run(ctx, result.model);
        if (persist)
            writeInferenceReport(paths.inference(), result);
    }

    result.timing.traceGeneration = ctx.seconds("trace-generation");
    result.timing.invariantGeneration =
        ctx.seconds("invariant-generation");
    result.timing.optimization = ctx.seconds("optimization");
    result.timing.identification = ctx.seconds("identification");
    result.timing.inference = ctx.seconds("inference");
    return result;
}

std::vector<monitor::Assertion>
deployedAssertions(const PipelineResult &result,
                   const std::vector<size_t> &sci)
{
    // Bucket the SCI by the catalog property they represent; SCI
    // representing no recognizable security property stay undeployed
    // (the expert's production-use judgment, §3.5).
    std::map<std::string, std::vector<size_t>> byProperty;
    for (size_t idx : sci) {
        for (const auto &pid :
             sci::matchProperties(result.model.all()[idx])) {
            byProperty[pid].push_back(idx);
        }
    }

    std::vector<monitor::Assertion> deployed;
    for (const auto &[pid, members] : byProperty) {
        // One assertion per property: synthesize over the members
        // and merge into a single checker whose representative is
        // the most instantiated expression.
        auto parts = monitor::synthesize(result.model, members);
        monitor::Assertion merged;
        size_t best = 0;
        for (const auto &p : parts) {
            if (p.members.size() > best) {
                best = p.members.size();
                merged.representative = p.representative;
                merged.kind = p.kind;
            }
            merged.members.insert(merged.members.end(),
                                  p.members.begin(), p.members.end());
        }
        merged.name = pid;
        deployed.push_back(std::move(merged));
    }
    return deployed;
}

namespace {

/** Distinct assertions that fire when running @p bug's trigger. */
std::set<size_t>
firingsOn(const std::vector<monitor::Assertion> &assertions,
          const bugs::Bug &bug, bool buggy)
{
    monitor::AssertionMonitor mon(assertions);
    cpu::CpuConfig config = bug.config;
    if (buggy)
        config.mutations.add(bug.mutation);
    cpu::Cpu cpu(config);
    cpu.loadProgram(assembler::assembleOrDie(bug.trigger));
    cpu.run(&mon);
    auto fired = mon.firedAssertions();
    return std::set<size_t>(fired.begin(), fired.end());
}

} // namespace

bool
detectsDynamically(const std::vector<monitor::Assertion> &assertions,
                   const bugs::Bug &bug)
{
    std::set<size_t> buggy = firingsOn(assertions, bug, true);
    if (buggy.empty())
        return false;
    std::set<size_t> clean = firingsOn(assertions, bug, false);
    for (size_t a : buggy) {
        if (!clean.count(a))
            return true;
    }
    return false;
}

} // namespace scif::core

#include "scifinder.hh"

#include <algorithm>
#include <chrono>

#include "support/logging.hh"

namespace scif::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

std::vector<size_t>
PipelineResult::finalSci() const
{
    std::vector<size_t> out = database.sciIndices();
    out.insert(out.end(), inference.inferredSci.begin(),
               inference.inferredSci.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

PipelineResult
runPipeline(const PipelineConfig &config)
{
    PipelineResult result;
    using clock = std::chrono::steady_clock;

    // ---- phase 1a: trace generation ----
    auto t0 = clock::now();
    std::vector<trace::TraceBuffer> traces;
    if (config.workloadNames.empty()) {
        for (const auto &w : workloads::all())
            traces.push_back(workloads::run(w));
    } else {
        for (const auto &name : config.workloadNames)
            traces.push_back(workloads::run(workloads::byName(name)));
    }
    for (const auto &t : traces) {
        result.traceRecords += t.size();
        result.traceBytes += t.size() * sizeof(trace::Record);
    }
    result.timing.traceGeneration = secondsSince(t0);

    // ---- phase 1b: invariant generation ----
    t0 = clock::now();
    std::vector<const trace::TraceBuffer *> ptrs;
    for (const auto &t : traces)
        ptrs.push_back(&t);
    result.model = invgen::generate(ptrs, config.generation);
    result.rawInvariants = result.model.size();
    result.rawVariables = result.model.variableCount();
    result.timing.invariantGeneration = secondsSince(t0);

    // ---- phase 2: optimization ----
    t0 = clock::now();
    result.optimizationStats = opt::optimize(result.model);
    result.timing.optimization = secondsSince(t0);

    // ---- phase 3: identification (with the simulated expert) ----
    t0 = clock::now();
    auto validation =
        workloads::validationCorpus(config.validationPrograms);
    result.validationViolations =
        sci::corpusViolations(result.model, validation);

    std::vector<const bugs::Bug *> bugList;
    if (config.bugIds.empty()) {
        bugList = bugs::table1();
    } else {
        for (const auto &id : config.bugIds)
            bugList.push_back(&bugs::byId(id));
    }
    for (const bugs::Bug *bug : bugList) {
        result.database.addResult(sci::identify(
            result.model, *bug, result.validationViolations));
    }
    result.timing.identification = secondsSince(t0);

    // ---- phase 4: inference ----
    if (config.runInference) {
        t0 = clock::now();
        result.inference =
            sci::infer(result.model, result.database,
                       result.validationViolations, config.inference);
        result.timing.inference = secondsSince(t0);
    }
    return result;
}

std::vector<monitor::Assertion>
deployedAssertions(const PipelineResult &result,
                   const std::vector<size_t> &sci)
{
    // Bucket the SCI by the catalog property they represent; SCI
    // representing no recognizable security property stay undeployed
    // (the expert's production-use judgment, §3.5).
    std::map<std::string, std::vector<size_t>> byProperty;
    for (size_t idx : sci) {
        for (const auto &pid :
             sci::matchProperties(result.model.all()[idx])) {
            byProperty[pid].push_back(idx);
        }
    }

    std::vector<monitor::Assertion> deployed;
    for (const auto &[pid, members] : byProperty) {
        // One assertion per property: synthesize over the members
        // and merge into a single checker whose representative is
        // the most instantiated expression.
        auto parts = monitor::synthesize(result.model, members);
        monitor::Assertion merged;
        size_t best = 0;
        for (const auto &p : parts) {
            if (p.members.size() > best) {
                best = p.members.size();
                merged.representative = p.representative;
                merged.kind = p.kind;
            }
            merged.members.insert(merged.members.end(),
                                  p.members.begin(), p.members.end());
        }
        merged.name = pid;
        deployed.push_back(std::move(merged));
    }
    return deployed;
}

namespace {

/** Distinct assertions that fire when running @p bug's trigger. */
std::set<size_t>
firingsOn(const std::vector<monitor::Assertion> &assertions,
          const bugs::Bug &bug, bool buggy)
{
    monitor::AssertionMonitor mon(assertions);
    cpu::CpuConfig config = bug.config;
    if (buggy)
        config.mutations.add(bug.mutation);
    cpu::Cpu cpu(config);
    cpu.loadProgram(assembler::assembleOrDie(bug.trigger));
    cpu.run(&mon);
    auto fired = mon.firedAssertions();
    return std::set<size_t>(fired.begin(), fired.end());
}

} // namespace

bool
detectsDynamically(const std::vector<monitor::Assertion> &assertions,
                   const bugs::Bug &bug)
{
    std::set<size_t> buggy = firingsOn(assertions, bug, true);
    if (buggy.empty())
        return false;
    std::set<size_t> clean = firingsOn(assertions, bug, false);
    for (size_t a : buggy) {
        if (!clean.count(a))
            return true;
    }
    return false;
}

} // namespace scif::core

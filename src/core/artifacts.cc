#include "artifacts.hh"

#include <filesystem>

#include "support/binio.hh"
#include "support/logging.hh"

namespace scif::core {

namespace {

constexpr uint32_t indexMagic = 0x53434958; // "SCIX"
constexpr uint32_t indexVersion = 1;

} // namespace

void
ArtifactPaths::ensureDir() const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        fatal("cannot create artifact directory '%s': %s",
              dir_.c_str(), ec.message().c_str());
    }
}

bool
ArtifactPaths::exists(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::exists(path, ec);
}

void
saveIndexSet(const std::string &path, const std::set<size_t> &indices)
{
    support::BinWriter out(path, indexMagic, indexVersion);
    out.u64(indices.size());
    for (size_t idx : indices)
        out.u64(idx);
    out.close();
}

std::set<size_t>
loadIndexSet(const std::string &path)
{
    support::BinReader in(path, indexMagic, indexVersion,
                          "index set");
    std::set<size_t> out;
    uint64_t count = in.u64();
    if (count > (1ull << 32))
        fatal("index set '%s' is corrupt (%llu entries)",
              path.c_str(), (unsigned long long)count);
    for (uint64_t i = 0; i < count; ++i)
        out.insert(size_t(in.u64()));
    in.expectEof();
    return out;
}

} // namespace scif::core

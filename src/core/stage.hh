/**
 * @file
 * The staged-execution substrate of the pipeline.
 *
 * The tool chain is four independent phases (paper Fig. 1); each is
 * expressed as a Stage: a named, typed transformation In -> Out that
 * runs inside a StageContext carrying the shared worker pool and
 * collecting per-stage wall-clock timing and item counters. Stages
 * fan their internal work out over the pool (per workload, per
 * program point, per bug) but every fan-out merges deterministically,
 * so a stage's output is a pure function of its input regardless of
 * the thread count — which is what makes the inter-stage artifacts
 * (see core/artifacts.hh) stable, cacheable phase boundaries.
 */

#ifndef SCIFINDER_CORE_STAGE_HH
#define SCIFINDER_CORE_STAGE_HH

#include <chrono>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/evalstats.hh"
#include "support/memstats.hh"
#include "support/simstats.hh"
#include "support/threadpool.hh"

namespace scif::core {

/** Completed-stage accounting: one entry per executed stage. */
struct StageStats
{
    std::string name;
    double seconds = 0;
    uint64_t itemsIn = 0;
    uint64_t itemsOut = 0;
    /** Process peak RSS (KiB) sampled when the stage finished —
     *  monotone across stages, so the first stage to print a given
     *  value is the one that grew the process. */
    uint64_t maxRssKb = 0;
    /** High-water mark (bytes) of decoded trace data resident in
     *  this stage's streaming readers/writers. Zero for stages that
     *  never touch the trace store. */
    uint64_t traceResidentPeak = 0;
    /** Simulation front-end behavior during this stage (deltas of
     *  the process-wide counters every dying BlockCache flushes):
     *  boundaries dispatched through a chained block transition,
     *  chain links severed by code-store invalidation, and
     *  boundaries handed back to the interpreted path. All zero for
     *  stages that never simulate. */
    uint64_t chainHits = 0;
    uint64_t chainSevers = 0;
    uint64_t cacheFallbacks = 0;
    /** Fused-evaluation behavior during this stage (deltas of the
     *  process-wide support::EvalCounters): candidate programs fused
     *  into batch DAGs, structural duplicates collapsed by the
     *  value-numbering, members retired live mid-sweep, and sweep
     *  re-compactions. All zero for stages that never evaluate
     *  invariants — and under --no-fused-eval. */
    uint64_t fusedMembers = 0;
    uint64_t fusedDeduped = 0;
    uint64_t fusedRetired = 0;
    uint64_t fusedCompactions = 0;
};

/** Execution environment shared by the stages of one pipeline run. */
class StageContext
{
  public:
    /**
     * @param pool worker pool for intra-stage fan-out; null runs
     *        every stage serially.
     * @param sink destination for per-stage statistics (may be null).
     */
    explicit StageContext(support::ThreadPool *pool,
                          std::vector<StageStats> *sink = nullptr)
        : pool_(pool), sink_(sink)
    {}

    /** @return the worker pool (null = serial execution). */
    support::ThreadPool *pool() const { return pool_; }

    /** Record one completed stage. */
    void
    record(StageStats stats)
    {
        if (sink_)
            sink_->push_back(std::move(stats));
    }

    /** @return total recorded seconds of the named stage. */
    double
    seconds(const std::string &name) const
    {
        double total = 0;
        if (sink_) {
            for (const auto &s : *sink_) {
                if (s.name == name)
                    total += s.seconds;
            }
        }
        return total;
    }

  private:
    support::ThreadPool *pool_;
    std::vector<StageStats> *sink_;
};

namespace detail {

/** Item count of a stage input/output: its size if it has one. */
template <typename T>
uint64_t
countItems(const T &value)
{
    if constexpr (requires { value.size(); })
        return uint64_t(value.size());
    else
        return 1;
}

} // namespace detail

/**
 * One pipeline stage: a named transformation In -> Out. Running it
 * times the transformation and reports (seconds, |In|, |Out|) to the
 * context. The input is taken by mutable reference so a stage may
 * transform in place (the optimizer rewrites the invariant model);
 * pure stages simply read it.
 */
template <typename In, typename Out>
class Stage
{
  public:
    using Fn = std::function<Out(StageContext &, In &)>;

    Stage(std::string name, Fn fn)
        : name_(std::move(name)), fn_(std::move(fn))
    {}

    const std::string &name() const { return name_; }

    /** Execute the stage under the context's pool and accounting. */
    Out
    run(StageContext &ctx, In &in) const
    {
        StageStats stats;
        stats.name = name_;
        stats.itemsIn = detail::countItems(in);
        support::ResidentGauge::resetHighWater();
        auto front = support::FrontEndCounters::snapshot();
        auto eval = support::EvalCounters::snapshot();
        auto start = std::chrono::steady_clock::now();
        Out out = fn_(ctx, in);
        auto end = std::chrono::steady_clock::now();
        stats.seconds =
            std::chrono::duration<double>(end - start).count();
        stats.itemsOut = detail::countItems(out);
        stats.maxRssKb = support::peakRssKb();
        stats.traceResidentPeak = support::ResidentGauge::highWater();
        auto after = support::FrontEndCounters::snapshot();
        stats.chainHits = after.chainHits - front.chainHits;
        stats.chainSevers = after.chainSevers - front.chainSevers;
        stats.cacheFallbacks = after.fallbacks - front.fallbacks;
        auto evalAfter = support::EvalCounters::snapshot();
        stats.fusedMembers = evalAfter.fusedMembers - eval.fusedMembers;
        stats.fusedDeduped = evalAfter.fusedDeduped - eval.fusedDeduped;
        stats.fusedRetired = evalAfter.fusedRetired - eval.fusedRetired;
        stats.fusedCompactions =
            evalAfter.fusedCompactions - eval.fusedCompactions;
        ctx.record(std::move(stats));
        return out;
    }

  private:
    std::string name_;
    Fn fn_;
};

} // namespace scif::core

#endif // SCIFINDER_CORE_STAGE_HH

/**
 * @file
 * The on-disk layout of a pipeline artifact directory.
 *
 * Every phase boundary of the staged pipeline has a versioned binary
 * artifact, so any phase can be re-run (or resumed) from its
 * predecessors' persisted outputs without recomputing them:
 *
 *     traces.bin          phase 1a  the named training-trace set
 *     invariants.raw.bin  phase 1b  the unoptimized invariant model
 *     invariants.bin      phase 2   the optimized invariant model
 *     validation.bin      phase 3   the validation-corpus trace set
 *     violations.bin      phase 3   validation-corpus violations
 *     scidb.bin           phase 3   per-bug identification results
 *     inference.txt       phase 4   final SCI report (human-readable)
 *     analysis.txt        analyze   static invariant classification
 *     audit.txt           audit     security-dataflow bug audit
 *
 * The serializers themselves live with their types (trace/io.hh,
 * invgen::InvariantSet, sci::SciDatabase); this module owns the
 * directory layout plus the small index-set artifact used for the
 * validation violations.
 */

#ifndef SCIFINDER_CORE_ARTIFACTS_HH
#define SCIFINDER_CORE_ARTIFACTS_HH

#include <set>
#include <string>

namespace scif::core {

/** Path helper for one artifact directory. */
class ArtifactPaths
{
  public:
    explicit ArtifactPaths(std::string dir) : dir_(std::move(dir)) {}

    const std::string &dir() const { return dir_; }

    std::string traces() const { return join("traces.bin"); }
    std::string rawModel() const { return join("invariants.raw.bin"); }
    std::string model() const { return join("invariants.bin"); }
    std::string violations() const { return join("violations.bin"); }
    std::string validation() const { return join("validation.bin"); }
    std::string sciDatabase() const { return join("scidb.bin"); }
    std::string inference() const { return join("inference.txt"); }
    std::string analysis() const { return join("analysis.txt"); }
    std::string audit() const { return join("audit.txt"); }

    /** Create the directory (and parents) if missing; fatal on
     *  failure. */
    void ensureDir() const;

    /** @return true if the file exists. */
    static bool exists(const std::string &path);

  private:
    std::string join(const char *name) const
    {
        return dir_ + "/" + name;
    }

    std::string dir_;
};

/** Persist a set of invariant indices as a versioned artifact. */
void saveIndexSet(const std::string &path,
                  const std::set<size_t> &indices);

/** Load an index-set artifact; aborts on truncation or corruption. */
std::set<size_t> loadIndexSet(const std::string &path);

} // namespace scif::core

#endif // SCIFINDER_CORE_ARTIFACTS_HH

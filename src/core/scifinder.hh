/**
 * @file
 * SCIFinder: the end-to-end tool chain facade (paper Figure 1).
 *
 * Phases: (1) invariant generation from the training workloads,
 * (2) optimization, (3) SCI identification from the security errata,
 * (4) SCI inference with the elastic-net model. The facade also
 * exposes assertion deployment (the §3.5 expert step selecting
 * production assertions) and dynamic-detection checks used by the
 * evaluation benches.
 */

#ifndef SCIFINDER_CORE_SCIFINDER_HH
#define SCIFINDER_CORE_SCIFINDER_HH

#include <string>
#include <vector>

#include "bugs/registry.hh"
#include "core/stage.hh"
#include "invgen/invgen.hh"
#include "monitor/assertion.hh"
#include "opt/passes.hh"
#include "sci/identify.hh"
#include "sci/infer.hh"
#include "sci/properties.hh"
#include "trace/store.hh"
#include "workloads/workloads.hh"

namespace scif::core {

/** Pipeline configuration; the defaults reproduce the paper's run. */
struct PipelineConfig
{
    invgen::Config generation;
    sci::InferConfig inference;

    /** Training workloads (empty = the full 17-program suite). */
    std::vector<std::string> workloadNames;

    /** Identification bugs (empty = the 17 of Table 1). */
    std::vector<std::string> bugIds;

    /** Validation corpus size (the simulated expert, §5.7). */
    size_t validationPrograms = 24;

    /** Skip phase 4 (used by ablations). */
    bool runInference = true;

    /**
     * Run every simulation on the interpreted (non-predecoded) front
     * end with AoS record buffering and the post-hoc columnar
     * transpose — the differential oracle for the default predecoded
     * + capture-time-columnar fast path. Artifacts are byte-identical
     * either way.
     */
    bool interpretedSim = false;

    /**
     * Worker threads for the intra-stage fan-outs (per workload, per
     * program point, per bug). 1 = serial; 0 = all hardware threads.
     * Every fan-out merges deterministically, so the results are
     * byte-identical for any value.
     */
    size_t jobs = 1;

    /**
     * When non-empty, each stage persists its output artifact here
     * (see core/artifacts.hh), enabling single-phase re-runs via the
     * scifinder subcommands. Persisting also switches trace handling
     * to the out-of-core path: simulations seal compressed chunks as
     * they run and the downstream phases stream them back a chunk at
     * a time, so resident trace memory is O(chunk x jobs) instead of
     * the whole corpus. Models and artifacts are byte-identical to
     * the in-memory run.
     */
    std::string artifactDir;

    /** Records per chunk of the persisted v2 trace sets. */
    uint32_t traceChunkRecords = trace::defaultChunkRecords;
};

/** Wall-clock seconds per phase (Table 8). */
struct PhaseTiming
{
    double traceGeneration = 0;
    double invariantGeneration = 0;
    double optimization = 0;
    double identification = 0;
    double inference = 0;
};

/** Everything the pipeline produces. */
struct PipelineResult
{
    /** The optimized invariant model. */
    invgen::InvariantSet model;

    size_t rawInvariants = 0;
    size_t rawVariables = 0;
    std::vector<opt::PassStats> optimizationStats;

    uint64_t traceRecords = 0;
    uint64_t traceBytes = 0;

    sci::SciDatabase database;
    std::set<size_t> validationViolations;
    sci::InferenceResult inference;
    PhaseTiming timing;

    /** Per-stage accounting in execution order (wall-clock seconds
     *  plus input/output item counts); timing is derived from it. */
    std::vector<StageStats> stages;

    /** SCI identified from the errata (phase 3). */
    std::vector<size_t> identifiedSci() const
    {
        return database.sciIndices();
    }

    /** Identified plus inferred SCI (the final set). */
    std::vector<size_t> finalSci() const;
};

/** Run the full pipeline. */
PipelineResult runPipeline(const PipelineConfig &config =
                               PipelineConfig());

/**
 * The §3.5 deployment step: an expert distills the SCI into one
 * synthesizable assertion per represented security property (the
 * paper deploys 14 identification assertions and 33 final ones the
 * same way). Each deployed assertion carries every matching SCI as
 * a member, so enforcing it checks the property at all its points.
 */
std::vector<monitor::Assertion>
deployedAssertions(const PipelineResult &result,
                   const std::vector<size_t> &sci);

/**
 * Dynamic-verification check: run @p bug's trigger on the buggy and
 * on the clean processor under the assertion monitor.
 *
 * @return true if some assertion fires on the buggy run that stays
 *         quiet on the clean run (a firing on both is a false alarm
 *         of the assertion set, not a detection).
 */
bool detectsDynamically(const std::vector<monitor::Assertion> &assertions,
                        const bugs::Bug &bug);

} // namespace scif::core

#endif // SCIFINDER_CORE_SCIFINDER_HH

/**
 * @file
 * Work-stealing fuzzing fleet: the scale-out mode of the
 * differential fuzzer.
 *
 * runFuzz() (fuzzer.hh) materializes the whole corpus up front and
 * fans the diff pass over a thread pool. The fleet instead streams:
 * N shard threads pull seed ranges from a shared atomic cursor
 * (work-stealing — a shard that finishes its range early claims the
 * next one), generate + assemble + co-simulate each seed in place,
 * and dedup discovered divergences against a shared signature table
 * with a mutex-free CAS fast path. Per-shard mutation kill tallies
 * merge by sum (kills) and min (first killer) after the scan.
 *
 * Determinism contract: every report and artifact byte is identical
 * for any fleet width (and any claim interleaving). The signature
 * table is order-free by construction — a slot is claimed with a CAS
 * on the signature and its canonical index maintained with a CAS-min
 * loop, so the final table contents are a pure function of the set
 * of discovered divergences; shrinking runs only on the canonical
 * (lowest-index) representative of each signature, after the scan.
 */

#ifndef SCIFINDER_FUZZ_FLEET_HH
#define SCIFINDER_FUZZ_FLEET_HH

#include <cstdint>

#include "cpu/mutation.hh"
#include "fuzz/fuzzer.hh"

namespace scif::fuzz {

/** One fleet campaign's parameters. */
struct FleetConfig
{
    /** Base campaign: seed, count, generator shape, budgets,
     *  artifact directory, optional mutation coverage. The replay
     *  mode is not available in fleet runs. */
    FuzzConfig fuzz;

    /** Mutations injected into the Cpu side of every co-simulation
     *  (empty = clean CPU vs reference). Non-empty turns the fleet
     *  into a mutant detector — which is also how the determinism
     *  tests force a stream of divergences to dedup. */
    cpu::MutationSet mutations;

    /** Fleet width: shard threads (0 = all hardware threads). */
    unsigned shards = 1;

    /** Seeds claimed per cursor pull. Granularity only changes which
     *  shard runs a seed, never any result. */
    uint32_t grain = 16;
};

/** Results of one fleet campaign. */
struct FleetResult
{
    /** The campaign outcome; render() and ok() are byte-compatible
     *  with the single-threaded fuzzer's report, and identical for
     *  any fleet width. */
    FuzzResult result;

    unsigned shardsUsed = 0;    ///< shard threads that ran
    uint64_t claims = 0;        ///< cursor pulls across all shards
    uint64_t divergences = 0;   ///< raw divergences before dedup
    uint64_t dedupDropped = 0;  ///< divergences deduped away
};

/** Run one fleet campaign. */
FleetResult runFleet(const FleetConfig &config);

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_FLEET_HH

#include "differ.hh"

#include <numeric>

#include "cpu/cpu.hh"
#include "fuzz/refsim.hh"
#include "support/strings.hh"

namespace scif::fuzz {

namespace {

/** SPRs diffed at every boundary. */
const uint16_t kSprs[] = {
    isa::spr::SR,    isa::spr::EPCR0, isa::spr::EEAR0, isa::spr::ESR0,
    isa::spr::MACLO, isa::spr::MACHI, isa::spr::PICMR, isa::spr::PICSR,
    isa::spr::TTMR,  isa::spr::TTCR,
};

const char *
statusName(cpu::StepStatus s)
{
    switch (s) {
      case cpu::StepStatus::Running: return "running";
      case cpu::StepStatus::Halted: return "halted";
      case cpu::StepStatus::Wedged: return "wedged";
      case cpu::StepStatus::Budget: return "budget";
    }
    return "?";
}

const char *
statusName(RefStatus s)
{
    switch (s) {
      case RefStatus::Running: return "running";
      case RefStatus::Halted: return "halted";
      case RefStatus::Budget: return "budget";
    }
    return "?";
}

/** Compare one boundary; fills @p what with the first mismatch. */
bool
compareState(const cpu::Cpu &c, const RefSim &r, std::string &what)
{
    if (c.pc() != r.pc()) {
        what = format("pc: cpu=%08x ref=%08x", c.pc(), r.pc());
        return false;
    }
    if (c.retired() != r.retired()) {
        what = format("retired: cpu=%llu ref=%llu",
                      (unsigned long long)c.retired(),
                      (unsigned long long)r.retired());
        return false;
    }
    for (unsigned n = 0; n < isa::numGprs; ++n) {
        if (c.gpr(n) != r.gpr(n)) {
            what = format("r%u: cpu=%08x ref=%08x", n, c.gpr(n),
                          r.gpr(n));
            return false;
        }
    }
    for (uint16_t spr : kSprs) {
        if (c.readSpr(spr) != r.readSpr(spr)) {
            what = format("%s: cpu=%08x ref=%08x",
                          isa::spr::name(spr).c_str(), c.readSpr(spr),
                          r.readSpr(spr));
            return false;
        }
    }
    for (uint32_t w : r.lastDirty()) {
        if (c.memory().debugReadWord(w) != r.word(w)) {
            what = format("mem[%08x]: cpu=%08x ref=%08x", w,
                          c.memory().debugReadWord(w), r.word(w));
            return false;
        }
    }
    return true;
}

} // namespace

Divergence
diffProgram(const assembler::Program &program, const DiffConfig &config)
{
    cpu::CpuConfig cc;
    cc.memBytes = config.memBytes;
    cc.userBase = config.userBase;
    cc.maxInsns = config.maxInsns;
    cc.mutations = config.mutations;
    cc.predecode = config.predecode;
    cc.chain = config.chain;
    cpu::Cpu c(cc);
    c.loadProgram(program);

    RefConfig rc;
    rc.memBytes = config.memBytes;
    rc.userBase = config.userBase;
    rc.maxInsns = config.maxInsns;
    RefSim r(rc);
    r.loadProgram(program);

    Divergence d;
    for (uint64_t step = 0; step < config.maxSteps; ++step) {
        cpu::StepStatus cs = c.step(nullptr);
        RefStatus rs = r.step();

        bool statusMatch =
            (cs == cpu::StepStatus::Running &&
             rs == RefStatus::Running) ||
            (cs == cpu::StepStatus::Halted && rs == RefStatus::Halted) ||
            (cs == cpu::StepStatus::Budget && rs == RefStatus::Budget);
        if (!statusMatch) {
            d.diverged = true;
            d.step = step;
            d.what = format("status: cpu=%s ref=%s", statusName(cs),
                            statusName(rs));
            return d;
        }

        std::string what;
        if (!compareState(c, r, what)) {
            d.diverged = true;
            d.step = step;
            d.what = what;
            return d;
        }

        if (cs != cpu::StepStatus::Running)
            break;
    }

    // Final full-memory sweep: catches stores the per-step dirty
    // tracking would only see through the reference's own writes.
    for (uint32_t w = 0; w + 4 <= r.memBytes(); w += 4) {
        if (c.memory().debugReadWord(w) != r.word(w)) {
            d.diverged = true;
            d.step = config.maxSteps;
            d.what = format("final mem[%08x]: cpu=%08x ref=%08x", w,
                            c.memory().debugReadWord(w), r.word(w));
            return d;
        }
    }
    return d;
}

ShrinkResult
shrink(const GeneratedProgram &program, const DiffConfig &config)
{
    auto diverges = [&](const std::vector<size_t> &keep) {
        auto result = assembler::assemble(program.sourceSubset(keep));
        if (!result.ok)
            return Divergence{};
        return diffProgram(result.program, config);
    };

    std::vector<size_t> kept(program.gadgets.size());
    std::iota(kept.begin(), kept.end(), size_t(0));
    Divergence last = diverges(kept);

    // Remove contiguous chunks, halving the chunk size down to single
    // gadgets; restart a granularity level after any successful
    // removal so interactions re-settle.
    for (size_t chunk = std::max<size_t>(kept.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool removed = true;
        while (removed && kept.size() > 1) {
            removed = false;
            for (size_t at = 0; at + chunk <= kept.size();
                 at += chunk) {
                std::vector<size_t> trial = kept;
                trial.erase(trial.begin() + long(at),
                            trial.begin() + long(at + chunk));
                Divergence d = diverges(trial);
                if (d) {
                    kept = std::move(trial);
                    last = d;
                    removed = true;
                    break;
                }
            }
        }
        if (chunk == 1)
            break;
    }

    ShrinkResult result;
    result.kept = kept;
    result.source = program.sourceSubset(kept);
    result.divergence = last;
    return result;
}

} // namespace scif::fuzz

#include "fuzzer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::fuzz {

namespace {

namespace fs = std::filesystem;

/** One corpus entry: source plus (for generated programs) the
 *  gadget-granular form the shrinker needs. */
struct CorpusItem
{
    std::string name;
    std::string source;
    GeneratedProgram gen;
    bool shrinkable = false;
    assembler::Program program;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << text;
}

void
assembleItem(CorpusItem &item)
{
    assembler::Result result = assembler::assemble(item.source);
    if (!result.ok) {
        fatal("corpus program '%s' does not assemble: %s",
              item.name.c_str(),
              join(result.errors, "; ").c_str());
    }
    item.program = result.program;
}

std::vector<CorpusItem>
buildCorpus(const FuzzConfig &config)
{
    std::vector<CorpusItem> corpus;

    if (!config.replayDir.empty()) {
        std::error_code ec;
        std::vector<std::string> paths;
        for (const auto &entry :
             fs::directory_iterator(config.replayDir, ec)) {
            if (entry.path().extension() == ".s")
                paths.push_back(entry.path().string());
        }
        if (ec) {
            fatal("cannot read replay directory '%s': %s",
                  config.replayDir.c_str(), ec.message().c_str());
        }
        std::sort(paths.begin(), paths.end());
        if (paths.empty())
            fatal("replay directory '%s' contains no .s programs",
                  config.replayDir.c_str());
        for (const std::string &path : paths) {
            CorpusItem item;
            item.name = fs::path(path).stem().string();
            item.source = readFile(path);
            assembleItem(item);
            corpus.push_back(std::move(item));
        }
        return corpus;
    }

    // Generation is serial by design: each program draws from its own
    // (seed, index)-derived stream, so the corpus is identical no
    // matter how many jobs later execute it.
    for (uint32_t i = 0; i < config.count; ++i) {
        CorpusItem item;
        item.gen = generate(config.gen, config.seed, i);
        item.name = item.gen.name;
        item.source = item.gen.source();
        item.shrinkable = true;
        assembleItem(item);
        corpus.push_back(std::move(item));
    }
    return corpus;
}

void
saveCorpus(const std::vector<CorpusItem> &corpus,
           const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        fatal("cannot create corpus directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    }
    for (size_t i = 0; i < corpus.size(); ++i) {
        writeFile(format("%s/prog_%04zu.s", dir.c_str(), i),
                  corpus[i].source);
    }
}

} // namespace

bool
FuzzResult::ok() const
{
    if (!repros.empty())
        return false;
    if (coverageRan && !coverage.allTable1Killed())
        return false;
    return true;
}

std::string
FuzzResult::render() const
{
    std::string out;
    out += "differential fuzz report\n";
    out += "========================\n";
    out += format("programs: %u\n", programs);
    out += format("divergences: %zu\n", repros.size());
    for (const Repro &r : repros) {
        out += format("  [%04u] %s: step %llu, %s\n", r.index,
                      r.name.c_str(),
                      (unsigned long long)r.divergence.step,
                      r.divergence.what.c_str());
    }
    if (coverageRan) {
        out += "\n";
        out += coverage.render();
    }
    out += format("\nverdict: %s\n", ok() ? "PASS" : "FAIL");
    return out;
}

FuzzResult
runFuzz(const FuzzConfig &config, support::ThreadPool *pool)
{
    std::vector<CorpusItem> corpus = buildCorpus(config);

    if (!config.artifactDir.empty() && config.replayDir.empty())
        saveCorpus(corpus, config.artifactDir + "/corpus");

    DiffConfig dc;
    dc.memBytes = config.gen.memBytes;
    dc.maxInsns = config.maxInsns;
    dc.maxSteps = config.maxInsns * 2;

    // Differential pass; a mismatching generated program is shrunk
    // in-task so the expensive part parallelizes with the rest.
    std::vector<Repro> outcomes = support::parallelMap(
        pool, corpus, [&](const CorpusItem &item) {
            Repro repro;
            repro.divergence = diffProgram(item.program, dc);
            if (repro.divergence && item.shrinkable) {
                ShrinkResult minimal = shrink(item.gen, dc);
                repro.divergence = minimal.divergence;
                repro.source = minimal.source;
            } else if (repro.divergence) {
                repro.source = item.source;
            }
            return repro;
        });

    FuzzResult result;
    result.programs = uint32_t(corpus.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].divergence)
            continue;
        Repro repro = std::move(outcomes[i]);
        repro.index = uint32_t(i);
        repro.name = corpus[i].name;
        result.repros.push_back(std::move(repro));
    }

    if (config.mutationCoverage) {
        MutCovConfig mc;
        mc.memBytes = config.gen.memBytes;
        mc.maxInsns = config.maxInsns;
        std::vector<assembler::Program> programs;
        programs.reserve(corpus.size());
        for (const CorpusItem &item : corpus)
            programs.push_back(item.program);
        result.coverage = runCoverage(programs, mc, pool);
        result.coverageRan = true;
    }

    if (!config.artifactDir.empty()) {
        std::error_code ec;
        fs::create_directories(config.artifactDir, ec);
        if (ec) {
            fatal("cannot create artifact directory '%s': %s",
                  config.artifactDir.c_str(), ec.message().c_str());
        }
        writeFile(config.artifactDir + "/fuzz_report.txt",
                  result.render());
        for (const Repro &r : result.repros) {
            writeFile(format("%s/repro_%04u.s",
                             config.artifactDir.c_str(), r.index),
                      r.source);
        }
        if (result.coverageRan) {
            writeFile(config.artifactDir + "/mutation_coverage.txt",
                      result.coverage.render());
            std::string survivors;
            for (const std::string &id : result.coverage.survivors())
                survivors += id + "\n";
            writeFile(config.artifactDir + "/surviving_mutants.txt",
                      survivors);
        }
    }

    return result;
}

} // namespace scif::fuzz

#include "progen.hh"

#include "support/strings.hh"

namespace scif::fuzz {

namespace {

// Register allocation: a pool of freely clobbered registers plus a
// handful of reserved roles the gadget templates rely on.
//   r6  address temp        r7  data base pointer
//   r9  link register       r22 result temp
//   r23 running checksum    r25 loop counter
//   r26/r27 handler scratch (EPCR / SR witnesses)
const std::vector<unsigned> kPool = {1,  2,  3,  4,  5,  8,  10, 11,
                                     12, 13, 14, 15, 16, 17, 18, 19,
                                     20, 21, 24, 28, 29, 30, 31};

constexpr uint32_t kDataBase = 0x20000;  ///< seeded data region
constexpr uint32_t kDataMask = 0x1fc;    ///< word-aligned offsets
constexpr uint32_t kDataWords = 128;     ///< seeded words
constexpr uint32_t kTextBase = 0x30000;  ///< gadget chunk ("main")
constexpr uint32_t kFuncBase = 0x1000;   ///< call targets (far away,
                                         ///< so call displacements
                                         ///< exceed 15 bits)

std::string
reg(unsigned n)
{
    return format("r%u", n);
}

/** Builds one program; owns the rng stream and the label counter. */
class Builder
{
  public:
    Builder(const GenConfig &config, uint64_t seed)
        : config_(config), rng_(seed)
    {
    }

    GeneratedProgram build(const std::string &name, uint64_t seed);

  private:
    std::string pick() { return reg(rng_.pick(kPool)); }
    int32_t simm16() { return int32_t(rng_.range(-0x8000, 0x7fff)); }
    uint32_t uimm16() { return uint32_t(rng_.below(0x10000)); }

    /** Unique label prefix for the gadget being built. */
    std::string lab(const char *tag)
    {
        return format("g%u_%s", gadgetIndex_, tag);
    }

    std::string header();
    std::string footer();
    std::string gadget();

    std::string aluGadget();
    std::string memGadget();
    std::string branchGadget();
    std::string callGadget();
    std::string excGadget();
    std::string sprGadget();

    /** The masked-address idiom: r6 = DATA + (rX & mask). */
    std::string addrSetup(const std::string &src)
    {
        return format("    l.andi  r6, %s, 0x%x\n"
                      "    l.add   r6, r6, r7\n",
                      src.c_str(), kDataMask);
    }

    const GenConfig &config_;
    Rng rng_;
    uint32_t gadgetIndex_ = 0;
};

std::string
Builder::header()
{
    std::string s;
    s += format(".equ DATA, 0x%x\n\n", kDataBase);

    // Reset vector: jump to the gadget chunk.
    s += ".org 0x100\n"
         "    l.j     main\n"
         "    l.nop   0\n\n";

    // Exception handlers. Unexpected vectors halt (reaching one under
    // a mutation IS the divergence); expected ones record witnesses
    // in r26/r27 and resume.
    for (uint32_t v : {0x200u, 0x300u, 0x400u, 0x500u, 0x800u, 0x900u,
                       0xa00u, 0xd00u}) {
        s += format(".org 0x%x\n    l.nop   0xf\n", v);
    }

    // Alignment: accumulate the faulting address (EEAR witness), then
    // skip the faulting instruction.
    s += ".org 0x600\n"
         "    l.mfspr r26, r0, EEAR0\n"
         "    l.add   r23, r23, r26\n"
         "    l.mfspr r26, r0, EPCR0\n"
         "    l.addi  r26, r26, 4\n"
         "    l.mtspr r0, r26, EPCR0\n"
         "    l.rfe\n";

    // Illegal / range / trap: record SR and the resume PC, skip the
    // faulting instruction.
    for (uint32_t v : {0x700u, 0xb00u, 0xe00u}) {
        s += format(".org 0x%x\n"
                    "    l.mfspr r27, r0, SR\n"
                    "    l.mfspr r26, r0, EPCR0\n"
                    "    l.addi  r26, r26, 4\n"
                    "    l.mtspr r0, r26, EPCR0\n"
                    "    l.rfe\n",
                    v);
    }

    // Syscall: EPCR already names the resume point.
    s += ".org 0xc00\n"
         "    l.mfspr r26, r0, EPCR0\n"
         "    l.mfspr r27, r0, SR\n"
         "    l.rfe\n";

    // Prologue: data base pointer, cleared bookkeeping registers,
    // randomly seeded pool registers.
    s += format("\n.org 0x%x\n", kTextBase);
    s += "main:\n"
         "    l.movhi r7, hi(DATA)\n"
         "    l.ori   r7, r7, lo(DATA)\n"
         "    l.addi  r22, r0, 0\n"
         "    l.addi  r23, r0, 0\n"
         "    l.addi  r25, r0, 0\n";
    for (unsigned r : kPool) {
        uint32_t v = uint32_t(rng_.next());
        s += format("    l.movhi %s, 0x%x\n", reg(r).c_str(), v >> 16);
        s += format("    l.ori   %s, %s, 0x%x\n", reg(r).c_str(),
                    reg(r).c_str(), v & 0xffff);
    }
    return s;
}

std::string
Builder::footer()
{
    std::string s = "    l.nop   0xf\n\n";

    // Call targets live far below the gadget chunk, so l.jal
    // displacements have magnitude above 15 bits.
    s += format(".org 0x%x\n", kFuncBase);
    s += "fn_mix:\n"
         "    l.add   r23, r23, r3\n"
         "    l.jr    r9\n"
         "    l.xor   r3, r3, r23\n"
         "fn_rot:\n"
         "    l.rori  r23, r23, 5\n"
         "    l.jr    r9\n"
         "    l.add   r23, r23, r3\n";

    // Seeded data region.
    s += format("\n.org 0x%x\n", kDataBase);
    for (uint32_t i = 0; i < kDataWords; ++i)
        s += format("    .word 0x%08x\n", uint32_t(rng_.next()));
    return s;
}

std::string
Builder::aluGadget()
{
    std::string s;
    switch (rng_.below(12)) {
      case 0: { // three-register ALU op
        static const std::vector<std::string> ops = {
            "l.add",  "l.addc", "l.sub", "l.and", "l.or",
            "l.xor",  "l.mul",  "l.sll", "l.srl", "l.sra",
            "l.ror",  "l.mulu", "l.div", "l.divu"};
        s = format("    %-7s %s, %s, %s\n", rng_.pick(ops).c_str(),
                   pick().c_str(), pick().c_str(), pick().c_str());
        break;
      }
      case 1: { // signed-immediate op
        static const std::vector<std::string> ops = {
            "l.addi", "l.addic", "l.xori", "l.muli"};
        s = format("    %-7s %s, %s, %d\n", rng_.pick(ops).c_str(),
                   pick().c_str(), pick().c_str(), simm16());
        break;
      }
      case 2: { // unsigned-immediate op
        static const std::vector<std::string> ops = {"l.andi",
                                                     "l.ori"};
        s = format("    %-7s %s, %s, 0x%x\n", rng_.pick(ops).c_str(),
                   pick().c_str(), pick().c_str(), uimm16());
        break;
      }
      case 3: { // immediate shift / rotate (amount 1-31, not 16, so
                // a reversed rotate direction is always visible)
        static const std::vector<std::string> ops = {
            "l.slli", "l.srli", "l.srai", "l.rori"};
        uint32_t amt = 1 + uint32_t(rng_.below(30));
        if (amt >= 16)
            ++amt;
        s = format("    %-7s %s, %s, %u\n", rng_.pick(ops).c_str(),
                   pick().c_str(), pick().c_str(), amt);
        break;
      }
      case 4: { // extensions (l.extws/l.extwz must round-trip a full
                // word)
        static const std::vector<std::string> ops = {
            "l.exths", "l.extbs", "l.exthz",
            "l.extbz", "l.extws", "l.extwz"};
        s = format("    %-7s r22, %s\n", rng_.pick(ops).c_str(),
                   pick().c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      case 5: // find-first-one
        s = format("    l.ff1   r22, %s\n", pick().c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      case 6: { // compare (register or immediate form) + cmov witness
        static const std::vector<std::string> rr = {
            "l.sfeq",  "l.sfne",  "l.sfgtu", "l.sfgeu", "l.sfltu",
            "l.sfleu", "l.sfgts", "l.sfges", "l.sflts", "l.sfles"};
        static const std::vector<std::string> ri = {
            "l.sfeqi",  "l.sfnei",  "l.sfgtui", "l.sfgeui",
            "l.sfltui", "l.sfleui", "l.sfgtsi", "l.sfgesi",
            "l.sfltsi", "l.sflesi"};
        if (rng_.chance(0.5)) {
            s = format("    %-8s %s, %s\n", rng_.pick(rr).c_str(),
                       pick().c_str(), pick().c_str());
        } else {
            s = format("    %-8s %s, %d\n", rng_.pick(ri).c_str(),
                       pick().c_str(), simm16());
        }
        s += format("    l.cmov  r22, %s, %s\n", pick().c_str(),
                    pick().c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      case 7: { // equal-operand signed compare (boundary case)
        std::string r = pick();
        s = format("    l.sfges %s, %s\n", r.c_str(), r.c_str());
        s += format("    l.cmov  r22, %s, %s\n", pick().c_str(),
                    pick().c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      case 8: { // flag must survive an interleaved l.movhi
        std::string r = pick();
        s = format("    l.sfeq  %s, %s\n", r.c_str(), r.c_str());
        s += format("    l.movhi r22, 0x%x\n", uimm16());
        s += format("    l.cmov  r22, %s, %s\n", pick().c_str(),
                    pick().c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      case 9: // MAC accumulate then read-and-clear (back to back)
        s = format("    l.mac   %s, %s\n", pick().c_str(),
                   pick().c_str());
        s += "    l.macrc r22\n"
             "    l.add   r23, r23, r22\n";
        break;
      case 10: // longer MAC sequence
        s = format("    l.maci  %s, %d\n", pick().c_str(), simm16());
        s += format("    l.mac   %s, %s\n", pick().c_str(),
                    pick().c_str());
        s += format("    l.msb   %s, %s\n", pick().c_str(),
                    pick().c_str());
        s += "    l.macrc r22\n"
             "    l.add   r23, r23, r22\n";
        break;
      default: // write to r0 must stay a no-op
        s = format("    l.ori   r0, %s, 1\n", pick().c_str());
        s += "    l.addi  r22, r0, 0\n"
             "    l.add   r23, r23, r22\n";
        break;
    }
    return s;
}

std::string
Builder::memGadget()
{
    std::string s = addrSetup(pick());
    switch (rng_.below(6)) {
      case 0: { // word store / load round trip
        s += format("    l.sw    0(r6), %s\n", pick().c_str());
        s += "    l.lwz   r22, 0(r6)\n";
        break;
      }
      case 1: { // sub-word store, then signed and unsigned readback
        bool half = rng_.chance(0.5);
        if (half) {
            s += format("    l.sh    0(r6), %s\n", pick().c_str());
            s += rng_.chance(0.5) ? "    l.lhs   r22, 0(r6)\n"
                                  : "    l.lhz   r22, 0(r6)\n";
        } else {
            s += format("    l.sb    %u(r6), %s\n",
                        unsigned(rng_.below(4)), pick().c_str());
            s += rng_.chance(0.5) ? "    l.lbs   r22, 0(r6)\n"
                                  : "    l.lbz   r22, 0(r6)\n";
        }
        break;
      }
      case 2: { // load from the seeded data region
        static const std::vector<std::string> loads = {
            "l.lwz", "l.lws", "l.lhz", "l.lhs", "l.lbz", "l.lbs"};
        std::string op = rng_.pick(loads);
        unsigned off = unsigned(rng_.below(4)) * 4;
        s += format("    %-7s r22, %u(r6)\n", op.c_str(), off);
        break;
      }
      case 3: // negative-offset word store
        s += "    l.addi  r6, r6, 8\n";
        s += format("    l.sw    -8(r6), %s\n", pick().c_str());
        s += "    l.lwz   r22, -8(r6)\n";
        break;
      case 4: // store, then a load whose address aliases the store
              // in the low 12 bits (different full address)
        s += format("    l.sw    0(r6), %s\n", pick().c_str());
        s += "    l.lwz   r22, 0x1000(r6)\n";
        break;
      default: // repeated loads of one address
        s += "    l.lwz   r22, 0(r6)\n"
             "    l.lwz   r22, 0(r6)\n"
             "    l.lwz   r22, 0(r6)\n";
        break;
    }
    s += "    l.add   r23, r23, r22\n";
    return s;
}

std::string
Builder::branchGadget()
{
    std::string s;
    switch (rng_.below(4)) {
      case 0: { // forward jump over junk, ALU in the delay slot
        std::string past = lab("past");
        s = format("    l.j     %s\n", past.c_str());
        s += format("    l.addi  %s, %s, %d\n", pick().c_str(),
                    pick().c_str(), simm16());
        s += format("    l.movhi r22, 0x%x\n", uimm16());
        s += format("%s:\n", past.c_str());
        break;
      }
      case 1: { // data-dependent conditional branch, both paths merge
        std::string past = lab("past");
        static const std::vector<std::string> rr = {
            "l.sfeq", "l.sfne", "l.sfgtu", "l.sfltu",
            "l.sfgts", "l.sflts", "l.sfgeu", "l.sfges"};
        s = format("    %-8s %s, %s\n", rng_.pick(rr).c_str(),
                   pick().c_str(), pick().c_str());
        s += format("    %s %s\n",
                    rng_.chance(0.5) ? "l.bf   " : "l.bnf  ",
                    past.c_str());
        s += format("    l.xori  r22, %s, 0x%x\n", pick().c_str(),
                    unsigned(rng_.below(0x8000)));
        s += format("    l.add   r23, r23, %s\n", pick().c_str());
        s += format("%s:\n", past.c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      case 2: { // back-to-back fused pairs
        std::string a = lab("a"), b = lab("b");
        s = "    l.sfeq  r0, r0\n";
        s += format("    l.bf    %s\n", a.c_str());
        s += format("    l.addi  r22, %s, 5\n", pick().c_str());
        s += format("    l.movhi r22, 0x%x\n", uimm16());
        s += format("%s:\n", a.c_str());
        s += format("    l.bnf   %s\n", b.c_str());
        s += format("    l.xori  r22, r22, 0x%x\n",
                    unsigned(rng_.below(0x8000)));
        s += format("%s:\n", b.c_str());
        s += "    l.add   r23, r23, r22\n";
        break;
      }
      default: { // bounded counted loop
        std::string loop = lab("loop");
        unsigned n = 2 + unsigned(rng_.below(5));
        s = format("    l.addi  r25, r0, %u\n", n);
        s += format("%s:\n", loop.c_str());
        s += format("    l.add   r23, r23, %s\n", pick().c_str());
        s += "    l.addi  r25, r25, -1\n"
             "    l.sfgtsi r25, 0\n";
        s += format("    l.bf    %s\n", loop.c_str());
        s += "    l.addi  r23, r23, 1\n";
        break;
      }
    }
    return s;
}

std::string
Builder::callGadget()
{
    if (rng_.chance(0.5)) {
        std::string s = "    l.jal   fn_mix\n";
        s += format("    l.addi  r3, r3, %d\n", simm16());
        return s;
    }
    std::string s = "    l.movhi r6, hi(fn_rot)\n"
                    "    l.ori   r6, r6, lo(fn_rot)\n"
                    "    l.jalr  r6\n";
    s += format("    l.addi  r3, r3, %d\n", simm16());
    return s;
}

std::string
Builder::excGadget()
{
    std::string s;
    switch (rng_.below(6)) {
      case 0: // syscall; the handler records EPCR and SR
        s = "    l.sys   0\n"
            "    l.add   r23, r23, r26\n";
        break;
      case 1: { // syscall inside a delay slot (DSX, EPCR = target)
        std::string past = lab("past");
        s = "    l.sfeq  r0, r0\n";
        s += format("    l.bf    %s\n", past.c_str());
        s += "    l.sys   0\n";
        s += format("%s:\n", past.c_str());
        s += "    l.add   r23, r23, r27\n";
        break;
      }
      case 2: // trap
        s = "    l.trap  0\n"
            "    l.add   r23, r23, r26\n";
        break;
      case 3: // undecodable word (reserved primary opcode 0x3f)
        s = "    .word 0xfc000000\n"
            "    l.add   r23, r23, r26\n";
        break;
      case 4: // misaligned halfword load; handler accumulates EEAR
        s = addrSetup(pick());
        s += "    l.ori   r6, r6, 1\n"
             "    l.lhz   r22, 0(r6)\n"
             "    l.add   r23, r23, r22\n";
        break;
      default: // arithmetic overflow with range exceptions enabled
        s = "    l.mfspr r26, r0, SR\n"
            "    l.ori   r26, r26, 0x1000\n"
            "    l.mtspr r0, r26, SR\n"
            "    l.movhi r22, 0x7fff\n"
            "    l.ori   r22, r22, 0xffff\n"
            "    l.addi  r22, r22, 1\n"
            "    l.mfspr r26, r0, SR\n"
            "    l.andi  r26, r26, 0xe7ff\n"
            "    l.mtspr r0, r26, SR\n";
        break;
    }
    return s;
}

std::string
Builder::sprGadget()
{
    std::string s;
    switch (rng_.below(5)) {
      case 0: // EPCR0 write/readback
        s = format("    l.mtspr r0, %s, EPCR0\n", pick().c_str());
        s += "    l.mfspr r22, r0, EPCR0\n"
             "    l.add   r23, r23, r22\n";
        break;
      case 1: // EEAR0 write/readback
        s = format("    l.mtspr r0, %s, EEAR0\n", pick().c_str());
        s += "    l.mfspr r22, r0, EEAR0\n"
             "    l.add   r23, r23, r22\n";
        break;
      case 2: // ESR0 write/readback
        s = format("    l.mtspr r0, %s, ESR0\n", pick().c_str());
        s += "    l.mfspr r22, r0, ESR0\n"
             "    l.add   r23, r23, r22\n";
        break;
      case 3: // MAC halves via SPRs, drained by l.macrc
        s = format("    l.mtspr r0, %s, MACLO\n", pick().c_str());
        s += format("    l.mtspr r0, %s, MACHI\n", pick().c_str());
        s += "    l.macrc r22\n"
             "    l.add   r23, r23, r22\n";
        break;
      default: // SR flag-bit witness
        s = "    l.mfspr r22, r0, SR\n"
            "    l.andi  r22, r22, 0x200\n"
            "    l.add   r23, r23, r22\n";
        break;
    }
    return s;
}

std::string
Builder::gadget()
{
    double roll = rng_.uniform();
    double acc = config_.branchDensity;
    if (roll < acc)
        return branchGadget();
    acc += config_.memDensity;
    if (roll < acc)
        return memGadget();
    acc += config_.callDensity;
    if (roll < acc)
        return callGadget();
    acc += config_.excDensity;
    if (roll < acc)
        return excGadget();
    acc += config_.sprDensity;
    if (roll < acc)
        return sprGadget();
    return aluGadget();
}

GeneratedProgram
Builder::build(const std::string &name, uint64_t seed)
{
    GeneratedProgram p;
    p.name = name;
    p.seed = seed;
    p.header = header();
    // Keep the gadget chunk well inside [kTextBase, memBytes).
    uint32_t capacity =
        (config_.memBytes - kTextBase) / (4 * 16) - kPool.size();
    uint32_t count = std::min(config_.gadgets, capacity);
    for (gadgetIndex_ = 0; gadgetIndex_ < count; ++gadgetIndex_)
        p.gadgets.push_back(gadget());
    p.footer = footer();
    return p;
}

} // namespace

std::string
GeneratedProgram::source() const
{
    std::string s = header;
    for (const auto &g : gadgets)
        s += g;
    s += footer;
    return s;
}

std::string
GeneratedProgram::sourceSubset(const std::vector<size_t> &keep) const
{
    std::string s = header;
    for (size_t i : keep) {
        if (i < gadgets.size())
            s += gadgets[i];
    }
    s += footer;
    return s;
}

GeneratedProgram
generate(const GenConfig &config, uint64_t seed, uint32_t index)
{
    // splitmix-style per-program stream derivation.
    uint64_t derived = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    Builder builder(config, derived);
    return builder.build(format("fuzz-%llu-%u",
                                (unsigned long long)seed, index),
                        derived);
}

} // namespace scif::fuzz

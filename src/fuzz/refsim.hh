/**
 * @file
 * Independent reference interpreter for differential co-simulation.
 *
 * A second, deliberately naive big-switch implementation of the
 * ORBIS32 semantics, written from the architecture manual against
 * isa/insn.hh (the instruction registry and decoder) and isa/arch.hh
 * (architectural constants) only. It shares no execution code with
 * src/cpu: memory, exception entry, the delay-slot rules, and every
 * instruction's semantics are re-derived here, so a slip in either
 * implementation shows up as a divergence instead of cancelling out.
 *
 * The simulator quirks that are deliberate (and must be mirrored for
 * the diff to be meaningful) are commented at their re-implementation
 * below: the add family writes rD even when it raises a range
 * exception, l.rfe in a delay slot restores SR while the branch
 * supplies the next PC, and the tick timer only advances on boundaries
 * that complete an execute (fetch/decode faults do not tick).
 */

#ifndef SCIFINDER_FUZZ_REFSIM_HH
#define SCIFINDER_FUZZ_REFSIM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "asm/assembler.hh"
#include "isa/arch.hh"
#include "isa/insn.hh"

namespace scif::fuzz {

/** Outcome of one RefSim::step(). */
enum class RefStatus {
    Running,  ///< one boundary executed
    Halted,   ///< the halt idiom (l.nop 0xf) retired
    Budget,   ///< retirement budget already exhausted
};

/** Reference-interpreter configuration (mirrors cpu::CpuConfig). */
struct RefConfig
{
    uint32_t memBytes = 1 << 20;
    uint32_t userBase = 0x2000;
    uint64_t maxInsns = 1000000;
};

/** The naive reference implementation of the ISA. */
class RefSim
{
  public:
    explicit RefSim(RefConfig config = RefConfig());

    /** Load an assembled image and reset (PC to the entry point). */
    void loadProgram(const assembler::Program &program);

    /** Reset architectural state. */
    void reset();

    /**
     * Advance by one trace boundary: deliver one pending interrupt,
     * or execute one instruction (a control-flow instruction and its
     * delay slot count as one boundary).
     */
    RefStatus step();

    // --- state accessors for the differ ---
    uint32_t gpr(unsigned n) const { return gpr_[n]; }
    uint32_t pc() const { return pc_; }
    uint64_t retired() const { return retired_; }

    /** Read an SPR by address (supervisor view, same map as the CPU). */
    uint32_t readSpr(uint16_t addr) const;

    /** Word at @p addr, 0 when unmapped/misaligned (debug view). */
    uint32_t word(uint32_t addr) const;

    /**
     * Word addresses dirtied by stores during the most recent step().
     * Cleared at the start of each step.
     */
    const std::vector<uint32_t> &lastDirty() const { return lastDirty_; }

    uint32_t memBytes() const { return uint32_t(ram_.size()); }

  private:
    /** Result of executing one instruction. */
    struct Outcome
    {
        isa::Exception exception = isa::Exception::None;
        uint32_t eear = 0;
        bool halted = false;
        bool branchTaken = false;
        uint32_t branchTarget = 0;
        bool isRfe = false;
        uint32_t rfeTarget = 0;
    };

    Outcome execute(const isa::DecodedInsn &insn, uint32_t insn_pc);

    void enterException(isa::Exception e, uint32_t fault_pc,
                        uint32_t next_pc, uint32_t eear,
                        bool in_delay_slot, uint32_t branch_pc,
                        uint32_t branch_target);

    void writeSpr(uint16_t addr, uint32_t value);
    void writeGpr(unsigned n, uint32_t value);
    void tick();

    bool supervisor() const { return (sr_ >> isa::sr::SM) & 1; }

    /** Memory access check per the manual; None when legal. */
    isa::Exception checkAccess(uint32_t addr, unsigned size,
                               bool fetch) const;
    /** Big-endian load after a passing check. */
    uint32_t loadRam(uint32_t addr, unsigned size) const;
    /** Big-endian store after a passing check; tracks dirty words. */
    void storeRam(uint32_t addr, unsigned size, uint32_t value);

    RefConfig config_;
    std::vector<uint8_t> ram_;
    std::vector<uint32_t> lastDirty_;

    std::array<uint32_t, isa::numGprs> gpr_{};
    uint32_t pc_ = 0x100;
    uint32_t ppc_ = 0;
    uint32_t sr_ = isa::sr::resetValue;
    uint32_t epcr_ = 0;
    uint32_t eear_ = 0;
    uint32_t esr_ = 0;
    uint64_t mac_ = 0;
    uint32_t picmr_ = 0;
    uint32_t picsr_ = 0;
    uint32_t ttmr_ = 0;
    uint32_t ttcr_ = 0;
    uint64_t retired_ = 0;
};

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_REFSIM_HH

#include "refsim.hh"

namespace scif::fuzz {

using isa::DecodedInsn;
using isa::Exception;
using isa::Mnemonic;

namespace {

// Local naive helpers: the reference deliberately re-derives even the
// bit twiddling instead of reusing support/bits.hh, so a helper bug
// cannot cancel out across the two implementations.

uint32_t
sext(uint32_t value, unsigned width)
{
    if (width >= 32)
        return value;
    uint32_t m = 1u << (width - 1);
    value &= (1u << width) - 1;
    return (value ^ m) - m;
}

uint32_t
zext(uint32_t value, unsigned width)
{
    if (width >= 32)
        return value;
    return value & ((1u << width) - 1);
}

bool
srBit(uint32_t sr, unsigned pos)
{
    return (sr >> pos) & 1u;
}

uint32_t
withBit(uint32_t sr, unsigned pos, bool on)
{
    if (on)
        return sr | (1u << pos);
    return sr & ~(1u << pos);
}

} // namespace

RefSim::RefSim(RefConfig config)
    : config_(config), ram_(config.memBytes, 0)
{
    reset();
}

void
RefSim::loadProgram(const assembler::Program &program)
{
    std::fill(ram_.begin(), ram_.end(), 0);
    for (const auto &[addr, w] : program.words) {
        if (addr % 4 != 0 || uint64_t(addr) + 4 > ram_.size())
            continue;
        ram_[addr + 0] = uint8_t(w >> 24);
        ram_[addr + 1] = uint8_t(w >> 16);
        ram_[addr + 2] = uint8_t(w >> 8);
        ram_[addr + 3] = uint8_t(w);
    }
    reset();
    pc_ = program.entry;
}

void
RefSim::reset()
{
    gpr_.fill(0);
    pc_ = isa::exceptionVector(Exception::Reset);
    ppc_ = 0;
    sr_ = isa::sr::resetValue;
    epcr_ = 0;
    eear_ = 0;
    esr_ = 0;
    mac_ = 0;
    picmr_ = 0;
    picsr_ = 0;
    ttmr_ = 0;
    ttcr_ = 0;
    retired_ = 0;
    lastDirty_.clear();
}

uint32_t
RefSim::readSpr(uint16_t addr) const
{
    switch (addr) {
      case isa::spr::VR: return 0x12000001;
      case isa::spr::UPR: return 0x00000001;
      case isa::spr::NPC: return pc_;
      case isa::spr::SR: return sr_;
      case isa::spr::PPC: return ppc_;
      case isa::spr::EPCR0: return epcr_;
      case isa::spr::EEAR0: return eear_;
      case isa::spr::ESR0: return esr_;
      case isa::spr::MACLO: return uint32_t(mac_);
      case isa::spr::MACHI: return uint32_t(mac_ >> 32);
      case isa::spr::PICMR: return picmr_;
      case isa::spr::PICSR: return picsr_;
      case isa::spr::TTMR: return ttmr_;
      case isa::spr::TTCR: return ttcr_;
      default: return 0;
    }
}

void
RefSim::writeSpr(uint16_t addr, uint32_t value)
{
    switch (addr) {
      case isa::spr::SR:
        // FO always reads one.
        sr_ = value | (1u << isa::sr::FO);
        break;
      case isa::spr::EPCR0: epcr_ = value; break;
      case isa::spr::EEAR0: eear_ = value; break;
      case isa::spr::ESR0: esr_ = value; break;
      case isa::spr::MACLO:
        mac_ = (mac_ & 0xffffffff00000000ull) | value;
        break;
      case isa::spr::MACHI:
        mac_ = (mac_ & 0xffffffffull) | (uint64_t(value) << 32);
        break;
      case isa::spr::PICMR: picmr_ = value; break;
      case isa::spr::PICSR: picsr_ = value; break;
      case isa::spr::TTMR: ttmr_ = value; break;
      case isa::spr::TTCR: ttcr_ = value; break;
      default: break; // read-only / unknown SPRs drop writes
    }
}

void
RefSim::writeGpr(unsigned n, uint32_t value)
{
    if (n != 0 && n < isa::numGprs)
        gpr_[n] = value;
}

uint32_t
RefSim::word(uint32_t addr) const
{
    if (addr % 4 != 0 || uint64_t(addr) + 4 > ram_.size())
        return 0;
    return uint32_t(ram_[addr]) << 24 | uint32_t(ram_[addr + 1]) << 16 |
           uint32_t(ram_[addr + 2]) << 8 | uint32_t(ram_[addr + 3]);
}

isa::Exception
RefSim::checkAccess(uint32_t addr, unsigned size, bool fetch) const
{
    if (addr % size != 0)
        return Exception::Alignment;
    uint64_t end = uint64_t(addr) + size;
    if (end > ram_.size())
        return Exception::BusError;
    if (!supervisor() && addr < config_.userBase) {
        return fetch ? Exception::InsnPageFault
                     : Exception::DataPageFault;
    }
    return Exception::None;
}

uint32_t
RefSim::loadRam(uint32_t addr, unsigned size) const
{
    uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v = (v << 8) | ram_[addr + i];
    return v;
}

void
RefSim::storeRam(uint32_t addr, unsigned size, uint32_t value)
{
    for (unsigned i = 0; i < size; ++i)
        ram_[addr + i] = uint8_t(value >> (8 * (size - 1 - i)));
    uint32_t first = addr & ~3u;
    uint32_t last = (addr + size - 1) & ~3u;
    for (uint32_t w = first; w <= last; w += 4)
        lastDirty_.push_back(w);
}

void
RefSim::tick()
{
    uint32_t mode = (ttmr_ >> 30) & 3u;
    if (mode == 0)
        return;
    ttcr_ += 1;
    uint32_t period = ttmr_ & 0x0fffffffu;
    if ((ttcr_ & 0x0fffffffu) >= period && period != 0) {
        ttmr_ |= 1u << 28; // IP
        if (mode == 1)
            ttcr_ = 0;
        else if (mode == 2)
            ttmr_ &= ~(3u << 30);
    }
}

void
RefSim::enterException(Exception e, uint32_t fault_pc, uint32_t next_pc,
                       uint32_t eear, bool in_delay_slot,
                       uint32_t branch_pc, uint32_t branch_target)
{
    esr_ = sr_;

    switch (e) {
      case Exception::Syscall:
        // Resume past the syscall; past the delay slot that is the
        // branch target.
        epcr_ = in_delay_slot ? branch_target : next_pc;
        break;
      case Exception::Tick:
      case Exception::External:
        // The interrupted instruction has not executed.
        epcr_ = fault_pc;
        break;
      default:
        // Faults re-execute: the faulting instruction, or the branch
        // owning the delay slot.
        epcr_ = in_delay_slot ? branch_pc : fault_pc;
        break;
    }

    switch (e) {
      case Exception::BusError:
      case Exception::DataPageFault:
      case Exception::InsnPageFault:
      case Exception::Alignment:
        eear_ = eear;
        break;
      default:
        break;
    }

    uint32_t sr = sr_;
    sr = withBit(sr, isa::sr::SM, true);
    sr = withBit(sr, isa::sr::TEE, false);
    sr = withBit(sr, isa::sr::IEE, false);
    sr = withBit(sr, isa::sr::DSX, in_delay_slot);
    sr_ = sr;

    pc_ = isa::exceptionVector(e);
}

RefSim::Outcome
RefSim::execute(const DecodedInsn &insn, uint32_t insn_pc)
{
    Outcome out;
    Mnemonic m = insn.mnemonic;

    uint32_t a = gpr_[insn.ra];
    uint32_t b = gpr_[insn.rb];
    uint32_t imm = uint32_t(insn.imm);

    bool privileged = m == Mnemonic::L_MTSPR ||
                      m == Mnemonic::L_MFSPR || m == Mnemonic::L_RFE;
    if (privileged && !supervisor()) {
        out.exception = Exception::Illegal;
        return out;
    }

    auto setFlag = [&](bool f) { sr_ = withBit(sr_, isa::sr::F, f); };
    auto setCarry = [&](bool c) { sr_ = withBit(sr_, isa::sr::CY, c); };
    // Records the overflow flag; raises a range exception when OVE is
    // on. Execution continues: the add family writes rD even when the
    // exception is taken (the OR1200 writeback is not suppressed).
    auto setOverflow = [&](bool v) {
        sr_ = withBit(sr_, isa::sr::OV, v);
        if (v && srBit(sr_, isa::sr::OVE))
            out.exception = Exception::Range;
    };

    auto doLoad = [&](unsigned size, bool sign_extend) {
        uint32_t addr = a + imm;
        Exception fault = checkAccess(addr, size, false);
        if (fault != Exception::None) {
            out.exception = fault;
            out.eear = addr;
            return;
        }
        uint32_t value = loadRam(addr, size);
        if (sign_extend && size < 4)
            value = sext(value, 8 * size);
        writeGpr(insn.rd, value);
    };

    auto doStore = [&](unsigned size) {
        uint32_t addr = a + imm;
        Exception fault = checkAccess(addr, size, false);
        if (fault != Exception::None) {
            out.exception = fault;
            out.eear = addr;
            return;
        }
        storeRam(addr, size, zext(b, 8 * size));
    };

    switch (m) {
      case Mnemonic::L_NOP:
        if (imm == 0xf)
            out.halted = true;
        break;

      case Mnemonic::L_MOVHI:
        writeGpr(insn.rd, imm << 16);
        break;

      case Mnemonic::L_MACRC:
        writeGpr(insn.rd, uint32_t(mac_));
        mac_ = 0;
        break;

      case Mnemonic::L_SYS:
        out.exception = Exception::Syscall;
        break;
      case Mnemonic::L_TRAP:
        out.exception = Exception::Trap;
        break;

      case Mnemonic::L_RFE:
        // FO stays set across the restore.
        sr_ = esr_ | (1u << isa::sr::FO);
        out.isRfe = true;
        out.rfeTarget = epcr_;
        break;

      case Mnemonic::L_J:
      case Mnemonic::L_JAL:
        out.branchTaken = true;
        out.branchTarget = insn_pc + (imm << 2);
        if (m == Mnemonic::L_JAL)
            writeGpr(isa::linkReg, insn_pc + 8);
        break;

      case Mnemonic::L_JR:
      case Mnemonic::L_JALR:
        out.branchTaken = true;
        out.branchTarget = b;
        if (m == Mnemonic::L_JALR)
            writeGpr(isa::linkReg, insn_pc + 8);
        break;

      case Mnemonic::L_BF:
      case Mnemonic::L_BNF: {
        bool flag = srBit(sr_, isa::sr::F);
        bool taken = (m == Mnemonic::L_BF) ? flag : !flag;
        out.branchTaken = taken;
        if (taken)
            out.branchTarget = insn_pc + (imm << 2);
        break;
      }

      case Mnemonic::L_MACI:
        mac_ += uint64_t(int64_t(int32_t(a)) * int64_t(insn.imm));
        break;
      case Mnemonic::L_MAC:
        mac_ += uint64_t(int64_t(int32_t(a)) * int64_t(int32_t(b)));
        break;
      case Mnemonic::L_MSB:
        mac_ -= uint64_t(int64_t(int32_t(a)) * int64_t(int32_t(b)));
        break;

      case Mnemonic::L_LWZ: doLoad(4, false); break;
      case Mnemonic::L_LWS: doLoad(4, true); break;
      case Mnemonic::L_LBZ: doLoad(1, false); break;
      case Mnemonic::L_LBS: doLoad(1, true); break;
      case Mnemonic::L_LHZ: doLoad(2, false); break;
      case Mnemonic::L_LHS: doLoad(2, true); break;
      case Mnemonic::L_SW: doStore(4); break;
      case Mnemonic::L_SB: doStore(1); break;
      case Mnemonic::L_SH: doStore(2); break;

      case Mnemonic::L_ADD:
      case Mnemonic::L_ADDI: {
        uint32_t rhs = (m == Mnemonic::L_ADD) ? b : imm;
        uint64_t wide = uint64_t(a) + uint64_t(rhs);
        uint32_t sum = uint32_t(wide);
        setCarry(wide > 0xffffffffull);
        // Signed overflow: operands agree in sign, sum disagrees.
        setOverflow(int32_t(~(a ^ rhs) & (a ^ sum)) < 0);
        writeGpr(insn.rd, sum);
        break;
      }

      case Mnemonic::L_ADDC:
      case Mnemonic::L_ADDIC: {
        uint32_t rhs = (m == Mnemonic::L_ADDC) ? b : imm;
        uint32_t cin = srBit(sr_, isa::sr::CY) ? 1 : 0;
        uint64_t wide = uint64_t(a) + uint64_t(rhs) + cin;
        uint32_t sum = uint32_t(wide);
        setCarry(wide > 0xffffffffull);
        setOverflow(int32_t(~(a ^ rhs) & (a ^ sum)) < 0);
        writeGpr(insn.rd, sum);
        break;
      }

      case Mnemonic::L_SUB: {
        uint32_t diff = a - b;
        setCarry(a < b);
        setOverflow(int32_t((a ^ b) & (a ^ diff)) < 0);
        writeGpr(insn.rd, diff);
        break;
      }

      case Mnemonic::L_AND: writeGpr(insn.rd, a & b); break;
      case Mnemonic::L_ANDI: writeGpr(insn.rd, a & imm); break;
      case Mnemonic::L_OR: writeGpr(insn.rd, a | b); break;
      case Mnemonic::L_ORI: writeGpr(insn.rd, a | imm); break;
      case Mnemonic::L_XOR: writeGpr(insn.rd, a ^ b); break;
      case Mnemonic::L_XORI: writeGpr(insn.rd, a ^ imm); break;

      case Mnemonic::L_MUL:
      case Mnemonic::L_MULI: {
        uint32_t rhs = (m == Mnemonic::L_MUL) ? b : imm;
        int64_t prod = int64_t(int32_t(a)) * int64_t(int32_t(rhs));
        setOverflow(prod < INT32_MIN || prod > INT32_MAX);
        writeGpr(insn.rd, uint32_t(prod));
        break;
      }

      case Mnemonic::L_MULU: {
        uint64_t prod = uint64_t(a) * uint64_t(b);
        setCarry(prod > 0xffffffffull);
        writeGpr(insn.rd, uint32_t(prod));
        break;
      }

      case Mnemonic::L_DIV:
      case Mnemonic::L_DIVU: {
        if (b == 0) {
            // Divide by zero raises overflow; no quotient is written.
            setOverflow(true);
            break;
        }
        uint32_t q;
        if (m == Mnemonic::L_DIV) {
            if (a == 0x80000000u && b == 0xffffffffu) {
                // INT_MIN / -1: quotient unrepresentable, the OR1200
                // returns the dividend.
                setOverflow(true);
                q = a;
            } else {
                q = uint32_t(int32_t(a) / int32_t(b));
            }
        } else {
            q = a / b;
        }
        writeGpr(insn.rd, q);
        break;
      }

      case Mnemonic::L_SLL:
      case Mnemonic::L_SLLI: {
        uint32_t amt = ((m == Mnemonic::L_SLL) ? b : imm) & 31;
        writeGpr(insn.rd, a << amt);
        break;
      }
      case Mnemonic::L_SRL:
      case Mnemonic::L_SRLI: {
        uint32_t amt = ((m == Mnemonic::L_SRL) ? b : imm) & 31;
        writeGpr(insn.rd, a >> amt);
        break;
      }
      case Mnemonic::L_SRA:
      case Mnemonic::L_SRAI: {
        uint32_t amt = ((m == Mnemonic::L_SRA) ? b : imm) & 31;
        writeGpr(insn.rd, uint32_t(int32_t(a) >> amt));
        break;
      }
      case Mnemonic::L_ROR:
      case Mnemonic::L_RORI: {
        uint32_t amt = ((m == Mnemonic::L_ROR) ? b : imm) & 31;
        uint32_t r = amt ? (a >> amt) | (a << (32 - amt)) : a;
        writeGpr(insn.rd, r);
        break;
      }

      case Mnemonic::L_EXTHS: writeGpr(insn.rd, sext(a, 16)); break;
      case Mnemonic::L_EXTBS: writeGpr(insn.rd, sext(a, 8)); break;
      case Mnemonic::L_EXTHZ: writeGpr(insn.rd, zext(a, 16)); break;
      case Mnemonic::L_EXTBZ: writeGpr(insn.rd, zext(a, 8)); break;
      case Mnemonic::L_EXTWS:
      case Mnemonic::L_EXTWZ:
        writeGpr(insn.rd, a); // word extension is the identity
        break;

      case Mnemonic::L_CMOV:
        writeGpr(insn.rd, srBit(sr_, isa::sr::F) ? a : b);
        break;

      case Mnemonic::L_FF1: {
        uint32_t pos = 0;
        for (unsigned i = 0; i < 32; ++i) {
            if ((a >> i) & 1u) {
                pos = i + 1;
                break;
            }
        }
        writeGpr(insn.rd, pos);
        break;
      }

      case Mnemonic::L_MFSPR:
        writeGpr(insn.rd, readSpr(uint16_t(a | imm)));
        break;
      case Mnemonic::L_MTSPR:
        writeSpr(uint16_t(a | imm), b);
        break;

      // Set-flag compares, spelled out one by one.
      case Mnemonic::L_SFEQ: setFlag(a == b); break;
      case Mnemonic::L_SFNE: setFlag(a != b); break;
      case Mnemonic::L_SFGTU: setFlag(a > b); break;
      case Mnemonic::L_SFGEU: setFlag(a >= b); break;
      case Mnemonic::L_SFLTU: setFlag(a < b); break;
      case Mnemonic::L_SFLEU: setFlag(a <= b); break;
      case Mnemonic::L_SFGTS: setFlag(int32_t(a) > int32_t(b)); break;
      case Mnemonic::L_SFGES: setFlag(int32_t(a) >= int32_t(b)); break;
      case Mnemonic::L_SFLTS: setFlag(int32_t(a) < int32_t(b)); break;
      case Mnemonic::L_SFLES: setFlag(int32_t(a) <= int32_t(b)); break;
      case Mnemonic::L_SFEQI: setFlag(a == imm); break;
      case Mnemonic::L_SFNEI: setFlag(a != imm); break;
      case Mnemonic::L_SFGTUI: setFlag(a > imm); break;
      case Mnemonic::L_SFGEUI: setFlag(a >= imm); break;
      case Mnemonic::L_SFLTUI: setFlag(a < imm); break;
      case Mnemonic::L_SFLEUI: setFlag(a <= imm); break;
      case Mnemonic::L_SFGTSI: setFlag(int32_t(a) > insn.imm); break;
      case Mnemonic::L_SFGESI: setFlag(int32_t(a) >= insn.imm); break;
      case Mnemonic::L_SFLTSI: setFlag(int32_t(a) < insn.imm); break;
      case Mnemonic::L_SFLESI: setFlag(int32_t(a) <= insn.imm); break;

      default:
        break;
    }

    return out;
}

RefStatus
RefSim::step()
{
    lastDirty_.clear();

    if (retired_ >= config_.maxInsns)
        return RefStatus::Budget;

    // Pending asynchronous interrupts deliver first and do not retire.
    Exception irq = Exception::None;
    if (((ttmr_ >> 28) & 1u) && ((ttmr_ >> 29) & 1u) &&
        srBit(sr_, isa::sr::TEE)) {
        irq = Exception::Tick;
    } else if ((picsr_ & picmr_) != 0 && srBit(sr_, isa::sr::IEE)) {
        irq = Exception::External;
    }
    if (irq != Exception::None) {
        enterException(irq, pc_, pc_, 0, false, 0, 0);
        return RefStatus::Running;
    }

    uint32_t insn_pc = pc_;

    // Fetch. A faulting or undecodable fetch retires the boundary but
    // does not advance the tick timer (no execute happened).
    Exception ff = checkAccess(insn_pc, 4, true);
    if (ff != Exception::None) {
        enterException(ff, insn_pc, insn_pc + 4, insn_pc, false, 0, 0);
        ppc_ = insn_pc;
        ++retired_;
        return RefStatus::Running;
    }
    auto decoded = isa::decode(loadRam(insn_pc, 4));
    if (!decoded) {
        enterException(Exception::Illegal, insn_pc, insn_pc + 4, 0,
                       false, 0, 0);
        ppc_ = insn_pc;
        ++retired_;
        return RefStatus::Running;
    }

    if (decoded->info().hasDelaySlot) {
        // Branches themselves cannot fault; the delay slot can.
        Outcome br = execute(*decoded, insn_pc);

        uint32_t ds_pc = insn_pc + 4;
        Exception df = checkAccess(ds_pc, 4, true);
        if (df != Exception::None) {
            enterException(df, ds_pc, ds_pc + 4, ds_pc, true, insn_pc,
                           br.branchTarget);
            ppc_ = insn_pc;
            ++retired_;
            return RefStatus::Running;
        }
        auto ds_decoded = isa::decode(loadRam(ds_pc, 4));
        if (!ds_decoded || ds_decoded->info().hasDelaySlot) {
            // Undecodable word or control flow in the delay slot.
            enterException(Exception::Illegal, ds_pc, ds_pc + 4, 0,
                           true, insn_pc, br.branchTarget);
            ppc_ = insn_pc;
            ++retired_;
            return RefStatus::Running;
        }

        Outcome ds = execute(*ds_decoded, ds_pc);
        if (ds.exception != Exception::None) {
            enterException(ds.exception, ds_pc, ds_pc + 4, ds.eear,
                           true, insn_pc, br.branchTarget);
        } else {
            // An l.rfe in the delay slot restores SR (done inside
            // execute) but the branch still supplies the next PC.
            pc_ = br.branchTaken ? br.branchTarget : insn_pc + 8;
        }
        ppc_ = insn_pc;
        retired_ += 2;
        tick();
        if (ds.exception == Exception::None && ds.halted)
            return RefStatus::Halted;
        return RefStatus::Running;
    }

    Outcome r = execute(*decoded, insn_pc);
    if (r.exception != Exception::None) {
        enterException(r.exception, insn_pc, insn_pc + 4, r.eear,
                       false, 0, 0);
    } else {
        pc_ = r.isRfe ? r.rfeTarget : insn_pc + 4;
    }
    ppc_ = insn_pc;
    ++retired_;
    tick();
    if (r.exception == Exception::None && r.halted)
        return RefStatus::Halted;
    return RefStatus::Running;
}

} // namespace scif::fuzz

/**
 * @file
 * Seeded random program generator for the differential fuzzer.
 *
 * Programs are built from self-contained *gadgets*: short assembly
 * fragments with gadget-local labels, drawn from a catalog that spans
 * the whole ISA surface (ALU/compare/MAC arithmetic, masked memory
 * traffic, branches with populated delay slots, calls, SPR moves, and
 * deliberate exception triggers with resuming handlers). Because each
 * gadget is atomic and order-independent at the architectural level,
 * the shrinker (fuzz/differ.hh) can drop whole gadgets and reassemble
 * a still-valid program, which is what makes minimal repros cheap.
 *
 * Generation consumes a single per-program Rng stream derived from
 * (seed, index), so a corpus is reproducible from the seed alone and
 * identical no matter how many jobs later execute it.
 */

#ifndef SCIFINDER_FUZZ_PROGEN_HH
#define SCIFINDER_FUZZ_PROGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/random.hh"

namespace scif::fuzz {

/** Knobs for the random program generator. */
struct GenConfig
{
    uint32_t gadgets = 48;       ///< gadget count per program
    double branchDensity = 0.18; ///< branch/loop gadget probability
    double memDensity = 0.22;    ///< load/store gadget probability
    double callDensity = 0.06;   ///< call gadget probability
    double excDensity = 0.12;    ///< exception-trigger probability
    double sprDensity = 0.08;    ///< SPR-move gadget probability
    uint32_t memBytes = 1 << 18; ///< RAM footprint the layout assumes
};

/**
 * A generated program, kept in gadget-granular form so subsets can be
 * reassembled during shrinking. header holds the reset vector, the
 * exception handlers, and the register-seeding prologue; footer holds
 * the halt epilogue, the call targets, and the seeded data section.
 */
struct GeneratedProgram
{
    std::string name;   ///< "fuzz-<seed>-<index>"
    uint64_t seed = 0;  ///< per-program derived seed
    std::string header;
    std::vector<std::string> gadgets;
    std::string footer;

    /** Full program text. */
    std::string source() const;

    /** Program text with only the gadgets in @p keep (by index). */
    std::string sourceSubset(const std::vector<size_t> &keep) const;
};

/**
 * Generate program @p index of the corpus seeded with @p seed. The
 * program assembles cleanly by construction and halts on every path
 * (loops are bounded, exception handlers resume or halt).
 */
GeneratedProgram generate(const GenConfig &config, uint64_t seed,
                          uint32_t index);

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_PROGEN_HH

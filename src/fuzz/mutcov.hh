/**
 * @file
 * Mutation-coverage harness: runs every fuzz-corpus program on the
 * clean CPU and on each single-mutation CPU, and scores a mutation as
 * *killed* by a program when the two executions diverge — in the
 * emitted trace records (program point, fused flag, or any pre/post
 * state variable), in the final architectural state, or in how the
 * run ended (halt reason, retired count).
 *
 * The resulting report is the corpus-quality gate: every Table 1
 * (b-series) mutation must be killed by at least one program, or the
 * downstream SCI identification would be exercising bugs the corpus
 * cannot even observe. Held-out h-series survivors are reported but
 * not gated (some are ISA-invisible or need external interrupts by
 * design).
 */

#ifndef SCIFINDER_FUZZ_MUTCOV_HH
#define SCIFINDER_FUZZ_MUTCOV_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "cpu/mutation.hh"
#include "support/threadpool.hh"

namespace scif::fuzz {

/** Mutation-coverage run parameters. */
struct MutCovConfig
{
    uint32_t memBytes = 1 << 18;
    uint32_t userBase = 0x2000;
    uint64_t maxInsns = 20000;
};

/** Kill statistics for one mutation across the corpus. */
struct MutationScore
{
    cpu::Mutation mutation;
    std::string bugId;      ///< registry id ("b1".."h14")
    std::string synopsis;   ///< registry synopsis
    bool heldOut = false;
    uint32_t kills = 0;     ///< programs that killed this mutation
    uint32_t programs = 0;  ///< corpus size
    int64_t firstKiller = -1; ///< lowest killing program index

    bool killed() const { return kills > 0; }
};

/** Corpus-wide coverage results. */
struct CoverageReport
{
    std::vector<MutationScore> scores; ///< in Mutation enum order

    /** @return true when every Table 1 (b-series) mutation is killed. */
    bool allTable1Killed() const;

    /** Mutations (bug ids) no program killed. */
    std::vector<std::string> survivors() const;

    /** Deterministic text report (kill rates per mutation). */
    std::string render() const;
};

/**
 * @return the kill bitmask of one program: bit i set when the program
 * distinguishes Mutation(i) from the clean CPU.
 */
uint64_t killMask(const assembler::Program &program,
                  const MutCovConfig &config);

/**
 * Score the whole corpus; programs fan out over @p pool (results are
 * independent of the job count).
 */
CoverageReport runCoverage(const std::vector<assembler::Program> &corpus,
                           const MutCovConfig &config,
                           support::ThreadPool *pool);

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_MUTCOV_HH

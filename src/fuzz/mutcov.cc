#include "mutcov.hh"

#include <algorithm>

#include "bugs/registry.hh"
#include "cpu/cpu.hh"
#include "support/strings.hh"
#include "trace/record.hh"

namespace scif::fuzz {

namespace {

/** One complete execution: trace plus end-of-run summary. */
struct Execution
{
    trace::TraceBuffer trace;
    cpu::RunResult result;
    std::array<uint32_t, isa::numGprs> gpr{};
    uint32_t pc = 0;
    uint32_t sr = 0;
    uint32_t epcr = 0;
    uint32_t eear = 0;
};

Execution
execute(const assembler::Program &program, const MutCovConfig &config,
        cpu::MutationSet mutations)
{
    cpu::CpuConfig cc;
    cc.memBytes = config.memBytes;
    cc.userBase = config.userBase;
    cc.maxInsns = config.maxInsns;
    cc.mutations = mutations;

    Execution exec;
    cpu::Cpu c(cc);
    c.loadProgram(program);
    exec.result = c.run(&exec.trace);
    for (unsigned n = 0; n < isa::numGprs; ++n)
        exec.gpr[n] = c.gpr(n);
    exec.pc = c.pc();
    exec.sr = c.readSpr(isa::spr::SR);
    exec.epcr = c.readSpr(isa::spr::EPCR0);
    exec.eear = c.readSpr(isa::spr::EEAR0);
    return exec;
}

bool
sameRecord(const trace::Record &a, const trace::Record &b)
{
    return a.point == b.point && a.fused == b.fused && a.pre == b.pre &&
           a.post == b.post;
}

/** @return true when the two executions are distinguishable. */
bool
distinguishable(const Execution &clean, const Execution &mutant)
{
    if (clean.result.reason != mutant.result.reason ||
        clean.result.instructions != mutant.result.instructions)
        return true;
    if (clean.pc != mutant.pc || clean.sr != mutant.sr ||
        clean.epcr != mutant.epcr || clean.eear != mutant.eear ||
        clean.gpr != mutant.gpr)
        return true;
    const auto &cr = clean.trace.records();
    const auto &mr = mutant.trace.records();
    if (cr.size() != mr.size())
        return true;
    for (size_t i = 0; i < cr.size(); ++i) {
        if (!sameRecord(cr[i], mr[i]))
            return true;
    }
    return false;
}

} // namespace

uint64_t
killMask(const assembler::Program &program, const MutCovConfig &config)
{
    Execution clean = execute(program, config, {});

    uint64_t mask = 0;
    for (size_t m = 0; m < cpu::numMutations; ++m) {
        Execution mutant =
            execute(program, config, {cpu::Mutation(m)});
        if (distinguishable(clean, mutant))
            mask |= uint64_t(1) << m;
    }
    return mask;
}

CoverageReport
runCoverage(const std::vector<assembler::Program> &corpus,
            const MutCovConfig &config, support::ThreadPool *pool)
{
    std::vector<uint64_t> masks = support::parallelMap(
        pool, corpus, [&](const assembler::Program &program) {
            return killMask(program, config);
        });

    CoverageReport report;
    report.scores.resize(cpu::numMutations);
    for (const bugs::Bug &bug : bugs::all()) {
        MutationScore &score = report.scores[size_t(bug.mutation)];
        score.mutation = bug.mutation;
        score.bugId = bug.id;
        score.synopsis = bug.synopsis;
        score.heldOut = bug.heldOut;
        score.programs = uint32_t(corpus.size());
    }
    for (size_t i = 0; i < masks.size(); ++i) {
        for (size_t m = 0; m < cpu::numMutations; ++m) {
            if (!(masks[i] >> m & 1))
                continue;
            MutationScore &score = report.scores[m];
            ++score.kills;
            if (score.firstKiller < 0)
                score.firstKiller = int64_t(i);
        }
    }
    return report;
}

bool
CoverageReport::allTable1Killed() const
{
    return std::all_of(scores.begin(), scores.end(),
                       [](const MutationScore &s) {
                           return s.heldOut || s.killed();
                       });
}

std::vector<std::string>
CoverageReport::survivors() const
{
    std::vector<std::string> out;
    for (const MutationScore &s : scores) {
        if (!s.killed())
            out.push_back(s.bugId);
    }
    return out;
}

std::string
CoverageReport::render() const
{
    std::string out;
    out += "mutation coverage\n";
    out += "=================\n";
    out += format("%-5s %-9s %7s %9s  %s\n", "bug", "status", "kills",
                  "corpus", "synopsis");
    for (const MutationScore &s : scores) {
        out += format("%-5s %-9s %7u %9u  %s%s\n", s.bugId.c_str(),
                      s.killed() ? "killed" : "SURVIVED", s.kills,
                      s.programs, s.synopsis.c_str(),
                      s.heldOut ? " [held out]" : "");
    }
    uint32_t killedB = 0, totalB = 0, killedH = 0, totalH = 0;
    for (const MutationScore &s : scores) {
        (s.heldOut ? totalH : totalB) += 1;
        if (s.killed())
            (s.heldOut ? killedH : killedB) += 1;
    }
    out += format("table 1: %u/%u killed; held out: %u/%u killed\n",
                  killedB, totalB, killedH, totalH);
    out += format("gate (all table 1 killed): %s\n",
                  allTable1Killed() ? "PASS" : "FAIL");
    return out;
}

} // namespace scif::fuzz

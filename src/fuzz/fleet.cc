#include "fleet.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "bugs/registry.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::fuzz {

namespace {

namespace fs = std::filesystem;

/** Shared divergence-signature table: fixed size, linear probing,
 *  sized far above any plausible distinct-signature count so the
 *  probe-exhaustion fallback is a correctness backstop, not a
 *  working mode. */
constexpr size_t tableSlots = size_t(1) << 14;
constexpr size_t maxProbes = 64;
constexpr uint32_t noIndex = 0xffffffffu;

struct SigSlot
{
    std::atomic<uint64_t> sig{0};
    std::atomic<uint32_t> index{noIndex};
};

/**
 * Dedup key of a divergence: FNV-1a over the mismatching state
 * element (the text before the first colon of the mismatch
 * description). The concrete values differ per seed; the element a
 * bug corrupts rarely does, so one signature stands for one
 * observable failure mode of the corpus.
 */
uint64_t
signatureOf(const Divergence &d)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : d.what) {
        if (c == ':')
            break;
        h ^= uint8_t(c);
        h *= 0x100000001b3ull;
    }
    return h != 0 ? h : 1; // 0 marks an empty slot
}

/**
 * Publish one divergence into the shared table — the mutex-free fast
 * path. A slot is claimed by CAS on the signature; the canonical
 * (lowest) corpus index is maintained with a CAS-min loop, so the
 * final table contents are independent of shard interleaving. Probe
 * exhaustion raises @p overflow, switching the merge to the exact
 * per-shard lists.
 */
void
publish(std::vector<SigSlot> &table, std::atomic<bool> &overflow,
        uint64_t sig, uint32_t index)
{
    size_t at = size_t(sig) & (tableSlots - 1);
    for (size_t probe = 0; probe < maxProbes; ++probe) {
        SigSlot &slot = table[at];
        uint64_t cur = slot.sig.load(std::memory_order_acquire);
        if (cur == 0 &&
            slot.sig.compare_exchange_strong(
                cur, sig, std::memory_order_acq_rel)) {
            cur = sig;
        }
        if (cur == sig) {
            uint32_t seen = slot.index.load(std::memory_order_relaxed);
            while (index < seen &&
                   !slot.index.compare_exchange_weak(
                       seen, index, std::memory_order_acq_rel)) {
            }
            return;
        }
        at = (at + 1) & (tableSlots - 1);
    }
    overflow.store(true, std::memory_order_relaxed);
}

/** Results one shard accumulates privately during the scan. */
struct ShardState
{
    std::vector<std::pair<uint64_t, uint32_t>> found; ///< (sig, index)
    std::vector<uint32_t> kills;
    std::vector<int64_t> firstKiller;
    uint64_t claims = 0;
};

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    out << text;
}

void
ensureDir(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        fatal("cannot create directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    }
}

void
shardMain(const FleetConfig &config, const DiffConfig &dc,
          const MutCovConfig &mc, const std::string &corpusDir,
          std::atomic<uint32_t> &cursor, std::vector<SigSlot> &table,
          std::atomic<bool> &overflow, ShardState &state)
{
    const uint32_t count = config.fuzz.count;
    const uint32_t grain = std::max<uint32_t>(config.grain, 1);
    for (;;) {
        // Work stealing: every shard pulls the next unclaimed seed
        // range; nothing about the results depends on which shard
        // wins a pull.
        uint32_t begin =
            cursor.fetch_add(grain, std::memory_order_relaxed);
        if (begin >= count)
            break;
        ++state.claims;
        uint32_t end = std::min(count, begin + grain);
        for (uint32_t i = begin; i < end; ++i) {
            GeneratedProgram gen =
                generate(config.fuzz.gen, config.fuzz.seed, i);
            std::string source = gen.source();
            assembler::Result assembled = assembler::assemble(source);
            if (!assembled.ok)
                fatal("fleet program %u does not assemble", i);
            if (!corpusDir.empty()) {
                writeFile(format("%s/prog_%04u.s", corpusDir.c_str(), i),
                          source);
            }

            Divergence d = diffProgram(assembled.program, dc);
            if (d) {
                uint64_t sig = signatureOf(d);
                publish(table, overflow, sig, i);
                state.found.emplace_back(sig, i);
            }

            if (config.fuzz.mutationCoverage) {
                uint64_t mask = killMask(assembled.program, mc);
                for (size_t m = 0; m < cpu::numMutations; ++m) {
                    if (!(mask >> m & 1))
                        continue;
                    ++state.kills[m];
                    if (state.firstKiller[m] < 0 ||
                        int64_t(i) < state.firstKiller[m]) {
                        state.firstKiller[m] = int64_t(i);
                    }
                }
            }
        }
    }
}

} // namespace

FleetResult
runFleet(const FleetConfig &config)
{
    SCIF_ASSERT(config.fuzz.replayDir.empty());

    unsigned shards = config.shards;
    if (shards == 0)
        shards = std::max(1u, std::thread::hardware_concurrency());

    DiffConfig dc;
    dc.memBytes = config.fuzz.gen.memBytes;
    dc.maxInsns = config.fuzz.maxInsns;
    dc.maxSteps = config.fuzz.maxInsns * 2;
    dc.mutations = config.mutations;

    MutCovConfig mc;
    mc.memBytes = config.fuzz.gen.memBytes;
    mc.maxInsns = config.fuzz.maxInsns;

    std::string corpusDir;
    if (!config.fuzz.artifactDir.empty()) {
        corpusDir = config.fuzz.artifactDir + "/corpus";
        ensureDir(corpusDir);
    }

    std::vector<SigSlot> table(tableSlots);
    std::atomic<bool> overflow{false};
    std::atomic<uint32_t> cursor{0};
    std::vector<ShardState> states(shards);
    for (ShardState &s : states) {
        s.kills.assign(cpu::numMutations, 0);
        s.firstKiller.assign(cpu::numMutations, -1);
    }

    {
        std::vector<std::thread> threads;
        threads.reserve(shards);
        for (unsigned s = 0; s < shards; ++s) {
            threads.emplace_back([&, s] {
                shardMain(config, dc, mc, corpusDir, cursor, table,
                          overflow, states[s]);
            });
        }
        for (std::thread &t : threads)
            t.join();
    }

    FleetResult out;
    out.shardsUsed = shards;
    for (const ShardState &s : states) {
        out.claims += s.claims;
        out.divergences += s.found.size();
    }

    // Canonical divergence per signature (lowest corpus index). The
    // table already holds exactly that; the exact rebuild from the
    // per-shard lists only runs after a probe overflow, and computes
    // the identical map.
    std::map<uint64_t, uint32_t> canon;
    if (overflow.load()) {
        for (const ShardState &s : states) {
            for (auto [sig, index] : s.found) {
                auto [it, fresh] = canon.emplace(sig, index);
                if (!fresh && index < it->second)
                    it->second = index;
            }
        }
    } else {
        for (const SigSlot &slot : table) {
            uint64_t sig = slot.sig.load(std::memory_order_relaxed);
            if (sig != 0) {
                canon.emplace(sig,
                              slot.index.load(
                                  std::memory_order_relaxed));
            }
        }
    }
    out.dedupDropped = out.divergences - canon.size();

    // Shrink only the canonical representative of each signature,
    // lowest corpus index first (a diffProgram run reports a single
    // first mismatch, so distinct signatures never share an index).
    std::vector<uint32_t> indices;
    indices.reserve(canon.size());
    for (auto [sig, index] : canon)
        indices.push_back(index);
    std::sort(indices.begin(), indices.end());

    FuzzResult &result = out.result;
    result.programs = config.fuzz.count;
    for (uint32_t index : indices) {
        GeneratedProgram gen =
            generate(config.fuzz.gen, config.fuzz.seed, index);
        ShrinkResult minimal = shrink(gen, dc);
        Repro repro;
        repro.index = index;
        repro.name = gen.name;
        repro.divergence = minimal.divergence;
        repro.source = minimal.source;
        result.repros.push_back(std::move(repro));
    }

    if (config.fuzz.mutationCoverage) {
        CoverageReport &report = result.coverage;
        report.scores.resize(cpu::numMutations);
        for (const bugs::Bug &bug : bugs::all()) {
            MutationScore &score = report.scores[size_t(bug.mutation)];
            score.mutation = bug.mutation;
            score.bugId = bug.id;
            score.synopsis = bug.synopsis;
            score.heldOut = bug.heldOut;
            score.programs = config.fuzz.count;
        }
        for (size_t m = 0; m < cpu::numMutations; ++m) {
            MutationScore &score = report.scores[m];
            for (const ShardState &s : states) {
                score.kills += s.kills[m];
                if (s.firstKiller[m] >= 0 &&
                    (score.firstKiller < 0 ||
                     s.firstKiller[m] < score.firstKiller)) {
                    score.firstKiller = s.firstKiller[m];
                }
            }
        }
        result.coverageRan = true;
    }

    if (!config.fuzz.artifactDir.empty()) {
        const std::string &dir = config.fuzz.artifactDir;
        ensureDir(dir);
        writeFile(dir + "/fuzz_report.txt", result.render());
        for (const Repro &r : result.repros) {
            writeFile(format("%s/repro_%04u.s", dir.c_str(), r.index),
                      r.source);
        }
        if (result.coverageRan) {
            writeFile(dir + "/mutation_coverage.txt",
                      result.coverage.render());
            std::string survivors;
            for (const std::string &id : result.coverage.survivors())
                survivors += id + "\n";
            writeFile(dir + "/surviving_mutants.txt", survivors);
        }
    }

    return out;
}

} // namespace scif::fuzz

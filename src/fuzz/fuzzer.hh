/**
 * @file
 * Top-level fuzzing driver: generates (or replays) a corpus, runs the
 * differential co-simulation on every program, shrinks any mismatch
 * to a minimal repro, optionally scores mutation coverage, and writes
 * the corpus/report artifacts. Drives `scifinder fuzz`.
 *
 * Determinism contract: for a fixed (seed, count, generator config)
 * the corpus, every report, and every artifact byte are identical
 * across runs and across --jobs values. Generation is serial (one Rng
 * stream per program, derived from seed and index); execution fans
 * out over the thread pool with index-ordered result collection.
 */

#ifndef SCIFINDER_FUZZ_FUZZER_HH
#define SCIFINDER_FUZZ_FUZZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/differ.hh"
#include "fuzz/mutcov.hh"
#include "fuzz/progen.hh"
#include "support/threadpool.hh"

namespace scif::fuzz {

/** One fuzzing campaign's parameters. */
struct FuzzConfig
{
    uint64_t seed = 1;          ///< corpus master seed
    uint32_t count = 256;       ///< programs to generate
    bool mutationCoverage = false; ///< also score mutation kills
    std::string artifactDir;    ///< save corpus + reports here ("" = no)
    std::string replayDir;      ///< replay *.s from here instead of
                                ///< generating ("" = generate)
    GenConfig gen;              ///< program-shape knobs
    uint64_t maxInsns = 20000;  ///< per-program retirement budget
};

/** One diverging program, minimized. */
struct Repro
{
    uint32_t index = 0;     ///< corpus index
    std::string name;       ///< program name
    Divergence divergence;  ///< mismatch of the minimized program
    std::string source;     ///< minimal diverging source
};

/** Results of one fuzzing campaign. */
struct FuzzResult
{
    uint32_t programs = 0;
    std::vector<Repro> repros;   ///< divergences, minimized
    bool coverageRan = false;
    CoverageReport coverage;

    /** Campaign verdict: no divergence and (when run) a full Table 1
     *  mutation kill. */
    bool ok() const;

    /** Deterministic human-readable campaign report. */
    std::string render() const;
};

/** Run one campaign. @p pool may be null (serial). */
FuzzResult runFuzz(const FuzzConfig &config, support::ThreadPool *pool);

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_FUZZER_HH

/**
 * @file
 * Differential co-simulation: run the OR1200-model Cpu and the naive
 * reference interpreter in lockstep and diff the software-visible
 * architectural state at every instruction boundary — GPRs, PC, the
 * exception/status SPRs, the MAC accumulator, and every memory word
 * the reference dirtied on that boundary — plus a full-memory sweep
 * when the run ends. A ddmin-style shrinker reduces a mismatching
 * program to a minimal gadget subset that still diverges.
 */

#ifndef SCIFINDER_FUZZ_DIFFER_HH
#define SCIFINDER_FUZZ_DIFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "cpu/mutation.hh"
#include "fuzz/progen.hh"

namespace scif::fuzz {

/** Co-simulation parameters. */
struct DiffConfig
{
    /** Mutations injected into the Cpu side only (empty = clean CPU
     *  vs reference; non-empty turns the differ into a mutant
     *  detector, which is how the shrinker minimizes mutation
     *  repros). */
    cpu::MutationSet mutations;
    uint32_t memBytes = 1 << 18;
    uint32_t userBase = 0x2000;
    uint64_t maxInsns = 20000;  ///< retirement budget per side
    uint64_t maxSteps = 40000;  ///< lockstep boundary limit

    /** Cpu-side front end: predecoded block cache (the default) or
     *  the interpreted fetch-decode loop. The reference interpreter
     *  is independent of both, so the differ doubles as the oracle
     *  for the front ends themselves. */
    bool predecode = true;
    /** Superblock chaining on the Cpu side (ignored when predecode
     *  is off). */
    bool chain = true;
};

/** First mismatch found by a co-simulation run. */
struct Divergence
{
    bool diverged = false;
    uint64_t step = 0;   ///< boundary index of the first mismatch
    std::string what;    ///< human-readable mismatch description

    explicit operator bool() const { return diverged; }
};

/** Run both implementations on @p program and report the first
 *  mismatch (if any). */
Divergence diffProgram(const assembler::Program &program,
                       const DiffConfig &config);

/** Result of shrinking a diverging generated program. */
struct ShrinkResult
{
    std::vector<size_t> kept;  ///< surviving gadget indices
    std::string source;        ///< reassembled minimal program
    Divergence divergence;     ///< mismatch of the minimal program
};

/**
 * Minimize a diverging program by removing gadgets (halving chunk
 * sizes down to single gadgets) while the divergence persists.
 * @p program must diverge under @p config to begin with.
 */
ShrinkResult shrink(const GeneratedProgram &program,
                    const DiffConfig &config);

} // namespace scif::fuzz

#endif // SCIFINDER_FUZZ_DIFFER_HH

#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace scif {

namespace {

/** splitmix64, used to expand the seed into the xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    SCIF_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    SCIF_ASSERT(lo <= hi);
    return lo + int64_t(below(uint64_t(hi - lo) + 1));
}

double
Rng::uniform()
{
    return double(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (size_t i = n; i > 1; --i) {
        size_t j = below(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

} // namespace scif

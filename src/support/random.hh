/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic pieces of the tool chain (random workload generation,
 * train/test splits, cross-validation folds) draw from this generator so
 * that every experiment is reproducible from a seed.
 */

#ifndef SCIFINDER_SUPPORT_RANDOM_HH
#define SCIFINDER_SUPPORT_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scif {

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 * Deterministic across platforms (no libstdc++ distribution objects).
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(uint64_t seed = 0x5c1f1de4ull);

    /** @return the next raw 64-bit draw. */
    uint64_t next();

    /** @return a uniform integer in [0, bound), bound > 0. */
    uint64_t below(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return a standard-normal draw (Box-Muller). */
    double gaussian();

    /** @return true with probability @p p. */
    bool chance(double p);

    /** Fisher-Yates shuffle of an index vector 0..n-1. */
    std::vector<size_t> permutation(size_t n);

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[below(v.size())];
    }

  private:
    uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace scif

#endif // SCIFINDER_SUPPORT_RANDOM_HH

#include "threadpool.hh"

#include "support/logging.hh"

namespace scif::support {

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = resolveJobs(0);
    for (size_t i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        stop_ = true;
    }
    sleepCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

size_t
ThreadPool::resolveJobs(size_t jobs)
{
    if (jobs != 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::submit(std::function<void()> task)
{
    SCIF_ASSERT(!workers_.empty());
    size_t q = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
               workers_.size();
    {
        std::lock_guard<std::mutex> lock(workers_[q]->mutex);
        workers_[q]->tasks.push_back(std::move(task));
    }
    {
        std::lock_guard<std::mutex> lock(sleepMutex_);
        ++submitVersion_;
    }
    sleepCv_.notify_all();
}

bool
ThreadPool::runOneTask(size_t self)
{
    std::function<void()> task;

    // Own deque first, newest task (LIFO keeps caches warm)...
    {
        Worker &w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.tasks.empty()) {
            task = std::move(w.tasks.back());
            w.tasks.pop_back();
        }
    }
    // ...then steal the oldest task of the nearest busy victim.
    if (!task) {
        for (size_t d = 1; d < workers_.size() && !task; ++d) {
            Worker &v = *workers_[(self + d) % workers_.size()];
            std::lock_guard<std::mutex> lock(v.mutex);
            if (!v.tasks.empty()) {
                task = std::move(v.tasks.front());
                v.tasks.pop_front();
            }
        }
    }
    if (!task)
        return false;
    task();
    return true;
}

void
ThreadPool::workerLoop(size_t self)
{
    while (true) {
        uint64_t seen;
        {
            std::lock_guard<std::mutex> lock(sleepMutex_);
            seen = submitVersion_;
        }
        if (runOneTask(self))
            continue;
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stop_)
            return;
        sleepCv_.wait(lock, [&] {
            return stop_ || submitVersion_ != seen;
        });
        if (stop_)
            return;
    }
}

void
parallelFor(ThreadPool *pool, size_t n,
            const std::function<void(size_t)> &fn)
{
    if (!pool || pool->threadCount() <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // The loop state is shared by the queued helper tasks, which can
    // outlive this call on an abort path, so it lives on the heap.
    struct State
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t n;
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
        std::atomic<bool> abort{false};
    };
    auto state = std::make_shared<State>();
    state->n = n;

    auto body = [state, &fn] {
        while (true) {
            size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= state->n)
                break;
            if (!state->abort.load(std::memory_order_relaxed)) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    state->abort.store(true,
                                       std::memory_order_relaxed);
                }
            }
            if (state->done.fetch_add(1, std::memory_order_acq_rel) +
                    1 == state->n) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->cv.notify_all();
            }
        }
    };

    // One helper task per worker; the body self-schedules via the
    // shared index counter, so idle helpers exit immediately. The
    // helpers capture fn by reference — safe because this frame
    // cannot unwind before done == n.
    size_t helpers = std::min(pool->threadCount(), n - 1);
    auto shared_body = std::make_shared<decltype(body)>(body);
    for (size_t t = 0; t < helpers; ++t)
        pool->submit([shared_body] { (*shared_body)(); });

    body(); // the caller participates

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&] {
            return state->done.load(std::memory_order_acquire) ==
                   state->n;
        });
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace scif::support

#include "strings.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace scif {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace(uint8_t(text[i])))
            ++i;
        size_t start = i;
        while (i < text.size() && !std::isspace(uint8_t(text[i])))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(uint8_t(text[begin])))
        ++begin;
    while (end > begin && std::isspace(uint8_t(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (auto &c : out)
        c = char(std::tolower(uint8_t(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t>
parseInt(std::string_view text)
{
    if (text.empty())
        return std::nullopt;

    bool negative = false;
    size_t i = 0;
    if (text[0] == '-' || text[0] == '+') {
        negative = text[0] == '-';
        i = 1;
    }
    if (i >= text.size())
        return std::nullopt;

    int base = 10;
    if (text.size() - i > 2 && text[i] == '0') {
        char c = char(std::tolower(uint8_t(text[i + 1])));
        if (c == 'x') {
            base = 16;
            i += 2;
        } else if (c == 'b') {
            base = 2;
            i += 2;
        }
    }

    uint64_t value = 0;
    bool any = false;
    for (; i < text.size(); ++i) {
        char c = char(std::tolower(uint8_t(text[i])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        uint64_t next = value * uint64_t(base) + uint64_t(digit);
        if (next < value)
            return std::nullopt; // overflow
        value = next;
        any = true;
    }
    if (!any)
        return std::nullopt;

    if (negative)
        return -int64_t(value);
    return int64_t(value);
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out(size_t(needed), '\0');
    std::vsnprintf(out.data(), size_t(needed) + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string
hex32(uint32_t value)
{
    return format("0x%08x", value);
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace scif

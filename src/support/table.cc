#include "table.hh"

#include <algorithm>

namespace scif {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(std::max(row.size(), header_.size()));
    rows_.push_back(std::move(row));
    ++dataRows_;
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < widths.size())
                line += "  ";
        }
        // Strip trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string sep;
    for (size_t c = 0; c < widths.size(); ++c) {
        sep += std::string(widths[c], '-');
        if (c + 1 < widths.size())
            sep += "  ";
    }
    sep += "\n";

    std::string out = renderRow(header_) + sep;
    for (const auto &row : rows_)
        out += row.empty() ? sep : renderRow(row);
    return out;
}

} // namespace scif

/**
 * @file
 * Bounded multi-producer single-consumer ingestion queue.
 *
 * The checking service (monitor/service.hh) shards its sessions over
 * worker threads; every shard owns one of these queues and many client
 * threads push micro-batches into it concurrently. The queue is
 * bounded: a full queue blocks the producer, which is the service's
 * backpressure mechanism — a client can never run ahead of checking
 * by more than capacity() batches, so service memory stays bounded no
 * matter how fast the producers are.
 *
 * The implementation is a mutex + two condition variables rather than
 * a lock-free ring: items are whole micro-batches (hundreds of
 * records), so queue operations happen thousands of times per second,
 * not millions, and the simple form is trivially TSan-clean.
 */

#ifndef SCIFINDER_SUPPORT_MPSCQUEUE_HH
#define SCIFINDER_SUPPORT_MPSCQUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace scif::support {

template <typename T>
class BoundedMpscQueue
{
  public:
    explicit BoundedMpscQueue(size_t capacity)
        : capacity_(std::max<size_t>(1, capacity))
    {}

    BoundedMpscQueue(const BoundedMpscQueue &) = delete;
    BoundedMpscQueue &operator=(const BoundedMpscQueue &) = delete;

    /** @return the bound, in items. */
    size_t capacity() const { return capacity_; }

    /**
     * Enqueue one item, blocking while the queue is full
     * (backpressure). Items pushed after close() are dropped.
     */
    void
    push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notFull_.wait(lock, [&] {
                return items_.size() < capacity_ || closed_;
            });
            if (closed_)
                return;
            items_.push_back(std::move(item));
            highWater_ = std::max(highWater_, items_.size());
        }
        notEmpty_.notify_one();
    }

    /**
     * Dequeue one item, blocking until one arrives or the queue is
     * closed and drained.
     *
     * @return false when closed and empty (the consumer's exit
     *         signal).
     */
    bool
    pop(T &out)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock,
                           [&] { return !items_.empty() || closed_; });
            if (items_.empty())
                return false;
            out = std::move(items_.front());
            items_.pop_front();
        }
        notFull_.notify_one();
        return true;
    }

    /** Unblock everyone; the consumer drains what was queued. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** @return current queue depth, in items. */
    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    /** @return the deepest the queue has ever been, in items. */
    size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return highWater_;
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    const size_t capacity_;
    size_t highWater_ = 0;
    bool closed_ = false;
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_MPSCQUEUE_HH

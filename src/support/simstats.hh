/**
 * @file
 * Process-wide simulation front-end telemetry.
 *
 * The predecode front end keeps its counters per BlockCache (one per
 * Cpu), but the pipeline wants per-stage totals: how many boundaries
 * dispatched through a chained block transition, how many links
 * invalidation severed, and how often the dispatcher fell back to the
 * interpreted path. Every BlockCache flushes its lifetime counters
 * into these process-wide atomics when it dies — Cpus are scoped to
 * the stage functions that create them, so core::Stage can sample the
 * totals around a stage body and report the deltas (the same pattern
 * ResidentGauge uses for trace residency).
 */

#ifndef SCIFINDER_SUPPORT_SIMSTATS_HH
#define SCIFINDER_SUPPORT_SIMSTATS_HH

#include <atomic>
#include <cstdint>

namespace scif::support {

/** Accumulated front-end counters of every dead BlockCache. */
class FrontEndCounters
{
  public:
    struct Snapshot
    {
        uint64_t chainHits = 0;
        uint64_t chainSevers = 0;
        uint64_t fallbacks = 0;
    };

    /** Fold one cache's lifetime counters into the process totals. */
    static void
    add(uint64_t chainHits, uint64_t chainSevers, uint64_t fallbacks)
    {
        chainHits_.fetch_add(chainHits, std::memory_order_relaxed);
        chainSevers_.fetch_add(chainSevers, std::memory_order_relaxed);
        fallbacks_.fetch_add(fallbacks, std::memory_order_relaxed);
    }

    /** @return the current process totals (monotone). */
    static Snapshot
    snapshot()
    {
        Snapshot s;
        s.chainHits = chainHits_.load(std::memory_order_relaxed);
        s.chainSevers = chainSevers_.load(std::memory_order_relaxed);
        s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
        return s;
    }

  private:
    inline static std::atomic<uint64_t> chainHits_{0};
    inline static std::atomic<uint64_t> chainSevers_{0};
    inline static std::atomic<uint64_t> fallbacks_{0};
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_SIMSTATS_HH

/**
 * @file
 * Small string helpers shared across the tool chain (tokenizing assembly
 * source, formatting invariants and report tables).
 */

#ifndef SCIFINDER_SUPPORT_STRINGS_HH
#define SCIFINDER_SUPPORT_STRINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scif {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text on runs of whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Strip leading and trailing whitespace. */
std::string trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** @return true if @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/**
 * Parse an integer literal: decimal, 0x-hex, 0b-binary, optional
 * leading '-'. Returns nullopt on malformed input or overflow of
 * the 64-bit intermediate.
 */
std::optional<int64_t> parseInt(std::string_view text);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a 32-bit value as 0x%08x. */
std::string hex32(uint32_t value);

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace scif

#endif // SCIFINDER_SUPPORT_STRINGS_HH

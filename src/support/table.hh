/**
 * @file
 * Plain-text table renderer used by the benchmark harness to print the
 * paper's tables in a readable, diff-friendly format.
 */

#ifndef SCIFINDER_SUPPORT_TABLE_HH
#define SCIFINDER_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace scif {

/**
 * A simple column-aligned text table. Collect a header plus rows of
 * strings, then render with padding computed from the widest cell.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** @return the rendered table, one trailing newline per row. */
    std::string render() const;

    /** @return number of data rows (separators excluded). */
    size_t rowCount() const { return dataRows_; }

  private:
    std::vector<std::string> header_;
    /** Rows; an empty vector encodes a separator. */
    std::vector<std::vector<std::string>> rows_;
    size_t dataRows_ = 0;
};

} // namespace scif

#endif // SCIFINDER_SUPPORT_TABLE_HH

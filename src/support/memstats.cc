#include "memstats.hh"

#include <atomic>

#include <sys/resource.h>

namespace scif::support {

uint64_t
peakRssKb()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is KiB on Linux.
    return uint64_t(ru.ru_maxrss);
}

namespace {

std::atomic<uint64_t> gaugeCurrent{0};
std::atomic<uint64_t> gaugeHighWater{0};

void
raiseHighWater(uint64_t level)
{
    uint64_t seen = gaugeHighWater.load(std::memory_order_relaxed);
    while (level > seen &&
           !gaugeHighWater.compare_exchange_weak(
               seen, level, std::memory_order_relaxed)) {
    }
}

} // namespace

void
ResidentGauge::add(uint64_t bytes)
{
    uint64_t now = gaugeCurrent.fetch_add(bytes,
                                          std::memory_order_relaxed) +
                   bytes;
    raiseHighWater(now);
}

void
ResidentGauge::sub(uint64_t bytes)
{
    gaugeCurrent.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t
ResidentGauge::current()
{
    return gaugeCurrent.load(std::memory_order_relaxed);
}

uint64_t
ResidentGauge::highWater()
{
    return gaugeHighWater.load(std::memory_order_relaxed);
}

void
ResidentGauge::resetHighWater()
{
    gaugeHighWater.store(gaugeCurrent.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
}

} // namespace scif::support

/**
 * @file
 * Minimal binary artifact I/O.
 *
 * Every inter-stage artifact of the staged pipeline (trace sets,
 * invariant models, SCI databases) is a stream of fixed-width
 * little-endian integers and length-prefixed strings behind a
 * (magic, version) header. These helpers centralize the encoding and
 * the failure policy: any short read/write, bad magic, or unsupported
 * version either fatal()s with the file name or throws an IoError
 * carrying path and errno, per the OnError policy the stream was
 * constructed with — artifacts are either valid or rejected, never
 * silently misparsed.
 */

#ifndef SCIFINDER_SUPPORT_BINIO_HH
#define SCIFINDER_SUPPORT_BINIO_HH

#include <cstdint>
#include <cstdio>
#include <string>

namespace scif::support {

/** What to do when an I/O or format failure is detected. */
enum class OnError {
    Fatal, ///< print the diagnostic and exit(1) (batch-tool default)
    Throw, ///< throw support::IoError (library/toolbelt callers)
};

/** Sequential writer for one binary artifact file. */
class BinWriter
{
  public:
    /** Open @p path and emit the (magic, version) header; fails per
     *  @p onError on I/O failure. */
    BinWriter(const std::string &path, uint32_t magic, uint32_t version,
              OnError onError = OnError::Fatal);
    ~BinWriter();

    BinWriter(const BinWriter &) = delete;
    BinWriter &operator=(const BinWriter &) = delete;

    void u8(uint8_t v);
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);

    /** Length-prefixed (u32) byte string. */
    void str(const std::string &s);

    void bytes(const void *data, size_t size);

    /** Flush and close; fails if any buffered write failed. */
    void close();

  private:
    [[noreturn]] void fail(int errnum, const char *fmt, ...);

    std::FILE *file_ = nullptr;
    std::string path_;
    OnError onError_;
};

/** Sequential reader for one binary artifact file. */
class BinReader
{
  public:
    /**
     * Open @p path and validate the header: a wrong magic or an
     * unsupported version is a failure. @p what names the artifact
     * kind in error messages ("invariant model", ...).
     */
    BinReader(const std::string &path, uint32_t magic,
              uint32_t version, const char *what,
              OnError onError = OnError::Fatal);
    ~BinReader();

    BinReader(const BinReader &) = delete;
    BinReader &operator=(const BinReader &) = delete;

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();

    /** Length-prefixed string; lengths above @p maxLen mean the file
     *  is corrupt. */
    std::string str(size_t maxLen = 1 << 20);

    void bytes(void *data, size_t size);

    /** @return true if the read cursor is at end of file. */
    bool atEof();

    /** The artifact must end exactly here; trailing garbage is
     *  corruption. */
    void expectEof();

  private:
    [[noreturn]] void fail(int errnum, const char *fmt, ...);

    std::FILE *file_ = nullptr;
    std::string path_;
    const char *what_;
    OnError onError_;
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_BINIO_HH

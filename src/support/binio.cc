#include "binio.hh"

#include "support/logging.hh"

namespace scif::support {

BinWriter::BinWriter(const std::string &path, uint32_t magic,
                     uint32_t version)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open '%s' for writing", path.c_str());
    u32(magic);
    u32(version);
}

BinWriter::~BinWriter()
{
    if (file_)
        close();
}

void
BinWriter::bytes(const void *data, size_t size)
{
    SCIF_ASSERT(file_);
    if (size != 0 && std::fwrite(data, 1, size, file_) != size)
        fatal("write to '%s' failed", path_.c_str());
}

void
BinWriter::u8(uint8_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u16(uint16_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u32(uint32_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u64(uint64_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::str(const std::string &s)
{
    u32(uint32_t(s.size()));
    bytes(s.data(), s.size());
}

void
BinWriter::close()
{
    SCIF_ASSERT(file_);
    bool ok = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!ok)
        fatal("closing '%s' failed", path_.c_str());
}

BinReader::BinReader(const std::string &path, uint32_t magic,
                     uint32_t version, const char *what)
    : path_(path), what_(what)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fatal("cannot open %s '%s'", what, path.c_str());
    if (u32() != magic)
        fatal("'%s' is not a %s artifact", path.c_str(), what);
    uint32_t got = u32();
    if (got != version) {
        fatal("%s '%s' has version %u, this build reads %u",
              what, path.c_str(), got, version);
    }
}

BinReader::~BinReader()
{
    if (file_)
        std::fclose(file_);
}

void
BinReader::bytes(void *data, size_t size)
{
    SCIF_ASSERT(file_);
    if (size != 0 && std::fread(data, 1, size, file_) != size)
        fatal("%s '%s' is truncated or corrupt", what_, path_.c_str());
}

uint8_t
BinReader::u8()
{
    uint8_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint16_t
BinReader::u16()
{
    uint16_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint32_t
BinReader::u32()
{
    uint32_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint64_t
BinReader::u64()
{
    uint64_t v;
    bytes(&v, sizeof(v));
    return v;
}

std::string
BinReader::str(size_t maxLen)
{
    uint32_t len = u32();
    if (len > maxLen)
        fatal("%s '%s' is corrupt (string length %u)", what_,
              path_.c_str(), len);
    std::string s(len, '\0');
    bytes(s.data(), len);
    return s;
}

bool
BinReader::atEof()
{
    SCIF_ASSERT(file_);
    int c = std::fgetc(file_);
    if (c == EOF)
        return true;
    std::ungetc(c, file_);
    return false;
}

void
BinReader::expectEof()
{
    if (!atEof())
        fatal("%s '%s' has trailing garbage", what_, path_.c_str());
}

} // namespace scif::support

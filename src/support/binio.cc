#include "binio.hh"

#include <cerrno>
#include <cstdarg>

#include "support/ioerror.hh"
#include "support/logging.hh"

namespace scif::support {

void
BinWriter::fail(int errnum, const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (onError_ == OnError::Fatal)
        fatal("%s", buf);
    throw IoError(path_, buf, errnum);
}

BinWriter::BinWriter(const std::string &path, uint32_t magic,
                     uint32_t version, OnError onError)
    : path_(path), onError_(onError)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fail(errno, "cannot open '%s' for writing", path.c_str());
    try {
        u32(magic);
        u32(version);
    } catch (...) {
        // The destructor will not run for a throwing constructor.
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
}

BinWriter::~BinWriter()
{
    if (!file_)
        return;
    if (onError_ == OnError::Fatal) {
        close();
    } else {
        // Unwinding: close best-effort, never throw from a destructor.
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
BinWriter::bytes(const void *data, size_t size)
{
    SCIF_ASSERT(file_);
    if (size != 0 && std::fwrite(data, 1, size, file_) != size)
        fail(errno, "write to '%s' failed", path_.c_str());
}

void
BinWriter::u8(uint8_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u16(uint16_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u32(uint32_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::u64(uint64_t v)
{
    bytes(&v, sizeof(v));
}

void
BinWriter::str(const std::string &s)
{
    u32(uint32_t(s.size()));
    bytes(s.data(), s.size());
}

void
BinWriter::close()
{
    SCIF_ASSERT(file_);
    bool ok = std::fclose(file_) == 0;
    int errnum = errno;
    file_ = nullptr;
    if (!ok)
        fail(errnum, "closing '%s' failed", path_.c_str());
}

void
BinReader::fail(int errnum, const char *fmt, ...)
{
    char buf[512];
    std::va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    if (onError_ == OnError::Fatal)
        fatal("%s", buf);
    throw IoError(path_, buf, errnum);
}

BinReader::BinReader(const std::string &path, uint32_t magic,
                     uint32_t version, const char *what,
                     OnError onError)
    : path_(path), what_(what), onError_(onError)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        fail(errno, "cannot open %s '%s'", what, path.c_str());
    try {
        if (u32() != magic)
            fail(0, "'%s' is not a %s artifact", path.c_str(), what);
        uint32_t got = u32();
        if (got != version) {
            fail(0, "%s '%s' has version %u, this build reads %u",
                 what, path.c_str(), got, version);
        }
    } catch (...) {
        // The destructor will not run for a throwing constructor.
        std::fclose(file_);
        file_ = nullptr;
        throw;
    }
}

BinReader::~BinReader()
{
    if (file_)
        std::fclose(file_);
}

void
BinReader::bytes(void *data, size_t size)
{
    SCIF_ASSERT(file_);
    if (size != 0 && std::fread(data, 1, size, file_) != size)
        fail(0, "%s '%s' is truncated or corrupt", what_,
             path_.c_str());
}

uint8_t
BinReader::u8()
{
    uint8_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint16_t
BinReader::u16()
{
    uint16_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint32_t
BinReader::u32()
{
    uint32_t v;
    bytes(&v, sizeof(v));
    return v;
}

uint64_t
BinReader::u64()
{
    uint64_t v;
    bytes(&v, sizeof(v));
    return v;
}

std::string
BinReader::str(size_t maxLen)
{
    uint32_t len = u32();
    if (len > maxLen)
        fail(0, "%s '%s' is corrupt (string length %u)", what_,
             path_.c_str(), len);
    std::string s(len, '\0');
    bytes(s.data(), len);
    return s;
}

bool
BinReader::atEof()
{
    SCIF_ASSERT(file_);
    int c = std::fgetc(file_);
    if (c == EOF)
        return true;
    std::ungetc(c, file_);
    return false;
}

void
BinReader::expectEof()
{
    if (!atEof())
        fail(0, "%s '%s' has trailing garbage", what_, path_.c_str());
}

} // namespace scif::support

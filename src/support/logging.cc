#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace scif {

namespace {

bool quietFlag = false;

/** Serializes log-line emission so concurrent worker-thread reports
 *  never interleave mid-line. */
std::mutex &
reportMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::lock_guard<std::mutex> lock(reportMutex());
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

void
assertFailed(const char *cond_str, const char *file, int line)
{
    panic("assertion '%s' failed at %s:%d", cond_str, file, line);
}

} // namespace scif

/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant failures
 * (tool bugs), fatal() for user-caused errors (bad configuration, bad
 * input files), warn()/inform() for status messages that never stop
 * execution.
 */

#ifndef SCIFINDER_SUPPORT_LOGGING_HH
#define SCIFINDER_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace scif {

/**
 * Terminate with an error that indicates an internal tool bug.
 * Calls std::abort() after printing the message, so it can dump core.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate with an error caused by the user or the environment
 * (bad configuration, malformed input). Exits with status 1.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about possibly-incorrect behaviour; never stops. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message; never stops. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benchmarks). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool quiet();

/**
 * Internal helper behind the SCIF_ASSERT macro.
 *
 * @param cond_str stringified asserted condition.
 * @param file source file of the assertion.
 * @param line source line of the assertion.
 */
[[noreturn]] void assertFailed(const char *cond_str, const char *file,
                               int line);

/**
 * Assert an internal invariant; active in all build types (unlike
 * the C assert macro, which vanishes under NDEBUG).
 */
#define SCIF_ASSERT(cond)                                                    \
    do {                                                                     \
        if (!(cond))                                                         \
            ::scif::assertFailed(#cond, __FILE__, __LINE__);                 \
    } while (0)

} // namespace scif

#endif // SCIFINDER_SUPPORT_LOGGING_HH

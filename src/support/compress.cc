#include "compress.hh"

#include <cstring>

namespace scif::support {

namespace {

constexpr size_t hashBits = 13;
constexpr size_t minMatch = 4;
constexpr size_t maxOffset = 65535;

uint32_t
load32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint32_t
hash4(uint32_t v)
{
    return (v * 2654435761u) >> (32 - hashBits);
}

void
putRunLength(std::vector<uint8_t> &out, size_t v)
{
    while (v >= 255) {
        out.push_back(255);
        v -= 255;
    }
    out.push_back(uint8_t(v));
}

/** One sequence: literals, then (unless final) an offset + match. */
void
putSequence(std::vector<uint8_t> &out, const uint8_t *lit,
            size_t litLen, size_t offset, size_t matchLen)
{
    size_t litTok = litLen < 15 ? litLen : 15;
    size_t matchTok =
        matchLen == 0 ? 0
                      : (matchLen - minMatch < 15 ? matchLen - minMatch
                                                  : 15);
    out.push_back(uint8_t(litTok << 4 | matchTok));
    if (litTok == 15)
        putRunLength(out, litLen - 15);
    out.insert(out.end(), lit, lit + litLen);
    if (matchLen != 0) {
        out.push_back(uint8_t(offset & 0xff));
        out.push_back(uint8_t(offset >> 8));
        if (matchTok == 15)
            putRunLength(out, matchLen - minMatch - 15);
    }
}

} // namespace

std::vector<uint8_t>
lzCompress(const uint8_t *src, size_t n)
{
    std::vector<uint8_t> out;
    if (n == 0)
        return out;
    out.reserve(n / 2 + 16);

    std::vector<int64_t> table(size_t(1) << hashBits, -1);

    // Matches never extend into the last 5 bytes and are not sought
    // near the end, so the final sequence always carries literals and
    // the decoder's end-of-input test is unambiguous.
    const size_t matchLimit = n >= 12 ? n - 12 : 0;
    const size_t tailGuard = n - 5;

    size_t anchor = 0;
    size_t i = 0;
    while (i < matchLimit) {
        uint32_t seq = load32(src + i);
        uint32_t h = hash4(seq);
        int64_t cand = table[h];
        table[h] = int64_t(i);
        if (cand < 0 || i - size_t(cand) > maxOffset ||
            load32(src + size_t(cand)) != seq) {
            ++i;
            continue;
        }
        size_t match = size_t(cand);
        size_t len = minMatch;
        while (i + len < tailGuard && src[match + len] == src[i + len])
            ++len;
        putSequence(out, src + anchor, i - anchor, i - match, len);
        i += len;
        anchor = i;
    }
    putSequence(out, src + anchor, n - anchor, 0, 0);
    return out;
}

namespace {

bool
readRunLength(const uint8_t *src, size_t srcLen, size_t &s, size_t &v)
{
    while (true) {
        if (s >= srcLen)
            return false;
        uint8_t b = src[s++];
        v += b;
        if (b != 255)
            return true;
    }
}

} // namespace

bool
lzDecompress(const uint8_t *src, size_t srcLen, uint8_t *dst,
             size_t dstLen)
{
    if (srcLen == 0)
        return dstLen == 0;

    size_t s = 0;
    size_t d = 0;
    while (true) {
        if (s >= srcLen)
            return false;
        uint8_t token = src[s++];

        size_t lit = token >> 4;
        if (lit == 15 && !readRunLength(src, srcLen, s, lit))
            return false;
        if (lit > srcLen - s || lit > dstLen - d)
            return false;
        std::memcpy(dst + d, src + s, lit);
        s += lit;
        d += lit;
        if (s == srcLen)
            return d == dstLen; // final, literals-only sequence

        if (srcLen - s < 2)
            return false;
        size_t offset = size_t(src[s]) | size_t(src[s + 1]) << 8;
        s += 2;
        if (offset == 0 || offset > d)
            return false;

        size_t matchLen = token & 0xf;
        if (matchLen == 15 && !readRunLength(src, srcLen, s, matchLen))
            return false;
        matchLen += minMatch;
        if (matchLen > dstLen - d)
            return false;
        // Byte-wise: offsets smaller than the length self-overlap
        // (run-length encoding of repeats).
        const uint8_t *m = dst + d - offset;
        for (size_t k = 0; k < matchLen; ++k)
            dst[d + k] = m[k];
        d += matchLen;
    }
}

} // namespace scif::support

/**
 * @file
 * A work-stealing thread pool and deterministic parallel loops.
 *
 * The pipeline's fan-out points (per-workload trace generation,
 * per-point invariant generation, per-bug identification) are
 * embarrassingly parallel but must stay byte-identical to the serial
 * run. The pool provides raw task execution; parallelFor() and
 * parallelMap() layer deterministic, index-ordered result collection
 * on top, so callers parallelize by replacing a for-loop without
 * changing what they compute.
 *
 * Scheduling: every worker owns a deque. External submissions are
 * distributed round-robin; a worker pops from the back of its own
 * deque (LIFO, cache-warm) and steals from the front of a victim's
 * deque (FIFO, oldest first) when its own is empty.
 */

#ifndef SCIFINDER_SUPPORT_THREADPOOL_HH
#define SCIFINDER_SUPPORT_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace scif::support {

/** Work-stealing task pool. Tasks may not block on one another. */
class ThreadPool
{
  public:
    /**
     * Start the worker threads.
     *
     * @param threads worker count; 0 picks the hardware concurrency.
     *        Note that a pool with one worker still runs tasks on
     *        that worker; use resolveJobs() and skip pool creation
     *        entirely for jobs == 1.
     */
    explicit ThreadPool(size_t threads = 0);

    /** Drain nothing: outstanding tasks are abandoned only if never
     *  submitted; submitted tasks run before the workers exit. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return the number of worker threads. */
    size_t threadCount() const { return workers_.size(); }

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /**
     * Map a jobs request to a concrete thread count: 0 means "all
     * hardware threads", anything else is taken literally.
     */
    static size_t resolveJobs(size_t jobs);

  private:
    struct Worker
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(size_t self);
    bool runOneTask(size_t self);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    uint64_t submitVersion_ = 0;
    bool stop_ = false;

    std::atomic<size_t> nextQueue_{0};
};

/**
 * Run fn(0..n-1), distributing indices over the pool. The calling
 * thread participates, so the loop completes even on a saturated
 * pool. Indices are claimed dynamically (load-balanced); any
 * determinism must come from fn writing only to index-private state —
 * see parallelMap() for the common case.
 *
 * A null @p pool (or n <= 1) degrades to the plain serial loop.
 * The first exception thrown by fn aborts the remaining iterations
 * and is rethrown on the calling thread.
 */
void parallelFor(ThreadPool *pool, size_t n,
                 const std::function<void(size_t)> &fn);

/**
 * Deterministic parallel map: out[i] = fn(items[i]). Results are
 * collected in index order, so the output is identical to the serial
 * loop no matter how execution interleaves.
 */
template <typename T, typename F>
auto
parallelMap(ThreadPool *pool, const std::vector<T> &items, F fn)
    -> std::vector<decltype(fn(items[0]))>
{
    using R = decltype(fn(items[0]));
    std::vector<R> out(items.size());
    parallelFor(pool, items.size(),
                [&](size_t i) { out[i] = fn(items[i]); });
    return out;
}

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_THREADPOOL_HH

/**
 * @file
 * Structured I/O failure reporting.
 *
 * The pipeline's artifact layer historically treated every I/O
 * failure as fatal(): correct for the batch tool, but useless for
 * library callers and the `scifinder trace` toolbelt, which want to
 * report the failing path (and errno) and keep going. IoError carries
 * both; binio and the trace stores throw it when constructed with the
 * Throw policy, and tool main()s translate it into a diagnostic plus
 * exit status 1.
 */

#ifndef SCIFINDER_SUPPORT_IOERROR_HH
#define SCIFINDER_SUPPORT_IOERROR_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace scif::support {

/** An I/O or artifact-format failure with path and errno context. */
class IoError : public std::runtime_error
{
  public:
    /** offset() value when the failure has no file position. */
    static constexpr uint64_t noOffset = ~uint64_t(0);

    /**
     * @param path the file the operation failed on.
     * @param detail human-readable description (should mention the
     *        path for standalone display).
     * @param errnum the errno of the failing call, or 0 when the
     *        failure is a format problem rather than a system error.
     * @param offset the file offset the failure was detected at, or
     *        noOffset when no position is meaningful (e.g. open()).
     */
    IoError(std::string path, const std::string &detail,
            int errnum = 0, uint64_t offset = noOffset)
        : std::runtime_error(render(detail, errnum, offset)),
          path_(std::move(path)), errnum_(errnum), offset_(offset)
    {}

    /** @return the path of the file the operation failed on. */
    const std::string &path() const { return path_; }

    /** @return the errno of the failing call (0 = format error). */
    int errnum() const { return errnum_; }

    /** @return true when the failure carries a file position. */
    bool hasOffset() const { return offset_ != noOffset; }

    /** @return the file offset of the failure (valid if hasOffset). */
    uint64_t offset() const { return offset_; }

  private:
    static std::string
    render(const std::string &detail, int errnum, uint64_t offset)
    {
        std::string out = detail;
        if (offset != noOffset)
            out += " (at offset " + std::to_string(offset) + ")";
        if (errnum != 0)
            out += std::string(": ") + std::strerror(errnum);
        return out;
    }

    std::string path_;
    int errnum_;
    uint64_t offset_;
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_IOERROR_HH

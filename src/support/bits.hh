/**
 * @file
 * Bit-manipulation helpers used by the ISA model and the simulator.
 */

#ifndef SCIFINDER_SUPPORT_BITS_HH
#define SCIFINDER_SUPPORT_BITS_HH

#include <cstdint>

#include "logging.hh"

namespace scif {

/**
 * Extract the bit field [hi:lo] (inclusive, hi >= lo) from a word.
 *
 * @param value word to extract from.
 * @param hi most significant bit of the field (0-31).
 * @param lo least significant bit of the field (0-31).
 * @return the field, right justified.
 */
constexpr uint32_t
bits(uint32_t value, unsigned hi, unsigned lo)
{
    unsigned width = hi - lo + 1;
    uint32_t mask = width >= 32 ? 0xffffffffu : ((1u << width) - 1);
    return (value >> lo) & mask;
}

/** Extract a single bit as 0 or 1. */
constexpr uint32_t
bit(uint32_t value, unsigned pos)
{
    return (value >> pos) & 1u;
}

/**
 * Insert a field into [hi:lo] of a word, returning the modified word.
 * Bits of @p field above the field width are discarded.
 */
constexpr uint32_t
insertBits(uint32_t value, unsigned hi, unsigned lo, uint32_t field)
{
    unsigned width = hi - lo + 1;
    uint32_t mask = width >= 32 ? 0xffffffffu : ((1u << width) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Set or clear a single bit, returning the modified word. */
constexpr uint32_t
setBit(uint32_t value, unsigned pos, bool on)
{
    return on ? (value | (1u << pos)) : (value & ~(1u << pos));
}

/**
 * Sign extend the low @p width bits of @p value to 32 bits.
 *
 * @param value the word containing the field in its low bits.
 * @param width number of significant low bits (1-32).
 */
constexpr uint32_t
signExtend(uint32_t value, unsigned width)
{
    if (width >= 32)
        return value;
    uint32_t sign = 1u << (width - 1);
    uint32_t mask = (1u << width) - 1;
    value &= mask;
    return (value ^ sign) - sign;
}

/** Zero extend the low @p width bits (mask the rest away). */
constexpr uint32_t
zeroExtend(uint32_t value, unsigned width)
{
    if (width >= 32)
        return value;
    return value & ((1u << width) - 1);
}

/** Rotate a 32-bit word right by @p amount (amount taken mod 32). */
constexpr uint32_t
rotateRight32(uint32_t value, unsigned amount)
{
    amount &= 31;
    if (amount == 0)
        return value;
    return (value >> amount) | (value << (32 - amount));
}

/**
 * @return true if signed 32-bit addition a + b (+ carry-in)
 * overflows. The carry-in participates in the sum before the sign
 * comparison: 0x7fffffff + 0 + 1 overflows even though
 * 0x7fffffff + 1 alone would be attributed to the wrong operand.
 */
constexpr bool
addOverflows(uint32_t a, uint32_t b, bool carry_in = false)
{
    uint32_t sum = a + b + (carry_in ? 1 : 0);
    return (~(a ^ b) & (a ^ sum)) >> 31;
}

/** @return true if signed 32-bit subtraction a - b overflows. */
constexpr bool
subOverflows(uint32_t a, uint32_t b)
{
    uint32_t diff = a - b;
    return ((a ^ b) & (a ^ diff)) >> 31;
}

/** @return the unsigned carry-out of a + b (+ carry-in). */
constexpr bool
addCarries(uint32_t a, uint32_t b, bool carry_in = false)
{
    uint64_t sum = uint64_t(a) + uint64_t(b) + (carry_in ? 1 : 0);
    return sum > 0xffffffffull;
}

} // namespace scif

#endif // SCIFINDER_SUPPORT_BITS_HH

/**
 * @file
 * A dependency-free byte-oriented LZ compressor for the chunked trace
 * store.
 *
 * The format is the classic token/literals/offset sequence scheme
 * (LZ4-style): each sequence is a token byte whose high nibble is the
 * literal count and whose low nibble is the match length minus 4
 * (nibble value 15 extends either count with 255-run continuation
 * bytes), the literal bytes, and — except in the final, literals-only
 * sequence — a 16-bit little-endian back-reference offset. Matches
 * are found greedily through a 4-byte hash table, so compression is a
 * single pass and decompression is a bounds-checked copy loop.
 *
 * The encoder is fully deterministic: the same input always produces
 * the same bytes, which the trace store's byte-identical-artifacts
 * contract depends on.
 */

#ifndef SCIFINDER_SUPPORT_COMPRESS_HH
#define SCIFINDER_SUPPORT_COMPRESS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scif::support {

/** Compress @p n bytes at @p src; an empty input yields empty output. */
std::vector<uint8_t> lzCompress(const uint8_t *src, size_t n);

/**
 * Decompress into exactly @p dstLen bytes at @p dst.
 *
 * @return false if the stream is malformed, references data outside
 *         the produced output, or does not decode to exactly
 *         @p dstLen bytes; the destination contents are then
 *         unspecified. Never reads or writes out of bounds.
 */
bool lzDecompress(const uint8_t *src, size_t srcLen, uint8_t *dst,
                  size_t dstLen);

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_COMPRESS_HH

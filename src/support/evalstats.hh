/**
 * @file
 * Process-wide fused-evaluation telemetry.
 *
 * Fused programs are built and swept deep inside the generation,
 * identification, and serving hot loops — often one per program point
 * per trace window, on whatever worker thread owns that point. The
 * pipeline wants per-stage totals: how many candidate programs were
 * fused, how many were structural duplicates of an already-fused
 * candidate, how many retired live mid-sweep, and how often a sweep
 * re-compacted its instruction stream. Every FusedProgram folds its
 * counts into these process-wide atomics (the same pattern
 * FrontEndCounters uses for the simulation front end), so core::Stage
 * can sample the totals around a stage body and report the deltas.
 */

#ifndef SCIFINDER_SUPPORT_EVALSTATS_HH
#define SCIFINDER_SUPPORT_EVALSTATS_HH

#include <atomic>
#include <cstdint>

namespace scif::support {

/** Accumulated counters of every fused-program build and sweep. */
class EvalCounters
{
  public:
    struct Snapshot
    {
        uint64_t fusedMembers = 0;
        uint64_t fusedDeduped = 0;
        uint64_t fusedRetired = 0;
        uint64_t fusedCompactions = 0;
    };

    /** Fold one sealed program's build counts into the totals. */
    static void
    addBuild(uint64_t members, uint64_t deduped)
    {
        members_.fetch_add(members, std::memory_order_relaxed);
        deduped_.fetch_add(deduped, std::memory_order_relaxed);
    }

    /** Fold one sweep's retirement behavior into the totals. */
    static void
    addSweep(uint64_t retired, uint64_t compactions)
    {
        retired_.fetch_add(retired, std::memory_order_relaxed);
        compactions_.fetch_add(compactions,
                               std::memory_order_relaxed);
    }

    /** @return the current process totals (monotone). */
    static Snapshot
    snapshot()
    {
        Snapshot s;
        s.fusedMembers = members_.load(std::memory_order_relaxed);
        s.fusedDeduped = deduped_.load(std::memory_order_relaxed);
        s.fusedRetired = retired_.load(std::memory_order_relaxed);
        s.fusedCompactions =
            compactions_.load(std::memory_order_relaxed);
        return s;
    }

  private:
    inline static std::atomic<uint64_t> members_{0};
    inline static std::atomic<uint64_t> deduped_{0};
    inline static std::atomic<uint64_t> retired_{0};
    inline static std::atomic<uint64_t> compactions_{0};
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_EVALSTATS_HH

/**
 * @file
 * Memory telemetry for the out-of-core pipeline.
 *
 * Two complementary measurements back the "bounded resident trace
 * memory" claim of the chunked trace store: the process peak RSS
 * (what the OS accounts), and a process-wide gauge of trace bytes
 * currently resident that the streaming producers and consumers
 * update as they materialize and release chunk windows. core::Stage
 * samples both per stage, so `scifinder run` can show that trace
 * residency stays at O(chunk x jobs) while the corpus on disk is
 * arbitrarily large.
 */

#ifndef SCIFINDER_SUPPORT_MEMSTATS_HH
#define SCIFINDER_SUPPORT_MEMSTATS_HH

#include <cstdint>

namespace scif::support {

/** @return the process peak resident-set size in KiB (0 if unknown). */
uint64_t peakRssKb();

/**
 * Process-wide gauge of trace bytes currently materialized in memory
 * by the streaming trace paths (writer staging, decoded chunk
 * windows). Thread-safe; the high-water mark is reset per stage.
 */
class ResidentGauge
{
  public:
    static void add(uint64_t bytes);
    static void sub(uint64_t bytes);

    /** @return bytes currently accounted. */
    static uint64_t current();

    /** @return the high-water mark since the last reset. */
    static uint64_t highWater();

    /** Reset the high-water mark to the current level. */
    static void resetHighWater();
};

/**
 * RAII accounting of one allocation's contribution to the gauge;
 * releases its bytes on destruction or reset.
 */
class ResidentTracker
{
  public:
    ResidentTracker() = default;
    ~ResidentTracker() { set(0); }

    ResidentTracker(const ResidentTracker &) = delete;
    ResidentTracker &operator=(const ResidentTracker &) = delete;

    /** Replace the tracked byte count. */
    void
    set(uint64_t bytes)
    {
        if (bytes_ != 0)
            ResidentGauge::sub(bytes_);
        bytes_ = bytes;
        if (bytes_ != 0)
            ResidentGauge::add(bytes_);
    }

    /** Grow the tracked byte count. */
    void grow(uint64_t bytes) { set(bytes_ + bytes); }

  private:
    uint64_t bytes_ = 0;
};

} // namespace scif::support

#endif // SCIFINDER_SUPPORT_MEMSTATS_HH

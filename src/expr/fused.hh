/**
 * @file
 * Fused batch evaluation of many invariants at one program point.
 *
 * The generation, identification, and serving sweeps all evaluate
 * large candidate sets against the same columnar trace matrix, and a
 * per-candidate kernel (expr/compile.hh) re-traverses that matrix —
 * and re-executes every shared column load and subexpression — once
 * per candidate. A FusedProgram value-numbers all candidate programs
 * at a point into one shared instruction DAG: structurally identical
 * subexpressions (and whole candidates) collapse to a single node, so
 * each column load and each common subexpression executes once per
 * row block and the matrix is traversed once per sweep.
 *
 * The register model is widened past the per-candidate uint8_t file:
 * DAG nodes are virtual registers, and a liveness-based linear
 * allocator maps them onto a compact physical arena with spill-free
 * reuse (each member's result is consumed by a sink placed directly
 * after its defining instruction, so peak pressure tracks the live
 * columns, not the member count).
 *
 * Members retire live: a violation-sweep caller passes an alive mask,
 * falsified members stop being reduced immediately, and once enough
 * members have retired the sweep re-compacts — it drops every
 * instruction only dead candidates need (backward reachability from
 * the alive roots) and keeps sweeping the survivors.
 *
 * Results are bit-identical to the per-candidate kernels: fusion only
 * changes *when* each candidate's unchanged arithmetic runs, never
 * what it computes. The per-candidate path stays behind the
 * --no-fused-eval flag as the differential oracle.
 */

#ifndef SCIFINDER_EXPR_FUSED_HH
#define SCIFINDER_EXPR_FUSED_HH

#include <cstdint>
#include <vector>

#include "expr/compile.hh"
#include "trace/columns.hh"

namespace scif::expr {

/**
 * Process-wide default for whether the hot consumers (invgen
 * falsification, sci identification scans, the checking service's
 * batch path) evaluate through fused programs. The scifinder
 * --no-fused-eval flag flips this to route every consumer through the
 * per-invariant kernels (the differential oracle).
 */
bool fusedEvalDefault();
void setFusedEvalDefault(bool enabled);

/**
 * Many invariants at one trace point, value-numbered into one shared
 * DAG and compiled to a register-allocated batch program. Build with
 * add() (one call per member, in the order the caller wants results),
 * then seal() once; a sealed program is immutable and safe to share
 * across threads — every sweep keeps its scratch state on the stack.
 */
class FusedProgram
{
  public:
    static constexpr size_t npos = size_t(-1);

    /** Rows per inner-kernel block (same as the scalar kernels).
     *  Results are block-size independent — a member's first
     *  violation is an absolute row index either way — and narrow
     *  blocks retire falsified members with less wasted work. */
    static constexpr size_t kBlock = CompiledInvariant::kBlock;

    FusedProgram() = default;

    /**
     * Fuse one candidate into the DAG.
     * @return the member index (== number of prior add() calls).
     */
    size_t add(const CompiledInvariant &prog);
    size_t add(const Invariant &inv)
    {
        return add(CompiledInvariant::compile(inv));
    }

    /**
     * Direct DAG construction — the allocation-free path for callers
     * that synthesize members from templates (the generation
     * falsifier) instead of from Invariant objects. The returned
     * value ids feed further nodes; node construction mirrors the
     * per-invariant compiler's lowering exactly (including the
     * power-of-two modulus strength reduction and the Lt/Le operand
     * swap), so a member built directly is the same DAG — and the
     * same arithmetic — as one routed through add().
     */
    uint32_t loadCol(uint16_t slot);
    uint32_t loadImm(uint32_t value);
    /** Unary / immediate node (Not, MulImm, AndImm, ModImm, AddImm). */
    uint32_t apply(OpCode op, uint32_t src1, uint32_t imm = 0);
    /** Binary node (And, Or, Add, Sub and the compare kinds). */
    uint32_t apply2(OpCode op, uint32_t src1, uint32_t src2);
    /** Comparison with the compiler's Lt/Le -> swapped Gt/Ge lowering
     *  (CmpOp::In has no direct-builder form; use add()). */
    uint32_t compare(CmpOp op, uint32_t lhs, uint32_t rhs);
    /** Register @p value as the next member's result.
     *  @return the member index. */
    size_t addRoot(uint32_t value);

    /** Allocate registers and freeze the program. */
    void seal();

    bool sealed() const { return sealed_; }
    size_t members() const { return memberRoot_.size(); }

    /** Members whose root collapsed onto an earlier member's root —
     *  structurally identical candidates, evaluated once. */
    size_t dedupedMembers() const { return deduped_; }

    /** Distinct DAG nodes (virtual registers) after CSE. */
    size_t valueCount() const { return values_.size(); }

    /** Physical registers the allocator needed (peak liveness). */
    size_t registerCount() const { return numRegs_; }

    /**
     * Violation sweep over rows [begin, end): one matrix traversal
     * for every member. firstViolation[m] receives the first row
     * index where member m's expression is false (npos if it holds
     * everywhere it was evaluated). Members falsified mid-sweep
     * retire immediately; once enough retire the instruction stream
     * re-compacts to the alive survivors.
     *
     * @param alive optional in/out per-member byte mask: members
     *        entering with alive[m] == 0 are never evaluated (their
     *        firstViolation stays npos), and members falsified by
     *        this sweep leave with alive[m] == 0. Null means all
     *        members start alive (and retirement state is local).
     */
    void sweepViolations(const trace::PointColumns &cols, size_t begin,
                         size_t end, size_t *firstViolation,
                         uint8_t *alive = nullptr) const;

    /**
     * Mask sweep over rows [begin, end): one matrix traversal, one
     * byte per row per member (1 = holds), member m's mask written to
     * out[m * stride ...]. @p stride must be >= end - begin.
     */
    void evalMasks(const trace::PointColumns &cols, size_t begin,
                   size_t end, uint8_t *out, size_t stride) const;

    /** @return true if every referenced column is materialized. */
    bool compatible(const trace::PointColumns &cols) const;

    /** Slot ids of every column the DAG loads, sorted, deduplicated. */
    const std::vector<uint16_t> &slots() const { return slots_; }

  private:
    /** One DAG node: op over value ids (not registers). */
    struct Value
    {
        OpCode op;
        uint32_t src1 = 0;
        uint32_t src2 = 0;
        uint32_t imm = 0; ///< immediate, slot id, or set index
    };

    /** The node's executable form after register allocation. The
     *  defining step of value v is steps_[v] (emission is in value-id
     *  order, a valid topological order of the DAG). */
    struct Step
    {
        OpCode op;
        uint32_t dst = 0;
        uint32_t src1 = 0;
        uint32_t src2 = 0;
        uint32_t imm = 0;
        /** Compare consumed only by sinks: the violation sweep folds
         *  the AND-reduction into the compare and skips the store. */
        bool reduce = false;
        /** Column ids when a reduce compare's sources are plain
         *  LoadCol nodes — the sweep then reads the trace matrix
         *  directly instead of a staged copy (colNone = staged). */
        uint16_t col1 = colNone;
        uint16_t col2 = colNone;
    };
    static constexpr uint16_t colNone = 0xffff;

    uint32_t intern(const Value &v);
    /** Collect the steps alive members still need, plus a parallel
     *  marker vector flagging pair-relation triad heads (see the
     *  implementation) for the sweep's batched compare pass. */
    void buildActive(const uint8_t *alive, std::vector<uint32_t> &active,
                     std::vector<uint8_t> &triad) const;
    void execStep(const Step &step, const trace::PointColumns &cols,
                  size_t begin, size_t len, uint32_t *regs) const;

    std::vector<Value> values_;
    std::vector<Step> steps_;
    /** Interned membership sets (sorted), indexed by Value::imm. */
    std::vector<std::vector<uint32_t>> sets_;
    /** Member index -> root value id. */
    std::vector<uint32_t> memberRoot_;
    /** CSR index: members sunk after value v are
     *  sinkMembers_[sinkStart_[v] .. sinkStart_[v+1]). */
    std::vector<uint32_t> sinkStart_;
    std::vector<uint32_t> sinkMembers_;
    std::vector<uint16_t> slots_;

    /** Open-addressed intern table: id + 1, 0 = empty slot. The
     *  table is transient build state, released by seal(). */
    std::vector<uint32_t> table_;
    size_t deduped_ = 0;
    size_t numRegs_ = 0;
    bool sealed_ = false;
};

} // namespace scif::expr

#endif // SCIFINDER_EXPR_FUSED_HH

/**
 * @file
 * The invariant expression IR shared by the generator, the optimizer,
 * the violation checker, and the assertion translator.
 *
 * An invariant has the paper's form (Fig. 2)
 *
 *     risingEdge(INSN) -> EXPR
 *
 * where EXPR compares two operands (==, !=, <, <=, >, >=) or tests
 * set membership (OPER in {imm, ...}). An operand is an immediate or
 * a variable term: a base variable (optionally orig()), optionally
 * combined with a second variable (and/or/+/-), optionally negated,
 * scaled, reduced mod an immediate, and offset by an immediate — the
 * grammar's derived-variable forms plus the Daikon-style linear
 * offset (y = a*x + b) that the paper's own example invariants use
 * (e.g. NPC = 0xC04, LR = PC + 8).
 */

#ifndef SCIFINDER_EXPR_EXPR_HH
#define SCIFINDER_EXPR_EXPR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "trace/schema.hh"

namespace scif::expr {

/** Comparison operators (OP1 of the grammar, plus set membership). */
enum class CmpOp : uint8_t { Eq, Ne, Lt, Le, Gt, Ge, In };

/** Variable combination operators (OP2 of the grammar). */
enum class Op2 : uint8_t { None, And, Or, Add, Sub };

/** @return the printable spelling ("==", "and", ...). */
std::string_view cmpOpName(CmpOp op);
std::string_view op2Name(Op2 op);

/** A reference to a schema variable, pre ("orig") or post state. */
struct VarRef
{
    uint16_t var = 0;
    bool orig = false;

    bool operator==(const VarRef &) const = default;
    bool operator<(const VarRef &o) const
    {
        return var != o.var ? var < o.var : orig < o.orig;
    }
};

/**
 * One side of a comparison: an immediate, or a variable term
 *
 *     (not? (a [op2 b])) * mulImm [mod modImm] + addImm
 *
 * with all arithmetic modulo 2^32 and comparisons unsigned.
 */
struct Operand
{
    bool isConst = false;
    uint32_t constVal = 0;

    VarRef a;
    Op2 op2 = Op2::None;
    VarRef b;
    bool negate = false;   ///< bitwise not of the combined value
    uint32_t mulImm = 1;   ///< scale (1 = none)
    uint32_t modImm = 0;   ///< modulus (0 = none)
    uint32_t addImm = 0;   ///< final offset (0 = none)

    /** Build an immediate operand. */
    static Operand imm(uint32_t value);

    /** Build a bare variable operand. */
    static Operand var(uint16_t var, bool orig = false);

    /** Build var + constant. */
    static Operand varPlus(uint16_t var, bool orig, uint32_t add);

    /** Build a combined two-variable operand. */
    static Operand pair(VarRef a, Op2 op, VarRef b);

    /** Evaluate against a trace record. */
    uint32_t eval(const trace::Record &rec) const;

    /** @return true if the operand mentions variable @p var. */
    bool mentions(uint16_t var) const;

    /** @return all variable references (0, 1 or 2). */
    std::vector<VarRef> vars() const;

    /** @return true if this is a bare single variable (no mods). */
    bool isBareVar() const;

    /** Printable form ("orig(ESR0)", "PC + 8", "(OPA - OPB)"). */
    std::string str() const;

    bool operator==(const Operand &) const = default;
};

/** A complete invariant: program point -> comparison. */
struct Invariant
{
    trace::Point point;
    CmpOp op = CmpOp::Eq;
    Operand lhs;
    Operand rhs;                 ///< unused when op == In
    std::vector<uint32_t> set;   ///< sorted, for op == In

    /** @return true if the record satisfies the invariant. Records at
     *  other program points vacuously satisfy it. */
    bool holds(const trace::Record &rec) const;

    /** @return true if the expression holds on this record's values
     *  regardless of the record's program point. */
    bool exprHolds(const trace::Record &rec) const;

    /**
     * Rewrite into canonical form: <, <= become >, >= with swapped
     * sides; symmetric operators order their sides; commutative
     * two-variable terms order their variables; In-sets are sorted.
     */
    void canonicalize();

    /**
     * Canonical identity key: "point -> expr" of the canonicalized
     * invariant. Two invariants are the same iff keys are equal.
     */
    std::string key() const;

    /** Expression-only canonical key (no program point). */
    std::string exprKey() const;

    /** Printable form, e.g. "l.rfe -> SR == orig(ESR0)". */
    std::string str() const;

    /** Parse the str() form back; aborts on malformed input. */
    static Invariant parse(const std::string &text);
};

} // namespace scif::expr

#endif // SCIFINDER_EXPR_EXPR_HH

#include "compile.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scif::expr {

namespace {

/** Registers used: lhs in r0 (scratch r1), rhs in r2 (scratch r3). */
constexpr uint8_t kNumRegs = 4;

/** Append the program computing @p o into register @p dst. */
void
compileOperand(const Operand &o, uint8_t dst, uint8_t scratch,
               std::vector<Insn> &out)
{
    if (o.isConst) {
        out.push_back({OpCode::LoadImm, dst, 0, 0, o.constVal});
        return;
    }
    out.push_back({OpCode::LoadCol, dst, 0, 0,
                   trace::slotId(o.a.var, o.a.orig)});
    if (o.op2 != Op2::None) {
        out.push_back({OpCode::LoadCol, scratch, 0, 0,
                       trace::slotId(o.b.var, o.b.orig)});
        OpCode op = OpCode::Add;
        switch (o.op2) {
          case Op2::And: op = OpCode::And; break;
          case Op2::Or: op = OpCode::Or; break;
          case Op2::Add: op = OpCode::Add; break;
          case Op2::Sub: op = OpCode::Sub; break;
          case Op2::None: break;
        }
        out.push_back({op, dst, dst, scratch, 0});
    }
    if (o.negate)
        out.push_back({OpCode::Not, dst, dst, 0, 0});
    if (o.mulImm != 1)
        out.push_back({OpCode::MulImm, dst, dst, 0, o.mulImm});
    if (o.modImm != 0) {
        if ((o.modImm & (o.modImm - 1)) == 0) {
            out.push_back(
                {OpCode::AndImm, dst, dst, 0, o.modImm - 1});
        } else {
            out.push_back({OpCode::ModImm, dst, dst, 0, o.modImm});
        }
    }
    if (o.addImm != 0)
        out.push_back({OpCode::AddImm, dst, dst, 0, o.addImm});
}

} // namespace

CompiledInvariant
CompiledInvariant::compile(const Invariant &inv)
{
    CompiledInvariant c;
    compileOperand(inv.lhs, 0, 1, c.program_);
    if (inv.op == CmpOp::In) {
        c.set_ = inv.set;
        std::sort(c.set_.begin(), c.set_.end());
        // The result register must not alias src1: the batch kernel's
        // small-set sweep zeroes dst before reading the input.
        c.program_.push_back({OpCode::InSet, 1, 0, 0, 0});
        c.resultReg_ = 1;
        return c;
    }
    compileOperand(inv.rhs, 2, 3, c.program_);
    // < and <= become > and >= with swapped sources.
    switch (inv.op) {
      case CmpOp::Eq:
        c.program_.push_back({OpCode::CmpEq, 0, 0, 2, 0});
        break;
      case CmpOp::Ne:
        c.program_.push_back({OpCode::CmpNe, 0, 0, 2, 0});
        break;
      case CmpOp::Gt:
        c.program_.push_back({OpCode::CmpGt, 0, 0, 2, 0});
        break;
      case CmpOp::Ge:
        c.program_.push_back({OpCode::CmpGe, 0, 0, 2, 0});
        break;
      case CmpOp::Lt:
        c.program_.push_back({OpCode::CmpGt, 0, 2, 0, 0});
        break;
      case CmpOp::Le:
        c.program_.push_back({OpCode::CmpGe, 0, 2, 0, 0});
        break;
      case CmpOp::In:
        break;
    }
    c.resultReg_ = 0;
    return c;
}

void
CompiledInvariant::runBlock(const trace::PointColumns &cols,
                            size_t begin, size_t len,
                            uint32_t regs[][kBlock]) const
{
    for (const Insn &insn : program_) {
        uint32_t *rd = regs[insn.dst];
        const uint32_t *r1 = regs[insn.src1];
        const uint32_t *r2 = regs[insn.src2];
        switch (insn.op) {
          case OpCode::LoadCol: {
            const uint32_t *col = cols.column(uint16_t(insn.imm));
            SCIF_ASSERT(col != nullptr);
            const uint32_t *src = col + begin;
            for (size_t k = 0; k < len; ++k)
                rd[k] = src[k];
            break;
          }
          case OpCode::LoadImm:
            for (size_t k = 0; k < len; ++k)
                rd[k] = insn.imm;
            break;
          case OpCode::And:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] & r2[k];
            break;
          case OpCode::Or:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] | r2[k];
            break;
          case OpCode::Add:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] + r2[k];
            break;
          case OpCode::Sub:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] - r2[k];
            break;
          case OpCode::Not:
            for (size_t k = 0; k < len; ++k)
                rd[k] = ~r1[k];
            break;
          case OpCode::MulImm:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] * insn.imm;
            break;
          case OpCode::AndImm:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] & insn.imm;
            break;
          case OpCode::ModImm:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] % insn.imm;
            break;
          case OpCode::AddImm:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] + insn.imm;
            break;
          case OpCode::CmpEq:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] == r2[k] ? 1u : 0u;
            break;
          case OpCode::CmpNe:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] != r2[k] ? 1u : 0u;
            break;
          case OpCode::CmpGt:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] > r2[k] ? 1u : 0u;
            break;
          case OpCode::CmpGe:
            for (size_t k = 0; k < len; ++k)
                rd[k] = r1[k] >= r2[k] ? 1u : 0u;
            break;
          case OpCode::InSet:
            // Small sets: an OR-accumulated equality sweep per
            // element keeps the row loop branch-free. Large sets
            // fall back to a per-row binary search.
            if (set_.size() <= 8) {
                for (size_t k = 0; k < len; ++k)
                    rd[k] = 0;
                for (uint32_t s : set_) {
                    for (size_t k = 0; k < len; ++k)
                        rd[k] |= r1[k] == s ? 1u : 0u;
                }
            } else {
                for (size_t k = 0; k < len; ++k) {
                    rd[k] = std::binary_search(set_.begin(),
                                               set_.end(), r1[k])
                                ? 1u
                                : 0u;
                }
            }
            break;
        }
    }
}

size_t
CompiledInvariant::firstViolation(const trace::PointColumns &cols,
                                  size_t begin, size_t end) const
{
    uint32_t regs[kNumRegs][kBlock];
    for (size_t pos = begin; pos < end; pos += kBlock) {
        size_t len = std::min(kBlock, end - pos);
        runBlock(cols, pos, len, regs);
        const uint32_t *res = regs[resultReg_];
        uint32_t all = 1;
        for (size_t k = 0; k < len; ++k)
            all &= res[k];
        if (!all) {
            for (size_t k = 0; k < len; ++k) {
                if (!res[k])
                    return pos + k;
            }
        }
    }
    return npos;
}

void
CompiledInvariant::evalMask(const trace::PointColumns &cols,
                            size_t begin, size_t end,
                            uint8_t *out) const
{
    uint32_t regs[kNumRegs][kBlock];
    for (size_t pos = begin; pos < end; pos += kBlock) {
        size_t len = std::min(kBlock, end - pos);
        runBlock(cols, pos, len, regs);
        const uint32_t *res = regs[resultReg_];
        for (size_t k = 0; k < len; ++k)
            out[pos - begin + k] = uint8_t(res[k]);
    }
}

bool
CompiledInvariant::holdsRecord(const trace::Record &rec) const
{
    uint32_t regs[kNumRegs] = {};
    for (const Insn &insn : program_) {
        uint32_t &rd = regs[insn.dst];
        uint32_t r1 = regs[insn.src1];
        uint32_t r2 = regs[insn.src2];
        switch (insn.op) {
          case OpCode::LoadCol: {
            uint16_t slot = uint16_t(insn.imm);
            uint16_t var = trace::slotVar(slot);
            rd = trace::slotOrig(slot) ? rec.pre[var] : rec.post[var];
            break;
          }
          case OpCode::LoadImm: rd = insn.imm; break;
          case OpCode::And: rd = r1 & r2; break;
          case OpCode::Or: rd = r1 | r2; break;
          case OpCode::Add: rd = r1 + r2; break;
          case OpCode::Sub: rd = r1 - r2; break;
          case OpCode::Not: rd = ~r1; break;
          case OpCode::MulImm: rd = r1 * insn.imm; break;
          case OpCode::AndImm: rd = r1 & insn.imm; break;
          case OpCode::ModImm: rd = r1 % insn.imm; break;
          case OpCode::AddImm: rd = r1 + insn.imm; break;
          case OpCode::CmpEq: rd = r1 == r2 ? 1u : 0u; break;
          case OpCode::CmpNe: rd = r1 != r2 ? 1u : 0u; break;
          case OpCode::CmpGt: rd = r1 > r2 ? 1u : 0u; break;
          case OpCode::CmpGe: rd = r1 >= r2 ? 1u : 0u; break;
          case OpCode::InSet:
            rd = std::binary_search(set_.begin(), set_.end(), r1)
                     ? 1u
                     : 0u;
            break;
        }
    }
    return regs[resultReg_] != 0;
}

bool
CompiledInvariant::compatible(const trace::PointColumns &cols) const
{
    for (const Insn &insn : program_) {
        if (insn.op == OpCode::LoadCol &&
            !cols.has(uint16_t(insn.imm))) {
            return false;
        }
    }
    return true;
}

std::vector<uint16_t>
CompiledInvariant::slots() const
{
    std::vector<uint16_t> out;
    for (const Insn &insn : program_) {
        if (insn.op == OpCode::LoadCol)
            out.push_back(uint16_t(insn.imm));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace scif::expr

#include "expr.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"

namespace scif::expr {

std::string_view
cmpOpName(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq: return "==";
      case CmpOp::Ne: return "!=";
      case CmpOp::Lt: return "<";
      case CmpOp::Le: return "<=";
      case CmpOp::Gt: return ">";
      case CmpOp::Ge: return ">=";
      case CmpOp::In: return "in";
    }
    return "?";
}

std::string_view
op2Name(Op2 op)
{
    switch (op) {
      case Op2::None: return "";
      case Op2::And: return "and";
      case Op2::Or: return "or";
      case Op2::Add: return "+";
      case Op2::Sub: return "-";
    }
    return "?";
}

Operand
Operand::imm(uint32_t value)
{
    Operand o;
    o.isConst = true;
    o.constVal = value;
    return o;
}

Operand
Operand::var(uint16_t var, bool orig)
{
    Operand o;
    o.a = VarRef{var, orig};
    return o;
}

Operand
Operand::varPlus(uint16_t var, bool orig, uint32_t add)
{
    Operand o = Operand::var(var, orig);
    o.addImm = add;
    return o;
}

Operand
Operand::pair(VarRef a, Op2 op, VarRef b)
{
    Operand o;
    o.a = a;
    o.op2 = op;
    o.b = b;
    return o;
}

uint32_t
Operand::eval(const trace::Record &rec) const
{
    if (isConst)
        return constVal;

    auto read = [&rec](const VarRef &v) {
        return v.orig ? rec.pre[v.var] : rec.post[v.var];
    };

    uint32_t value = read(a);
    switch (op2) {
      case Op2::None: break;
      case Op2::And: value &= read(b); break;
      case Op2::Or: value |= read(b); break;
      case Op2::Add: value += read(b); break;
      case Op2::Sub: value -= read(b); break;
    }
    if (negate)
        value = ~value;
    value *= mulImm;
    if (modImm != 0)
        value %= modImm;
    value += addImm;
    return value;
}

bool
Operand::mentions(uint16_t var) const
{
    if (isConst)
        return false;
    return a.var == var || (op2 != Op2::None && b.var == var);
}

std::vector<VarRef>
Operand::vars() const
{
    if (isConst)
        return {};
    if (op2 == Op2::None)
        return {a};
    return {a, b};
}

bool
Operand::isBareVar() const
{
    return !isConst && op2 == Op2::None && !negate && mulImm == 1 &&
           modImm == 0 && addImm == 0;
}

namespace {

std::string
varRefStr(const VarRef &v)
{
    std::string name(trace::varName(v.var));
    return v.orig ? "orig(" + name + ")" : name;
}

} // namespace

std::string
Operand::str() const
{
    if (isConst) {
        return constVal < 10 ? format("%u", constVal)
                             : format("0x%x", constVal);
    }

    std::string out = varRefStr(a);
    bool compound = false;
    if (op2 != Op2::None) {
        out = "(" + out + " " + std::string(op2Name(op2)) + " " +
              varRefStr(b) + ")";
        compound = true;
    }
    if (negate) {
        out = "not " + out;
        compound = true;
    }
    if (mulImm != 1) {
        if (compound)
            out = "(" + out + ")";
        out += format(" * %u", mulImm);
        compound = true;
    }
    if (modImm != 0) {
        if (compound && mulImm == 1)
            out = "(" + out + ")";
        out += format(" mod %u", modImm);
    }
    if (addImm != 0) {
        int32_t s = int32_t(addImm);
        if (s < 0 && s > -4096)
            out += format(" - %d", -s);
        else
            out += addImm < 10 ? format(" + %u", addImm)
                               : format(" + 0x%x", addImm);
    }
    return out;
}

bool
Invariant::exprHolds(const trace::Record &rec) const
{
    uint32_t l = lhs.eval(rec);
    if (op == CmpOp::In) {
        return std::binary_search(set.begin(), set.end(), l);
    }
    uint32_t r = rhs.eval(rec);
    switch (op) {
      case CmpOp::Eq: return l == r;
      case CmpOp::Ne: return l != r;
      case CmpOp::Lt: return l < r;
      case CmpOp::Le: return l <= r;
      case CmpOp::Gt: return l > r;
      case CmpOp::Ge: return l >= r;
      case CmpOp::In: break;
    }
    return false;
}

bool
Invariant::holds(const trace::Record &rec) const
{
    if (rec.point.id() != point.id())
        return true;
    return exprHolds(rec);
}

namespace {

/** Stable ordering key for one operand. */
std::string
operandKey(const Operand &o)
{
    if (o.isConst)
        return format("K%08x", o.constVal);
    return o.str();
}

} // namespace

void
Invariant::canonicalize()
{
    if (op == CmpOp::In) {
        std::sort(set.begin(), set.end());
        set.erase(std::unique(set.begin(), set.end()), set.end());
    }

    // Order commutative two-variable terms.
    for (Operand *o : {&lhs, &rhs}) {
        if (!o->isConst &&
            (o->op2 == Op2::And || o->op2 == Op2::Or ||
             o->op2 == Op2::Add) &&
            o->b < o->a) {
            std::swap(o->a, o->b);
        }
    }

    // Convert < and <= into > and >= with swapped sides.
    if (op == CmpOp::Lt || op == CmpOp::Le) {
        std::swap(lhs, rhs);
        op = op == CmpOp::Lt ? CmpOp::Gt : CmpOp::Ge;
    }

    // Symmetric operators order their sides; put constants on the
    // right for readability.
    if (op == CmpOp::Eq || op == CmpOp::Ne) {
        bool swap = false;
        if (lhs.isConst != rhs.isConst)
            swap = lhs.isConst;
        else
            swap = operandKey(rhs) < operandKey(lhs);
        if (swap)
            std::swap(lhs, rhs);
    }
}

std::string
Invariant::exprKey() const
{
    Invariant c = *this;
    c.canonicalize();
    if (c.op == CmpOp::In) {
        std::string out = c.lhs.str() + " in {";
        for (size_t i = 0; i < c.set.size(); ++i) {
            if (i)
                out += ", ";
            out += format("0x%x", c.set[i]);
        }
        return out + "}";
    }
    return c.lhs.str() + " " + std::string(cmpOpName(c.op)) + " " +
           c.rhs.str();
}

std::string
Invariant::key() const
{
    return point.name() + " -> " + exprKey();
}

std::string
Invariant::str() const
{
    if (op == CmpOp::In) {
        std::string out =
            point.name() + " -> " + lhs.str() + " in {";
        for (size_t i = 0; i < set.size(); ++i) {
            if (i)
                out += ", ";
            out += format("0x%x", set[i]);
        }
        return out + "}";
    }
    return point.name() + " -> " + lhs.str() + " " +
           std::string(cmpOpName(op)) + " " + rhs.str();
}

// ---- parsing ----

namespace {

/** Minimal recursive-descent parser over the str() syntax. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Invariant
    parse()
    {
        Invariant inv;
        size_t arrow = text_.find(" -> ");
        if (arrow == std::string::npos)
            panic("invariant missing '->': %s", text_.c_str());
        inv.point = trace::Point::parse(trim(text_.substr(0, arrow)));
        rest_ = trim(text_.substr(arrow + 4));

        inv.lhs = parseOperand();
        std::string opTok = nextToken();
        if (opTok == "in") {
            inv.op = CmpOp::In;
            parseSet(inv.set);
            return inv;
        }
        inv.op = parseCmp(opTok);
        inv.rhs = parseOperand();
        return inv;
    }

  private:
    static CmpOp
    parseCmp(const std::string &tok)
    {
        if (tok == "==") return CmpOp::Eq;
        if (tok == "!=") return CmpOp::Ne;
        if (tok == "<") return CmpOp::Lt;
        if (tok == "<=") return CmpOp::Le;
        if (tok == ">") return CmpOp::Gt;
        if (tok == ">=") return CmpOp::Ge;
        panic("bad comparison operator '%s'", tok.c_str());
    }

    void
    skipSpace()
    {
        while (pos_ < rest_.size() && rest_[pos_] == ' ')
            ++pos_;
    }

    std::string
    nextToken()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < rest_.size() && rest_[pos_] != ' ' &&
               rest_[pos_] != '(' && rest_[pos_] != ')' &&
               rest_[pos_] != '{' && rest_[pos_] != '}' &&
               rest_[pos_] != ',') {
            ++pos_;
        }
        if (start == pos_ && pos_ < rest_.size())
            return std::string(1, rest_[pos_++]); // single delimiter
        return rest_.substr(start, pos_ - start);
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < rest_.size() ? rest_[pos_] : '\0';
    }

    VarRef
    parseVarRef(const std::string &tok)
    {
        if (tok == "orig") {
            if (peek() != '(')
                panic("orig needs parentheses");
            ++pos_;
            std::string name = nextToken();
            if (peek() != ')')
                panic("orig missing ')'");
            ++pos_;
            uint16_t v = trace::varByName(name);
            if (v >= trace::numVars)
                panic("unknown variable '%s'", name.c_str());
            return VarRef{v, true};
        }
        uint16_t v = trace::varByName(tok);
        if (v >= trace::numVars)
            panic("unknown variable '%s'", tok.c_str());
        return VarRef{v, false};
    }

    Operand
    parseOperand()
    {
        Operand o;
        skipSpace();

        bool negate = false;
        if (rest_.compare(pos_, 4, "not ") == 0) {
            negate = true;
            pos_ += 4;
            skipSpace();
        }

        if (peek() == '(') {
            // "(a op2 b)"
            ++pos_;
            o.a = parseVarRef(nextToken());
            std::string op2 = nextToken();
            if (op2 == "and")
                o.op2 = Op2::And;
            else if (op2 == "or")
                o.op2 = Op2::Or;
            else if (op2 == "+")
                o.op2 = Op2::Add;
            else if (op2 == "-")
                o.op2 = Op2::Sub;
            else
                panic("bad op2 '%s'", op2.c_str());
            o.b = parseVarRef(nextToken());
            if (peek() != ')')
                panic("missing ')'");
            ++pos_;
        } else {
            std::string tok = nextToken();
            if (auto v = parseInt(tok)) {
                o.isConst = true;
                o.constVal = uint32_t(*v);
                return o;
            }
            o.a = parseVarRef(tok);
        }
        o.negate = negate;

        // Optional suffixes: "* k", "mod k", "+ k" / "- k".
        for (;;) {
            skipSpace();
            size_t save = pos_;
            std::string tok = nextToken();
            if (tok == "*") {
                auto v = parseInt(nextToken());
                if (!v)
                    panic("bad multiplier");
                o.mulImm = uint32_t(*v);
            } else if (tok == "mod") {
                auto v = parseInt(nextToken());
                if (!v)
                    panic("bad modulus");
                o.modImm = uint32_t(*v);
            } else if (tok == "+" || tok == "-") {
                // Distinguish "+ const" suffix from the comparison
                // that follows: only a constant continues the term.
                size_t save2 = pos_;
                auto v = parseInt(nextToken());
                if (!v) {
                    pos_ = save2;
                    pos_ = save;
                    break;
                }
                o.addImm =
                    tok == "+" ? uint32_t(*v) : uint32_t(-*v);
            } else {
                pos_ = save;
                break;
            }
        }
        return o;
    }

    void
    parseSet(std::vector<uint32_t> &out)
    {
        if (peek() != '{')
            panic("'in' needs a set");
        ++pos_;
        for (;;) {
            skipSpace();
            if (peek() == '}') {
                ++pos_;
                break;
            }
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            auto v = parseInt(nextToken());
            if (!v)
                panic("bad set element");
            out.push_back(uint32_t(*v));
        }
        std::sort(out.begin(), out.end());
    }

    std::string text_;
    std::string rest_;
    size_t pos_ = 0;
};

} // namespace

Invariant
Invariant::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace scif::expr

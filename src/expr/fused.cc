#include "fused.hh"

#include <algorithm>

#include "support/evalstats.hh"
#include "support/logging.hh"

namespace scif::expr {

namespace {

bool fusedDefault_ = true;

/** Source-operand count of an instruction kind. */
int
arity(OpCode op)
{
    switch (op) {
      case OpCode::LoadCol:
      case OpCode::LoadImm:
        return 0;
      case OpCode::Not:
      case OpCode::MulImm:
      case OpCode::AndImm:
      case OpCode::ModImm:
      case OpCode::AddImm:
      case OpCode::InSet:
        return 1;
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::CmpEq:
      case OpCode::CmpNe:
      case OpCode::CmpGt:
      case OpCode::CmpGe:
        return 2;
    }
    return 0;
}

/** Operand order does not change the result, so sources are sorted
 *  to make the value-numbering key canonical. */
bool
commutative(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Add:
      case OpCode::CmpEq:
      case OpCode::CmpNe:
        return true;
      default:
        return false;
    }
}

uint64_t
hashValue(OpCode op, uint32_t src1, uint32_t src2, uint32_t imm)
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ull;
    };
    mix(uint64_t(uint8_t(op)));
    mix(src1);
    mix(src2);
    mix(imm);
    return h;
}

/** Rows between accumulator checks in the reduce-mode kernels.
 *  Falsified members are the common case in a generation sweep —
 *  most candidates die within their first few rows — so the
 *  reduction peeks at its accumulator every subchunk and bails out
 *  as soon as a failure lands instead of finishing the block. */
constexpr size_t kReduceChunk = 16;

/**
 * Reduce-mode kernel: AND of a compare over the whole block without
 * storing per-row results.
 * @return the first failing index, or npos when every row passes.
 */
template <typename Cmp>
size_t
cmpFirstBadT(const uint32_t *r1, const uint32_t *r2, size_t len,
             Cmp cmp)
{
    for (size_t k = 0; k < len;) {
        size_t lim = std::min(k + kReduceChunk, len);
        uint32_t all = 1;
        for (size_t j = k; j < lim; ++j)
            all &= cmp(r1[j], r2[j]) ? 1u : 0u;
        if (!all) {
            for (size_t j = k; j < lim; ++j) {
                if (!cmp(r1[j], r2[j]))
                    return j;
            }
        }
        k = lim;
    }
    return size_t(-1);
}

size_t
cmpFirstBad(OpCode op, const uint32_t *r1, const uint32_t *r2,
            size_t len)
{
    switch (op) {
      case OpCode::CmpEq:
        return cmpFirstBadT(r1, r2, len,
                            [](uint32_t a, uint32_t b) { return a == b; });
      case OpCode::CmpNe:
        return cmpFirstBadT(r1, r2, len,
                            [](uint32_t a, uint32_t b) { return a != b; });
      case OpCode::CmpGt:
        return cmpFirstBadT(r1, r2, len,
                            [](uint32_t a, uint32_t b) { return a > b; });
      case OpCode::CmpGe:
        return cmpFirstBadT(r1, r2, len,
                            [](uint32_t a, uint32_t b) { return a >= b; });
      default:
        return size_t(-1);
    }
}

} // namespace

bool
fusedEvalDefault()
{
    return fusedDefault_;
}

void
setFusedEvalDefault(bool enabled)
{
    fusedDefault_ = enabled;
}

uint32_t
FusedProgram::intern(const Value &v)
{
    if (table_.empty())
        table_.assign(1024, 0);
    size_t mask = table_.size() - 1;
    size_t idx = hashValue(v.op, v.src1, v.src2, v.imm) & mask;
    while (table_[idx]) {
        const Value &w = values_[table_[idx] - 1];
        if (w.op == v.op && w.src1 == v.src1 && w.src2 == v.src2 &&
            w.imm == v.imm) {
            return table_[idx] - 1;
        }
        idx = (idx + 1) & mask;
    }
    uint32_t id = uint32_t(values_.size());
    values_.push_back(v);
    table_[idx] = id + 1;
    if ((values_.size() + 1) * 4 > table_.size() * 3) {
        std::vector<uint32_t> old = std::move(table_);
        table_.assign(old.size() * 2, 0);
        size_t grown = table_.size() - 1;
        for (uint32_t slot : old) {
            if (!slot)
                continue;
            const Value &w = values_[slot - 1];
            size_t j =
                hashValue(w.op, w.src1, w.src2, w.imm) & grown;
            while (table_[j])
                j = (j + 1) & grown;
            table_[j] = slot;
        }
    }
    return id;
}

uint32_t
FusedProgram::loadCol(uint16_t slot)
{
    SCIF_ASSERT(!sealed_);
    Value v;
    v.op = OpCode::LoadCol;
    v.imm = slot;
    return intern(v);
}

uint32_t
FusedProgram::loadImm(uint32_t value)
{
    SCIF_ASSERT(!sealed_);
    Value v;
    v.op = OpCode::LoadImm;
    v.imm = value;
    return intern(v);
}

uint32_t
FusedProgram::apply(OpCode op, uint32_t src1, uint32_t imm)
{
    SCIF_ASSERT(!sealed_);
    SCIF_ASSERT(arity(op) == 1);
    Value v;
    v.op = op;
    v.src1 = src1;
    v.imm = imm;
    return intern(v);
}

uint32_t
FusedProgram::apply2(OpCode op, uint32_t src1, uint32_t src2)
{
    SCIF_ASSERT(!sealed_);
    SCIF_ASSERT(arity(op) == 2);
    Value v;
    v.op = op;
    v.src1 = src1;
    v.src2 = src2;
    if (commutative(op) && v.src1 > v.src2)
        std::swap(v.src1, v.src2);
    return intern(v);
}

uint32_t
FusedProgram::compare(CmpOp op, uint32_t lhs, uint32_t rhs)
{
    // Mirrors the per-invariant compiler: < and <= become > and >=
    // with swapped sources.
    switch (op) {
      case CmpOp::Eq:
        return apply2(OpCode::CmpEq, lhs, rhs);
      case CmpOp::Ne:
        return apply2(OpCode::CmpNe, lhs, rhs);
      case CmpOp::Gt:
        return apply2(OpCode::CmpGt, lhs, rhs);
      case CmpOp::Ge:
        return apply2(OpCode::CmpGe, lhs, rhs);
      case CmpOp::Lt:
        return apply2(OpCode::CmpGt, rhs, lhs);
      case CmpOp::Le:
        return apply2(OpCode::CmpGe, rhs, lhs);
      case CmpOp::In:
        break;
    }
    fatal("CmpOp::In has no direct-builder lowering; use add()");
}

size_t
FusedProgram::addRoot(uint32_t value)
{
    SCIF_ASSERT(!sealed_);
    SCIF_ASSERT(value < values_.size());
    memberRoot_.push_back(value);
    return memberRoot_.size() - 1;
}

size_t
FusedProgram::add(const CompiledInvariant &prog)
{
    SCIF_ASSERT(!sealed_);

    // Symbolically execute the member's four-register program: each
    // physical register holds a value id, and every instruction
    // interns a (canonicalized) DAG node over those ids.
    uint32_t regVal[4] = {0, 0, 0, 0};
    for (const Insn &insn : prog.program()) {
        Value v;
        v.op = insn.op;
        v.imm = insn.imm;
        switch (arity(insn.op)) {
          case 0:
            break;
          case 1:
            v.src1 = regVal[insn.src1];
            if (insn.op == OpCode::InSet) {
                // Sets are interned so the value key stays a triple.
                const auto &set = prog.inSet();
                uint32_t si = 0;
                while (si < sets_.size() && sets_[si] != set)
                    ++si;
                if (si == sets_.size())
                    sets_.push_back(set);
                v.imm = si;
            }
            break;
          default:
            v.src1 = regVal[insn.src1];
            v.src2 = regVal[insn.src2];
            if (commutative(insn.op) && v.src1 > v.src2)
                std::swap(v.src1, v.src2);
            break;
        }
        regVal[insn.dst] = intern(v);
    }
    memberRoot_.push_back(regVal[prog.resultReg()]);
    return memberRoot_.size() - 1;
}

void
FusedProgram::seal()
{
    SCIF_ASSERT(!sealed_);
    sealed_ = true;
    table_.clear();
    table_.shrink_to_fit();

    size_t n = values_.size();

    // Structurally identical candidates collapsed onto one root.
    {
        std::vector<uint32_t> roots = memberRoot_;
        std::sort(roots.begin(), roots.end());
        size_t distinct = size_t(
            std::unique(roots.begin(), roots.end()) - roots.begin());
        deduped_ = memberRoot_.size() - distinct;
    }

    // Sinks in CSR form: members reduced right after their root's
    // defining step (value-id order is a topological order, so the
    // root is complete there and its register frees immediately).
    sinkStart_.assign(n + 1, 0);
    for (uint32_t root : memberRoot_)
        ++sinkStart_[root + 1];
    for (size_t v = 0; v < n; ++v)
        sinkStart_[v + 1] += sinkStart_[v];
    sinkMembers_.resize(memberRoot_.size());
    {
        std::vector<uint32_t> cursor(sinkStart_.begin(),
                                     sinkStart_.end() - 1);
        for (uint32_t m = 0; m < memberRoot_.size(); ++m)
            sinkMembers_[cursor[memberRoot_[m]]++] = m;
    }

    // Liveness: a value dies at its last consumer — or at its own
    // definition when only sinks read it.
    std::vector<uint32_t> lastUse(n);
    for (size_t v = 0; v < n; ++v)
        lastUse[v] = uint32_t(v);
    for (size_t v = 0; v < n; ++v) {
        const Value &val = values_[v];
        int a = arity(val.op);
        if (a >= 1)
            lastUse[val.src1] = uint32_t(v);
        if (a == 2)
            lastUse[val.src2] = uint32_t(v);
    }

    // Linear-scan allocation with a free list: dying sources free
    // before the destination allocates, so elementwise ops compute in
    // place. InSet allocates its destination first — its kernel
    // zeroes the destination before sweeping the input, so the two
    // must never alias.
    steps_.resize(n);
    std::vector<uint32_t> regOf(n, 0);
    std::vector<uint32_t> freeRegs;
    numRegs_ = 0;
    auto alloc = [&]() -> uint32_t {
        if (!freeRegs.empty()) {
            uint32_t r = freeRegs.back();
            freeRegs.pop_back();
            return r;
        }
        return uint32_t(numRegs_++);
    };
    for (size_t v = 0; v < n; ++v) {
        const Value &val = values_[v];
        int a = arity(val.op);
        uint32_t dst;
        if (val.op == OpCode::InSet) {
            dst = alloc();
            if (lastUse[val.src1] == v)
                freeRegs.push_back(regOf[val.src1]);
        } else {
            if (a >= 1 && lastUse[val.src1] == v)
                freeRegs.push_back(regOf[val.src1]);
            if (a == 2 && val.src2 != val.src1 &&
                lastUse[val.src2] == v) {
                freeRegs.push_back(regOf[val.src2]);
            }
            dst = alloc();
        }
        regOf[v] = dst;
        Step &step = steps_[v];
        step.op = val.op;
        step.dst = dst;
        step.src1 = a >= 1 ? regOf[val.src1] : 0;
        step.src2 = a == 2 ? regOf[val.src2] : 0;
        step.imm = val.imm;
        // Roots consumed only by their sinks die at definition; the
        // sinks run before the next step, so the register recycles.
        if (lastUse[v] == v)
            freeRegs.push_back(dst);
    }

    // Sink-only compares run in reduce mode: the violation sweep
    // folds the block's AND-reduction into the compare, reads plain
    // LoadCol sources straight from the trace matrix, and skips the
    // register store entirely.
    for (size_t v = 0; v < n; ++v) {
        Step &step = steps_[v];
        bool cmp = step.op == OpCode::CmpEq ||
                   step.op == OpCode::CmpNe ||
                   step.op == OpCode::CmpGt ||
                   step.op == OpCode::CmpGe;
        if (!cmp || lastUse[v] != v ||
            sinkStart_[v] == sinkStart_[v + 1]) {
            continue;
        }
        step.reduce = true;
        const Value &val = values_[v];
        if (values_[val.src1].op == OpCode::LoadCol)
            step.col1 = uint16_t(values_[val.src1].imm);
        if (values_[val.src2].op == OpCode::LoadCol)
            step.col2 = uint16_t(values_[val.src2].imm);
    }

    std::vector<uint16_t> slots;
    for (const Value &val : values_) {
        if (val.op == OpCode::LoadCol)
            slots.push_back(uint16_t(val.imm));
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    slots_ = std::move(slots);

    support::EvalCounters::addBuild(memberRoot_.size(), deduped_);
}

void
FusedProgram::buildActive(const uint8_t *alive,
                          std::vector<uint32_t> &active,
                          std::vector<uint8_t> &triad) const
{
    // Backward reachability from the alive roots: every step only
    // dead members need is dropped from the sweep. A reduce compare
    // reads LoadCol sources directly from the matrix, so those loads
    // are staged only when some other consumer needs them.
    std::vector<uint8_t> needed(values_.size(), 0);
    for (size_t m = 0; m < memberRoot_.size(); ++m) {
        if (alive[m])
            needed[memberRoot_[m]] = 1;
    }
    for (size_t v = values_.size(); v-- > 0;) {
        if (!needed[v])
            continue;
        const Value &val = values_[v];
        const Step &step = steps_[v];
        int a = arity(val.op);
        if (a >= 1 && !(step.reduce && step.col1 != colNone))
            needed[val.src1] = 1;
        if (a == 2 && !(step.reduce && step.col2 != colNone))
            needed[val.src2] = 1;
    }
    active.clear();
    for (size_t v = 0; v < values_.size(); ++v) {
        if (needed[v])
            active.push_back(uint32_t(v));
    }

    // Pair-relation triads: the binary-relation template family
    // compares the same two columns three ways (a >= b, a != b,
    // b >= a), and the three compares land adjacently in the stream.
    // Marking the head lets the sweep feed all three reductions from
    // one traversal of the two columns instead of three.
    triad.assign(active.size(), 0);
    for (size_t i = 0; i + 2 < active.size(); ++i) {
        const Step &s0 = steps_[active[i]];
        const Step &s1 = steps_[active[i + 1]];
        const Step &s2 = steps_[active[i + 2]];
        if (!s0.reduce || !s1.reduce || !s2.reduce)
            continue;
        if (s0.op != OpCode::CmpGe || s1.op != OpCode::CmpNe ||
            s2.op != OpCode::CmpGe)
            continue;
        if (s0.col1 == colNone || s0.col2 == colNone)
            continue;
        if (s2.col1 != s0.col2 || s2.col2 != s0.col1)
            continue;
        bool neSame = (s1.col1 == s0.col1 && s1.col2 == s0.col2) ||
                      (s1.col1 == s0.col2 && s1.col2 == s0.col1);
        if (!neSame)
            continue;
        triad[i] = 1;
        triad[i + 1] = triad[i + 2] = 2;
        i += 2;
    }
}

void
FusedProgram::execStep(const Step &step,
                       const trace::PointColumns &cols, size_t begin,
                       size_t len, uint32_t *regs) const
{
    uint32_t *rd = regs + size_t(step.dst) * kBlock;
    const uint32_t *r1 = regs + size_t(step.src1) * kBlock;
    const uint32_t *r2 = regs + size_t(step.src2) * kBlock;
    switch (step.op) {
      case OpCode::LoadCol: {
        const uint32_t *col = cols.column(uint16_t(step.imm));
        SCIF_ASSERT(col != nullptr);
        const uint32_t *src = col + begin;
        for (size_t k = 0; k < len; ++k)
            rd[k] = src[k];
        break;
      }
      case OpCode::LoadImm:
        for (size_t k = 0; k < len; ++k)
            rd[k] = step.imm;
        break;
      case OpCode::And:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] & r2[k];
        break;
      case OpCode::Or:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] | r2[k];
        break;
      case OpCode::Add:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] + r2[k];
        break;
      case OpCode::Sub:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] - r2[k];
        break;
      case OpCode::Not:
        for (size_t k = 0; k < len; ++k)
            rd[k] = ~r1[k];
        break;
      case OpCode::MulImm:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] * step.imm;
        break;
      case OpCode::AndImm:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] & step.imm;
        break;
      case OpCode::ModImm:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] % step.imm;
        break;
      case OpCode::AddImm:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] + step.imm;
        break;
      case OpCode::CmpEq:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] == r2[k] ? 1u : 0u;
        break;
      case OpCode::CmpNe:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] != r2[k] ? 1u : 0u;
        break;
      case OpCode::CmpGt:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] > r2[k] ? 1u : 0u;
        break;
      case OpCode::CmpGe:
        for (size_t k = 0; k < len; ++k)
            rd[k] = r1[k] >= r2[k] ? 1u : 0u;
        break;
      case OpCode::InSet: {
        const std::vector<uint32_t> &set = sets_[step.imm];
        if (set.size() <= 8) {
            for (size_t k = 0; k < len; ++k)
                rd[k] = 0;
            for (uint32_t s : set) {
                for (size_t k = 0; k < len; ++k)
                    rd[k] |= r1[k] == s ? 1u : 0u;
            }
        } else {
            for (size_t k = 0; k < len; ++k) {
                rd[k] = std::binary_search(set.begin(), set.end(),
                                           r1[k])
                            ? 1u
                            : 0u;
            }
        }
        break;
      }
    }
}

void
FusedProgram::sweepViolations(const trace::PointColumns &cols,
                              size_t begin, size_t end,
                              size_t *firstViolation,
                              uint8_t *alive) const
{
    SCIF_ASSERT(sealed_);
    size_t m = memberRoot_.size();
    for (size_t i = 0; i < m; ++i)
        firstViolation[i] = npos;
    if (m == 0 || begin >= end)
        return;

    std::vector<uint8_t> aliveLocal;
    if (alive == nullptr) {
        aliveLocal.assign(m, 1);
        alive = aliveLocal.data();
    }
    size_t aliveCount = 0;
    for (size_t i = 0; i < m; ++i)
        aliveCount += alive[i] ? 1 : 0;
    if (aliveCount == 0)
        return;

    std::vector<uint32_t> active;
    std::vector<uint8_t> triad;
    buildActive(alive, active, triad);

    uint64_t retired = 0;
    uint64_t compactions = 0;
    size_t retiredSinceCompact = 0;
    // Re-compaction is a single O(values) reachability pass — far
    // cheaper than even one block of a retired member's arithmetic —
    // so it pays off almost immediately.
    auto threshold = [](size_t aliveNow) {
        return std::max<size_t>(8, aliveNow / 32);
    };
    size_t compactAt = threshold(aliveCount);

    auto retire = [&](uint32_t v, size_t firstBad) {
        for (uint32_t si = sinkStart_[v]; si < sinkStart_[v + 1];
             ++si) {
            uint32_t member = sinkMembers_[si];
            if (!alive[member])
                continue;
            alive[member] = 0;
            firstViolation[member] = firstBad;
            ++retired;
            ++retiredSinceCompact;
            --aliveCount;
        }
    };

    std::vector<uint32_t> regs(numRegs_ * kBlock);
    for (size_t pos = begin; pos < end && aliveCount; pos += kBlock) {
        size_t len = std::min(kBlock, end - pos);
        for (size_t i = 0; i < active.size(); ++i) {
            uint32_t v = active[i];
            const Step &step = steps_[v];
            if (triad[i] == 1) {
                // One traversal of the two columns feeds all three
                // pair-relation reductions; the pass stops early once
                // every relation has a failure on record.
                const uint32_t *x = cols.column(step.col1) + pos;
                const uint32_t *y = cols.column(step.col2) + pos;
                uint32_t allGe = 1, allNe = 1, allLe = 1;
                for (size_t k = 0; k < len;) {
                    size_t lim = std::min(k + kReduceChunk, len);
                    for (; k < lim; ++k) {
                        uint32_t a = x[k], b = y[k];
                        allGe &= a >= b ? 1u : 0u;
                        allNe &= a != b ? 1u : 0u;
                        allLe &= b >= a ? 1u : 0u;
                    }
                    if (!(allGe | allNe | allLe))
                        break;
                }
                uint32_t all3[3] = {allGe, allNe, allLe};
                for (size_t t = 0; t < 3; ++t) {
                    if (all3[t])
                        continue;
                    uint32_t w = active[i + t];
                    const Step &ws = steps_[w];
                    size_t bad =
                        cmpFirstBad(ws.op, cols.column(ws.col1) + pos,
                                    cols.column(ws.col2) + pos, len);
                    retire(w, pos + bad);
                }
                i += 2;
                continue;
            }
            size_t bad = npos;
            if (step.reduce) {
                const uint32_t *r1 =
                    step.col1 != colNone
                        ? cols.column(step.col1) + pos
                        : regs.data() + size_t(step.src1) * kBlock;
                const uint32_t *r2 =
                    step.col2 != colNone
                        ? cols.column(step.col2) + pos
                        : regs.data() + size_t(step.src2) * kBlock;
                bad = cmpFirstBad(step.op, r1, r2, len);
            } else {
                execStep(step, cols, pos, len, regs.data());
                uint32_t sb = sinkStart_[v], se = sinkStart_[v + 1];
                if (sb == se)
                    continue;
                const uint32_t *res =
                    regs.data() + size_t(step.dst) * kBlock;
                uint32_t all = 1;
                for (size_t k = 0; k < len; ++k)
                    all &= res[k];
                if (all)
                    continue;
                for (size_t k = 0; k < len; ++k) {
                    if (!res[k]) {
                        bad = k;
                        break;
                    }
                }
            }
            if (bad != npos)
                retire(v, pos + bad);
        }
        if (aliveCount && retiredSinceCompact >= compactAt) {
            buildActive(alive, active, triad);
            compactions++;
            retiredSinceCompact = 0;
            compactAt = threshold(aliveCount);
        }
    }
    support::EvalCounters::addSweep(retired, compactions);
}

void
FusedProgram::evalMasks(const trace::PointColumns &cols, size_t begin,
                        size_t end, uint8_t *out, size_t stride) const
{
    SCIF_ASSERT(sealed_);
    if (memberRoot_.empty() || begin >= end)
        return;
    SCIF_ASSERT(stride >= end - begin);

    std::vector<uint32_t> regs(numRegs_ * kBlock);
    for (size_t pos = begin; pos < end; pos += kBlock) {
        size_t len = std::min(kBlock, end - pos);
        for (size_t v = 0; v < steps_.size(); ++v) {
            execStep(steps_[v], cols, pos, len, regs.data());
            uint32_t sb = sinkStart_[v], se = sinkStart_[v + 1];
            if (sb == se)
                continue;
            const uint32_t *res =
                regs.data() + size_t(steps_[v].dst) * kBlock;
            for (uint32_t si = sb; si < se; ++si) {
                uint8_t *dst =
                    out + size_t(sinkMembers_[si]) * stride +
                    (pos - begin);
                for (size_t k = 0; k < len; ++k)
                    dst[k] = uint8_t(res[k]);
            }
        }
    }
}

bool
FusedProgram::compatible(const trace::PointColumns &cols) const
{
    for (uint16_t slot : slots_) {
        if (!cols.has(slot))
            return false;
    }
    return true;
}

} // namespace scif::expr

/**
 * @file
 * Compiled batch evaluation of invariant expressions.
 *
 * An Invariant compiles into a flat register-machine program over a
 * handful of instruction kinds (load column, the op2 combines, not,
 * scale, modulus, offset, compare, set membership). The batch kernel
 * executes the program over blocks of rows of a columnar trace
 * matrix (trace/columns.hh): every instruction is a branch-free loop
 * over plain uint32_t arrays, so the compiler auto-vectorizes it, and
 * the block scan early-exits at the first violating row.
 *
 * The interpreted Expr::holds / Operand::eval path stays untouched
 * and serves as the oracle: the differential test suite pins
 * compiled == interpreted record-for-record on every generated
 * invariant and on fuzzed random expressions.
 */

#ifndef SCIFINDER_EXPR_COMPILE_HH
#define SCIFINDER_EXPR_COMPILE_HH

#include <cstdint>
#include <vector>

#include "expr/expr.hh"
#include "trace/columns.hh"

namespace scif::expr {

/** Register-machine instruction kinds. */
enum class OpCode : uint8_t {
    LoadCol, ///< r[dst] = column[imm][row]
    LoadImm, ///< r[dst] = imm
    And,     ///< r[dst] = r[src1] & r[src2]
    Or,      ///< r[dst] = r[src1] | r[src2]
    Add,     ///< r[dst] = r[src1] + r[src2]
    Sub,     ///< r[dst] = r[src1] - r[src2]
    Not,     ///< r[dst] = ~r[src1]
    MulImm,  ///< r[dst] = r[src1] * imm
    AndImm,  ///< r[dst] = r[src1] & imm  (power-of-two modulus)
    ModImm,  ///< r[dst] = r[src1] % imm
    AddImm,  ///< r[dst] = r[src1] + imm
    CmpEq,   ///< r[dst] = r[src1] == r[src2]
    CmpNe,   ///< r[dst] = r[src1] != r[src2]
    CmpGt,   ///< r[dst] = r[src1] > r[src2]   (unsigned)
    CmpGe,   ///< r[dst] = r[src1] >= r[src2]  (unsigned)
    InSet,   ///< r[dst] = r[src1] member of the sorted value set
};

/** One program instruction. */
struct Insn
{
    OpCode op;
    uint8_t dst = 0;
    uint8_t src1 = 0;
    uint8_t src2 = 0;
    uint32_t imm = 0; ///< immediate or column (slot) id
};

/**
 * A compiled invariant expression. Compile once, evaluate many:
 * batch kernels over column matrices for the generation /
 * identification sweeps, and a scalar kernel for the streaming
 * assertion monitor. Compiled programs are immutable and safe to
 * share across threads.
 */
class CompiledInvariant
{
  public:
    static constexpr size_t npos = size_t(-1);

    /** Rows per inner-kernel block. */
    static constexpr size_t kBlock = 128;

    CompiledInvariant() = default;

    /** Compile the expression part of @p inv (point is not encoded:
     *  callers dispatch rows to programs by point already). */
    static CompiledInvariant compile(const Invariant &inv);

    /**
     * Batch kernel: evaluate rows [begin, end) of @p cols.
     * @return the first row index where the expression is false, or
     *         npos if it holds on every row.
     */
    size_t firstViolation(const trace::PointColumns &cols, size_t begin,
                          size_t end) const;

    /** Batch kernel: write one byte per row (1 = holds) to @p out. */
    void evalMask(const trace::PointColumns &cols, size_t begin,
                  size_t end, uint8_t *out) const;

    /** Scalar kernel for streaming sinks (assertion monitor). */
    bool holdsRecord(const trace::Record &rec) const;

    /** @return true if every referenced column is materialized. */
    bool compatible(const trace::PointColumns &cols) const;

    /** Slot ids of every column the program loads, sorted and
     *  deduplicated (fused-group column planning and compatible()
     *  checks count each referenced column once). */
    std::vector<uint16_t> slots() const;

    const std::vector<Insn> &program() const { return program_; }

    /** Register holding the final truth value after the program. */
    uint8_t resultReg() const { return resultReg_; }

    /** The sorted membership set an InSet instruction tests. */
    const std::vector<uint32_t> &inSet() const { return set_; }

  private:
    /** Execute over one block; r[resultReg_][k] = holds(row begin+k). */
    void runBlock(const trace::PointColumns &cols, size_t begin,
                  size_t len, uint32_t regs[][kBlock]) const;

    std::vector<Insn> program_;
    std::vector<uint32_t> set_; ///< sorted, for InSet
    uint8_t resultReg_ = 0;
};

} // namespace scif::expr

#endif // SCIFINDER_EXPR_COMPILE_HH

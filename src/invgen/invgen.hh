/**
 * @file
 * Dynamic invariant generation (paper §3.1): a Daikon-style inference
 * engine specialized for processor traces.
 *
 * Records are grouped by program point (per-mnemonic, with delay-slot
 * fusion and exception qualification already applied by the trace
 * layer). At each point the engine instantiates invariant templates
 * over every tracked variable slot — pre ("orig") and post state —
 * and keeps the candidates that survive all samples *and* clear a
 * Daikon-style confidence bar (the probability that the invariant
 * holds by chance in the observed sample count must be below
 * 1 - confidence; the paper uses confidence 0.99).
 *
 * Templates:
 *  - equality to constant            (x == c)
 *  - small-set membership            (x in {c1, c2, c3})
 *  - binary relations between slots  (x == y, x != y, x < y, ...)
 *  - linear relations                (x == a*y + b)
 *  - modular residue                 (x mod m == c)
 *  - targeted ternary sums           (x == y + z, x == y - z)
 */

#ifndef SCIFINDER_INVGEN_INVGEN_HH
#define SCIFINDER_INVGEN_INVGEN_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "expr/expr.hh"
#include "expr/fused.hh"
#include "trace/columns.hh"
#include "trace/record.hh"

namespace scif::support {
class ThreadPool;
} // namespace scif::support

namespace scif::trace {
class TraceSetReader;
} // namespace scif::trace

namespace scif::invgen {

/** Tuning knobs for the generator. */
struct Config
{
    /** Daikon confidence limit (§5.1 uses 0.99). */
    double confidence = 0.99;

    /** Minimum samples at a point before any invariant is emitted. */
    uint64_t minSamples = 5;

    /** Minimum samples for a != relation (weak evidence). */
    uint64_t neMinSamples = 12;

    /** Maximum set size for membership invariants. */
    size_t maxOneOf = 3;

    /** Scales tried for linear relations x == a*y + b. */
    std::vector<uint32_t> linearScales = {1, 2, 4};

    /** Moduli tried for residue invariants. */
    std::vector<uint32_t> moduli = {2, 4};

    /**
     * Variables excluded from invariant generation. The effective-
     * address oracles are off by default, reproducing the paper's
     * missing property p10 (§5.4); enabling them is the ablation.
     */
    std::set<uint16_t> disabledVars = {trace::VarId::JEA,
                                       trace::VarId::EA,
                                       trace::VarId::USTALL};

    /**
     * Falsify candidates through per-point fused programs (one
     * matrix traversal per window with cross-candidate CSE) instead
     * of one hand-rolled sweep per template. Both paths accumulate
     * identical evidence bit for bit; the scalar path is the
     * differential oracle behind --no-fused-eval.
     */
    bool fusedEval = expr::fusedEvalDefault();
};

/** A deduplicated, point-indexed collection of invariants. */
class InvariantSet
{
  public:
    /**
     * Canonicalize and insert.
     * @return true if the invariant was new.
     */
    bool add(expr::Invariant inv);

    /** @return all invariants, in insertion order. */
    const std::vector<expr::Invariant> &all() const { return invs_; }

    /** @return indices of invariants at program point @p pointId. */
    const std::vector<size_t> &atPoint(uint16_t pointId) const;

    /** @return true if an invariant with this canonical key exists. */
    bool contains(const std::string &key) const
    {
        return keyIndex_.count(key) != 0;
    }

    /** @return the canonical keys of all invariants. */
    std::set<std::string> keys() const;

    size_t size() const { return invs_.size(); }

    /** Total number of variable references across all invariants
     *  (the "Variables" row of Table 2). */
    size_t variableCount() const;

    /** Replace the contents with the given invariants. */
    void assign(std::vector<expr::Invariant> invs);

    /**
     * Persist to a text file, one invariant per line in the str()
     * syntax (the format the parser reads back).
     */
    void saveText(const std::string &path) const;

    /** Load a set previously written by saveText(). */
    static InvariantSet loadText(const std::string &path);

    /**
     * Persist to a versioned binary artifact (the inter-stage format
     * of the staged pipeline); byte-exact round trip, including
     * insertion order.
     */
    void saveBinary(const std::string &path) const;

    /** Load a binary artifact; aborts on a truncated or corrupt
     *  file, or on an unsupported version. */
    static InvariantSet loadBinary(const std::string &path);

  private:
    std::vector<expr::Invariant> invs_;
    std::map<std::string, size_t> keyIndex_;
    std::map<uint16_t, std::vector<size_t>> pointIndex_;
};

/** Per-run statistics for reporting. */
struct GenStats
{
    uint64_t records = 0;
    uint64_t points = 0;
    uint64_t candidatesTried = 0;
    /** Falsification candidates that hash-consed onto an already-
     *  fused structurally identical candidate (zero on the scalar
     *  path). Telemetry only: the count depends on how the corpus
     *  was windowed, the inferred invariants never do. */
    uint64_t candidatesDeduped = 0;
};

/**
 * Infer invariants from one or more trace buffers.
 *
 * Program points are independent, so inference fans out per point
 * over @p pool when one is given; the per-point results are merged
 * in ascending point order, making the output identical to the
 * serial run.
 *
 * @param traces the training corpus.
 * @param config generator tuning.
 * @param stats optional output statistics.
 * @param pool optional worker pool for the per-point fan-out.
 */
InvariantSet generate(const std::vector<const trace::TraceBuffer *> &traces,
                      const Config &config = Config(),
                      GenStats *stats = nullptr,
                      support::ThreadPool *pool = nullptr);

/** Convenience overload for a single buffer. */
InvariantSet generate(const trace::TraceBuffer &trace,
                      const Config &config = Config(),
                      GenStats *stats = nullptr);

/**
 * Infer invariants from an already-transposed column set (the
 * capture-time columnar front end). @p cols must materialize at
 * least the slots the templates reference — a full-slot seal always
 * qualifies — and yields output identical to generate() over the
 * equivalent record stream, minus the AoS-to-SoA transpose.
 */
InvariantSet generate(trace::ColumnSet cols,
                      const Config &config = Config(),
                      GenStats *stats = nullptr,
                      support::ThreadPool *pool = nullptr);

/**
 * Infer invariants from a chunked v2 trace-set artifact without
 * materializing the corpus: chunks are decompressed a window at a
 * time (one chunk per pool worker), folded into per-point
 * accumulators, and released, so resident trace memory is
 * O(chunk x jobs) no matter how large the set on disk is. Every
 * accumulator is a prefix-closed fold over the record stream, so the
 * result is identical to generate() over the fully loaded corpus —
 * independent of chunk size and job count.
 */
InvariantSet generateStreaming(const trace::TraceSetReader &reader,
                               const Config &config = Config(),
                               GenStats *stats = nullptr,
                               support::ThreadPool *pool = nullptr);

} // namespace scif::invgen

#endif // SCIFINDER_INVGEN_INVGEN_HH

#include "invgen.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <unordered_set>

#include "support/binio.hh"
#include "support/logging.hh"
#include "support/memstats.hh"
#include "support/threadpool.hh"
#include "trace/columns.hh"
#include "trace/store.hh"

namespace scif::invgen {

using expr::CmpOp;
using expr::Invariant;
using expr::Op2;
using expr::Operand;
using expr::VarRef;

bool
InvariantSet::add(Invariant inv)
{
    inv.canonicalize();
    std::string key = inv.key();
    if (keyIndex_.count(key))
        return false;
    size_t idx = invs_.size();
    keyIndex_[key] = idx;
    pointIndex_[inv.point.id()].push_back(idx);
    invs_.push_back(std::move(inv));
    return true;
}

const std::vector<size_t> &
InvariantSet::atPoint(uint16_t pointId) const
{
    static const std::vector<size_t> empty;
    auto it = pointIndex_.find(pointId);
    return it == pointIndex_.end() ? empty : it->second;
}

std::set<std::string>
InvariantSet::keys() const
{
    std::set<std::string> out;
    for (const auto &[key, idx] : keyIndex_)
        out.insert(key);
    return out;
}

size_t
InvariantSet::variableCount() const
{
    size_t count = 0;
    for (const auto &inv : invs_) {
        count += inv.lhs.vars().size();
        if (inv.op != CmpOp::In)
            count += inv.rhs.vars().size();
    }
    return count;
}

void
InvariantSet::assign(std::vector<expr::Invariant> invs)
{
    invs_.clear();
    keyIndex_.clear();
    pointIndex_.clear();
    for (auto &inv : invs)
        add(std::move(inv));
}

void
InvariantSet::saveText(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    for (const auto &inv : invs_)
        out << inv.str() << "\n";
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

InvariantSet
InvariantSet::loadText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open invariant file '%s'", path.c_str());
    InvariantSet set;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        set.add(expr::Invariant::parse(line));
    }
    return set;
}

namespace {

constexpr uint32_t invMagic = 0x53434956; // "SCIV"
constexpr uint32_t invVersion = 1;

void
writeOperand(support::BinWriter &out, const Operand &op)
{
    out.u8(op.isConst);
    out.u32(op.constVal);
    out.u16(op.a.var);
    out.u8(op.a.orig);
    out.u8(uint8_t(op.op2));
    out.u16(op.b.var);
    out.u8(op.b.orig);
    out.u8(op.negate);
    out.u32(op.mulImm);
    out.u32(op.modImm);
    out.u32(op.addImm);
}

Operand
readOperand(support::BinReader &in, const std::string &path)
{
    Operand op;
    op.isConst = in.u8() != 0;
    op.constVal = in.u32();
    op.a.var = in.u16();
    op.a.orig = in.u8() != 0;
    uint8_t op2 = in.u8();
    if (op2 > uint8_t(Op2::Sub))
        fatal("invariant model '%s' is corrupt (operator %u)",
              path.c_str(), op2);
    op.op2 = Op2(op2);
    op.b.var = in.u16();
    op.b.orig = in.u8() != 0;
    op.negate = in.u8() != 0;
    op.mulImm = in.u32();
    op.modImm = in.u32();
    op.addImm = in.u32();
    return op;
}

} // namespace

void
InvariantSet::saveBinary(const std::string &path) const
{
    support::BinWriter out(path, invMagic, invVersion);
    out.u64(invs_.size());
    for (const auto &inv : invs_) {
        out.u16(inv.point.id());
        out.u8(uint8_t(inv.op));
        writeOperand(out, inv.lhs);
        writeOperand(out, inv.rhs);
        out.u32(uint32_t(inv.set.size()));
        for (uint32_t v : inv.set)
            out.u32(v);
    }
    out.close();
}

InvariantSet
InvariantSet::loadBinary(const std::string &path)
{
    support::BinReader in(path, invMagic, invVersion,
                          "invariant model");
    InvariantSet set;
    uint64_t count = in.u64();
    for (uint64_t i = 0; i < count; ++i) {
        Invariant inv;
        inv.point = trace::Point::fromId(in.u16());
        uint8_t op = in.u8();
        if (op > uint8_t(CmpOp::In))
            fatal("invariant model '%s' is corrupt (comparison %u)",
                  path.c_str(), op);
        inv.op = CmpOp(op);
        inv.lhs = readOperand(in, path);
        inv.rhs = readOperand(in, path);
        uint32_t setSize = in.u32();
        if (setSize > (1u << 20))
            fatal("invariant model '%s' is corrupt (set size %u)",
                  path.c_str(), setSize);
        inv.set.resize(setSize);
        for (uint32_t &v : inv.set)
            v = in.u32();
        set.add(std::move(inv));
    }
    in.expectEof();
    return set;
}

namespace {

/** A slot is one column of the trace matrix: (variable, pre/post). */
struct Slot
{
    uint16_t var;
    bool orig;

    VarRef ref() const { return VarRef{var, orig}; }
    uint16_t id() const { return trace::slotId(var, orig); }
};

/** Rows per falsification-sweep block between early-exit checks. */
constexpr size_t sweepBlock = 512;

/** Cap on the per-slot global distinct-value trackers. */
constexpr size_t cardinalityCap = 64;

/**
 * The justification test: an invariant is emitted only if the chance
 * of it holding coincidentally in n samples is below 1 - confidence.
 * The per-sample chance is modelled from the slot's observed global
 * value cardinality (Daikon's "justified" notion, simplified).
 */
bool
justified(double per_sample_chance, uint64_t n, double confidence)
{
    if (n == 0)
        return false;
    double p = std::pow(per_sample_chance, double(n - 1));
    return p <= 1.0 - confidence;
}

/** Pair evidence bits. */
constexpr uint8_t sawLtBit = 1;
constexpr uint8_t sawEqBit = 2;
constexpr uint8_t sawGtBit = 4;
constexpr uint8_t pairDead = sawLtBit | sawEqBit | sawGtBit;

/** Lazy linear-candidate lifecycle. */
constexpr uint8_t linUnseeded = 0;
constexpr uint8_t linAlive = 1;
constexpr uint8_t linDead = 2;

/**
 * The incremental inference engine. Trace windows (any partition of
 * the corpus into column sets, in record order) are folded in one at
 * a time with add(); finish() then emits every invariant the whole
 * corpus justifies. Every per-point accumulator is a prefix-closed
 * fold over the record stream, so the result is independent of how
 * the corpus was windowed — feeding the entire corpus as one window
 * reproduces the historical batch generator bit for bit, and feeding
 * it chunk-by-chunk from the v2 store gives the same answer with
 * O(window) resident trace memory.
 */
class Engine
{
  public:
    explicit Engine(const Config &config) : config_(config)
    {
        for (uint16_t v = 0; v < trace::numVars; ++v) {
            if (config_.disabledVars.count(v))
                continue;
            slots_.push_back(Slot{v, true});
            slots_.push_back(Slot{v, false});
        }
        slotIds_.reserve(slots_.size());
        for (const auto &s : slots_)
            slotIds_.push_back(s.id());
        seen_.resize(slots_.size());
        globalMin_.assign(slots_.size(), 0xffffffffu);
        globalMax_.assign(slots_.size(), 0);
        buildTripleSpecs();
    }

    /** The slot ids a window ColumnSet must materialize. */
    const std::vector<uint16_t> &slotIds() const { return slotIds_; }

    /**
     * Fold one window of the corpus into the per-point accumulators.
     * Distinct points are independent, so the per-point update fans
     * out over @p pool.
     */
    void
    add(const trace::ColumnSet &cols, support::ThreadPool *pool)
    {
        // Global value-cardinality trackers are shared across points;
        // update them serially. The final cardinalities are order-
        // independent: a capped set either saturates or holds every
        // distinct value, and min/max are plain folds.
        for (const auto &pc : cols.points()) {
            for (size_t s = 0; s < slots_.size(); ++s) {
                const uint32_t *col = pc.column(slots_[s].id());
                auto &set = seen_[s];
                uint32_t mn = globalMin_[s], mx = globalMax_[s];
                for (size_t k = 0; k < pc.rows(); ++k) {
                    uint32_t v = col[k];
                    mn = std::min(mn, v);
                    mx = std::max(mx, v);
                    if (set.size() < cardinalityCap)
                        set.insert(v);
                }
                globalMin_[s] = mn;
                globalMax_[s] = mx;
            }
        }

        // Create the states serially (the map must not rehash under
        // the fan-out), then update each point on its own worker.
        std::vector<std::pair<PointState *, const trace::PointColumns *>>
            work;
        work.reserve(cols.points().size());
        for (const auto &pc : cols.points()) {
            auto &slot = states_[pc.point().id()];
            if (!slot)
                slot = makeState(pc.point());
            work.push_back({slot.get(), &pc});
        }
        support::parallelFor(pool, work.size(), [&](size_t i) {
            updatePoint(*work[i].first, *work[i].second);
        });
    }

    /** Emit every justified invariant over the folded corpus. */
    InvariantSet
    finish(GenStats *stats, support::ThreadPool *pool)
    {
        computeCardinality();

        std::vector<const PointState *> emit;
        uint64_t records = 0;
        uint64_t deduped = 0;
        for (const auto &[id, st] : states_) {
            records += st->n;
            deduped += st->deduped;
            if (st->n >= config_.minSamples)
                emit.push_back(st.get());
        }

        struct PointOut
        {
            InvariantSet invs;
            uint64_t candidates = 0;
        };
        std::vector<PointOut> perPoint(emit.size());
        support::parallelFor(pool, emit.size(), [&](size_t i) {
            emitPoint(*emit[i], perPoint[i].invs,
                      perPoint[i].candidates);
        });

        InvariantSet out;
        uint64_t candidates = 0;
        for (auto &po : perPoint) {
            for (const auto &inv : po.invs.all())
                out.add(inv);
            candidates += po.candidates;
        }
        if (stats) {
            stats->records = records;
            stats->points = states_.size();
            stats->candidatesTried = candidates;
            stats->candidatesDeduped = deduped;
        }
        return out;
    }

  private:
    /** Per-slot accumulation at one program point. */
    struct SlotAcc
    {
        uint32_t first = 0;
        uint32_t min = 0;
        uint32_t max = 0;
        bool constant = true;
        bool trackDistinct = true;
        std::vector<uint32_t> distinct; // first-seen order, capped
        std::vector<uint8_t> modAlive;  // per modulus
        std::vector<uint8_t> diffAlive; // per scale: a*(v-first) == 0
    };

    /** All evidence accumulated at one program point. */
    struct PointState
    {
        trace::Point point;
        uint64_t n = 0;
        uint64_t deduped = 0; ///< fused candidates hash-consed away
        std::vector<SlotAcc> slots;
        std::vector<uint8_t> pairBits; // i<j upper triangle
        std::vector<uint8_t> linear;   // (i*ns + j)*scales + a
        uint8_t tripleAlive[4][2];
    };

    struct TripleSpec
    {
        Slot v, w, u;
        int iv = -1, iw = -1, iu = -1;
    };

    std::unique_ptr<PointState>
    makeState(trace::Point point) const
    {
        auto st = std::make_unique<PointState>();
        size_t ns = slots_.size();
        st->point = point;
        st->slots.resize(ns);
        for (auto &a : st->slots) {
            a.modAlive.assign(config_.moduli.size(), 1);
            a.diffAlive.assign(config_.linearScales.size(), 1);
        }
        st->pairBits.assign(ns * (ns - 1) / 2, 0);
        st->linear.assign(ns * ns * config_.linearScales.size(),
                          linUnseeded);
        for (auto &spec : st->tripleAlive)
            spec[0] = spec[1] = 1;
        return st;
    }

    void
    buildTripleSpecs()
    {
        using trace::VarId;
        triples_ = {
            TripleSpec{{VarId::MEMADDR, false},
                       {VarId::OPA, true},
                       {VarId::IMM, false}},
            TripleSpec{{VarId::OPDEST, false},
                       {VarId::OPA, true},
                       {VarId::OPB, true}},
            TripleSpec{{VarId::OPDEST, false},
                       {VarId::OPA, true},
                       {VarId::IMM, false}},
            TripleSpec{{VarId::EPCR0, false},
                       {VarId::PC, false},
                       {VarId::IMM, false}},
        };
        auto slotIndex = [&](const Slot &s) -> int {
            for (size_t i = 0; i < slots_.size(); ++i) {
                if (slots_[i].var == s.var &&
                    slots_[i].orig == s.orig)
                    return int(i);
            }
            return -1;
        };
        for (auto &t : triples_) {
            t.iv = slotIndex(t.v);
            t.iw = slotIndex(t.w);
            t.iu = slotIndex(t.u);
        }
    }

    void
    computeCardinality()
    {
        cardinality_.assign(slots_.size(), 0);
        for (size_t s = 0; s < slots_.size(); ++s) {
            size_t distinct = std::max<size_t>(seen_[s].size(), 1);
            if (distinct < cardinalityCap) {
                cardinality_[s] = distinct;
            } else {
                // The distinct-value tracker saturated: estimate the
                // value cardinality from the observed span (Daikon's
                // value-tracker heuristic). Wide variables get a huge
                // cardinality, so "never equal" observations carry no
                // statistical weight.
                uint64_t span =
                    uint64_t(globalMax_[s]) - globalMin_[s] + 1;
                cardinality_[s] = size_t(
                    std::min<uint64_t>(span, 0xffffffffull));
            }
        }
    }

    /** Chance of two values colliding, from global cardinalities. */
    double
    eqChance(size_t i, size_t j) const
    {
        size_t v = std::min(cardinality_[i], cardinality_[j]);
        return 1.0 / double(std::max<size_t>(v, 2));
    }

    /** Per-sample chance that two values merely happen to differ. */
    double
    neChance(size_t i, size_t j) const
    {
        return 1.0 - eqChance(i, j);
    }

    void
    updatePoint(PointState &st, const trace::PointColumns &pc) const
    {
        size_t ns = slots_.size();
        size_t n = pc.rows();
        if (n == 0)
            return;
        size_t nsc = config_.linearScales.size();
        bool fresh = st.n == 0;

        std::vector<const uint32_t *> colOf(ns);
        for (size_t s = 0; s < ns; ++s)
            colOf[s] = pc.column(slots_[s].id());

        // Snapshot constancy and difference evidence as of the
        // previous window boundary: the lazy linear seeding below
        // reconstructs the past from these.
        std::vector<uint8_t> prevConst(ns);
        std::vector<uint8_t> prevDiff(ns * nsc);
        for (size_t s = 0; s < ns; ++s) {
            prevConst[s] = st.slots[s].constant;
            for (size_t a = 0; a < nsc; ++a)
                prevDiff[s * nsc + a] = st.slots[s].diffAlive[a];
        }

        // --- per-slot folds: one cache-order sweep per column ---
        // (The residue and difference candidates are falsified with
        // the relational templates below, so both evaluation paths
        // share one windowAllFirst gate.)
        std::vector<uint8_t> windowAllFirst(ns);
        for (size_t s = 0; s < ns; ++s) {
            const uint32_t *col = colOf[s];
            auto &acc = st.slots[s];
            if (fresh) {
                acc.first = col[0];
                acc.min = acc.first;
                acc.max = acc.first;
            }
            uint32_t first = acc.first;

            uint32_t mn = acc.min, mx = acc.max;
            uint32_t allEq = acc.constant ? 1u : 0u;
            for (size_t k = 0; k < n; ++k) {
                uint32_t v = col[k];
                mn = std::min(mn, v);
                mx = std::max(mx, v);
                allEq &= v == first ? 1u : 0u;
            }
            acc.min = mn;
            acc.max = mx;
            bool wasConstant = acc.constant;
            acc.constant = allEq != 0;

            // Distinct values in first-seen order, capped one past
            // the membership-set limit (beyond that the slot can
            // never yield a one-of invariant).
            if (acc.trackDistinct) {
                for (size_t k = 0; k < n; ++k) {
                    uint32_t v = col[k];
                    if (std::find(acc.distinct.begin(),
                                  acc.distinct.end(),
                                  v) == acc.distinct.end()) {
                        acc.distinct.push_back(v);
                        if (acc.distinct.size() > config_.maxOneOf) {
                            acc.trackDistinct = false;
                            break;
                        }
                    }
                }
            }

            // A window whose rows all equal `first` cannot change the
            // residue or difference evidence.
            windowAllFirst[s] = wasConstant && acc.constant ? 1 : 0;
        }

        if (config_.fusedEval) {
            falsifyFused(st, pc, n, prevConst, prevDiff,
                         windowAllFirst);
        } else {
            falsifyScalar(st, colOf, n, prevConst, prevDiff,
                          windowAllFirst);
        }

        st.n += n;
    }

    /**
     * Per-template falsification sweeps — one matrix traversal per
     * still-alive candidate. This is the --no-fused-eval differential
     * oracle; falsifyFused() must leave identical evidence.
     */
    void
    falsifyScalar(PointState &st,
                  const std::vector<const uint32_t *> &colOf, size_t n,
                  const std::vector<uint8_t> &prevConst,
                  const std::vector<uint8_t> &prevDiff,
                  const std::vector<uint8_t> &windowAllFirst) const
    {
        size_t ns = slots_.size();
        size_t nsc = config_.linearScales.size();

        // --- modular residues and scaled differences ---
        for (size_t s = 0; s < ns; ++s) {
            if (windowAllFirst[s])
                continue;
            const uint32_t *col = colOf[s];
            auto &acc = st.slots[s];
            uint32_t first = acc.first;
            for (size_t m = 0; m < config_.moduli.size(); ++m) {
                if (!acc.modAlive[m])
                    continue;
                uint32_t mod = config_.moduli[m];
                uint32_t r0 = first % mod;
                uint32_t bad = 0;
                size_t k = 0;
                while (k < n && !bad) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k)
                        bad |= col[k] % mod != r0 ? 1u : 0u;
                }
                if (bad)
                    acc.modAlive[m] = 0;
            }
            for (size_t a = 0; a < nsc; ++a) {
                if (!acc.diffAlive[a])
                    continue;
                uint32_t scale = config_.linearScales[a];
                uint32_t bad = 0;
                size_t k = 0;
                while (k < n && !bad) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k)
                        bad |= scale * (col[k] - first) != 0 ? 1u
                                                             : 0u;
                }
                if (bad)
                    acc.diffAlive[a] = 0;
            }
        }

        // --- pairwise relation evidence ---
        size_t pairIdx = 0;
        for (size_t i = 0; i < ns; ++i) {
            for (size_t j = i + 1; j < ns; ++j, ++pairIdx) {
                uint8_t &bits = st.pairBits[pairIdx];
                if (bits == pairDead)
                    continue;
                const auto &ai = st.slots[i];
                const auto &aj = st.slots[j];
                if (ai.constant && aj.constant) {
                    // Every row of this window is (first_i, first_j).
                    uint32_t l = ai.first, r = aj.first;
                    bits |= l < r ? sawLtBit
                                  : (l == r ? sawEqBit : sawGtBit);
                    continue;
                }
                const uint32_t *ci = colOf[i];
                const uint32_t *cj = colOf[j];
                uint32_t lt = 0, eq = 0, gt = 0;
                size_t k = 0;
                while (k < n) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k) {
                        uint32_t l = ci[k], r = cj[k];
                        lt |= l < r ? 1u : 0u;
                        eq |= l == r ? 1u : 0u;
                        gt |= l > r ? 1u : 0u;
                    }
                    if ((bits | (lt ? sawLtBit : 0) |
                         (eq ? sawEqBit : 0) |
                         (gt ? sawGtBit : 0)) == pairDead)
                        break;
                }
                bits |= (lt ? sawLtBit : 0) | (eq ? sawEqBit : 0) |
                        (gt ? sawGtBit : 0);
            }
        }

        // --- linear candidates x_i == a * x_j + b ---
        // A candidate exists once both slots are non-constant; its
        // offset is pinned by the point's first record. Seeding is
        // lazy: when a pair first becomes jointly non-constant, the
        // records before this window either had x_i constant (then
        // the candidate held on them iff a*(x_j - first_j) was always
        // zero — the diffAlive fold) or had x_i non-constant while
        // x_j was constant (then some earlier record already broke
        // the relation). Both reconstructions use only the snapshots
        // above, so the outcome is window-partition independent.
        for (size_t i = 0; i < ns; ++i) {
            if (st.slots[i].constant)
                continue;
            for (size_t j = 0; j < ns; ++j) {
                if (i == j || st.slots[j].constant)
                    continue;
                for (size_t a = 0; a < nsc; ++a) {
                    uint8_t &state =
                        st.linear[(i * ns + j) * nsc + a];
                    if (state == linDead)
                        continue;
                    uint32_t scale = config_.linearScales[a];
                    uint32_t b = st.slots[i].first -
                                 scale * st.slots[j].first;
                    if (state == linUnseeded) {
                        if (scale == 1 && b == 0) {
                            state = linDead; // plain equality's job
                            continue;
                        }
                        bool pastOk = prevConst[i] != 0 &&
                                      prevDiff[j * nsc + a] != 0;
                        if (!pastOk) {
                            state = linDead;
                            continue;
                        }
                        state = linAlive;
                    }
                    const uint32_t *ci = colOf[i];
                    const uint32_t *cj = colOf[j];
                    uint32_t bad = 0;
                    size_t k = 0;
                    while (k < n && !bad) {
                        size_t stop = std::min(n, k + sweepBlock);
                        for (; k < stop; ++k) {
                            bad |= ci[k] != scale * cj[k] + b ? 1u
                                                              : 0u;
                        }
                    }
                    if (bad)
                        state = linDead;
                }
            }
        }

        // --- targeted ternary sums ---
        for (size_t t = 0; t < triples_.size(); ++t) {
            const auto &spec = triples_[t];
            if (spec.iv < 0 || spec.iw < 0 || spec.iu < 0)
                continue;
            const uint32_t *cv = colOf[size_t(spec.iv)];
            const uint32_t *cw = colOf[size_t(spec.iw)];
            const uint32_t *cu = colOf[size_t(spec.iu)];
            for (int sub = 0; sub < 2; ++sub) {
                if (!st.tripleAlive[t][sub])
                    continue;
                uint32_t bad = 0;
                size_t k = 0;
                while (k < n && !bad) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k) {
                        uint32_t expect =
                            sub ? cw[k] - cu[k] : cw[k] + cu[k];
                        bad |= cv[k] != expect ? 1u : 0u;
                    }
                }
                if (bad)
                    st.tripleAlive[t][sub] = 0;
            }
        }
    }

    /**
     * Fused falsification: every still-alive candidate at this point
     * becomes one member of a FusedProgram, the window is traversed
     * once, and falsified members flip exactly the evidence bits the
     * scalar sweeps would have flipped. Candidate survival is a pure
     * "does a violating row exist in [0, n)" query per member —
     * independent of evaluation order or batching — and every
     * member's row arithmetic compiles to the same operations the
     * scalar sweep performs (mod-2^32 distributivity makes the
     * difference template exact), so the accumulated state is
     * bit-identical to falsifyScalar().
     */
    void
    falsifyFused(PointState &st, const trace::PointColumns &pc,
                 size_t n, const std::vector<uint8_t> &prevConst,
                 const std::vector<uint8_t> &prevDiff,
                 const std::vector<uint8_t> &windowAllFirst) const
    {
        size_t ns = slots_.size();
        size_t nsc = config_.linearScales.size();

        struct Action
        {
            enum Kind : uint8_t { Mod, Diff, Pair, Linear, Triple };
            Kind kind;
            uint32_t a = 0;
            uint32_t b = 0;
        };

        expr::FusedProgram fp;
        std::vector<Action> actions;
        auto member = [&](uint32_t root, Action act) {
            fp.addRoot(root);
            actions.push_back(act);
        };
        // Column value ids interned once; every member reuses them.
        std::vector<uint32_t> colVal(ns);
        for (size_t s = 0; s < ns; ++s)
            colVal[s] = fp.loadCol(slots_[s].id());

        // --- modular residues and scaled differences ---
        for (size_t s = 0; s < ns; ++s) {
            if (windowAllFirst[s])
                continue;
            const auto &acc = st.slots[s];
            uint32_t first = acc.first;
            for (size_t m = 0; m < config_.moduli.size(); ++m) {
                if (!acc.modAlive[m])
                    continue;
                uint32_t mod = config_.moduli[m];
                uint32_t lhs = colVal[s];
                lhs = (mod & (mod - 1)) == 0
                          ? fp.apply(expr::OpCode::AndImm, lhs,
                                     mod - 1)
                          : fp.apply(expr::OpCode::ModImm, lhs, mod);
                member(fp.compare(CmpOp::Eq, lhs,
                                  fp.loadImm(first % mod)),
                       {Action::Mod, uint32_t(s), uint32_t(m)});
            }
            for (size_t a = 0; a < nsc; ++a) {
                if (!acc.diffAlive[a])
                    continue;
                uint32_t scale = config_.linearScales[a];
                // scale*(x - first) == 0  <=>  scale*x - scale*first
                // == 0 in mod-2^32 arithmetic.
                uint32_t lhs = colVal[s];
                if (scale != 1)
                    lhs = fp.apply(expr::OpCode::MulImm, lhs, scale);
                uint32_t add = 0u - scale * first;
                if (add != 0)
                    lhs = fp.apply(expr::OpCode::AddImm, lhs, add);
                member(fp.compare(CmpOp::Eq, lhs, fp.loadImm(0)),
                       {Action::Diff, uint32_t(s), uint32_t(a)});
            }
        }

        // --- pairwise relation evidence ---
        // Evidence bits are absorbing ORs: a bit sets iff a witness
        // row exists, i.e. iff the complementary ordering invariant
        // is violated somewhere in the window. Only unset bits of
        // live pairs need members.
        size_t pairIdx = 0;
        for (size_t i = 0; i < ns; ++i) {
            for (size_t j = i + 1; j < ns; ++j, ++pairIdx) {
                uint8_t &bits = st.pairBits[pairIdx];
                if (bits == pairDead)
                    continue;
                const auto &ai = st.slots[i];
                const auto &aj = st.slots[j];
                if (ai.constant && aj.constant) {
                    // Every row of this window is (first_i, first_j).
                    uint32_t l = ai.first, r = aj.first;
                    bits |= l < r ? sawLtBit
                                  : (l == r ? sawEqBit : sawGtBit);
                    continue;
                }
                // A constant side folds to its immediate (same
                // guarantee the both-constant shortcut rests on), so
                // pairs against equal-valued constant slots become
                // structurally identical members and hash-cons onto
                // one evaluation.
                uint32_t l = ai.constant ? fp.loadImm(ai.first)
                                         : colVal[i];
                uint32_t r = aj.constant ? fp.loadImm(aj.first)
                                         : colVal[j];
                if (!(bits & sawLtBit)) {
                    // violated <=> saw x < y
                    member(fp.compare(CmpOp::Ge, l, r),
                           {Action::Pair, uint32_t(pairIdx),
                            sawLtBit});
                }
                if (!(bits & sawEqBit)) {
                    // violated <=> saw x == y
                    member(fp.compare(CmpOp::Ne, l, r),
                           {Action::Pair, uint32_t(pairIdx),
                            sawEqBit});
                }
                if (!(bits & sawGtBit)) {
                    // violated <=> saw x > y
                    member(fp.compare(CmpOp::Le, l, r),
                           {Action::Pair, uint32_t(pairIdx),
                            sawGtBit});
                }
            }
        }

        // --- linear candidates x_i == a * x_j + b ---
        // Seeding transitions are pure bookkeeping over the window
        // snapshots (see falsifyScalar); only the row sweep of the
        // surviving candidates is fused.
        for (size_t i = 0; i < ns; ++i) {
            if (st.slots[i].constant)
                continue;
            for (size_t j = 0; j < ns; ++j) {
                if (i == j || st.slots[j].constant)
                    continue;
                for (size_t a = 0; a < nsc; ++a) {
                    uint8_t &state =
                        st.linear[(i * ns + j) * nsc + a];
                    if (state == linDead)
                        continue;
                    uint32_t scale = config_.linearScales[a];
                    uint32_t b = st.slots[i].first -
                                 scale * st.slots[j].first;
                    if (state == linUnseeded) {
                        if (scale == 1 && b == 0) {
                            state = linDead; // plain equality's job
                            continue;
                        }
                        bool pastOk = prevConst[i] != 0 &&
                                      prevDiff[j * nsc + a] != 0;
                        if (!pastOk) {
                            state = linDead;
                            continue;
                        }
                        state = linAlive;
                    }
                    uint32_t l = colVal[i];
                    uint32_t r = colVal[j];
                    if (scale != 1)
                        r = fp.apply(expr::OpCode::MulImm, r, scale);
                    if (b != 0)
                        r = fp.apply(expr::OpCode::AddImm, r, b);
                    member(fp.compare(CmpOp::Eq, l, r),
                           {Action::Linear,
                            uint32_t((i * ns + j) * nsc + a), 0});
                }
            }
        }

        // --- targeted ternary sums ---
        for (size_t t = 0; t < triples_.size(); ++t) {
            const auto &spec = triples_[t];
            if (spec.iv < 0 || spec.iw < 0 || spec.iu < 0)
                continue;
            for (uint32_t sub = 0; sub < 2; ++sub) {
                if (!st.tripleAlive[t][sub])
                    continue;
                uint32_t l = colVal[size_t(spec.iv)];
                uint32_t w = colVal[size_t(spec.iw)];
                uint32_t u = colVal[size_t(spec.iu)];
                uint32_t r = fp.apply2(sub ? expr::OpCode::Sub
                                           : expr::OpCode::Add,
                                       w, u);
                member(fp.compare(CmpOp::Eq, l, r),
                       {Action::Triple, uint32_t(t), sub});
            }
        }

        if (fp.members() == 0)
            return;
        fp.seal();
        st.deduped += fp.dedupedMembers();

        std::vector<size_t> firstViolation(fp.members());
        fp.sweepViolations(pc, 0, n, firstViolation.data());

        for (size_t m = 0; m < actions.size(); ++m) {
            if (firstViolation[m] == expr::FusedProgram::npos)
                continue;
            const Action &act = actions[m];
            switch (act.kind) {
              case Action::Mod:
                st.slots[act.a].modAlive[act.b] = 0;
                break;
              case Action::Diff:
                st.slots[act.a].diffAlive[act.b] = 0;
                break;
              case Action::Pair:
                st.pairBits[act.a] |= uint8_t(act.b);
                break;
              case Action::Linear:
                st.linear[act.a] = linDead;
                break;
              case Action::Triple:
                st.tripleAlive[act.a][act.b] = 0;
                break;
            }
        }
    }

    void
    emitPoint(const PointState &st, InvariantSet &out,
              uint64_t &candidates) const
    {
        trace::Point point = st.point;
        size_t ns = slots_.size();
        size_t nsc = config_.linearScales.size();
        uint64_t n = st.n;

        auto slotOperand = [&](size_t s) {
            return Operand::var(slots_[s].var, slots_[s].orig);
        };

        // --- unary invariants ---
        for (size_t s = 0; s < ns; ++s) {
            const auto &acc = st.slots[s];
            ++candidates;
            if (acc.constant &&
                justified(1.0 / double(std::max<size_t>(
                                    cardinality_[s], 2)),
                          n, config_.confidence)) {
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::Eq;
                inv.lhs = slotOperand(s);
                inv.rhs = Operand::imm(acc.first);
                out.add(inv);
            } else if (!acc.constant &&
                       acc.distinct.size() <= config_.maxOneOf &&
                       n >= config_.minSamples * acc.distinct.size() &&
                       justified(double(acc.distinct.size()) /
                                     double(std::max<size_t>(
                                         cardinality_[s],
                                         acc.distinct.size() + 1)),
                                 n, config_.confidence)) {
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::In;
                inv.lhs = slotOperand(s);
                inv.set = acc.distinct;
                out.add(inv);
            }

            // Modular residue: only for non-constant slots (constant
            // slots' residues are deducible).
            if (!acc.constant) {
                for (size_t m = 0; m < config_.moduli.size(); ++m) {
                    ++candidates;
                    if (!acc.modAlive[m])
                        continue;
                    uint32_t mod = config_.moduli[m];
                    if (!justified(1.0 / double(mod), n,
                                   config_.confidence)) {
                        continue;
                    }
                    Invariant inv;
                    inv.point = point;
                    inv.op = CmpOp::Eq;
                    inv.lhs = slotOperand(s);
                    inv.lhs.modImm = mod;
                    inv.rhs = Operand::imm(acc.first % mod);
                    out.add(inv);
                }
            }
        }

        // Ordering relations between variables whose observed ranges
        // at this point never interleave are implied by the ranges
        // themselves and carry no relational information; Daikon
        // suppresses them and so do we.
        auto rangesInterleave = [&st](size_t i, size_t j) {
            return st.slots[i].max >= st.slots[j].min &&
                   st.slots[j].max >= st.slots[i].min;
        };

        // --- pairwise relations ---
        // Pairs where both slots are constant are deducible from the
        // unary invariants; pairs that saw <, == and > carry no
        // relation. Neither counts as a candidate.
        size_t pairIdx = 0;
        for (size_t i = 0; i < ns; ++i) {
            for (size_t j = i + 1; j < ns; ++j, ++pairIdx) {
                if (st.slots[i].constant && st.slots[j].constant)
                    continue;
                uint8_t bits = st.pairBits[pairIdx];
                if (bits == pairDead)
                    continue;
                bool sawLt = bits & sawLtBit;
                bool sawEq = bits & sawEqBit;
                bool sawGt = bits & sawGtBit;
                ++candidates;
                Invariant inv;
                inv.point = point;
                inv.lhs = slotOperand(i);
                inv.rhs = slotOperand(j);
                if (sawEq && !sawLt && !sawGt) {
                    if (!justified(eqChance(i, j), n,
                                   config_.confidence)) {
                        continue;
                    }
                    inv.op = CmpOp::Eq;
                } else if (!sawEq && n >= config_.neMinSamples) {
                    // "Never equal" is only surprising when
                    // collisions would be expected from the value
                    // cardinalities.
                    if (!justified(neChance(i, j), n + 1,
                                   config_.confidence) ||
                        !rangesInterleave(i, j)) {
                        continue;
                    }
                    if (sawLt && !sawGt)
                        inv.op = CmpOp::Lt;
                    else if (sawGt && !sawLt)
                        inv.op = CmpOp::Gt;
                    else
                        inv.op = CmpOp::Ne;
                } else if (sawEq && sawLt && !sawGt) {
                    if (!justified(0.5, n + 1, config_.confidence) ||
                        !rangesInterleave(i, j)) {
                        continue;
                    }
                    inv.op = CmpOp::Le;
                } else if (sawEq && sawGt && !sawLt) {
                    if (!justified(0.5, n + 1, config_.confidence) ||
                        !rangesInterleave(i, j)) {
                        continue;
                    }
                    inv.op = CmpOp::Ge;
                } else {
                    continue;
                }
                out.add(inv);
            }
        }

        // --- linear relations ---
        for (size_t i = 0; i < ns; ++i) {
            if (st.slots[i].constant)
                continue;
            for (size_t j = 0; j < ns; ++j) {
                if (i == j || st.slots[j].constant)
                    continue;
                for (size_t a = 0; a < nsc; ++a) {
                    uint32_t scale = config_.linearScales[a];
                    uint32_t b = st.slots[i].first -
                                 scale * st.slots[j].first;
                    if (scale == 1 && b == 0)
                        continue; // plain equality handles this
                    if (st.linear[(i * ns + j) * nsc + a] != linAlive)
                        continue; // falsified: not a candidate
                    ++candidates;
                    if (!justified(eqChance(i, j), n,
                                   config_.confidence)) {
                        continue;
                    }
                    Invariant inv;
                    inv.point = point;
                    inv.op = CmpOp::Eq;
                    inv.lhs = slotOperand(i);
                    inv.rhs = slotOperand(j);
                    inv.rhs.mulImm = scale;
                    inv.rhs.addImm = b;
                    out.add(inv);
                }
            }
        }

        // --- targeted ternary sums ---
        for (size_t t = 0; t < triples_.size(); ++t) {
            const auto &spec = triples_[t];
            if (spec.iv < 0 || spec.iw < 0 || spec.iu < 0)
                continue;
            // All-constant triples are deducible.
            if (st.slots[size_t(spec.iv)].constant &&
                (st.slots[size_t(spec.iw)].constant ||
                 st.slots[size_t(spec.iu)].constant)) {
                continue;
            }
            for (int sub = 0; sub < 2; ++sub) {
                ++candidates;
                if (!st.tripleAlive[t][sub] ||
                    !justified(eqChance(size_t(spec.iv),
                                        size_t(spec.iw)),
                               n, config_.confidence)) {
                    continue;
                }
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::Eq;
                inv.lhs = Operand::var(spec.v.var, spec.v.orig);
                inv.rhs = Operand::pair(spec.w.ref(),
                                        sub ? Op2::Sub : Op2::Add,
                                        spec.u.ref());
                out.add(inv);
            }
        }
    }

    Config config_;

    std::vector<Slot> slots_;
    std::vector<uint16_t> slotIds_;
    std::vector<TripleSpec> triples_;

    std::vector<std::unordered_set<uint32_t>> seen_;
    std::vector<uint32_t> globalMin_;
    std::vector<uint32_t> globalMax_;
    std::vector<size_t> cardinality_;

    std::map<uint16_t, std::unique_ptr<PointState>> states_;
};

} // namespace

InvariantSet
generate(const std::vector<const trace::TraceBuffer *> &traces,
         const Config &config, GenStats *stats,
         support::ThreadPool *pool)
{
    Engine engine(config);
    // Transpose the whole trace set once; every falsification loop
    // is then a cache-order sweep down these columns.
    trace::ColumnSet cols =
        trace::ColumnSet::build(traces, engine.slotIds());
    engine.add(cols, pool);
    return engine.finish(stats, pool);
}

InvariantSet
generate(const trace::TraceBuffer &trace, const Config &config,
         GenStats *stats)
{
    std::vector<const trace::TraceBuffer *> traces = {&trace};
    return generate(traces, config, stats);
}

InvariantSet
generate(trace::ColumnSet cols, const Config &config, GenStats *stats,
         support::ThreadPool *pool)
{
    Engine engine(config);
    engine.add(cols, pool);
    return engine.finish(stats, pool);
}

InvariantSet
generateStreaming(const trace::TraceSetReader &reader,
                  const Config &config, GenStats *stats,
                  support::ThreadPool *pool)
{
    Engine engine(config);

    // Chunks in stream order, so per-point record order matches the
    // in-memory path exactly.
    struct Job
    {
        size_t stream;
        size_t chunk;
    };
    std::vector<Job> jobs;
    for (size_t s = 0; s < reader.streams().size(); ++s) {
        for (size_t c = 0; c < reader.streams()[s].chunks.size(); ++c)
            jobs.push_back({s, c});
    }

    size_t window =
        std::max<size_t>(1, pool ? pool->threadCount() : 1);
    support::ResidentTracker resident;
    for (size_t base = 0; base < jobs.size(); base += window) {
        size_t count = std::min(window, jobs.size() - base);
        std::vector<Job> batch(jobs.begin() + long(base),
                               jobs.begin() + long(base + count));
        auto buffers =
            support::parallelMap(pool, batch, [&](const Job &j) {
                trace::TraceBuffer b;
                reader.readChunk(j.stream, j.chunk, b);
                return b;
            });
        std::vector<const trace::TraceBuffer *> ptrs;
        uint64_t windowRecords = 0;
        ptrs.reserve(buffers.size());
        for (const auto &b : buffers) {
            ptrs.push_back(&b);
            windowRecords += b.size();
        }
        // Decoded records plus their columnar transpose are the only
        // trace bytes resident in this phase.
        resident.set(2 * windowRecords * sizeof(trace::Record));
        trace::ColumnSet cols =
            trace::ColumnSet::build(ptrs, engine.slotIds());
        engine.add(cols, pool);
    }
    return engine.finish(stats, pool);
}

} // namespace scif::invgen

#include "invgen.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_set>

#include "support/binio.hh"
#include "support/logging.hh"
#include "support/threadpool.hh"
#include "trace/columns.hh"

namespace scif::invgen {

using expr::CmpOp;
using expr::Invariant;
using expr::Op2;
using expr::Operand;
using expr::VarRef;

bool
InvariantSet::add(Invariant inv)
{
    inv.canonicalize();
    std::string key = inv.key();
    if (keyIndex_.count(key))
        return false;
    size_t idx = invs_.size();
    keyIndex_[key] = idx;
    pointIndex_[inv.point.id()].push_back(idx);
    invs_.push_back(std::move(inv));
    return true;
}

const std::vector<size_t> &
InvariantSet::atPoint(uint16_t pointId) const
{
    static const std::vector<size_t> empty;
    auto it = pointIndex_.find(pointId);
    return it == pointIndex_.end() ? empty : it->second;
}

std::set<std::string>
InvariantSet::keys() const
{
    std::set<std::string> out;
    for (const auto &[key, idx] : keyIndex_)
        out.insert(key);
    return out;
}

size_t
InvariantSet::variableCount() const
{
    size_t count = 0;
    for (const auto &inv : invs_) {
        count += inv.lhs.vars().size();
        if (inv.op != CmpOp::In)
            count += inv.rhs.vars().size();
    }
    return count;
}

void
InvariantSet::assign(std::vector<expr::Invariant> invs)
{
    invs_.clear();
    keyIndex_.clear();
    pointIndex_.clear();
    for (auto &inv : invs)
        add(std::move(inv));
}

void
InvariantSet::saveText(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    for (const auto &inv : invs_)
        out << inv.str() << "\n";
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

InvariantSet
InvariantSet::loadText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open invariant file '%s'", path.c_str());
    InvariantSet set;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        set.add(expr::Invariant::parse(line));
    }
    return set;
}

namespace {

constexpr uint32_t invMagic = 0x53434956; // "SCIV"
constexpr uint32_t invVersion = 1;

void
writeOperand(support::BinWriter &out, const Operand &op)
{
    out.u8(op.isConst);
    out.u32(op.constVal);
    out.u16(op.a.var);
    out.u8(op.a.orig);
    out.u8(uint8_t(op.op2));
    out.u16(op.b.var);
    out.u8(op.b.orig);
    out.u8(op.negate);
    out.u32(op.mulImm);
    out.u32(op.modImm);
    out.u32(op.addImm);
}

Operand
readOperand(support::BinReader &in, const std::string &path)
{
    Operand op;
    op.isConst = in.u8() != 0;
    op.constVal = in.u32();
    op.a.var = in.u16();
    op.a.orig = in.u8() != 0;
    uint8_t op2 = in.u8();
    if (op2 > uint8_t(Op2::Sub))
        fatal("invariant model '%s' is corrupt (operator %u)",
              path.c_str(), op2);
    op.op2 = Op2(op2);
    op.b.var = in.u16();
    op.b.orig = in.u8() != 0;
    op.negate = in.u8() != 0;
    op.mulImm = in.u32();
    op.modImm = in.u32();
    op.addImm = in.u32();
    return op;
}

} // namespace

void
InvariantSet::saveBinary(const std::string &path) const
{
    support::BinWriter out(path, invMagic, invVersion);
    out.u64(invs_.size());
    for (const auto &inv : invs_) {
        out.u16(inv.point.id());
        out.u8(uint8_t(inv.op));
        writeOperand(out, inv.lhs);
        writeOperand(out, inv.rhs);
        out.u32(uint32_t(inv.set.size()));
        for (uint32_t v : inv.set)
            out.u32(v);
    }
    out.close();
}

InvariantSet
InvariantSet::loadBinary(const std::string &path)
{
    support::BinReader in(path, invMagic, invVersion,
                          "invariant model");
    InvariantSet set;
    uint64_t count = in.u64();
    for (uint64_t i = 0; i < count; ++i) {
        Invariant inv;
        inv.point = trace::Point::fromId(in.u16());
        uint8_t op = in.u8();
        if (op > uint8_t(CmpOp::In))
            fatal("invariant model '%s' is corrupt (comparison %u)",
                  path.c_str(), op);
        inv.op = CmpOp(op);
        inv.lhs = readOperand(in, path);
        inv.rhs = readOperand(in, path);
        uint32_t setSize = in.u32();
        if (setSize > (1u << 20))
            fatal("invariant model '%s' is corrupt (set size %u)",
                  path.c_str(), setSize);
        inv.set.resize(setSize);
        for (uint32_t &v : inv.set)
            v = in.u32();
        set.add(std::move(inv));
    }
    in.expectEof();
    return set;
}

namespace {

/** A slot is one column of the trace matrix: (variable, pre/post). */
struct Slot
{
    uint16_t var;
    bool orig;

    VarRef ref() const { return VarRef{var, orig}; }
    uint16_t id() const { return trace::slotId(var, orig); }
};

/** Rows per falsification-sweep block between early-exit checks. */
constexpr size_t sweepBlock = 512;

/** Pairwise relation evidence. */
struct PairState
{
    uint16_t i, j;
    bool sawLt = false, sawEq = false, sawGt = false;
};

/** Linear candidate x_i == a * x_j + b. */
struct LinearState
{
    uint16_t i, j;
    uint32_t scale;
    uint32_t offset;
    bool alive = true;
};

/** Per-slot accumulation at one program point. */
struct SlotStats
{
    uint64_t n = 0;
    uint32_t first = 0;
    uint32_t min = 0;
    uint32_t max = 0;
    bool constant = true;
    std::vector<uint32_t> distinct; // capped
    std::vector<uint32_t> modResidue;
    std::vector<bool> modAlive;
};

/**
 * The justification test: an invariant is emitted only if the chance
 * of it holding coincidentally in n samples is below 1 - confidence.
 * The per-sample chance is modelled from the slot's observed global
 * value cardinality (Daikon's "justified" notion, simplified).
 */
bool
justified(double per_sample_chance, uint64_t n, double confidence)
{
    if (n == 0)
        return false;
    double p = std::pow(per_sample_chance, double(n - 1));
    return p <= 1.0 - confidence;
}

class Generator
{
  public:
    Generator(const std::vector<const trace::TraceBuffer *> &traces,
              const Config &config)
        : config_(config)
    {
        buildSlots();
        // Transpose the whole trace set once; every falsification
        // loop below is a cache-order sweep down these columns.
        std::vector<uint16_t> slotIds;
        slotIds.reserve(slots_.size());
        for (const auto &s : slots_)
            slotIds.push_back(s.id());
        cols_ = trace::ColumnSet::build(traces, slotIds);
    }

    Generator(trace::ColumnSet cols, const Config &config)
        : config_(config), cols_(std::move(cols))
    {
        buildSlots();
    }

    InvariantSet
    run(GenStats *stats, support::ThreadPool *pool)
    {
        computeGlobalCardinality();

        // Program points are independent: fan each one out, then
        // merge in ascending point order (the column-set order),
        // which reproduces the serial loop exactly.
        std::vector<trace::PointColumns *> points;
        for (auto &pc : cols_.points()) {
            if (pc.rows() < config_.minSamples)
                continue;
            points.push_back(&pc);
        }

        struct PointOut
        {
            InvariantSet invs;
            uint64_t candidates = 0;
        };
        std::vector<PointOut> perPoint(points.size());
        support::parallelFor(
            pool, points.size(), [&](size_t i) {
                processPoint(*points[i], perPoint[i].invs,
                             perPoint[i].candidates);
            });

        InvariantSet out;
        uint64_t candidates = 0;
        for (auto &po : perPoint) {
            for (const auto &inv : po.invs.all())
                out.add(inv);
            candidates += po.candidates;
        }
        if (stats) {
            stats->records = cols_.totalRows();
            stats->points = cols_.points().size();
            stats->candidatesTried = candidates;
        }
        return out;
    }

  private:
    void
    buildSlots()
    {
        for (uint16_t v = 0; v < trace::numVars; ++v) {
            if (config_.disabledVars.count(v))
                continue;
            slots_.push_back(Slot{v, true});
            slots_.push_back(Slot{v, false});
        }
    }

    void
    computeGlobalCardinality()
    {
        constexpr size_t cap = 64;
        cardinality_.assign(slots_.size(), 0);
        globalMin_.assign(slots_.size(), 0xffffffffu);
        globalMax_.assign(slots_.size(), 0);
        std::vector<std::unordered_set<uint32_t>> seen(slots_.size());
        for (const auto &pc : cols_.points()) {
            for (size_t s = 0; s < slots_.size(); ++s) {
                const uint32_t *col = pc.column(slots_[s].id());
                auto &set = seen[s];
                uint32_t mn = globalMin_[s], mx = globalMax_[s];
                for (size_t k = 0; k < pc.rows(); ++k) {
                    uint32_t v = col[k];
                    mn = std::min(mn, v);
                    mx = std::max(mx, v);
                    if (set.size() < cap)
                        set.insert(v);
                }
                globalMin_[s] = mn;
                globalMax_[s] = mx;
            }
        }
        for (size_t s = 0; s < slots_.size(); ++s) {
            size_t distinct = std::max<size_t>(seen[s].size(), 1);
            if (distinct < cap) {
                cardinality_[s] = distinct;
            } else {
                // The distinct-value tracker saturated: estimate the
                // value cardinality from the observed span (Daikon's
                // value-tracker heuristic). Wide variables get a huge
                // cardinality, so "never equal" observations carry no
                // statistical weight.
                uint64_t span =
                    uint64_t(globalMax_[s]) - globalMin_[s] + 1;
                cardinality_[s] = size_t(
                    std::min<uint64_t>(span, 0xffffffffull));
            }
        }
    }

    /** Chance of two values colliding, from global cardinalities. */
    double
    eqChance(size_t i, size_t j) const
    {
        size_t v = std::min(cardinality_[i], cardinality_[j]);
        return 1.0 / double(std::max<size_t>(v, 2));
    }

    /** Per-sample chance that two values merely happen to differ. */
    double
    neChance(size_t i, size_t j) const
    {
        return 1.0 - eqChance(i, j);
    }

    void
    processPoint(trace::PointColumns &pc, InvariantSet &out,
                 uint64_t &candidates) const
    {
        trace::Point point = pc.point();
        size_t ns = slots_.size();
        size_t n = pc.rows();

        // Column base pointers, hoisted out of every sweep.
        std::vector<const uint32_t *> colOf(ns);
        for (size_t s = 0; s < ns; ++s)
            colOf[s] = pc.column(slots_[s].id());

        // --- per-slot statistics: one cache-order sweep per column ---
        std::vector<SlotStats> stats(ns);
        for (size_t s = 0; s < ns; ++s) {
            const uint32_t *col = colOf[s];
            auto &st = stats[s];
            st.n = n;
            st.first = col[0];

            uint32_t mn = st.first, mx = st.first, allEq = 1;
            for (size_t k = 0; k < n; ++k) {
                uint32_t v = col[k];
                mn = std::min(mn, v);
                mx = std::max(mx, v);
                allEq &= v == st.first ? 1u : 0u;
            }
            st.min = mn;
            st.max = mx;
            st.constant = allEq != 0;

            // Distinct values in first-seen order, capped one past
            // the membership-set limit (beyond that the slot can
            // never yield a one-of invariant).
            for (size_t k = 0; k < n; ++k) {
                uint32_t v = col[k];
                if (std::find(st.distinct.begin(), st.distinct.end(),
                              v) == st.distinct.end()) {
                    st.distinct.push_back(v);
                    if (st.distinct.size() > config_.maxOneOf)
                        break;
                }
            }

            // Modular residues from the precomputed mod-m columns.
            // Constant slots are trivially alive at first % m.
            st.modResidue.resize(config_.moduli.size());
            st.modAlive.assign(config_.moduli.size(), true);
            for (size_t m = 0; m < config_.moduli.size(); ++m) {
                uint32_t mod = config_.moduli[m];
                st.modResidue[m] = st.first % mod;
                if (st.constant)
                    continue;
                const uint32_t *mc = pc.modColumn(slots_[s].id(), mod);
                uint32_t r0 = st.modResidue[m];
                uint32_t bad = 0;
                size_t k = 0;
                while (k < n && !bad) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k)
                        bad |= mc[k] != r0 ? 1u : 0u;
                }
                st.modAlive[m] = bad == 0;
            }
        }

        // --- unary invariants ---
        for (size_t s = 0; s < ns; ++s) {
            const auto &st = stats[s];
            const Slot &slot = slots_[s];
            ++candidates;
            if (st.constant &&
                justified(1.0 / double(std::max<size_t>(
                                    cardinality_[s], 2)),
                          n, config_.confidence)) {
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::Eq;
                inv.lhs = Operand::var(slot.var, slot.orig);
                inv.rhs = Operand::imm(st.first);
                out.add(inv);
            } else if (!st.constant &&
                       st.distinct.size() <= config_.maxOneOf &&
                       n >= config_.minSamples * st.distinct.size() &&
                       justified(double(st.distinct.size()) /
                                     double(std::max<size_t>(
                                         cardinality_[s],
                                         st.distinct.size() + 1)),
                                 n, config_.confidence)) {
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::In;
                inv.lhs = Operand::var(slot.var, slot.orig);
                inv.set = st.distinct;
                out.add(inv);
            }

            // Modular residue: only for non-constant slots (constant
            // slots' residues are deducible).
            if (!st.constant) {
                for (size_t m = 0; m < config_.moduli.size(); ++m) {
                    ++candidates;
                    if (!st.modAlive[m])
                        continue;
                    uint32_t mod = config_.moduli[m];
                    if (!justified(1.0 / double(mod), n,
                                   config_.confidence)) {
                        continue;
                    }
                    Invariant inv;
                    inv.point = point;
                    inv.op = CmpOp::Eq;
                    inv.lhs = Operand::var(slot.var, slot.orig);
                    inv.lhs.modImm = mod;
                    inv.rhs = Operand::imm(st.modResidue[m]);
                    out.add(inv);
                }
            }
        }

        // --- pairwise relations and linear candidates ---
        // Pairs where both slots are constant are deducible from the
        // unary invariants and skipped.
        std::vector<PairState> pairs;
        std::vector<LinearState> linears;
        pairs.reserve(ns * (ns - 1) / 2);
        for (size_t i = 0; i < ns; ++i) {
            for (size_t j = i + 1; j < ns; ++j) {
                if (stats[i].constant && stats[j].constant)
                    continue;
                pairs.push_back(
                    PairState{uint16_t(i), uint16_t(j), false, false,
                              false});
            }
        }

        // Seed linear candidates from the first record.
        for (size_t i = 0; i < ns; ++i) {
            if (stats[i].constant)
                continue;
            for (size_t j = 0; j < ns; ++j) {
                if (i == j || stats[j].constant)
                    continue;
                uint32_t vi = colOf[i][0];
                uint32_t vj = colOf[j][0];
                for (uint32_t a : config_.linearScales) {
                    uint32_t b = vi - a * vj;
                    if (a == 1 && b == 0)
                        continue; // plain equality handles this
                    linears.push_back(
                        LinearState{uint16_t(i), uint16_t(j), a, b,
                                    true});
                }
            }
        }

        // Falsify each candidate with a branch-free two-column sweep,
        // early-exiting at block granularity once the candidate is
        // dead (a pair that has seen <, == and > carries no relation;
        // a linear that missed once is gone). Survivors keep their
        // seeding order, matching the old per-record compaction.
        size_t alive = 0;
        for (auto &p : pairs) {
            const uint32_t *ci = colOf[p.i];
            const uint32_t *cj = colOf[p.j];
            uint32_t lt = 0, eq = 0, gt = 0;
            size_t k = 0;
            while (k < n) {
                size_t stop = std::min(n, k + sweepBlock);
                for (; k < stop; ++k) {
                    uint32_t l = ci[k], r = cj[k];
                    lt |= l < r ? 1u : 0u;
                    eq |= l == r ? 1u : 0u;
                    gt |= l > r ? 1u : 0u;
                }
                if (lt & eq & gt)
                    break;
            }
            if (lt && eq && gt)
                continue; // dead pairs carry no invariant
            p.sawLt = lt != 0;
            p.sawEq = eq != 0;
            p.sawGt = gt != 0;
            pairs[alive++] = p;
        }
        pairs.resize(alive);

        alive = 0;
        for (auto &lin : linears) {
            const uint32_t *ci = colOf[lin.i];
            const uint32_t *cj = colOf[lin.j];
            uint32_t bad = 0;
            size_t k = 0;
            while (k < n && !bad) {
                size_t stop = std::min(n, k + sweepBlock);
                for (; k < stop; ++k) {
                    bad |= ci[k] != lin.scale * cj[k] + lin.offset
                               ? 1u
                               : 0u;
                }
            }
            if (!bad)
                linears[alive++] = lin;
        }
        linears.resize(alive);

        auto slotOperand = [&](uint16_t s) {
            return Operand::var(slots_[s].var, slots_[s].orig);
        };

        // Ordering relations between variables whose observed ranges
        // at this point never interleave are implied by the ranges
        // themselves and carry no relational information; Daikon
        // suppresses them and so do we.
        auto rangesInterleave = [&stats](uint16_t i, uint16_t j) {
            return stats[i].max >= stats[j].min &&
                   stats[j].max >= stats[i].min;
        };

        for (const auto &p : pairs) {
            ++candidates;
            Invariant inv;
            inv.point = point;
            inv.lhs = slotOperand(p.i);
            inv.rhs = slotOperand(p.j);
            if (p.sawEq && !p.sawLt && !p.sawGt) {
                if (!justified(eqChance(p.i, p.j), n,
                               config_.confidence)) {
                    continue;
                }
                inv.op = CmpOp::Eq;
            } else if (!p.sawEq && n >= config_.neMinSamples) {
                // "Never equal" is only surprising when collisions
                // would be expected from the value cardinalities.
                if (!justified(neChance(p.i, p.j), n + 1,
                               config_.confidence) ||
                    !rangesInterleave(p.i, p.j)) {
                    continue;
                }
                if (p.sawLt && !p.sawGt)
                    inv.op = CmpOp::Lt;
                else if (p.sawGt && !p.sawLt)
                    inv.op = CmpOp::Gt;
                else
                    inv.op = CmpOp::Ne;
            } else if (p.sawEq && p.sawLt && !p.sawGt) {
                if (!justified(0.5, n + 1, config_.confidence) ||
                    !rangesInterleave(p.i, p.j)) {
                    continue;
                }
                inv.op = CmpOp::Le;
            } else if (p.sawEq && p.sawGt && !p.sawLt) {
                if (!justified(0.5, n + 1, config_.confidence) ||
                    !rangesInterleave(p.i, p.j)) {
                    continue;
                }
                inv.op = CmpOp::Ge;
            } else {
                continue;
            }
            out.add(inv);
        }

        for (const auto &lin : linears) {
            ++candidates;
            if (!justified(eqChance(lin.i, lin.j), n,
                           config_.confidence)) {
                continue;
            }
            Invariant inv;
            inv.point = point;
            inv.op = CmpOp::Eq;
            inv.lhs = slotOperand(lin.i);
            inv.rhs = slotOperand(lin.j);
            inv.rhs.mulImm = lin.scale;
            inv.rhs.addImm = lin.offset;
            out.add(inv);
        }

        // --- targeted ternary sums ---
        processTriples(point, colOf, n, stats, out, candidates);
    }

    void
    processTriples(trace::Point point,
                   const std::vector<const uint32_t *> &colOf,
                   size_t n, const std::vector<SlotStats> &stats,
                   InvariantSet &out, uint64_t &candidates) const
    {
        using trace::VarId;
        struct TripleSpec
        {
            Slot v, w, u;
        };
        static const TripleSpec specs[] = {
            {{VarId::MEMADDR, false}, {VarId::OPA, true},
             {VarId::IMM, false}},
            {{VarId::OPDEST, false}, {VarId::OPA, true},
             {VarId::OPB, true}},
            {{VarId::OPDEST, false}, {VarId::OPA, true},
             {VarId::IMM, false}},
            {{VarId::EPCR0, false}, {VarId::PC, false},
             {VarId::IMM, false}},
        };

        auto slotIndex = [&](const Slot &s) -> int {
            for (size_t i = 0; i < slots_.size(); ++i) {
                if (slots_[i].var == s.var && slots_[i].orig == s.orig)
                    return int(i);
            }
            return -1;
        };

        for (const auto &spec : specs) {
            int iv = slotIndex(spec.v);
            int iw = slotIndex(spec.w);
            int iu = slotIndex(spec.u);
            if (iv < 0 || iw < 0 || iu < 0)
                continue;
            // All-constant triples are deducible.
            if (stats[iv].constant &&
                (stats[iw].constant || stats[iu].constant)) {
                continue;
            }
            const uint32_t *cv = colOf[iv];
            const uint32_t *cw = colOf[iw];
            const uint32_t *cu = colOf[iu];
            for (bool sub : {false, true}) {
                ++candidates;
                uint32_t bad = 0;
                size_t k = 0;
                while (k < n && !bad) {
                    size_t stop = std::min(n, k + sweepBlock);
                    for (; k < stop; ++k) {
                        uint32_t expect =
                            sub ? cw[k] - cu[k] : cw[k] + cu[k];
                        bad |= cv[k] != expect ? 1u : 0u;
                    }
                }
                bool alive = bad == 0;
                if (!alive ||
                    !justified(eqChance(size_t(iv), size_t(iw)), n,
                               config_.confidence)) {
                    continue;
                }
                Invariant inv;
                inv.point = point;
                inv.op = CmpOp::Eq;
                inv.lhs = Operand::var(spec.v.var, spec.v.orig);
                inv.rhs = Operand::pair(spec.w.ref(),
                                        sub ? Op2::Sub : Op2::Add,
                                        spec.u.ref());
                out.add(inv);
            }
        }
    }

    const Config &config_;

    std::vector<Slot> slots_;
    std::vector<size_t> cardinality_;
    std::vector<uint32_t> globalMin_;
    std::vector<uint32_t> globalMax_;
    trace::ColumnSet cols_;
};

} // namespace

InvariantSet
generate(const std::vector<const trace::TraceBuffer *> &traces,
         const Config &config, GenStats *stats,
         support::ThreadPool *pool)
{
    Generator gen(traces, config);
    return gen.run(stats, pool);
}

InvariantSet
generate(const trace::TraceBuffer &trace, const Config &config,
         GenStats *stats)
{
    std::vector<const trace::TraceBuffer *> traces = {&trace};
    return generate(traces, config, stats);
}

InvariantSet
generate(trace::ColumnSet cols, const Config &config, GenStats *stats,
         support::ThreadPool *pool)
{
    Generator gen(std::move(cols), config);
    return gen.run(stats, pool);
}

} // namespace scif::invgen

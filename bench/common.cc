#include "common.hh"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace scif::bench {

const core::PipelineResult &
pipeline()
{
    static const core::PipelineResult result = core::runPipeline();
    return result;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

int
benchMain(int argc, char **argv, void (*experiment)())
{
    experiment();

    // Run the registered micro-benchmarks with a short default
    // budget unless the caller overrides it.
    std::vector<char *> args(argv, argv + argc);
    std::string minTime = "--benchmark_min_time=0.05";
    bool hasMinTime = false;
    for (int i = 1; i < argc; ++i)
        hasMinTime |= std::string(argv[i]).find(
                          "--benchmark_min_time") == 0;
    if (!hasMinTime)
        args.push_back(minTime.data());

    int benchArgc = int(args.size());
    benchmark::Initialize(&benchArgc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace scif::bench

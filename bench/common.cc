#include "common.hh"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "support/logging.hh"

namespace scif::bench {

namespace {

struct Metric
{
    std::string name;
    double value;
    std::string unit;
};

Options g_options;
std::vector<Metric> g_metrics;
std::vector<std::string> g_failures;

/** JSON string escape for metric names and units (no exotic input). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
writeJsonReport(const std::string &path, const char *argv0)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    const char *base = std::strrchr(argv0, '/');
    out << "{\n  \"bench\": \"" << jsonEscape(base ? base + 1 : argv0)
        << "\",\n  \"failures\": " << g_failures.size()
        << ",\n  \"metrics\": [\n";
    for (size_t i = 0; i < g_metrics.size(); ++i) {
        const Metric &m = g_metrics[i];
        out << "    {\"name\": \"" << jsonEscape(m.name)
            << "\", \"value\": " << m.value << ", \"unit\": \""
            << jsonEscape(m.unit) << "\"}"
            << (i + 1 < g_metrics.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    if (!out)
        fatal("write to '%s' failed", path.c_str());
}

/**
 * Parse and strip the common flags; everything else is forwarded to
 * google-benchmark untouched.
 */
std::vector<char *>
parseCommonFlags(int argc, char **argv)
{
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) != 0)
                return nullptr;
            if (arg.size() > n && arg[n] == '=')
                return argv[i] + n + 1;
            if (arg.size() == n && i + 1 < argc)
                return argv[++i];
            if (arg.size() == n)
                fatal("%s needs a value", flag);
            return nullptr;
        };
        if (const char *v = value("--json")) {
            g_options.jsonPath = v;
        } else if (const char *v = value("--require-speedup")) {
            g_options.requireSpeedup = std::strtod(v, nullptr);
        } else {
            rest.push_back(argv[i]);
        }
    }
    return rest;
}

} // namespace

const core::PipelineResult &
pipeline()
{
    static const core::PipelineResult result = core::runPipeline();
    return result;
}

void
printHeader(const std::string &title, const std::string &paper_ref)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("reproduces: %s\n", paper_ref.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

const Options &
options()
{
    return g_options;
}

void
recordMetric(const std::string &name, double value,
             const std::string &unit)
{
    for (auto &m : g_metrics) {
        if (m.name == name) {
            m.value = value;
            m.unit = unit;
            return;
        }
    }
    g_metrics.push_back({name, value, unit});
}

void
failBench(const std::string &why)
{
    g_failures.push_back(why);
}

int
benchMain(int argc, char **argv, void (*experiment)())
{
    std::vector<char *> args = parseCommonFlags(argc, argv);

    experiment();

    if (!g_options.jsonPath.empty())
        writeJsonReport(g_options.jsonPath, argv[0]);
    for (const auto &why : g_failures)
        std::fprintf(stderr, "BENCH FAILURE: %s\n", why.c_str());

    // Run the registered micro-benchmarks with a short default
    // budget unless the caller overrides it.
    std::string minTime = "--benchmark_min_time=0.05";
    bool hasMinTime = false;
    for (char *a : args)
        hasMinTime |=
            std::string(a).find("--benchmark_min_time") == 0;
    if (!hasMinTime)
        args.push_back(minTime.data());

    int benchArgc = int(args.size());
    benchmark::Initialize(&benchArgc, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return g_failures.empty() ? 0 : 1;
}

} // namespace scif::bench

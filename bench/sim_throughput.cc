/**
 * @file
 * Simulation front-end throughput: instructions/second of the
 * chained predecoded block cache versus the plain (unchained) block
 * cache versus the interpreted fetch-decode-execute loop, over the
 * full 17-program training suite. Every front end is measured traced
 * (records emitted to an AoS buffer) and untraced (the fuzzing and
 * trigger-replay regime); every sweep reloads the program image, so
 * the cached numbers include the predecode cost itself. The three
 * front ends are sampled round-robin, best of three passes each, to
 * keep scheduler noise out of the reported ratios. A second
 * table times the trace-to-columns path: capture-time columnar
 * scattering plus seal against the classic record buffer plus
 * post-hoc transpose.
 *
 * Flags (on top of the common bench flags):
 *   --require-speedup <x>  fail (exit 1) unless superblock chaining
 *                          beats the unchained block cache by at
 *                          least x on the untraced suite sweep (CI
 *                          smoke uses 1.0; the design target is 1.3).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "asm/assembler.hh"
#include "bench/common.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "trace/capture.hh"
#include "trace/columns.hh"
#include "workloads/workloads.hh"

namespace scif {
namespace {

/** One training program, assembled once. */
struct Prepared
{
    std::string name;
    assembler::Program program;
    cpu::CpuConfig config;
    uint64_t records = 0; ///< per-run record count (for reserve())
};

std::vector<Prepared>
prepare()
{
    std::vector<Prepared> out;
    for (const auto &w : workloads::all()) {
        Prepared p;
        p.name = w.name;
        p.program = assembler::assembleOrDie(w.source);
        p.config = w.config;
        out.push_back(std::move(p));
    }
    return out;
}

/** Time one sweep body until enough wall clock accumulates.
 *  @return sweeps per second. */
template <typename Fn>
double
sweepsPerSecond(Fn &&sweep)
{
    using clock = std::chrono::steady_clock;
    sweep(); // warm up
    size_t sweeps = 0;
    auto start = clock::now();
    double elapsed = 0;
    do {
        sweep();
        ++sweeps;
        elapsed = std::chrono::duration<double>(clock::now() - start)
                      .count();
    } while (elapsed < 0.3);
    return double(sweeps) / elapsed;
}

/**
 * Instructions/second of one front end over the whole suite.
 *
 * @param progs the assembled suite.
 * @param predecode block-cache front end (false = interpreted).
 * @param chain superblock chaining (only meaningful with predecode).
 * @param traced emit records into an AoS buffer (false = the
 *        untraced fuzz/replay regime).
 */
double
suiteRate(std::vector<Prepared> &progs, bool predecode, bool chain,
          bool traced)
{
    std::vector<std::unique_ptr<cpu::Cpu>> cpus;
    for (auto &p : progs) {
        cpu::CpuConfig config = p.config;
        config.predecode = predecode;
        config.chain = chain;
        cpus.push_back(std::make_unique<cpu::Cpu>(config));
    }

    uint64_t insnsPerSweep = 0;
    trace::TraceBuffer buf;
    auto sweep = [&] {
        insnsPerSweep = 0;
        for (size_t i = 0; i < progs.size(); ++i) {
            cpus[i]->loadProgram(progs[i].program);
            cpu::RunResult r;
            if (traced) {
                buf.clear();
                buf.reserve(size_t(progs[i].records));
                r = cpus[i]->run(&buf);
                progs[i].records = buf.size();
                benchmark::DoNotOptimize(buf.size());
            } else {
                r = cpus[i]->run(nullptr);
            }
            if (r.reason != cpu::HaltReason::Halted) {
                fatal("workload '%s' did not halt in the bench",
                      progs[i].name.c_str());
            }
            insnsPerSweep += r.instructions;
        }
    };
    return sweepsPerSecond(sweep) * double(insnsPerSweep);
}

/** Records/second turning the suite into per-point columns. */
double
columnsRate(std::vector<Prepared> &progs, bool captureTime)
{
    uint64_t records = 0;
    auto sweep = [&] {
        records = 0;
        if (captureTime) {
            // Predecoded run scattering straight into columns, then
            // a contiguous merge-seal.
            std::vector<trace::ColumnarCapture> caps(progs.size());
            std::vector<const trace::ColumnarCapture *> ptrs;
            for (size_t i = 0; i < progs.size(); ++i) {
                cpu::CpuConfig config = progs[i].config;
                cpu::Cpu cpu(config);
                cpu.loadProgram(progs[i].program);
                cpu.run(&caps[i]);
                records += caps[i].size();
                ptrs.push_back(&caps[i]);
            }
            trace::ColumnSet cols =
                trace::ColumnarCapture::seal(ptrs);
            benchmark::DoNotOptimize(cols.totalRows());
        } else {
            // Interpreted run into AoS buffers, then the post-hoc
            // AoS-to-SoA transpose.
            std::vector<trace::TraceBuffer> bufs(progs.size());
            std::vector<const trace::TraceBuffer *> ptrs;
            for (size_t i = 0; i < progs.size(); ++i) {
                cpu::CpuConfig config = progs[i].config;
                config.predecode = false;
                cpu::Cpu cpu(config);
                cpu.loadProgram(progs[i].program);
                cpu.run(&bufs[i]);
                records += bufs[i].size();
                ptrs.push_back(&bufs[i]);
            }
            trace::ColumnSet cols = trace::ColumnSet::build(ptrs);
            benchmark::DoNotOptimize(cols.totalRows());
        }
    };
    return sweepsPerSecond(sweep) * double(records);
}

void
experiment()
{
    bench::printHeader(
        "Simulation throughput: predecoded vs interpreted",
        "perf substrate for Zhang et al., ASPLOS'17 (Table 8)");

    auto progs = prepare();

    TextTable table({"Mode", "Interpreted (insn/s)",
                     "Predecoded (insn/s)", "Chained (insn/s)",
                     "Chain speedup", "Total speedup"});
    double chainSpeedups[2];
    const char *modes[2] = {"untraced", "traced"};
    for (int traced = 0; traced < 2; ++traced) {
        // Round-robin the three front ends and keep each one's best
        // pass: on a loaded host a throughput sample is only ever
        // noise-floored (a stall can make a pass slower, never
        // faster), so best-of-N interleaved passes is the honest
        // comparator for the chained/unchained ratio.
        double interp = 0, cached = 0, chained = 0;
        for (int rep = 0; rep < 3; ++rep) {
            interp = std::max(
                interp, suiteRate(progs, false, false, traced != 0));
            cached = std::max(
                cached, suiteRate(progs, true, false, traced != 0));
            chained = std::max(
                chained, suiteRate(progs, true, true, traced != 0));
        }
        double chainSpeedup = chained / cached;
        chainSpeedups[traced] = chainSpeedup;
        table.addRow({modes[traced], format("%.3g", interp),
                      format("%.3g", cached), format("%.3g", chained),
                      format("%.2fx", chainSpeedup),
                      format("%.2fx", chained / interp)});
        bench::recordMetric(format("sim.%s.interpreted", modes[traced]),
                            interp, "insn/s");
        bench::recordMetric(format("sim.%s.predecoded", modes[traced]),
                            cached, "insn/s");
        bench::recordMetric(format("sim.%s.chained", modes[traced]),
                            chained, "insn/s");
        bench::recordMetric(
            format("sim.%s.chain_speedup", modes[traced]),
            chainSpeedup, "x");
        bench::recordMetric(format("sim.%s.speedup", modes[traced]),
                            chained / interp, "x");
    }
    std::printf("%s\n", table.render().c_str());

    TextTable capture({"Path", "Records/s"});
    double transpose = columnsRate(progs, false);
    double direct = columnsRate(progs, true);
    capture.addRow({"interpreted + post-hoc transpose",
                    format("%.3g", transpose)});
    capture.addRow({"predecoded + capture-time columns",
                    format("%.3g", direct)});
    std::printf("%s\n", capture.render().c_str());
    bench::recordMetric("columns.transpose", transpose, "records/s");
    bench::recordMetric("columns.capture", direct, "records/s");
    bench::recordMetric("columns.speedup", direct / transpose, "x");

    double gate = bench::options().requireSpeedup;
    if (gate > 0 && chainSpeedups[0] < gate) {
        bench::failBench(format(
            "untraced chain speedup %.2fx below the required %.2fx",
            chainSpeedups[0], gate));
    }
}

/** Micro-benchmark twins of the table, for --benchmark_filter runs. */
void
simFrontEnd(benchmark::State &state, bool predecode, bool chain,
            bool traced)
{
    const auto &w = workloads::byName("gzip");
    assembler::Program program = assembler::assembleOrDie(w.source);
    cpu::CpuConfig config = w.config;
    config.predecode = predecode;
    config.chain = chain;
    cpu::Cpu cpu(config);
    trace::TraceBuffer buf;
    uint64_t insns = 0;
    for (auto _ : state) {
        cpu.loadProgram(program);
        cpu::RunResult r;
        if (traced) {
            buf.clear();
            r = cpu.run(&buf);
        } else {
            r = cpu.run(nullptr);
        }
        benchmark::DoNotOptimize(r.instructions);
        insns += r.instructions;
    }
    state.SetItemsProcessed(int64_t(insns));
}

void
simInterpreted(benchmark::State &state)
{
    simFrontEnd(state, false, false, false);
}
BENCHMARK(simInterpreted)->Unit(benchmark::kMicrosecond);

void
simPredecoded(benchmark::State &state)
{
    simFrontEnd(state, true, false, false);
}
BENCHMARK(simPredecoded)->Unit(benchmark::kMicrosecond);

void
simChained(benchmark::State &state)
{
    simFrontEnd(state, true, true, false);
}
BENCHMARK(simChained)->Unit(benchmark::kMicrosecond);

void
simChainedTraced(benchmark::State &state)
{
    simFrontEnd(state, true, true, true);
}
BENCHMARK(simChainedTraced)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

/**
 * @file
 * Table 6: evaluation against the manually written security
 * properties of SPECS (p1..p18) and Security-Checker (p19..p27).
 * For each property: whether it is represented by SCI from the
 * identification step (with the identifying bugs), by SCI from the
 * inference step, or why it is out of reach (N = not generated,
 * * = needs microarchitectural state, box = outside the core).
 * The paper finds 19 of the 22 in-scope properties (11 from
 * identification, 8 more from inference) and misses p10/p16/p22.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/common.hh"
#include "sci/properties.hh"

namespace scif {
namespace {

void
experiment()
{
    bench::printHeader(
        "Table 6: coverage of prior manually written properties",
        "Zhang et al., ASPLOS'17, Table 6");

    const auto &r = bench::pipeline();

    // Property -> identifying bugs (via the identified SCI).
    std::map<std::string, std::set<std::string>> fromIdent;
    for (size_t idx : r.database.sciIndices()) {
        for (const auto &pid :
             sci::matchProperties(r.model.all()[idx])) {
            for (const auto &bug : r.database.provenance(idx))
                fromIdent[pid].insert(bug);
        }
    }
    // Property -> represented by inferred SCI.
    std::set<std::string> fromInfer;
    for (size_t idx : r.inference.inferredSci) {
        for (const auto &pid :
             sci::matchProperties(r.model.all()[idx]))
            fromInfer.insert(pid);
    }

    TextTable table({"No.", "Class", "From Ident.", "From Infer.",
                     "Description"});
    size_t inScope = 0, foundIdent = 0, foundInferOnly = 0;
    for (const auto &p : sci::catalog()) {
        if (p.origin == "new")
            continue; // Table 7's rows

        std::string identCell, inferCell;
        switch (p.expressibility) {
          case sci::Expressibility::Microarch:
            identCell = "*";
            break;
          case sci::Expressibility::OffCore:
            identCell = "[]";
            break;
          case sci::Expressibility::NotGenerated:
            identCell = "N";
            break;
          case sci::Expressibility::Yes: {
            ++inScope;
            auto it = fromIdent.find(p.id);
            if (it != fromIdent.end()) {
                ++foundIdent;
                for (const auto &bug : it->second) {
                    if (!identCell.empty())
                        identCell += " ";
                    identCell += bug;
                }
            } else if (fromInfer.count(p.id)) {
                ++foundInferOnly;
                inferCell = "X";
            }
            break;
          }
        }
        table.addRow({p.id, std::string(propClassName(p.cls)),
                      identCell, inferCell,
                      p.description.substr(0, 44)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("In-scope properties: %zu of 24 (p18/p24 need "
                "microarchitectural state, p10/p22 are not in the "
                "generated set, p25-p27 are off-core).\n",
                inScope);
    std::printf("Found from identification: %zu; additionally from "
                "inference: %zu; total %zu of 22 candidates.\n",
                foundIdent, foundInferOnly,
                foundIdent + foundInferOnly);
    std::printf("Paper: 11 from identification + 8 from inference = "
                "19 of 22 (86.4%%), missing p10 (needs the "
                "effective-address derived variable), p16, p22.\n");
}

/** Micro-benchmark: the catalog matchers over the model. */
void
propertyMatching(benchmark::State &state)
{
    const auto &r = bench::pipeline();
    for (auto _ : state) {
        size_t hits = 0;
        for (size_t i = 0; i < 2000 && i < r.model.size(); ++i)
            hits += sci::matchProperties(r.model.all()[i]).size();
        benchmark::DoNotOptimize(hits);
    }
}
BENCHMARK(propertyMatching)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

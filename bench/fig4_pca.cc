/**
 * @file
 * Figure 4: PCA of the labeled invariants restricted to the features
 * the elastic net selected, projected to two dimensions. The paper's
 * claim: "invariants cluster adequately according to class label",
 * i.e. the selected features separate SCI from non-SCI. We print an
 * ASCII scatter of the projection plus the class centroids and a
 * separation statistic.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "ml/pca.hh"

namespace scif {
namespace {

void
experiment()
{
    bench::printHeader("Figure 4: PCA of labeled invariants",
                       "Zhang et al., ASPLOS'17, Figure 4");

    const auto &r = bench::pipeline();
    const auto &fx = r.inference.features;
    auto selected = r.inference.model.nonZeroFeatures();
    std::printf("PCA over %zu selected features on %zu labeled "
                "invariants (paper: 24 features, 102 invariants).\n\n",
                selected.size(),
                r.database.sciIndices().size() +
                    r.database.nonSciIndices().size());

    // Assemble the restricted feature matrix, SCI rows first.
    std::vector<size_t> rows = r.database.sciIndices();
    size_t numSci = rows.size();
    for (size_t idx : r.database.nonSciIndices())
        rows.push_back(idx);

    ml::Matrix X(rows.size(), selected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        auto full = fx.extract(r.model.all()[rows[i]]);
        for (size_t c = 0; c < selected.size(); ++c)
            X.at(i, c) = full[selected[c]];
    }

    ml::PcaResult pca = ml::pca(X, 2);

    // Class centroids and spread on the projection.
    double cx[2] = {0, 0}, cy[2] = {0, 0};
    for (size_t i = 0; i < rows.size(); ++i) {
        int cls = i < numSci ? 0 : 1;
        cx[cls] += pca.projected.at(i, 0);
        cy[cls] += pca.projected.at(i, 1);
    }
    size_t counts[2] = {numSci, rows.size() - numSci};
    for (int c = 0; c < 2; ++c) {
        cx[c] /= double(counts[c]);
        cy[c] /= double(counts[c]);
    }
    double spread[2] = {0, 0};
    for (size_t i = 0; i < rows.size(); ++i) {
        int cls = i < numSci ? 0 : 1;
        double dx = pca.projected.at(i, 0) - cx[cls];
        double dy = pca.projected.at(i, 1) - cy[cls];
        spread[cls] += std::sqrt(dx * dx + dy * dy);
    }
    for (int c = 0; c < 2; ++c)
        spread[c] /= double(counts[c]);
    double separation = std::hypot(cx[0] - cx[1], cy[0] - cy[1]);

    // ASCII scatter, SC = '#', non-SC = 'o', both = '*'.
    constexpr int W = 64, H = 20;
    double minX = 1e9, maxX = -1e9, minY = 1e9, maxY = -1e9;
    for (size_t i = 0; i < rows.size(); ++i) {
        minX = std::min(minX, pca.projected.at(i, 0));
        maxX = std::max(maxX, pca.projected.at(i, 0));
        minY = std::min(minY, pca.projected.at(i, 1));
        maxY = std::max(maxY, pca.projected.at(i, 1));
    }
    std::vector<std::string> grid(H, std::string(W, ' '));
    for (size_t i = 0; i < rows.size(); ++i) {
        int gx = int((pca.projected.at(i, 0) - minX) /
                     (maxX - minX + 1e-12) * (W - 1));
        int gy = int((pca.projected.at(i, 1) - minY) /
                     (maxY - minY + 1e-12) * (H - 1));
        char mark = i < numSci ? '#' : 'o';
        char &cell = grid[H - 1 - gy][gx];
        cell = (cell == ' ' || cell == mark) ? mark : '*';
    }
    std::printf("PC2 ^   ('#' = SCI, 'o' = non-SCI, '*' = both)\n");
    for (const auto &line : grid)
        std::printf("    | %s\n", line.c_str());
    std::printf("    +%s> PC1\n\n", std::string(W, '-').c_str());

    std::printf("Explained variance: PC1 %.2f, PC2 %.2f\n",
                pca.eigenvalues[0], pca.eigenvalues[1]);
    std::printf("Centroids: SCI (%.2f, %.2f)  non-SCI (%.2f, %.2f)\n",
                cx[0], cy[0], cx[1], cy[1]);
    std::printf("Centroid separation %.2f vs mean in-class spread "
                "%.2f -> classes %s.\n",
                separation, (spread[0] + spread[1]) / 2,
                separation > (spread[0] + spread[1]) / 2
                    ? "cluster by label (paper's Figure 4 shape)"
                    : "overlap");
}

/** Micro-benchmark: the PCA itself. */
void
pcaCompute(benchmark::State &state)
{
    const auto &r = bench::pipeline();
    const auto &fx = r.inference.features;
    auto selected = r.inference.model.nonZeroFeatures();
    std::vector<size_t> rows = r.database.sciIndices();
    for (size_t idx : r.database.nonSciIndices())
        rows.push_back(idx);
    ml::Matrix X(rows.size(), selected.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        auto full = fx.extract(r.model.all()[rows[i]]);
        for (size_t c = 0; c < selected.size(); ++c)
            X.at(i, c) = full[selected[c]];
    }
    for (auto _ : state) {
        auto result = ml::pca(X, 2);
        benchmark::DoNotOptimize(result.eigenvalues[0]);
    }
}
BENCHMARK(pcaCompute)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

/**
 * @file
 * Figure 3: unique invariants generated from executing programs.
 *
 * Programs are added cumulatively in the paper's x-axis order
 * (vmlinux, basicmath, parser, ..., vpr, misc); at each step we
 * report how many invariants are unmodified, newly added, and
 * deleted relative to the previous step, and whether the set has
 * converged by the end ("after adding the twolf benchmark, no new
 * invariants are generated or removed" at the paper's scale).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.hh"
#include "invgen/invgen.hh"
#include "workloads/workloads.hh"

namespace scif {
namespace {

/** Figure 3's x-axis: 13 named programs plus the "misc" bundle. */
const std::vector<std::vector<std::string>> steps = {
    {"vmlinux"}, {"basicmath"}, {"parser"}, {"mesa"},
    {"ammp"},    {"mcf"},       {"instru"}, {"gzip"},
    {"crafty"},  {"bzip"},      {"quake"},  {"twolf"},
    {"vpr"},     {"pi", "bitcount", "fft", "helloworld"},
};

void
experiment()
{
    bench::printHeader("Figure 3: invariant-set convergence",
                       "Zhang et al., ASPLOS'17, Figure 3");

    std::vector<trace::TraceBuffer> traces;
    std::vector<const trace::TraceBuffer *> ptrs;

    TextTable table({"programs", "invariants", "unmodified", "new",
                     "deleted"});
    std::set<std::string> previous;
    for (size_t step = 0; step < steps.size(); ++step) {
        std::string label;
        for (const auto &name : steps[step]) {
            traces.push_back(
                workloads::run(workloads::byName(name)));
            label = steps[step].size() > 1 ? "misc" : name;
        }
        ptrs.clear();
        for (const auto &t : traces)
            ptrs.push_back(&t);

        invgen::InvariantSet set = invgen::generate(ptrs);
        std::set<std::string> current = set.keys();

        size_t unmodified = 0, added = 0, deleted = 0;
        for (const auto &key : current)
            previous.count(key) ? ++unmodified : ++added;
        for (const auto &key : previous)
            deleted += current.count(key) == 0;

        table.addRow({label, std::to_string(current.size()),
                      std::to_string(unmodified),
                      std::to_string(added),
                      std::to_string(deleted)});
        previous = std::move(current);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Paper shape: adding programs first grows the set,\n"
                "then it stabilizes (new/deleted shrink toward the\n"
                "tail as the instruction mix saturates).\n");
}

/** Micro-benchmark: invariant generation over one workload trace. */
void
generationThroughput(benchmark::State &state)
{
    trace::TraceBuffer trace =
        workloads::run(workloads::byName("basicmath"));
    for (auto _ : state) {
        invgen::InvariantSet set = invgen::generate(trace);
        benchmark::DoNotOptimize(set.size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()) *
                            int64_t(trace.size()));
}
BENCHMARK(generationThroughput)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

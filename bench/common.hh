/**
 * @file
 * Shared infrastructure for the evaluation benches: each binary
 * regenerates one table or figure of the paper. The pipeline runs
 * once per process and is shared by the table printer and by the
 * google-benchmark micro-benchmarks registered alongside it.
 */

#ifndef SCIFINDER_BENCH_COMMON_HH
#define SCIFINDER_BENCH_COMMON_HH

#include <string>

#include "core/scifinder.hh"
#include "support/table.hh"

namespace scif::bench {

/** The full pipeline, run once per process. */
const core::PipelineResult &pipeline();

/** Print the bench banner with the paper reference. */
void printHeader(const std::string &title,
                 const std::string &paper_ref);

/**
 * Common bench flags, parsed (and stripped) by benchMain before the
 * remaining arguments go to google-benchmark:
 *
 *   --json <path>            write recorded metrics as JSON
 *   --require-speedup <x>    bench-specific gate (see the bench)
 */
struct Options
{
    std::string jsonPath;
    double requireSpeedup = 0.0;
};

/** The parsed common flags (valid once benchMain runs). */
const Options &options();

/**
 * Record one named result for the --json report. Metrics are written
 * in recording order; recording the same name again overwrites the
 * earlier value.
 */
void recordMetric(const std::string &name, double value,
                  const std::string &unit = "");

/** Mark the bench failed: benchMain prints @p why and exits 1. */
void failBench(const std::string &why);

/**
 * Standard bench main body: parse the common flags, print the
 * experiment (the callback), write the JSON report if requested,
 * then run the registered google-benchmark micro-benchmarks.
 * Returns nonzero if the experiment called failBench().
 */
int benchMain(int argc, char **argv, void (*experiment)());

} // namespace scif::bench

/** Define the bench entry point around an experiment function. */
#define SCIF_BENCH_MAIN(experiment)                                          \
    int main(int argc, char **argv)                                          \
    {                                                                        \
        return ::scif::bench::benchMain(argc, argv, experiment);             \
    }

#endif // SCIFINDER_BENCH_COMMON_HH

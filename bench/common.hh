/**
 * @file
 * Shared infrastructure for the evaluation benches: each binary
 * regenerates one table or figure of the paper. The pipeline runs
 * once per process and is shared by the table printer and by the
 * google-benchmark micro-benchmarks registered alongside it.
 */

#ifndef SCIFINDER_BENCH_COMMON_HH
#define SCIFINDER_BENCH_COMMON_HH

#include <string>

#include "core/scifinder.hh"
#include "support/table.hh"

namespace scif::bench {

/** The full pipeline, run once per process. */
const core::PipelineResult &pipeline();

/** Print the bench banner with the paper reference. */
void printHeader(const std::string &title,
                 const std::string &paper_ref);

/**
 * Standard bench main body: print the experiment (the callback),
 * then run the registered google-benchmark micro-benchmarks.
 */
int benchMain(int argc, char **argv, void (*experiment)());

} // namespace scif::bench

/** Define the bench entry point around an experiment function. */
#define SCIF_BENCH_MAIN(experiment)                                          \
    int main(int argc, char **argv)                                          \
    {                                                                        \
        return ::scif::bench::benchMain(argc, argv, experiment);             \
    }

#endif // SCIFINDER_BENCH_COMMON_HH

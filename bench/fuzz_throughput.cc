/**
 * @file
 * Throughput of the differential fuzzing harness: program generation,
 * assembly, lockstep co-simulation against the reference interpreter,
 * and the 31-mutant kill-mask evaluation. These set the budget for
 * the nightly fuzz job: the printed programs/second figures times the
 * job's wall-clock allowance gives the campaign size.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "asm/assembler.hh"
#include "bench/common.hh"
#include "fuzz/differ.hh"
#include "fuzz/mutcov.hh"
#include "fuzz/progen.hh"
#include "support/strings.hh"

namespace scif {
namespace {

constexpr uint64_t benchSeed = 0xbe7c;

fuzz::GenConfig
genConfig()
{
    return fuzz::GenConfig();
}

assembler::Program
programAt(uint32_t index)
{
    return assembler::assembleOrDie(
        fuzz::generate(genConfig(), benchSeed, index).source());
}

void
experiment()
{
    bench::printHeader("Differential fuzzing throughput",
                       "harness instrumentation (not in the paper)");

    using clock = std::chrono::steady_clock;
    constexpr uint32_t n = 200;

    auto t0 = clock::now();
    std::vector<assembler::Program> corpus;
    for (uint32_t i = 0; i < n; ++i)
        corpus.push_back(programAt(i));
    auto t1 = clock::now();

    fuzz::DiffConfig dc;
    dc.memBytes = genConfig().memBytes;
    size_t diverged = 0;
    for (const auto &p : corpus)
        diverged += fuzz::diffProgram(p, dc) ? 1 : 0;
    auto t2 = clock::now();

    fuzz::MutCovConfig mc;
    mc.memBytes = genConfig().memBytes;
    uint64_t killed = 0;
    for (uint32_t i = 0; i < 20; ++i)
        killed |= fuzz::killMask(corpus[i], mc);
    auto t3 = clock::now();

    auto secs = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    TextTable table({"Stage", "Programs", "Time (s)", "Programs/s"});
    table.addRow({"generate + assemble", std::to_string(n),
                  format("%.3f", secs(t0, t1)),
                  format("%.0f", n / secs(t0, t1))});
    table.addRow({"differential co-sim", std::to_string(n),
                  format("%.3f", secs(t1, t2)),
                  format("%.0f", n / secs(t1, t2))});
    table.addRow({"kill mask (31 mutants)", "20",
                  format("%.3f", secs(t2, t3)),
                  format("%.0f", 20 / secs(t2, t3))});
    std::printf("%s", table.render().c_str());
    std::printf("divergences: %zu (expected 0), mutations killed by "
                "20 programs: %d/31\n",
                diverged, __builtin_popcountll(killed));
}

void
BM_GenerateProgram(benchmark::State &state)
{
    uint32_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fuzz::generate(genConfig(), benchSeed, index++));
    }
}
BENCHMARK(BM_GenerateProgram);

void
BM_AssembleProgram(benchmark::State &state)
{
    std::string source =
        fuzz::generate(genConfig(), benchSeed, 0).source();
    for (auto _ : state)
        benchmark::DoNotOptimize(assembler::assemble(source));
}
BENCHMARK(BM_AssembleProgram);

void
BM_DifferentialCosim(benchmark::State &state)
{
    assembler::Program p = programAt(0);
    fuzz::DiffConfig dc;
    dc.memBytes = genConfig().memBytes;
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzz::diffProgram(p, dc));
}
BENCHMARK(BM_DifferentialCosim);

void
BM_KillMask(benchmark::State &state)
{
    assembler::Program p = programAt(0);
    fuzz::MutCovConfig mc;
    mc.memBytes = genConfig().memBytes;
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzz::killMask(p, mc));
}
BENCHMARK(BM_KillMask);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

/**
 * @file
 * Throughput of the differential fuzzing harness: program generation,
 * assembly, lockstep co-simulation against the reference interpreter,
 * and the 31-mutant kill-mask evaluation, plus a fleet-width sweep of
 * the work-stealing fuzzing fleet (fuzz/fleet.hh). These set the
 * budget for the nightly fuzz job: the printed programs/second
 * figures times the job's wall-clock allowance gives the campaign
 * size, and the fleet efficiency column says how much a wider runner
 * buys.
 *
 * Flags (on top of the common bench flags):
 *   --require-speedup <x>  fail (exit 1) unless the widest fleet
 *                          beats the width-1 fleet by at least x
 *                          (CI smoke uses 1.0 — hosted runners have
 *                          few cores; the design target is 0.7 * the
 *                          sweep's widest width on real hardware).
 *                          Skipped with a notice on single-core
 *                          hosts, where no width can win.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "asm/assembler.hh"
#include "bench/common.hh"
#include "fuzz/differ.hh"
#include "fuzz/fleet.hh"
#include "fuzz/mutcov.hh"
#include "fuzz/progen.hh"
#include "support/strings.hh"

namespace scif {
namespace {

constexpr uint64_t benchSeed = 0xbe7c;

fuzz::GenConfig
genConfig()
{
    return fuzz::GenConfig();
}

assembler::Program
programAt(uint32_t index)
{
    return assembler::assembleOrDie(
        fuzz::generate(genConfig(), benchSeed, index).source());
}

void
experiment()
{
    bench::printHeader("Differential fuzzing throughput",
                       "harness instrumentation (not in the paper)");

    using clock = std::chrono::steady_clock;
    constexpr uint32_t n = 200;

    auto t0 = clock::now();
    std::vector<assembler::Program> corpus;
    for (uint32_t i = 0; i < n; ++i)
        corpus.push_back(programAt(i));
    auto t1 = clock::now();

    fuzz::DiffConfig dc;
    dc.memBytes = genConfig().memBytes;
    size_t diverged = 0;
    for (const auto &p : corpus)
        diverged += fuzz::diffProgram(p, dc) ? 1 : 0;
    auto t2 = clock::now();

    fuzz::MutCovConfig mc;
    mc.memBytes = genConfig().memBytes;
    uint64_t killed = 0;
    for (uint32_t i = 0; i < 20; ++i)
        killed |= fuzz::killMask(corpus[i], mc);
    auto t3 = clock::now();

    auto secs = [](clock::time_point a, clock::time_point b) {
        return std::chrono::duration<double>(b - a).count();
    };
    TextTable table({"Stage", "Programs", "Time (s)", "Programs/s"});
    table.addRow({"generate + assemble", std::to_string(n),
                  format("%.3f", secs(t0, t1)),
                  format("%.0f", n / secs(t0, t1))});
    table.addRow({"differential co-sim", std::to_string(n),
                  format("%.3f", secs(t1, t2)),
                  format("%.0f", n / secs(t1, t2))});
    table.addRow({"kill mask (31 mutants)", "20",
                  format("%.3f", secs(t2, t3)),
                  format("%.0f", 20 / secs(t2, t3))});
    std::printf("%s", table.render().c_str());
    std::printf("divergences: %zu (expected 0), mutations killed by "
                "20 programs: %d/31\n\n",
                diverged, __builtin_popcountll(killed));
    bench::recordMetric("fuzz.generate", n / secs(t0, t1),
                        "programs/s");
    bench::recordMetric("fuzz.cosim", n / secs(t1, t2), "programs/s");
    bench::recordMetric("fuzz.killmask", 20 / secs(t2, t3),
                        "programs/s");

    // Fleet-width sweep: the same campaign at widths 1/2/4/8. The
    // fleet's determinism contract means only the wall clock may
    // move, so the sweep is a pure scaling measurement.
    fuzz::FleetConfig fc;
    fc.fuzz.seed = benchSeed;
    fc.fuzz.count = 96;
    fc.grain = 8;
    const unsigned widths[] = {1, 2, 4, 8};
    TextTable fleet({"Fleet width", "Time (s)", "Programs/s",
                     "Speedup", "Efficiency"});
    double base = 0;
    double widest = 0;
    for (unsigned width : widths) {
        fc.shards = width;
        auto f0 = clock::now();
        fuzz::FleetResult fr = fuzz::runFleet(fc);
        double t = secs(f0, clock::now());
        if (!fr.result.ok())
            bench::failBench("fleet campaign diverged in the bench");
        double rate = fc.fuzz.count / t;
        if (width == 1)
            base = rate;
        widest = rate / base;
        fleet.addRow({std::to_string(width), format("%.3f", t),
                      format("%.0f", rate),
                      format("%.2fx", rate / base),
                      format("%.0f%%", 100.0 * rate / base / width)});
        bench::recordMetric(format("fuzz.fleet.w%u", width), rate,
                            "programs/s");
        bench::recordMetric(format("fuzz.fleet.w%u.efficiency", width),
                            rate / base / width, "");
    }
    std::printf("%s\n", fleet.render().c_str());
    bench::recordMetric("fuzz.fleet.speedup", widest, "x");

    double gate = bench::options().requireSpeedup;
    if (gate > 0 && std::thread::hardware_concurrency() < 2) {
        // A wider fleet cannot beat width 1 without a second core;
        // report the measurement but keep single-core hosts green.
        std::printf("single-core host: widest-fleet gate skipped "
                    "(measured %.2fx, required %.2fx)\n",
                    widest, gate);
    } else if (gate > 0 && widest < gate) {
        bench::failBench(format(
            "widest-fleet speedup %.2fx below the required %.2fx",
            widest, gate));
    }
}

void
BM_GenerateProgram(benchmark::State &state)
{
    uint32_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fuzz::generate(genConfig(), benchSeed, index++));
    }
}
BENCHMARK(BM_GenerateProgram);

void
BM_AssembleProgram(benchmark::State &state)
{
    std::string source =
        fuzz::generate(genConfig(), benchSeed, 0).source();
    for (auto _ : state)
        benchmark::DoNotOptimize(assembler::assemble(source));
}
BENCHMARK(BM_AssembleProgram);

void
BM_DifferentialCosim(benchmark::State &state)
{
    assembler::Program p = programAt(0);
    fuzz::DiffConfig dc;
    dc.memBytes = genConfig().memBytes;
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzz::diffProgram(p, dc));
}
BENCHMARK(BM_DifferentialCosim);

void
BM_KillMask(benchmark::State &state)
{
    assembler::Program p = programAt(0);
    fuzz::MutCovConfig mc;
    mc.memBytes = genConfig().memBytes;
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzz::killMask(p, mc));
}
BENCHMARK(BM_KillMask);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

/**
 * @file
 * Security-dataflow triage evaluation: for every Table 1 bug, where
 * the dynamically identified SCI land in the static scan order
 * derived from the bug's mutation footprint. Rank quality 1.0 means
 * every SCI leads the order, 0.5 means the static analysis carries no
 * information (random), so the bench gates on beating random by a
 * clear margin. The audit's soundness cross-check (every dynamic SCI
 * statically reachable) must hold for all bugs.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/secflow.hh"
#include "bench/common.hh"
#include "sci/audit.hh"

namespace scif {
namespace {

void
experiment()
{
    bench::printHeader("Security-dataflow triage",
                       "Zhang et al., ASPLOS'17, §2 bug classes");

    const auto &r = bench::pipeline();
    sci::AuditReport report =
        sci::audit(r.model, bugs::table1(), &r.database);

    TextTable table({"Bug", "Footprint", "Guards", "Direct",
                     "Dyn SCI", "Rank quality", "First rank",
                     "Sound"});
    for (const sci::BugAudit &a : report.bugs()) {
        std::string footprint;
        for (uint16_t v : a.footprint) {
            if (!footprint.empty())
                footprint += " ";
            footprint += trace::varName(v);
        }
        char quality[32] = "-";
        char firstRank[32] = "-";
        if (a.checked && a.dynamicSci != 0) {
            std::snprintf(quality, sizeof(quality), "%.3f",
                          a.rankQuality);
            std::snprintf(firstRank, sizeof(firstRank), "%zu",
                          a.firstSciRank);
        }
        table.addRow({a.bugId, footprint.substr(0, 24),
                      std::to_string(a.guarded),
                      std::to_string(a.guardedDirect),
                      std::to_string(a.dynamicSci), quality,
                      firstRank,
                      a.unsound.empty() ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render().c_str());

    double meanQuality = report.meanRankQuality();
    std::printf("Mean rank quality over detected bugs: %.3f "
                "(random = 0.5, perfect = 1.0).\n",
                meanQuality);
    std::printf("Soundness cross-check: %s.\n",
                report.sound() ? "every dynamic SCI statically "
                                 "reachable"
                               : "UNSOUND — missing def-use edges");

    bench::recordMetric("rank_quality_mean", meanQuality);
    bench::recordMetric("audit_sound", report.sound() ? 1.0 : 0.0);

    if (!report.sound())
        bench::failBench("static audit is unsound");
    if (meanQuality <= 0.5)
        bench::failBench("triage no better than random ordering");
}

/** Micro-benchmark: one bug's triage order over the full model. */
void
triageOrdering(benchmark::State &state)
{
    const auto &r = bench::pipeline();
    for (auto _ : state) {
        analysis::TriageOrder order = analysis::triageOrder(
            analysis::StateGraph::instance(), r.model.all(),
            cpu::Mutation::B8_RoriVector);
        benchmark::DoNotOptimize(order.order.size());
    }
}
BENCHMARK(triageOrdering)->Unit(benchmark::kMillisecond);

/** Micro-benchmark: per-invariant security signatures. */
void
signatureExtraction(benchmark::State &state)
{
    const auto &r = bench::pipeline();
    const auto &graph = analysis::StateGraph::instance();
    size_t n = std::min<size_t>(r.model.size(), 512);
    for (auto _ : state) {
        uint64_t acc = 0;
        for (size_t i = 0; i < n; ++i) {
            acc += analysis::invariantSignature(graph,
                                                r.model.all()[i])
                       .dist[0];
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(signatureExtraction)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)

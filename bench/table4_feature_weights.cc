/**
 * @file
 * Table 4: features with non-zero coefficients in the elastic-net
 * model. Features with negative weight are associated with
 * security-critical invariants (the model predicts the probability
 * of being NON-security-critical); positive weights mark the
 * non-critical side. The paper finds 24 of 158 features non-zero,
 * with GPR0 / PC / SF / WBPC / orig(NPC) / CONST / == on the
 * security-critical side.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/common.hh"
#include "support/strings.hh"

namespace scif {
namespace {

void
experiment()
{
    bench::printHeader("Table 4: selected model features",
                       "Zhang et al., ASPLOS'17, Table 4");

    const auto &r = bench::pipeline();
    const auto &model = r.inference.model;
    const auto &names = r.inference.features.names();

    struct Entry
    {
        std::string name;
        double weight;
    };
    std::vector<Entry> positive, negative;
    for (size_t j : model.nonZeroFeatures()) {
        if (model.beta[j] > 0)
            positive.push_back({names[j], model.beta[j]});
        else
            negative.push_back({names[j], model.beta[j]});
    }
    auto byMagnitude = [](const Entry &a, const Entry &b) {
        return std::fabs(a.weight) > std::fabs(b.weight);
    };
    std::sort(positive.begin(), positive.end(), byMagnitude);
    std::sort(negative.begin(), negative.end(), byMagnitude);

    std::printf("Non-zero coefficients: %zu of %zu features "
                "(paper: 24 of 158); lambda = %.4f (paper: 0.08), "
                "alpha = 0.5, 3-fold CV.\n\n",
                model.nonZeroFeatures().size(), names.size(),
                model.lambda);

    TextTable table({"Weight", "Feature", "Coefficient"});
    for (const auto &e : negative) {
        table.addRow({"Negative (security-critical)", e.name,
                      format("%+.3f", e.weight)});
    }
    table.addSeparator();
    for (const auto &e : positive) {
        table.addRow({"Positive (non-security-critical)", e.name,
                      format("%+.3f", e.weight)});
    }
    std::printf("%s\n", table.render().c_str());

    // The paper's qualitative sign structure.
    auto weightOf = [&](const std::string &name) {
        for (size_t j = 0; j < names.size(); ++j) {
            if (names[j] == name)
                return model.beta[j];
        }
        return 0.0;
    };
    std::printf("Sign checks vs paper Table 4: GPR0 %.3f (<=0), "
                "PC %.3f (<=0), CONST %.3f (<=0), '==' %.3f (<=0), "
                "'!=' %.3f (>=0)\n",
                weightOf("GPR0"), weightOf("PC"), weightOf("CONST"),
                weightOf("=="), weightOf("!="));
    std::printf("Held-out accuracy: %.0f%% (paper: 90%%).\n",
                100.0 * r.inference.testAccuracy);
}

/** Micro-benchmark: feature extraction over the model. */
void
featureExtraction(benchmark::State &state)
{
    const auto &r = bench::pipeline();
    const auto &fx = r.inference.features;
    for (auto _ : state) {
        size_t acc = 0;
        for (size_t i = 0; i < 1000 && i < r.model.size(); ++i) {
            auto x = fx.extract(r.model.all()[i]);
            acc += size_t(x[0]);
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(featureExtraction)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace scif

SCIF_BENCH_MAIN(scif::experiment)
